/**
 * @file
 * google-benchmark microbenchmarks of the compiler and simulator
 * kernels themselves: plan enumeration, the §4.3 allocator, the §4.2
 * scheduler, program simulation, and topology traffic analysis. These
 * back the compile-time claims (Fig. 16) at the component level.
 */
#include <benchmark/benchmark.h>

#include "elk/compiler.h"
#include "elk/inductive_scheduler.h"
#include "elk/memory_allocator.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "sim/engine.h"

namespace {

using namespace elk;

/// Shared state: Llama2-13B decode on the POD4 config.
struct Fixture {
    Fixture()
        : cfg(hw::ChipConfig::ipu_pod4()),
          graph(graph::build_decode_graph(graph::llama2_13b(), 32, 2048)),
          comp(graph, cfg)
    {
    }
    hw::ChipConfig cfg;
    graph::Graph graph;
    compiler::Compiler comp;
};

Fixture&
fixture()
{
    static Fixture f;
    return f;
}

void
BM_PlanEnumeration(benchmark::State& state)
{
    auto& f = fixture();
    graph::Operator op;
    op.kind = graph::OpKind::kMatMul;
    op.m = 32;
    op.k = 5120;
    op.n = static_cast<long>(state.range(0));
    op.param_bytes = static_cast<uint64_t>(op.k) * op.n * 2;
    op.act_in_bytes = static_cast<uint64_t>(op.m) * op.k * 2;
    graph::finalize_flops(op);
    for (auto _ : state) {
        auto front = plan::enumerate_exec_plans(op, f.comp.context());
        benchmark::DoNotOptimize(front);
    }
}
BENCHMARK(BM_PlanEnumeration)->Arg(4096)->Arg(13824)->Arg(32000);

void
BM_MemoryAllocator(benchmark::State& state)
{
    auto& f = fixture();
    compiler::MemoryAllocator alloc(f.comp.library());
    // Live window of the first `range` matmuls.
    std::vector<int> live;
    for (const auto& op : f.graph.ops()) {
        if (op.kind == graph::OpKind::kMatMul &&
            static_cast<int>(live.size()) < state.range(0)) {
            live.push_back(op.id);
        }
    }
    int current = live.back();
    live.pop_back();
    std::vector<int> exec_idx(live.size(), 0), floor(live.size(), 0);
    uint64_t budget = f.comp.context().sram_budget();
    for (auto _ : state) {
        auto choice =
            alloc.allocate(current, live, exec_idx, floor, budget);
        benchmark::DoNotOptimize(choice);
    }
}
BENCHMARK(BM_MemoryAllocator)->Arg(4)->Arg(8)->Arg(16);

void
BM_InductiveScheduler(benchmark::State& state)
{
    auto& f = fixture();
    compiler::InductiveScheduler sched(f.comp.library());
    compiler::ScheduleOptions opts;
    opts.max_window = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto plan = sched.schedule_in_order(opts);
        benchmark::DoNotOptimize(plan);
    }
    state.SetItemsProcessed(state.iterations() * f.graph.size());
}
BENCHMARK(BM_InductiveScheduler)->Arg(8)->Arg(28);

void
BM_SimulateProgram(benchmark::State& state)
{
    auto& f = fixture();
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkDyn;
    auto compiled = f.comp.compile(opts);
    sim::Machine machine(f.cfg);
    sim::Engine engine(machine);
    auto program =
        runtime::lower_to_sim(f.graph, compiled.plan, f.comp.context());
    for (auto _ : state) {
        auto result = engine.run(program);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * f.graph.size());
}
BENCHMARK(BM_SimulateProgram);

void
BM_TrafficModel(benchmark::State& state)
{
    auto cfg = hw::ChipConfig::ipu_pod4();
    if (state.range(0) == 1) {
        cfg.topology = hw::TopologyKind::kMesh2D;
    }
    for (auto _ : state) {
        hw::Topology topo(cfg);
        hw::TrafficModel tm(topo, cfg);
        benchmark::DoNotOptimize(tm);
    }
}
BENCHMARK(BM_TrafficModel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_FullCompile(benchmark::State& state)
{
    auto& f = fixture();
    compiler::CompileOptions opts;
    opts.mode = state.range(0) == 0 ? compiler::Mode::kElkDyn
                                    : compiler::Mode::kElkFull;
    opts.max_orders = 24;
    for (auto _ : state) {
        auto result = f.comp.compile(opts);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_FullCompile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
