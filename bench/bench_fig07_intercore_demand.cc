/**
 * @file
 * Paper Fig. 7: per-core inter-core bandwidth demand across time
 * under MinPreload vs MaxPreload preload-state policies (HBM
 * controller-to-core delivery traffic excluded).
 *
 * Setup follows the paper: each operator uses the fastest
 * execute-state plan that fits the Static execution space (budget
 * minus a 256 KB preload region); MinPreload scatters shared data and
 * exchanges it at execution time, MaxPreload broadcasts as much as
 * fits the region at preload time. Shape to hold: MaxPreload
 * significantly reduces the inter-core traffic demand.
 */
#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace elk;

/// Fastest exec plan fitting the Static execution space.
const plan::ExecPlan&
static_exec_plan(const compiler::PlanLibrary& lib, int op,
                 uint64_t exec_budget, int* idx)
{
    const auto& front = lib.exec_plans(op);
    *idx = static_cast<int>(front.size()) - 1;
    for (int e = 0; e < static_cast<int>(front.size()); ++e) {
        if (front[e].exec_space <= exec_budget) {
            *idx = e;
            break;
        }
    }
    return front[*idx];
}

/// Preload plan per policy: largest plan fitting @p region (Max) or
/// the scatter-minimum (Min).
const plan::PreloadPlan&
policy_preload(const compiler::PlanLibrary& lib, int op, int exec_idx,
               bool max_preload, uint64_t region)
{
    const auto& front = lib.preload_plans(op, exec_idx);
    if (!max_preload) {
        return front.back();
    }
    for (const auto& p : front) {
        if (p.preload_space <= region) {
            return p;
        }
    }
    return front.back();
}

}  // namespace

int
main(int argc, char** argv)
{
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();
    const uint64_t region = 256ull * 1024;
    const uint64_t exec_budget = cfg.usable_sram_per_core() - region;

    util::Table table({"model", "policy", "mean(GB/s)", "p95(GB/s)",
                       "max(GB/s)"});
    util::Table series({"model", "policy", "time(ms)", "demand(GB/s)"});

    std::vector<graph::ModelConfig> models = {
        graph::llama2_13b(), graph::gemma2_27b(), graph::opt_30b()};

    for (const auto& model : models) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        for (bool max_preload : {false, true}) {
            std::vector<double> demand;
            double t = 0.0;
            for (const auto& op : graph.ops()) {
                int exec_idx = 0;
                const auto& exec = static_exec_plan(
                    comp.library(), op.id, exec_budget, &exec_idx);
                const auto& pre =
                    policy_preload(comp.library(), op.id, exec_idx,
                                   max_preload, region);
                // Per-core inter-core bytes during this operator
                // (execution-time fetches plus distribution), divided
                // by the per-core execution (compute) time — demand,
                // not achieved throughput, so it may exceed the
                // 5.5 GB/s link speed exactly as in the paper.
                double bytes = exec.fetch_bytes + exec.reduce_bytes +
                               pre.distribute_bytes;
                double window = exec.compute_time;
                demand.push_back(bytes / window / 1e9);
                t += exec.exec_time + pre.distribute_time;
                if (op.id % std::max(1, graph.size() / 24) == 0) {
                    series.add(model.name,
                               max_preload ? "MaxPreload" : "MinPreload",
                               t * 1e3, demand.back());
                }
            }
            table.add(model.name,
                      max_preload ? "MaxPreload" : "MinPreload",
                      util::mean(demand), util::percentile(demand, 95),
                      util::percentile(demand, 100));
        }
    }

    table.print("Fig. 7: per-core inter-core bandwidth demand");
    series.print("Fig. 7: demand-over-time series (downsampled)");
    table.write_csv("fig07_intercore_demand");
    series.write_csv("fig07_intercore_series");
    return 0;
}
