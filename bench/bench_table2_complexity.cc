/**
 * @file
 * Paper Table 2: search-space complexity factors per model at batch
 * 32, sequence 2048, on the IPU-POD4 capacity —
 *   C: max HBM-heavy operators per layer that fit on-chip,
 *   H: HBM-heavy operators per layer,
 *   P: max Pareto plans per operator,
 *   K: max operators that fit on-chip,
 *   N: total operators.
 *
 * Shape to hold: H <= 6, C <= H, P in the tens-to-hundreds, K in the
 * tens-to-hundreds, N in the hundreds-to-thousands, and the search
 * space scales sub-linearly with model size. (Our N is smaller than
 * the paper's because the builders emit coarser operators than ONNX —
 * no Split/Reshape/Identity nodes.)
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();

    util::Table table({"model", "C", "H", "P", "K", "N"});
    std::vector<std::pair<graph::Graph, std::string>> graphs;
    for (const auto& model : bench::llm_models()) {
        graphs.emplace_back(graph::build_decode_graph(model, 32, 2048),
                            model.name);
    }
    graphs.emplace_back(graph::build_dit_graph(graph::dit_xl(), 32, 256),
                        "DiT-XL");

    for (const auto& [graph, name] : graphs) {
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        compiler::CompileOptions opts;
        opts.mode = compiler::Mode::kElkFull;
        opts.max_orders = 4;  // stats only; skip the deep order search
        auto result = comp.compile(opts);
        table.add(name, result.stats.heavy_fit,
                  result.stats.heavy_per_layer, result.stats.max_plans,
                  result.stats.max_fit_window, result.stats.n_ops);
    }

    table.print("Table 2: search-space complexity factors (b32 s2048)");
    table.write_csv("table2_complexity");
    return 0;
}
