/**
 * @file
 * Paper Fig. 24: achieved TFLOPS during the (forward-pass) training
 * of Llama2-13B, at varied available MatMul TFLOPS, interconnect
 * bandwidths and (much cheaper) off-chip bandwidths.
 *
 * Shape to hold: training is compute-intensive — achieved TFLOPS
 * scales with available TFLOPS while HBM bandwidth barely matters
 * (300-400 GB/s suffices for 600+ achieved TFLOPS), so compute-bound
 * ICCA chips can pair with cheap memory.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    std::vector<double> avail_tflops =
        bench::fast_mode() ? std::vector<double>{1000, 1600}
                           : std::vector<double>{800, 1000, 1200, 1400,
                                                 1600};
    std::vector<double> hbm_gbs = {300, 400};
    std::vector<double> noc_scale = {1.0, 1.5};  // ~32 / ~48 TB/s total

    util::Table table({"topology", "noc_scale", "hbm(GB/s)",
                       "avail_TFLOPS", "Static", "ELK-Full", "Ideal"});

    auto graph = graph::build_forward_graph(graph::llama2_13b(),
                                            /*batch=*/4, /*seq=*/2048);
    for (auto topo : {hw::TopologyKind::kAllToAll,
                      hw::TopologyKind::kMesh2D}) {
        for (double scale : noc_scale) {
            for (double hbm : hbm_gbs) {
                for (double tf : avail_tflops) {
                    auto cfg = hw::ChipConfig::ipu_pod4();
                    cfg.topology = topo;
                    cfg.inter_core_link_bw *= scale;
                    cfg.mesh_link_bw *= scale;
                    cfg.hbm_total_bw = hbm * 1e9;
                    cfg.core_matmul_flops =
                        tf * 1e12 / cfg.total_cores();
                    compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
                    auto stat = bench::run_design(
                        comp, graph, cfg, compiler::Mode::kStatic);
                    auto full = bench::run_design(
                        comp, graph, cfg, compiler::Mode::kElkFull);
                    auto ideal = bench::run_design(
                        comp, graph, cfg, compiler::Mode::kIdeal);
                    table.add(hw::topology_name(topo), scale, hbm, tf,
                              stat.sim.achieved_tflops,
                              full.sim.achieved_tflops,
                              ideal.sim.achieved_tflops);
                }
            }
        }
    }

    table.print(
        "Fig. 24: Llama2-13B training forward pass, achieved TFLOPS");
    table.write_csv("fig24_training");
    return 0;
}
