/**
 * @file
 * bench_serving — latency-throughput curves for the event-driven
 * serving runtime (the serving-scenario extension; not a paper
 * figure).
 *
 * For every design mode the bench first measures closed-loop capacity
 * (tokens/s with the queue never empty), then serves Poisson open-loop
 * traces at fixed fractions of that capacity and reports tail latency,
 * goodput, queue depth, and the steady-state preload time — which
 * drops below the cold first iteration when weight residency kicks in.
 *
 * A third phase exercises the disaggregated scheduler: every request
 * arrives in the prefill phase (its prompt is ingested by a
 * full-sequence prefill iteration before decode), a fraction is
 * high-priority, and each design serves the same trace with operator-
 * boundary preemption on and off — the preemption column and the TTFT
 * tail show what parking the victim iteration buys.
 *
 * A fourth phase measures variable-length prompts: a length-skewed
 * trace (seeded geometric prompt lengths) is served twice per design —
 * through the (batch, prompt-length) prefill bucket grid, and forced
 * through full-length prefill (a single prompt bucket at the model
 * sequence length, the fixed-shape scheduler). Bucketed prefill must
 * show lower mean TTFT and fewer padded prompt tokens on the same
 * trace.
 *
 * A fifth phase sweeps the per-core KV residency budget on that same
 * length-skewed trace: with the budget off, KV memory is free (the
 * pre-KV scheduler); as the budget shrinks, decode KV segments spill
 * to HBM, refetch stalls and deferred prompt admissions appear, and
 * the TTFT / goodput cliff of KV thrash becomes visible per design.
 *
 * A sixth phase serves a conversational session trace (multi-turn
 * sessions, Zipf-shared prompt prefixes, bursty arrivals) with
 * prefix-cache KV sharing off vs on across a cache-budget sweep: on
 * the same trace, sharing turns repeated prefill into KV residency
 * hits — hit-rate up, mean TTFT and prefill tokens down.
 *
 * A seventh phase routes the session trace across chip replicas
 * (phase 7 below); an eighth serves a multi-tenant deadline-tagged
 * trace under EDF + fairness-share scheduling (docs/TENANCY.md) at a
 * load sweep spanning overload: SLO attainment degrades gracefully as
 * the arrival rate crosses capacity, and the per-tenant columns show
 * the weighted shares holding under contention.
 *
 * Replica cells of every grid are independent: they fan out over
 * util::ThreadPool (--jobs N / ELK_BENCH_JOBS) into per-cell slots
 * and are printed by a serial scan, so stdout and the CSV are
 * bit-identical at any job count (the per-report `digest` column
 * makes a diff between --jobs runs conclusive).
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/cluster.h"
#include "runtime/server.h"
#include "util/bits.h"

namespace {

using namespace elk;

/// FNV-1a hex digest of a report's exact bit serialization.
std::string
digest(const runtime::ServingReport& rep)
{
    std::string bits = rep.serialize_bits();
    util::Fnv1a h;
    h.mix(bits.data(), bits.size());
    return h.hex();
}

/// Same digest over a cluster roll-up (covers every replica report).
std::string
digest(const runtime::ClusterReport& rep)
{
    std::string bits = rep.serialize_bits();
    util::Fnv1a h;
    h.mix(bits.data(), bits.size());
    return h.hex();
}

}  // namespace

int
main(int argc, char** argv)
{
    const int n_jobs = bench::jobs(argc, argv);
    const bool fast = bench::fast_mode();
    const int requests = fast ? 24 : 96;
    const int tokens = 4;
    const int batch = fast ? 8 : 16;
    const int seq = fast ? 512 : 2048;
    const std::vector<double> loads =
        fast ? std::vector<double>{0.5, 1.0}
             : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.25};

    graph::ModelConfig model = graph::llama2_13b();
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    auto modes = bench::all_designs();

    int pool_threads = util::ThreadPool::resolve_jobs(n_jobs);
    std::unique_ptr<util::ThreadPool> pool;
    if (pool_threads > 1) {
        pool = std::make_unique<util::ThreadPool>(pool_threads);
    }

    // One plan cache plus one serving compiler per mode, shared by
    // every cell of that mode's row (both are thread-safe).
    compiler::PlanCache cache;
    std::vector<std::unique_ptr<compiler::ServingCompiler>> compilers;
    for (auto mode : modes) {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = fast ? 6 : 24;
        compilers.push_back(std::make_unique<compiler::ServingCompiler>(
            model, seq, chip, copts, &cache));
    }
    runtime::ServerOptions sopts;
    sopts.max_batch = batch;
    sopts.tokens_per_request = tokens;

    auto serve = [&](int m, const std::vector<double>& arrivals) {
        runtime::Server server(compilers[m]->machine(), sopts);
        return server.serve(
            arrivals, [&](int b) { return compilers[m]->program(b); });
    };

    // Phase 1: closed-loop capacity per mode (parallel over modes).
    std::vector<runtime::ServingReport> closed(modes.size());
    util::ThreadPool::run(
        pool.get(), static_cast<int>(modes.size()), [&](int m) {
            closed[m] =
                serve(m, runtime::ArrivalTrace::closed_loop(requests));
        });

    // Phase 2: the (mode x load) grid, rates derived from capacity.
    struct Cell {
        int mode;
        double load;
        runtime::ServingReport rep;
    };
    std::vector<Cell> cells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (double load : loads) {
            cells.push_back({static_cast<int>(m), load, {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(cells.size()), [&](int c) {
            double rate =
                cells[c].load * closed[cells[c].mode].tokens_per_s /
                tokens;
            cells[c].rep = serve(
                cells[c].mode,
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/7));
        });

    // Serial merge/print in fixed grid order.
    util::Table table({"design", "load", "rate(req/s)", "p50(ms)",
                       "p95(ms)", "p99(ms)", "tokens/s", "queue",
                       "pre_first(ms)", "pre_steady(ms)", "digest"});
    for (size_t m = 0; m < modes.size(); ++m) {
        table.add(compilers[m]->mode(), "closed", "-",
                  runtime::ms(closed[m].p50_latency),
                  runtime::ms(closed[m].p95_latency),
                  runtime::ms(closed[m].p99_latency),
                  closed[m].tokens_per_s, closed[m].mean_queue_depth,
                  runtime::ms(closed[m].first_decode_preload),
                  runtime::ms(closed[m].steady_decode_preload),
                  digest(closed[m]));
    }
    for (const Cell& cell : cells) {
        double rate =
            cell.load * closed[cell.mode].tokens_per_s / tokens;
        table.add(compilers[cell.mode]->mode(), cell.load, rate,
                  runtime::ms(cell.rep.p50_latency),
                  runtime::ms(cell.rep.p95_latency),
                  runtime::ms(cell.rep.p99_latency),
                  cell.rep.tokens_per_s, cell.rep.mean_queue_depth,
                  runtime::ms(cell.rep.first_decode_preload),
                  runtime::ms(cell.rep.steady_decode_preload),
                  digest(cell.rep));
    }
    table.print("serving latency-throughput per design (" +
                model.name + ", batch " + std::to_string(batch) +
                ", " + std::to_string(requests) + " reqs x " +
                std::to_string(tokens) + " tok)");
    table.write_csv("serving");

    // Phase 3: disaggregated prefill/decode serving with priority
    // preemption, on vs off, at a fixed 0.6x-capacity open-loop load.
    const int prefill_batch = fast ? 2 : 4;
    const double high_frac = 0.05;
    std::vector<std::unique_ptr<compiler::ServingCompiler>> prefills;
    for (auto mode : modes) {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = fast ? 6 : 24;
        prefills.push_back(std::make_unique<compiler::ServingCompiler>(
            model, seq, chip, copts, &cache, 1,
            compiler::ServingCompiler::Options::prefill()));
    }
    struct DisaggCell {
        int mode;
        bool preempt;
        runtime::ServingReport rep;
    };
    std::vector<DisaggCell> dcells;
    for (size_t m = 0; m < modes.size(); ++m) {
        dcells.push_back({static_cast<int>(m), true, {}});
        dcells.push_back({static_cast<int>(m), false, {}});
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(dcells.size()), [&](int c) {
            int m = dcells[c].mode;
            double rate = 0.6 * closed[m].tokens_per_s / tokens;
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/13),
                tokens, /*prefill_frac=*/1.0, high_frac, /*seed=*/13);
            runtime::ServerOptions dopts = sopts;
            dopts.max_prefill_batch = prefill_batch;
            dopts.max_prompt_len = seq;
            dopts.preempt = dcells[c].preempt;
            runtime::Server server(compilers[m]->machine(), dopts);
            dcells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table disagg({"design", "preempt", "p50(ms)", "p95(ms)",
                        "ttft p50(ms)", "ttft p95(ms)", "p95 high(ms)",
                        "tokens/s", "preempts", "digest"});
    for (const DisaggCell& cell : dcells) {
        disagg.add(compilers[cell.mode]->mode(),
                   cell.preempt ? "on" : "off",
                   runtime::ms(cell.rep.p50_latency),
                   runtime::ms(cell.rep.p95_latency),
                   runtime::ms(cell.rep.p50_ttft),
                   runtime::ms(cell.rep.p95_ttft),
                   runtime::ms(cell.rep.p95_high_latency),
                   cell.rep.tokens_per_s, cell.rep.preemptions,
                   digest(cell.rep));
    }
    disagg.print("disaggregated prefill/decode at 0.6x capacity (" +
                 std::to_string(static_cast<int>(high_frac * 100)) +
                 "% high-priority, prefill batch " +
                 std::to_string(prefill_batch) + ")");
    disagg.write_csv("serving_disagg");

    // Phase 4: variable-length prompts — the same length-skewed trace
    // served through the (batch, prompt-length) bucket grid vs forced
    // through full-length prefill. A small custom prompt ladder keeps
    // the compile count bounded; "full" pins a single bucket at seq.
    const double prompt_mean = seq / 8.0;
    const std::vector<int> varlen_buckets = {seq / 8, seq / 2, seq};
    struct VarlenCell {
        int mode;
        bool bucketed;
        runtime::ServingReport rep;
    };
    std::vector<VarlenCell> vcells;
    for (size_t m = 0; m < modes.size(); ++m) {
        vcells.push_back({static_cast<int>(m), true, {}});
        vcells.push_back({static_cast<int>(m), false, {}});
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(vcells.size()), [&](int c) {
            int m = vcells[c].mode;
            double rate = 0.6 * closed[m].tokens_per_s / tokens;
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/17),
                tokens, /*prefill_frac=*/1.0, /*high_frac=*/0.0,
                /*seed=*/17);
            runtime::tag_prompt_lengths(trace, seq, prompt_mean,
                                        /*seed=*/17);
            runtime::ServerOptions vopts = sopts;
            vopts.max_prefill_batch = prefill_batch;
            vopts.max_prompt_len = seq;
            vopts.prompt_buckets = vcells[c].bucketed
                                       ? varlen_buckets
                                       : std::vector<int>{seq};
            runtime::Server server(compilers[m]->machine(), vopts);
            vcells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table varlen({"design", "prefill", "ttft mean(ms)",
                        "ttft p95(ms)", "p50(ms)", "tokens/s",
                        "prompt_tok", "padded_tok", "buckets",
                        "digest"});
    for (const VarlenCell& cell : vcells) {
        varlen.add(compilers[cell.mode]->mode(),
                   cell.bucketed ? "bucketed" : "full-len",
                   runtime::ms(cell.rep.mean_ttft),
                   runtime::ms(cell.rep.p95_ttft),
                   runtime::ms(cell.rep.p50_latency),
                   cell.rep.tokens_per_s, cell.rep.prompt_tokens,
                   cell.rep.padded_prompt_tokens,
                   static_cast<int>(
                       cell.rep.prefill_bucket_iterations.size()),
                   digest(cell.rep));
    }
    varlen.print(
        "variable-length prompts at 0.6x capacity (geometric mean " +
        std::to_string(static_cast<int>(prompt_mean)) +
        " tok, bucketed vs full-length prefill)");
    varlen.write_csv("serving_varlen");

    // Phase 5: KV-cache residency — the phase-4 length-skewed trace
    // served under a sweep of per-core KV budgets. 0 = KV modeling
    // off (KV memory free, the pre-KV scheduler); finite budgets make
    // every request's decode KV state occupy SRAM next to resident
    // weights, and shrinking the budget walks off the cliff: spills,
    // refetch stalls, and deferred prompt admissions pile onto TTFT
    // and goodput.
    const uint64_t usable = chip.usable_sram_per_core();
    struct KvPoint {
        const char* label;
        uint64_t budget;
    };
    const std::vector<KvPoint> kv_points = {
        {"off", 0},
        {"1/2 sram", usable / 2},
        {"1/8 sram", usable / 8},
        {"1/32 sram", usable / 32},
    };
    struct KvCell {
        int mode;
        int point;
        runtime::ServingReport rep;
    };
    std::vector<KvCell> kcells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (size_t p = 0; p < kv_points.size(); ++p) {
            kcells.push_back(
                {static_cast<int>(m), static_cast<int>(p), {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(kcells.size()), [&](int c) {
            int m = kcells[c].mode;
            double rate = 0.6 * closed[m].tokens_per_s / tokens;
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/19),
                tokens, /*prefill_frac=*/1.0, /*high_frac=*/0.0,
                /*seed=*/19);
            runtime::tag_prompt_lengths(trace, seq, prompt_mean,
                                        /*seed=*/19);
            runtime::ServerOptions kopts = sopts;
            kopts.max_prefill_batch = prefill_batch;
            kopts.max_prompt_len = seq;
            kopts.prompt_buckets = varlen_buckets;
            kopts.kv_budget = kv_points[kcells[c].point].budget;
            kopts.kv_bytes_per_token =
                graph::kv_bytes_per_token(model);
            runtime::Server server(compilers[m]->machine(), kopts);
            kcells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table kv({"design", "kv budget", "ttft mean(ms)", "p50(ms)",
                    "tokens/s", "kv peak(KB)", "evict", "refetch",
                    "stall(ms)", "deferred", "digest"});
    for (const KvCell& cell : kcells) {
        kv.add(compilers[cell.mode]->mode(),
               kv_points[cell.point].label,
               runtime::ms(cell.rep.mean_ttft),
               runtime::ms(cell.rep.p50_latency),
               cell.rep.tokens_per_s, cell.rep.kv_bytes_peak / 1024,
               cell.rep.kv_evictions, cell.rep.kv_refetches,
               runtime::ms(cell.rep.kv_stall),
               cell.rep.deferred_admissions, digest(cell.rep));
    }
    kv.print("KV-cache residency at 0.6x capacity (geometric mean " +
             std::to_string(static_cast<int>(prompt_mean)) +
             " tok prompts, per-core KV budget sweep)");
    kv.write_csv("serving_kv");

    // Phase 6: prefix-cache KV sharing — a conversational session
    // trace per design (multi-turn sessions with think-time, Zipf-
    // shared prefixes, bursty arrivals) served with prefix sharing
    // off vs on across a cache-budget sweep. The off cell strips the
    // prefix tags from the *same* trace — identical arrivals and
    // prompt lengths, no sharing — so the hit/saved columns and the
    // TTFT drop isolate what caching the shared prefixes' KV buys,
    // and the shrinking budgets show the win eroding as eviction
    // prices shared refetches.
    struct PrefixPoint {
        const char* label;
        bool sharing;
        uint64_t budget;
    };
    const std::vector<PrefixPoint> px_points = {
        {"off", false, usable / 2},
        {"on 1/2 sram", true, usable / 2},
        {"on 1/8 sram", true, usable / 8},
        {"on 1/32 sram", true, usable / 32},
    };
    struct PrefixCell {
        int mode;
        int point;
        runtime::ServingReport rep;
    };
    std::vector<PrefixCell> pcells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (size_t p = 0; p < px_points.size(); ++p) {
            pcells.push_back(
                {static_cast<int>(m), static_cast<int>(p), {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(pcells.size()), [&](int c) {
            int m = pcells[c].mode;
            const PrefixPoint& pt = px_points[pcells[c].point];
            runtime::SessionTraceOptions st;
            st.sessions = requests / 2;
            // ~3 turns/session: a session rate of 0.2x capacity puts
            // the turn arrival rate near the other phases' 0.6x.
            st.rate_per_s = 0.2 * closed[m].tokens_per_s / tokens;
            st.burst_factor = 2.0;
            st.mean_turns = 3.0;
            st.think_time_s = 0.02;
            st.decode_tokens = tokens;
            st.max_prompt_len = seq;
            st.prompt_mean_len = prompt_mean;
            st.prefix_population = 8;
            st.prefix_zipf_s = 1.0;
            st.prefix_mean_len = prompt_mean;
            auto trace = runtime::make_session_trace(st, /*seed=*/23);
            if (!pt.sharing) {
                for (auto& r : trace) {
                    r.prefix_id = -1;
                    r.prefix_len = 0;
                }
            }
            runtime::ServerOptions popts = sopts;
            popts.max_prefill_batch = prefill_batch;
            popts.max_prompt_len = seq;
            popts.prompt_buckets = varlen_buckets;
            popts.kv_budget = pt.budget;
            popts.kv_bytes_per_token =
                graph::kv_bytes_per_token(model);
            popts.prefix_sharing = pt.sharing;
            runtime::Server server(compilers[m]->machine(), popts);
            pcells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table prefix({"design", "prefix cache", "hits", "hit_tok",
                        "saved_tok", "ttft mean(ms)", "tokens/s",
                        "shared peak(KB)", "refetch", "digest"});
    for (const PrefixCell& cell : pcells) {
        prefix.add(compilers[cell.mode]->mode(),
                   px_points[cell.point].label, cell.rep.prefix_hits,
                   cell.rep.prefix_hit_tokens,
                   cell.rep.prefill_tokens_saved,
                   runtime::ms(cell.rep.mean_ttft),
                   cell.rep.tokens_per_s,
                   cell.rep.shared_kv_bytes / 1024,
                   cell.rep.kv_refetches, digest(cell.rep));
    }
    prefix.print(
        "prefix-cache KV sharing on a session trace (multi-turn, "
        "8 Zipf prefixes, bursty; sharing off vs on, cache-budget "
        "sweep)");
    prefix.write_csv("serving_prefix");

    // Phase 7: cluster scale-out — the phase-6 session trace routed
    // across chip replicas under a router-policy sweep at N = 1/2/4
    // (KV migration over a ring interconnect on throughout). The
    // N = 1 round-robin row is the single-chip anchor; scaling N
    // shows goodput rising with the router's balance (token skew),
    // and session-affinity trades interconnect traffic for cache
    // locality — migrations and wire stalls drop against round-robin
    // and least-loaded on the same trace. Routing is a pure function
    // of the trace, so every cell (and the whole table) is
    // bit-identical at any --jobs.
    struct ClusterPoint {
        const char* label;
        int replicas;
        runtime::RouterPolicy router;
    };
    const std::vector<ClusterPoint> cl_points = {
        {"1 rr", 1, runtime::RouterPolicy::kRoundRobin},
        {"2 rr", 2, runtime::RouterPolicy::kRoundRobin},
        {"2 least", 2, runtime::RouterPolicy::kLeastLoaded},
        {"2 affinity", 2, runtime::RouterPolicy::kSessionAffinity},
        {"4 rr", 4, runtime::RouterPolicy::kRoundRobin},
        {"4 least", 4, runtime::RouterPolicy::kLeastLoaded},
        {"4 affinity", 4, runtime::RouterPolicy::kSessionAffinity},
    };
    struct ClusterCell {
        int mode;
        int point;
        runtime::ClusterReport rep;
    };
    std::vector<ClusterCell> ccells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (size_t p = 0; p < cl_points.size(); ++p) {
            ccells.push_back(
                {static_cast<int>(m), static_cast<int>(p), {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(ccells.size()), [&](int c) {
            int m = ccells[c].mode;
            const ClusterPoint& pt = cl_points[ccells[c].point];
            runtime::SessionTraceOptions st;
            st.sessions = requests / 2;
            st.rate_per_s = 0.2 * closed[m].tokens_per_s / tokens;
            st.burst_factor = 2.0;
            st.mean_turns = 3.0;
            st.think_time_s = 0.02;
            st.decode_tokens = tokens;
            st.max_prompt_len = seq;
            st.prompt_mean_len = prompt_mean;
            st.prefix_population = 8;
            st.prefix_zipf_s = 1.0;
            st.prefix_mean_len = prompt_mean;
            auto trace = runtime::make_session_trace(st, /*seed=*/23);
            runtime::ClusterOptions clopts;
            clopts.replicas = pt.replicas;
            clopts.router = pt.router;
            clopts.migrate_kv = true;
            clopts.server = sopts;
            clopts.server.max_prefill_batch = prefill_batch;
            clopts.server.max_prompt_len = seq;
            clopts.server.prompt_buckets = varlen_buckets;
            clopts.server.kv_budget = usable / 2;
            clopts.server.kv_bytes_per_token =
                graph::kv_bytes_per_token(model);
            clopts.server.prefix_sharing = true;
            runtime::Cluster cluster(compilers[m]->machine(), clopts);
            ccells[c].rep = cluster.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table cl({"design", "cluster", "tokens/s", "skew",
                    "ttft mean(ms)", "mean(ms)", "migr", "wire(KB)",
                    "stall(ms)", "digest"});
    for (const ClusterCell& cell : ccells) {
        cl.add(compilers[cell.mode]->mode(),
               cl_points[cell.point].label, cell.rep.tokens_per_s,
               cell.rep.util_skew, runtime::ms(cell.rep.mean_ttft),
               runtime::ms(cell.rep.mean_latency),
               cell.rep.kv_migrations,
               cell.rep.interconnect_bytes / 1024,
               runtime::ms(cell.rep.kv_migration_stall),
               digest(cell.rep));
    }
    cl.print(
        "cluster scale-out on the session trace (router sweep at "
        "1/2/4 replicas, KV migration over a ring interconnect)");
    cl.write_csv("serving_cluster");

    // Phase 8: multi-tenant SLO serving — a three-tenant 4:2:1-share
    // deadline-tagged prefill trace served per design across a load
    // sweep that crosses capacity. Phase-1 capacity is decode-only,
    // so the phase first measures closed-loop *prefill* capacity per
    // mode (the same all-prefill trace shape with every arrival at
    // t = 0) and derives both the arrival rates and the deadline
    // budget (8x the mean per-request completion interval) from it:
    // every design faces the same *relative* SLO, attainment sits
    // high below capacity and degrades gracefully — not cliff — into
    // overload, and the per-tenant columns show the weighted fairness
    // shares holding while deadline preemptions rescue urgent
    // stragglers.
    std::vector<runtime::ServingReport> pre_closed(modes.size());
    util::ThreadPool::run(
        pool.get(), static_cast<int>(modes.size()), [&](int m) {
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::closed_loop(requests), tokens,
                /*prefill_frac=*/1.0, /*high_frac=*/0.0, /*seed=*/29);
            runtime::ServerOptions copts = sopts;
            copts.max_prefill_batch = prefill_batch;
            copts.max_prompt_len = seq;
            runtime::Server server(compilers[m]->machine(), copts);
            pre_closed[m] = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    const std::vector<double> slo_loads = {0.7, 1.0, 1.5};
    const std::vector<double> slo_shares = {4.0, 2.0, 1.0};
    struct SloCell {
        int mode;
        double load;
        runtime::ServingReport rep;
    };
    std::vector<SloCell> scells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (double load : slo_loads) {
            scells.push_back({static_cast<int>(m), load, {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(scells.size()), [&](int c) {
            int m = scells[c].mode;
            double cap = pre_closed[m].tokens_per_s / tokens;
            double rate = scells[c].load * cap;
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/29),
                tokens, /*prefill_frac=*/1.0, /*high_frac=*/0.0,
                /*seed=*/29);
            runtime::tag_tenants(trace, /*tenants=*/3, /*seed=*/29);
            runtime::tag_deadlines(trace, 8.0 / cap);
            runtime::ServerOptions slopts = sopts;
            slopts.max_prefill_batch = prefill_batch;
            slopts.max_prompt_len = seq;
            slopts.slo = true;
            slopts.tenants = 3;
            slopts.tenant_shares = slo_shares;
            runtime::Server server(compilers[m]->machine(), slopts);
            scells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table slo({"design", "load", "slo%", "missed",
                     "late p99(ms)", "t0 slo%", "t1 slo%", "t2 slo%",
                     "dl_preempts", "windows", "digest"});
    for (const SloCell& cell : scells) {
        slo.add(compilers[cell.mode]->mode(), cell.load,
                runtime::pct(cell.rep.slo_attainment),
                cell.rep.deadline_misses,
                runtime::ms(cell.rep.p99_lateness),
                runtime::pct(cell.rep.tenant_shares[0].attainment),
                runtime::pct(cell.rep.tenant_shares[1].attainment),
                runtime::pct(cell.rep.tenant_shares[2].attainment),
                cell.rep.deadline_preemptions,
                cell.rep.fairness_windows, digest(cell.rep));
    }
    slo.print(
        "multi-tenant SLO serving (3 tenants, shares 4:2:1, deadline "
        "8x the closed-loop prefill completion interval; load sweep "
        "across prefill capacity)");
    slo.write_csv("serving_slo");

    // Phase 9: chunked prefill — a mixed trace (length-skewed prompts
    // with a decode-phase fraction already past their prefill) served
    // through the varlen bucket grid under a chunk-size sweep. With
    // chunking off, every waiting decode request queues behind whole
    // long prompts; splitting prefill into chunks interleaves decode
    // iterations between them, so the latency tail (dominated by the
    // decode-blocked requests) drops while goodput holds — the
    // head-of-line win. The last row re-serves the best chunk size
    // with KV modeling plus KV-locality decode claiming, surfacing
    // the locality skip counter next to the same columns.
    struct ChunkPoint {
        const char* label;
        int chunk;
        bool kv;
    };
    const std::vector<ChunkPoint> ch_points = {
        {"off", 0, false},
        {"seq/16", seq / 16, false},
        {"seq/4", seq / 4, false},
        {"seq/16 kv+loc", seq / 16, true},
    };
    struct ChunkCell {
        int mode;
        int point;
        runtime::ServingReport rep;
    };
    std::vector<ChunkCell> chcells;
    for (size_t m = 0; m < modes.size(); ++m) {
        for (size_t p = 0; p < ch_points.size(); ++p) {
            chcells.push_back(
                {static_cast<int>(m), static_cast<int>(p), {}});
        }
    }
    util::ThreadPool::run(
        pool.get(), static_cast<int>(chcells.size()), [&](int c) {
            int m = chcells[c].mode;
            const ChunkPoint& pt = ch_points[chcells[c].point];
            double rate = 0.6 * closed[m].tokens_per_s / tokens;
            auto trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(requests, rate,
                                               /*seed=*/31),
                tokens, /*prefill_frac=*/0.7, /*high_frac=*/0.0,
                /*seed=*/31);
            runtime::tag_prompt_lengths(trace, seq, prompt_mean,
                                        /*seed=*/31);
            runtime::ServerOptions chopts = sopts;
            chopts.max_prefill_batch = prefill_batch;
            chopts.max_prompt_len = seq;
            chopts.prompt_buckets = varlen_buckets;
            chopts.prefill_chunk = pt.chunk;
            if (pt.kv) {
                chopts.kv_budget = usable / 2;
                chopts.kv_bytes_per_token =
                    graph::kv_bytes_per_token(model);
                chopts.kv_locality = true;
            }
            runtime::Server server(compilers[m]->machine(), chopts);
            chcells[c].rep = server.serve(
                trace,
                [&](int b, int len) {
                    return prefills[m]->program(b, len);
                },
                [&](int b) { return compilers[m]->program(b); });
        });

    util::Table ch({"design", "chunk", "p50(ms)", "p95(ms)",
                    "ttft mean(ms)", "tokens/s", "chunks",
                    "interleaves", "loc_skips", "digest"});
    for (const ChunkCell& cell : chcells) {
        ch.add(compilers[cell.mode]->mode(),
               ch_points[cell.point].label,
               runtime::ms(cell.rep.p50_latency),
               runtime::ms(cell.rep.p95_latency),
               runtime::ms(cell.rep.mean_ttft),
               cell.rep.tokens_per_s, cell.rep.prefill_chunks,
               cell.rep.chunk_decode_interleaves,
               cell.rep.kv_locality_skips, digest(cell.rep));
    }
    ch.print(
        "chunked prefill on a mixed trace at 0.6x capacity (30% "
        "decode-phase arrivals; chunk-size sweep, last row with KV + "
        "locality claiming)");
    ch.write_csv("serving_chunked");
    return 0;
}
