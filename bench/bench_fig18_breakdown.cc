/**
 * @file
 * Paper Fig. 18: latency breakdown and hardware utilization at
 * batch 32, seq 2048 across the four LLMs.
 *
 *  (a) total time split into preload-only / execute-only / overlapped,
 *      plus the interconnect-contention stall;
 *  (b) average HBM bandwidth utilization (Basic ~35% ... Ideal ~64%);
 *  (c) interconnect utilization split into preload vs inter-core
 *      shares (Elk-Full ~90%);
 *  (d) achieved TFLOPS (bandwidth-bound, Elk-Full near Ideal).
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();

    util::Table a({"model", "design", "total(ms)", "preload(ms)",
                   "execute(ms)", "overlap(ms)", "noc_stall(ms)"});
    util::Table b({"model", "design", "hbm_util"});
    util::Table c({"model", "design", "noc_util", "noc_preload",
                   "noc_intercore"});
    util::Table d({"model", "design", "TFLOPS"});

    for (const auto& model : bench::llm_models()) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        auto runs = bench::run_all_designs(graph, cfg, n_jobs);
        for (const auto& r : runs) {
            std::string design = compiler::mode_name(r.mode);
            a.add(model.name, design, runtime::ms(r.sim.total_time),
                  runtime::ms(r.sim.preload_only),
                  runtime::ms(r.sim.execute_only),
                  runtime::ms(r.sim.overlapped),
                  runtime::ms(r.sim.interconnect_stall));
            b.add(model.name, design, runtime::pct(r.sim.hbm_util));
            c.add(model.name, design, runtime::pct(r.sim.noc_util),
                  runtime::pct(r.sim.noc_util_preload),
                  runtime::pct(r.sim.noc_util_peer));
            d.add(model.name, design, r.sim.achieved_tflops);
        }
    }

    a.print("Fig. 18a: latency breakdown (b32 s2048)");
    b.print("Fig. 18b: average HBM bandwidth utilization");
    c.print("Fig. 18c: interconnect utilization (preload / inter-core)");
    d.print("Fig. 18d: achieved TFLOPS");
    a.write_csv("fig18a_breakdown");
    b.write_csv("fig18b_hbm_util");
    c.write_csv("fig18c_noc_util");
    d.write_csv("fig18d_tflops");
    return 0;
}
