/**
 * @file
 * Ablation study of Elk's design components (beyond the paper's
 * Basic/Static/Elk-Dyn/Elk-Full ladder):
 *
 *  - preload-depth window cap (the K explored by §4.2);
 *  - preload-state anchor weight (broadcast <-> scatter, §4.3);
 *  - preload order permutation on/off (§4.4);
 *  - planner cost model: analytic vs linear-tree fitted (Fig. 12).
 */
#include "bench_common.h"

#include "cost/profiler.h"
#include "elk/inductive_scheduler.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();
    auto model = graph::llama2_13b();
    auto graph = graph::build_decode_graph(model, 32, 2048);
    sim::Machine machine(cfg);
    sim::Engine engine(machine);

    // --- (a) window cap ---
    util::Table wt({"max_window", "latency(ms)", "est(ms)"});
    {
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        compiler::InductiveScheduler sched(comp.library());
        for (int w : {1, 2, 4, 8, 16, 28}) {
            compiler::ScheduleOptions opts;
            opts.max_window = w;
            auto plan = sched.schedule_in_order(opts);
            if (!plan) {
                wt.add(w, "infeasible", "-");
                continue;
            }
            auto run = engine.run(
                runtime::lower_to_sim(graph, *plan, comp.context()));
            wt.add(w, runtime::ms(run.total_time),
                   runtime::ms(plan->est_total_time));
        }
    }
    wt.print("Ablation (a): preload window cap (Llama2-13B b32 s2048)");
    wt.write_csv("ablation_window");

    // --- (b) preload anchor weight ---
    util::Table at({"overhead_weight", "latency(ms)"});
    {
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        compiler::InductiveScheduler sched(comp.library());
        for (double a : {0.0, 0.25, 1.0, 4.0, 1e9}) {
            compiler::ScheduleOptions opts;
            opts.overhead_weight = a;
            auto plan = sched.schedule_in_order(opts);
            if (!plan) {
                continue;
            }
            auto run = engine.run(
                runtime::lower_to_sim(graph, *plan, comp.context()));
            at.add(a, runtime::ms(run.total_time));
        }
    }
    at.print("Ablation (b): broadcast<->scatter anchor weight");
    at.write_csv("ablation_anchor");

    // --- (c) preload reordering ---
    util::Table rt({"model", "ELK-Dyn(ms)", "ELK-Full(ms)", "gain"});
    for (const auto& m : bench::llm_models()) {
        auto g = graph::build_decode_graph(m, 32, 2048);
        compiler::Compiler comp(g, cfg, nullptr, n_jobs);
        auto dyn =
            bench::run_design(comp, g, cfg, compiler::Mode::kElkDyn);
        auto full =
            bench::run_design(comp, g, cfg, compiler::Mode::kElkFull);
        rt.add(m.name, runtime::ms(dyn.sim.total_time),
               runtime::ms(full.sim.total_time),
               runtime::speedup(full.sim, dyn.sim));
    }
    rt.print("Ablation (c): preload order permutation (Full vs Dyn)");
    rt.write_csv("ablation_reorder");

    // --- (d) planner cost model ---
    util::Table ct({"cost_model", "latency(ms)", "compile(s)"});
    {
        compiler::CompileOptions opts;
        opts.mode = compiler::Mode::kElkDyn;

        compiler::Compiler analytic(graph, cfg);
        auto a = analytic.compile(opts);
        auto a_run = runtime::run_plan(machine, graph, a.plan,
                                       analytic.context());
        ct.add("analytic", runtime::ms(a_run.total_time),
               a.compile_seconds);

        auto fitted = cost::FittedExecCost::train(
            cfg, bench::fast_mode() ? 150 : 400);
        compiler::Compiler learned(graph, cfg, &fitted);
        auto f = learned.compile(opts);
        auto f_run = runtime::run_plan(machine, graph, f.plan,
                                       learned.context());
        ct.add("linear-tree (fitted)", runtime::ms(f_run.total_time),
               f.compile_seconds);
    }
    ct.print("Ablation (d): planner cost model");
    ct.write_csv("ablation_cost_model");
    return 0;
}
