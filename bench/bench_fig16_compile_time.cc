/**
 * @file
 * Paper Fig. 16: Elk compilation time for varied models and batch
 * sizes (2-64). The paper compiles an IPU-POD4 plan for an LLM within
 * minutes on a 32-core CPU (Python implementation); this C++
 * implementation is faster, but the shape — sub-linear growth of the
 * search space with model/batch size — must hold.
 *
 * Usage: bench_fig16_compile_time [--jobs N]
 *
 * N > 1 fans the plan-library build and the preload-order scoring out
 * over the work-stealing pool; the emitted ExecutionPlan is
 * bit-identical to --jobs 1 (pipeline_test verifies this), so wall
 * clock is the only difference. wall(s) measures hardware analysis +
 * plan library + scheduling end to end; compile(s) is the scheduling
 * portion (CompileResult::compile_seconds).
 */
#include <chrono>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    auto cfg = hw::ChipConfig::ipu_pod4();
    const int jobs = bench::jobs(argc, argv);
    std::vector<int> batches = bench::fast_mode()
                                   ? std::vector<int>{8, 32}
                                   : std::vector<int>{2, 4, 8, 16, 32, 64};

    util::Table table({"model", "batch", "jobs", "wall(s)", "compile(s)",
                       "orders_tested", "N", "P", "K"});

    for (const auto& model : bench::llm_models()) {
        for (int batch : batches) {
            auto graph = graph::build_decode_graph(model, batch, 2048);
            auto t0 = std::chrono::steady_clock::now();
            compiler::Compiler comp(graph, cfg, nullptr, jobs);
            compiler::CompileOptions opts;
            opts.mode = compiler::Mode::kElkFull;
            opts.max_orders = bench::fast_mode() ? 6 : 96;
            auto result = comp.compile(opts);
            auto t1 = std::chrono::steady_clock::now();
            double wall = std::chrono::duration<double>(t1 - t0).count();
            table.add(model.name, batch, comp.jobs(), wall,
                      result.compile_seconds, result.stats.orders_tested,
                      result.stats.n_ops, result.stats.max_plans,
                      result.stats.max_fit_window);
        }
    }

    table.print("Fig. 16: Elk-Full compile time vs model/batch size");
    table.write_csv("fig16_compile_time");
    return 0;
}
