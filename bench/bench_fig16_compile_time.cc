/**
 * @file
 * Paper Fig. 16: Elk compilation time for varied models and batch
 * sizes (2-64). The paper compiles an IPU-POD4 plan for an LLM within
 * minutes on a 32-core CPU (Python implementation); this C++
 * implementation is faster, but the shape — sub-linear growth of the
 * search space with model/batch size — must hold.
 */
#include "bench_common.h"

int
main()
{
    using namespace elk;
    auto cfg = hw::ChipConfig::ipu_pod4();
    std::vector<int> batches = bench::fast_mode()
                                   ? std::vector<int>{8, 32}
                                   : std::vector<int>{2, 4, 8, 16, 32, 64};

    util::Table table({"model", "batch", "compile(s)", "orders_tested",
                       "N", "P", "K"});

    for (const auto& model : bench::llm_models()) {
        for (int batch : batches) {
            auto graph = graph::build_decode_graph(model, batch, 2048);
            compiler::Compiler comp(graph, cfg);
            compiler::CompileOptions opts;
            opts.mode = compiler::Mode::kElkFull;
            opts.max_orders = bench::fast_mode() ? 6 : 96;
            auto result = comp.compile(opts);
            table.add(model.name, batch, result.compile_seconds,
                      result.stats.orders_tested, result.stats.n_ops,
                      result.stats.max_plans,
                      result.stats.max_fit_window);
        }
    }

    table.print("Fig. 16: Elk-Full compile time vs model/batch size");
    table.write_csv("fig16_compile_time");
    return 0;
}
