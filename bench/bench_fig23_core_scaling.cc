/**
 * @file
 * Paper Fig. 23: per-token latency at varied core counts, with the
 * HBM bandwidth fixed at 2.7 GB/s per core. LLMs run on 1-4 chips
 * (1472-5888 cores); DiT-XL runs on a single chip (up to 1472 cores).
 *
 * Shape to hold: Elk-Full outperforms the others at every scale
 * (avg ~1.7x over Basic, ~1.4x over Static); DiT-XL is
 * compute-intensive, so the preload-side gap narrows but Elk-Full
 * still tracks the Ideal.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);

    util::Table table({"model", "cores", "Basic(ms)", "Static(ms)",
                       "ELK-Dyn(ms)", "ELK-Full(ms)", "Ideal(ms)"});

    // LLMs: scale the chip count (whole-chip granularity keeps the
    // per-chip fabric model intact).
    std::vector<int> chips =
        bench::fast_mode() ? std::vector<int>{2, 4}
                           : std::vector<int>{1, 2, 3, 4};
    auto models = bench::fast_mode()
                      ? std::vector<graph::ModelConfig>{graph::llama2_13b()}
                      : bench::llm_models();
    for (const auto& model : models) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        for (int n : chips) {
            auto cfg = hw::ChipConfig::ipu_pod4();
            cfg.num_chips = n;
            cfg.hbm_total_bw = 2.7e9 * cfg.total_cores();
            auto runs = bench::run_all_designs(graph, cfg, n_jobs);
            table.add(model.name, cfg.total_cores(),
                      runtime::ms(runs[0].sim.total_time),
                      runtime::ms(runs[1].sim.total_time),
                      runtime::ms(runs[2].sim.total_time),
                      runtime::ms(runs[3].sim.total_time),
                      runtime::ms(runs[4].sim.total_time));
        }
    }

    // DiT-XL on one chip with reduced core counts.
    std::vector<int> cores = bench::fast_mode()
                                 ? std::vector<int>{1472}
                                 : std::vector<int>{736, 1104, 1472};
    for (int c : cores) {
        auto cfg = hw::ChipConfig::ipu_pod4();
        cfg.num_chips = 1;
        cfg.cores_per_chip = c;
        cfg.hbm_total_bw = 2.7e9 * cfg.total_cores();
        auto graph = graph::build_dit_graph(graph::dit_xl(), 8, 256);
        auto runs = bench::run_all_designs(graph, cfg, n_jobs);
        table.add("DiT-XL", c, runtime::ms(runs[0].sim.total_time),
                  runtime::ms(runs[1].sim.total_time),
                  runtime::ms(runs[2].sim.total_time),
                  runtime::ms(runs[3].sim.total_time),
                  runtime::ms(runs[4].sim.total_time));
    }

    table.print("Fig. 23: latency vs core count (2.7 GB/s HBM per core)");
    table.write_csv("fig23_core_scaling");
    return 0;
}
