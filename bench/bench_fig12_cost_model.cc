/**
 * @file
 * Paper Fig. 12: cost-model accuracy. Random tiles of each operator
 * class are profiled on the simulated device (with measurement
 * noise), a linear-tree model is fit per class (§4.3), and held-out
 * tiles compare predicted vs measured times. A per-link transfer
 * model is validated the same way.
 *
 * Shape to hold: predictions track measurements across 3-4 orders of
 * magnitude (high R^2, low MAPE) for MatMul, reduction ops,
 * elementwise ops and inter-core transfers.
 */
#include "bench_common.h"
#include "cost/linear_tree.h"
#include "cost/profiler.h"
#include "cost/transfer_cost.h"
#include "util/stats.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    // Cost-model fitting has no parallel stage; parsing keeps the
    // figure-bench command line uniform (and typos fatal).
    (void)bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();
    const int train_n = bench::fast_mode() ? 200 : 600;
    const int test_n = bench::fast_mode() ? 80 : 250;

    util::Table table({"class", "samples", "MAPE", "R^2"});
    util::Table points({"class", "measured(us)", "predicted(us)"});

    auto fitted = cost::FittedExecCost::train(cfg, train_n, /*seed=*/11);
    struct Class {
        const char* name;
        graph::OpKind kind;
    };
    std::vector<Class> classes = {
        {"MatMul", graph::OpKind::kMatMul},
        {"BatchMatMul", graph::OpKind::kBatchMatMul},
        {"Reduce(Softmax)", graph::OpKind::kSoftmax},
        {"Reduce(LayerNorm)", graph::OpKind::kLayerNorm},
        {"Elementwise", graph::OpKind::kElementwise},
    };
    for (const auto& cls : classes) {
        auto holdout =
            cost::profile_tiles(cls.kind, test_n, cfg, /*seed=*/987);
        std::vector<double> measured, predicted;
        for (size_t i = 0; i < holdout.size(); ++i) {
            measured.push_back(holdout[i].measured);
            predicted.push_back(fitted.tile_time(holdout[i].tile, cfg));
            if (i % std::max<size_t>(1, holdout.size() / 12) == 0) {
                points.add(cls.name, measured.back() * 1e6,
                           predicted.back() * 1e6);
            }
        }
        table.add(cls.name, static_cast<int>(holdout.size()),
                  util::mape(measured, predicted),
                  util::r_squared(measured, predicted));
    }

    // Inter-core transfer model: linear tree on byte counts.
    {
        auto train = cost::profile_transfers(train_n, cfg, 5);
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        for (const auto& [bytes, t] : train) {
            x.push_back({bytes});
            y.push_back(t);
        }
        cost::LinearTreeModel model;
        model.fit(x, y);
        auto holdout = cost::profile_transfers(test_n, cfg, 12345);
        std::vector<double> measured, predicted;
        for (size_t i = 0; i < holdout.size(); ++i) {
            measured.push_back(holdout[i].second);
            predicted.push_back(model.predict({holdout[i].first}));
            if (i % std::max<size_t>(1, holdout.size() / 12) == 0) {
                points.add("Transfer", measured.back() * 1e6,
                           predicted.back() * 1e6);
            }
        }
        table.add("Inter-core Transfer",
                  static_cast<int>(holdout.size()),
                  util::mape(measured, predicted),
                  util::r_squared(measured, predicted));
    }

    table.print("Fig. 12: cost model accuracy (held-out tiles)");
    points.print("Fig. 12: sample predicted-vs-measured points");
    table.write_csv("fig12_cost_model");
    points.write_csv("fig12_cost_model_points");
    return 0;
}
