/**
 * @file
 * Paper Fig. 17: per-token serving latency of LLM decoding for the
 * five designs across 4 models x batch {16,32,64} x seq {2048,4096}
 * on 4 ICCA chips with 16 TB/s HBM.
 *
 * Shape to hold: Elk-Full ~1.9x over Basic, ~1.4x over Static, and
 * >= ~90% of the Ideal roofline, scaling with batch and sequence.
 */
#include <cstdio>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();

    std::vector<int> batches = bench::fast_mode()
                                   ? std::vector<int>{32}
                                   : std::vector<int>{16, 32, 64};
    std::vector<int> seqs = bench::fast_mode()
                                ? std::vector<int>{2048}
                                : std::vector<int>{2048, 4096};

    util::Table table({"model", "batch", "seq", "Basic(ms)", "Static(ms)",
                       "ELK-Dyn(ms)", "ELK-Full(ms)", "Ideal(ms)",
                       "Full/Basic", "Full/Static", "%ofIdeal"});
    double sum_frac = 0.0;
    double sum_vs_basic = 0.0;
    double sum_vs_static = 0.0;
    int count = 0;

    for (const auto& model : bench::llm_models()) {
        for (int seq : seqs) {
            for (int batch : batches) {
                auto graph = graph::build_decode_graph(model, batch, seq);
                auto runs = bench::run_all_designs(graph, cfg, n_jobs);
                const auto& basic = runs[0].sim;
                const auto& stat = runs[1].sim;
                const auto& full = runs[3].sim;
                const auto& ideal = runs[4].sim;
                double frac = runtime::fraction_of_ideal(full, ideal);
                sum_frac += frac;
                sum_vs_basic += runtime::speedup(full, basic);
                sum_vs_static += runtime::speedup(full, stat);
                ++count;
                table.add(model.name, batch, seq,
                          runtime::ms(basic.total_time),
                          runtime::ms(stat.total_time),
                          runtime::ms(runs[2].sim.total_time),
                          runtime::ms(full.total_time),
                          runtime::ms(ideal.total_time),
                          runtime::speedup(full, basic),
                          runtime::speedup(full, stat),
                          runtime::pct(frac));
            }
        }
    }

    table.print("Fig. 17: per-token serving latency (4 chips, 16 TB/s HBM)");
    table.write_csv("fig17_end2end");
    std::printf(
        "\nSummary: Elk-Full avg %.2fx over Basic, %.2fx over Static, "
        "%.1f%% of Ideal (paper: 1.87x, 1.37x, 94.8%%)\n",
        sum_vs_basic / count, sum_vs_static / count,
        100.0 * sum_frac / count);
    return 0;
}
