/**
 * @file
 * Paper Fig. 6: HBM bandwidth demand across time given different
 * per-core preload-space sizes (128/256/384 KB). Demand is the
 * minimum HBM bandwidth that keeps execution from stalling: the bytes
 * that must arrive during each operator's execution window divided by
 * that window.
 *
 * Shape to hold: a small preload space causes large demand spikes
 * (insufficient preload opportunity); larger spaces smooth the demand
 * curve (lower peak/stdev).
 */
#include "bench_common.h"
#include "util/stats.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();

    util::Table table({"model", "preload_space(KB)", "mean(TB/s)",
                       "p95(TB/s)", "max(TB/s)", "stdev(TB/s)"});
    util::Table series({"model", "preload_space(KB)", "time(ms)",
                        "demand(TB/s)"});

    std::vector<graph::ModelConfig> models = {
        graph::llama2_13b(), graph::gemma2_27b(), graph::opt_30b()};

    for (const auto& model : models) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        for (uint64_t kb : {128, 256, 384}) {
            compiler::CompileOptions opts;
            opts.mode = compiler::Mode::kStatic;
            opts.static_region = kb * 1024;
            auto result = comp.compile(opts);
            const auto& plan = result.plan;

            // Demand per execution window: HBM bytes of the preloads
            // issued in each slot over that operator's execution time.
            std::vector<double> window_bytes(graph.size(), 0.0);
            for (size_t r = 0; r < plan.preload_order.size(); ++r) {
                window_bytes[plan.issue_slot[r]] += static_cast<double>(
                    graph.op(plan.preload_order[r]).hbm_bytes());
            }
            std::vector<double> demand;
            double t = 0.0;
            for (int i = 0; i < graph.size(); ++i) {
                double window = plan.ops[i].est_exec_time;
                demand.push_back(window_bytes[i] / window / 1e12);
                t += window;
                if (i % std::max(1, graph.size() / 24) == 0) {
                    series.add(model.name, kb, t * 1e3, demand.back());
                }
            }
            table.add(model.name, kb, util::mean(demand),
                      util::percentile(demand, 95),
                      util::percentile(demand, 100), util::stdev(demand));
        }
    }

    table.print("Fig. 6: HBM bandwidth demand vs preload space (stats)");
    series.print("Fig. 6: demand-over-time series (downsampled)");
    table.write_csv("fig06_hbm_demand_stats");
    series.write_csv("fig06_hbm_demand_series");
    return 0;
}
