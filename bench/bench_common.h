/**
 * @file
 * Shared plumbing for the per-figure benchmark drivers: the evaluation
 * workloads (paper Table 2), design compilation/execution wrappers,
 * and environment knobs (ELK_BENCH_FAST=1 trims sweeps for CI).
 */
#ifndef ELK_BENCH_BENCH_COMMON_H
#define ELK_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "graph/model_config.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "sim/engine.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace elk::bench {

/// True when the fast (CI) sweep mode is requested.
inline bool
fast_mode()
{
    const char* env = std::getenv("ELK_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

/**
 * Compiler worker threads for the benches: the --jobs N flag, else
 * the ELK_BENCH_JOBS environment knob, else 1 (serial). 0 means all
 * hardware threads. Plans are bit-identical at any setting, so jobs
 * only changes wall-clock. The parse is strict — every figure bench
 * shares this one-flag command line, and an unknown argument is fatal
 * rather than silently ignored (a typo must not degrade a sweep to
 * its serial default).
 */
inline int
jobs(int argc = 0, char** argv = nullptr)
{
    int parsed = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                util::fatal("--jobs requires a value");
            }
            parsed = util::ThreadPool::parse_jobs_arg(argv[++i],
                                                      "--jobs");
        } else {
            util::fatal(std::string("unknown argument '") + argv[i] +
                        "'; usage: " + argv[0] + " [--jobs N]");
        }
    }
    if (parsed >= 0) {
        return parsed;
    }
    const char* env = std::getenv("ELK_BENCH_JOBS");
    return env != nullptr
               ? util::ThreadPool::parse_jobs_arg(env, "ELK_BENCH_JOBS")
               : 1;
}

/// The paper's four LLM evaluation workloads.
inline std::vector<graph::ModelConfig>
llm_models()
{
    return {graph::llama2_13b(), graph::gemma2_27b(), graph::opt_30b(),
            graph::llama2_70b()};
}

/// The five designs of §6.1 in presentation order.
inline std::vector<compiler::Mode>
all_designs()
{
    return {compiler::Mode::kBasic, compiler::Mode::kStatic,
            compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
            compiler::Mode::kIdeal};
}

/// One compiled-and-simulated design point.
struct RunResult {
    compiler::Mode mode;
    compiler::CompileResult compiled;
    sim::SimResult sim;
};

/**
 * Compiles @p mode for (@p graph, @p cfg) and runs it on the matching
 * machine (Ideal runs on the split-fabric machine per §6.1).
 */
inline RunResult
run_design(const compiler::Compiler& comp, const graph::Graph& graph,
           const hw::ChipConfig& cfg, compiler::Mode mode,
           int max_orders = 24)
{
    compiler::CompileOptions opts;
    opts.mode = mode;
    opts.max_orders = fast_mode() ? 6 : max_orders;
    RunResult r;
    r.mode = mode;
    r.compiled = comp.compile(opts);
    sim::Machine machine(cfg, mode == compiler::Mode::kIdeal);
    r.sim = runtime::run_plan(machine, graph, r.compiled.plan,
                              comp.context());
    return r;
}

/// Runs every design on one workload; returns results in design
/// order. @p n_jobs: compiler worker threads — defaults to the
/// ELK_BENCH_JOBS knob so every bench built on this helper
/// parallelizes without plumbing argv.
inline std::vector<RunResult>
run_all_designs(const graph::Graph& graph, const hw::ChipConfig& cfg,
                int n_jobs = jobs())
{
    compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
    std::vector<RunResult> out;
    for (auto mode : all_designs()) {
        out.push_back(run_design(comp, graph, cfg, mode));
    }
    return out;
}

}  // namespace elk::bench

#endif  // ELK_BENCH_BENCH_COMMON_H
