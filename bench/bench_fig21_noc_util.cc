/**
 * @file
 * Paper Fig. 21: interconnect utilization at varied HBM bandwidths
 * for both topologies.
 *
 * Shape to hold: mesh chips run at higher interconnect utilization
 * than all-to-all for the same workload (multi-hop delivery), and
 * Elk-Full is the design that utilizes the fabric most fully.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    std::vector<double> hbm_tbs =
        bench::fast_mode() ? std::vector<double>{8, 16}
                           : std::vector<double>{4, 8, 12, 16};
    auto models = bench::fast_mode()
                      ? std::vector<graph::ModelConfig>{graph::llama2_13b()}
                      : bench::llm_models();

    util::Table table({"topology", "model", "hbm(TB/s)", "Basic",
                       "Static", "ELK-Dyn", "ELK-Full"});

    for (auto topo : {hw::TopologyKind::kAllToAll,
                      hw::TopologyKind::kMesh2D}) {
        for (const auto& model : models) {
            auto graph = graph::build_decode_graph(model, 32, 2048);
            for (double tb : hbm_tbs) {
                auto cfg = hw::ChipConfig::ipu_pod4();
                cfg.topology = topo;
                cfg.hbm_total_bw = tb * 1e12;
                compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
                std::vector<std::string> cells;
                table.add_row({hw::topology_name(topo), model.name,
                               util::Table::format_cell(tb),
                               runtime::pct(bench::run_design(
                                                comp, graph, cfg,
                                                compiler::Mode::kBasic)
                                                .sim.noc_util),
                               runtime::pct(bench::run_design(
                                                comp, graph, cfg,
                                                compiler::Mode::kStatic)
                                                .sim.noc_util),
                               runtime::pct(bench::run_design(
                                                comp, graph, cfg,
                                                compiler::Mode::kElkDyn)
                                                .sim.noc_util),
                               runtime::pct(bench::run_design(
                                                comp, graph, cfg,
                                                compiler::Mode::kElkFull)
                                                .sim.noc_util)});
            }
        }
    }

    table.print("Fig. 21: interconnect utilization vs HBM bandwidth");
    table.write_csv("fig21_noc_util");
    return 0;
}
