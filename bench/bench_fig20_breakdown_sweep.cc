/**
 * @file
 * Paper Fig. 20: latency breakdown of Llama2-13B decoding at varied
 * HBM bandwidths on the all-to-all interconnect.
 *
 * Shape to hold: for Basic/Static/Elk-Dyn, interconnect contention
 * grows with HBM bandwidth (faster HBM pushes more delivery traffic
 * through the shared fabric); Elk-Full's reordering suppresses it.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    std::vector<double> hbm_tbs =
        bench::fast_mode() ? std::vector<double>{8, 16}
                           : std::vector<double>{6, 8, 10, 12, 14, 16};

    util::Table table({"design", "hbm(TB/s)", "total(ms)", "preload(ms)",
                       "execute(ms)", "overlap(ms)", "noc_stall(ms)"});

    auto model = graph::llama2_13b();
    auto graph = graph::build_decode_graph(model, 32, 2048);
    for (double tb : hbm_tbs) {
        auto cfg = hw::ChipConfig::ipu_pod4();
        cfg.hbm_total_bw = tb * 1e12;
        auto runs = bench::run_all_designs(graph, cfg, n_jobs);
        for (const auto& r : runs) {
            table.add(compiler::mode_name(r.mode), tb,
                      runtime::ms(r.sim.total_time),
                      runtime::ms(r.sim.preload_only),
                      runtime::ms(r.sim.execute_only),
                      runtime::ms(r.sim.overlapped),
                      runtime::ms(r.sim.interconnect_stall));
        }
    }

    table.print(
        "Fig. 20: Llama2-13B latency breakdown vs HBM bandwidth "
        "(all-to-all)");
    table.write_csv("fig20_breakdown_sweep");
    return 0;
}
