/**
 * @file
 * Paper Fig. 22: Llama2-70B latency at varied interconnect bandwidths
 * under different HBM bandwidths, for both topologies.
 *
 * Shape to hold: with low HBM bandwidth, scaling the interconnect
 * beyond a point gives nothing (HBM-bound); with high HBM bandwidth,
 * latency scales with interconnect bandwidth, and the mesh is more
 * sensitive to it. Interconnect and HBM bandwidth must scale together.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    // Interconnect scale factors relative to the baseline fabric
    // (baseline all-to-all aggregate is ~32 TB/s over 4 chips, the
    // paper sweeps 24-48 TB/s total).
    std::vector<double> noc_scale =
        bench::fast_mode() ? std::vector<double>{0.75, 1.5}
                           : std::vector<double>{0.75, 1.0, 1.25, 1.5};
    std::vector<double> hbm_tbs =
        bench::fast_mode() ? std::vector<double>{8, 14}
                           : std::vector<double>{8, 10, 12, 14};

    util::Table table({"topology", "hbm(TB/s)", "noc_total(TB/s)",
                       "Basic(ms)", "Static(ms)", "ELK-Dyn(ms)",
                       "ELK-Full(ms)", "Ideal(ms)"});

    auto graph = graph::build_decode_graph(graph::llama2_70b(), 32, 2048);
    for (auto topo : {hw::TopologyKind::kAllToAll,
                      hw::TopologyKind::kMesh2D}) {
        for (double tb : hbm_tbs) {
            for (double scale : noc_scale) {
                auto cfg = hw::ChipConfig::ipu_pod4();
                cfg.topology = topo;
                cfg.hbm_total_bw = tb * 1e12;
                cfg.inter_core_link_bw *= scale;
                cfg.mesh_link_bw *= scale;
                double noc_total =
                    cfg.noc_aggregate_bw() * cfg.num_chips / 1e12;
                auto runs = bench::run_all_designs(graph, cfg, n_jobs);
                table.add(hw::topology_name(topo), tb, noc_total,
                          runtime::ms(runs[0].sim.total_time),
                          runtime::ms(runs[1].sim.total_time),
                          runtime::ms(runs[2].sim.total_time),
                          runtime::ms(runs[3].sim.total_time),
                          runtime::ms(runs[4].sim.total_time));
            }
        }
    }

    table.print("Fig. 22: Llama2-70B latency vs interconnect bandwidth");
    table.write_csv("fig22_noc_sweep");
    return 0;
}
