/**
 * @file
 * Paper Fig. 8: total per-core interconnect bandwidth demand —
 * inter-core exchange over the execution window plus HBM-to-core
 * delivery over the (physical) preload window — under MinPreload vs
 * MaxPreload.
 *
 * Setup matches Fig. 7 (Static execution space, 256 KB preload
 * region). The preload window is the operator's actual preload
 * duration: max of the DRAM roofline and the fabric delivery time, so
 * broadcast replication stretches the window rather than producing
 * impossible per-core rates. Shape to hold: MinPreload concentrates
 * all sharing traffic in execution windows (drastic fluctuation);
 * MaxPreload spreads traffic across preload and execution windows,
 * reducing the fluctuation of the total-demand series.
 */
#include <algorithm>

#include "bench_common.h"
#include "cost/hbm_cost.h"
#include "util/stats.h"

namespace {

using namespace elk;

const plan::ExecPlan&
static_exec_plan(const compiler::PlanLibrary& lib, int op,
                 uint64_t exec_budget, int* idx)
{
    const auto& front = lib.exec_plans(op);
    *idx = static_cast<int>(front.size()) - 1;
    for (int e = 0; e < static_cast<int>(front.size()); ++e) {
        if (front[e].exec_space <= exec_budget) {
            *idx = e;
            break;
        }
    }
    return front[*idx];
}

const plan::PreloadPlan&
policy_preload(const compiler::PlanLibrary& lib, int op, int exec_idx,
               bool max_preload, uint64_t region)
{
    const auto& front = lib.preload_plans(op, exec_idx);
    if (!max_preload) {
        return front.back();
    }
    for (const auto& p : front) {
        if (p.preload_space <= region) {
            return p;
        }
    }
    return front.back();
}

}  // namespace

int
main(int argc, char** argv)
{
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();
    const uint64_t region = 256ull * 1024;
    const uint64_t exec_budget = cfg.usable_sram_per_core() - region;

    util::Table table({"model", "policy", "mean(GB/s)", "max(GB/s)",
                       "stdev(GB/s)", "fluctuation(stdev/mean)"});

    std::vector<graph::ModelConfig> models = {
        graph::llama2_13b(), graph::gemma2_27b(), graph::opt_30b()};

    for (const auto& model : models) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        sim::Machine machine(cfg);
        for (bool max_preload : {false, true}) {
            // Two interleaved window series: each operator contributes
            // an execution window carrying its inter-core exchange and
            // a preload window carrying its fabric delivery.
            std::vector<double> demand;
            for (const auto& op : graph.ops()) {
                int exec_idx = 0;
                const auto& exec = static_exec_plan(
                    comp.library(), op.id, exec_budget, &exec_idx);
                const auto& pre =
                    policy_preload(comp.library(), op.id, exec_idx,
                                   max_preload, region);
                double cores = static_cast<double>(
                    std::max<long>(1, exec.cores_used()));

                // Inter-core demand over the pure compute window
                // (paper: inter-core volume / per-core exec time).
                double inter_bytes = exec.fetch_bytes +
                                     exec.reduce_bytes +
                                     pre.distribute_bytes;
                demand.push_back(inter_bytes / exec.compute_time / 1e9);

                // Delivery demand over the HBM load window (paper:
                // HBM-to-core volume / HBM load time). Broadcast
                // replication stretches the load window through the
                // controllers' injection links, so the window is the
                // max of the DRAM roofline and the fabric delivery.
                if (op.hbm_bytes() > 0) {
                    double per_core_recv = pre.noc_delivery_bytes / cores;
                    double window = std::max(
                        {cost::hbm_load_time(
                             static_cast<double>(op.hbm_bytes()), cfg),
                         pre.noc_delivery_bytes /
                             machine.delivery_capacity(),
                         // a core's inbound link caps its receive rate
                         per_core_recv / cfg.inter_core_link_bw});
                    demand.push_back(per_core_recv / window / 1e9);
                }
            }
            table.add(model.name,
                      max_preload ? "MaxPreload" : "MinPreload",
                      util::mean(demand), util::percentile(demand, 100),
                      util::stdev(demand),
                      util::stdev(demand) / util::mean(demand));
        }
    }

    table.print(
        "Fig. 8: total per-core interconnect demand (exchange + HBM "
        "delivery windows)");
    table.write_csv("fig08_total_noc_demand");
    return 0;
}
