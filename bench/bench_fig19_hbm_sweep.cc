/**
 * @file
 * Paper Fig. 19: per-token latency at varied HBM bandwidths (4-16
 * TB/s) for both all-to-all and 2D-mesh interconnects.
 *
 * Shape to hold: all designs are HBM-bound at low bandwidth; returns
 * diminish as the interconnect/execution become the bottleneck; the
 * mesh suffers more interconnect contention, so Elk-Full matches the
 * Ideal less closely there, especially on non-GQA models.
 */
#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    std::vector<double> hbm_tbs = bench::fast_mode()
                                      ? std::vector<double>{8, 16}
                                      : std::vector<double>{4, 6, 8, 10,
                                                            12, 14, 16};
    auto models = bench::fast_mode()
                      ? std::vector<graph::ModelConfig>{graph::llama2_13b()}
                      : bench::llm_models();

    util::Table table({"topology", "model", "hbm(TB/s)", "Basic(ms)",
                       "Static(ms)", "ELK-Dyn(ms)", "ELK-Full(ms)",
                       "Ideal(ms)"});

    for (auto topo : {hw::TopologyKind::kAllToAll,
                      hw::TopologyKind::kMesh2D}) {
        for (const auto& model : models) {
            auto graph = graph::build_decode_graph(model, 32, 2048);
            for (double tb : hbm_tbs) {
                auto cfg = hw::ChipConfig::ipu_pod4();
                cfg.topology = topo;
                cfg.hbm_total_bw = tb * 1e12;
                auto runs = bench::run_all_designs(graph, cfg, n_jobs);
                table.add(hw::topology_name(topo), model.name, tb,
                          runtime::ms(runs[0].sim.total_time),
                          runtime::ms(runs[1].sim.total_time),
                          runtime::ms(runs[2].sim.total_time),
                          runtime::ms(runs[3].sim.total_time),
                          runtime::ms(runs[4].sim.total_time));
            }
        }
    }

    table.print("Fig. 19: per-token latency vs HBM bandwidth");
    table.write_csv("fig19_hbm_sweep");
    return 0;
}
