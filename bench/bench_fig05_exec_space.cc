/**
 * @file
 * Paper Fig. 5: execution times of representative operators under
 * different per-core execution-space budgets. Each row is one plan on
 * the operator's (space, time) Pareto front.
 *
 * Shape to hold: faster execution plans require more per-core
 * execution space; operators differ widely in their memory-time
 * curves, motivating per-operator space allocation.
 */
#include <map>

#include "bench_common.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    const int n_jobs = bench::jobs(argc, argv);
    auto cfg = hw::ChipConfig::ipu_pod4();

    util::Table table({"model", "operator", "plan", "exec_space(KB)",
                       "exec_time(us)"});

    std::vector<graph::ModelConfig> models = {
        graph::llama2_13b(), graph::gemma2_27b(), graph::opt_30b()};
    // Representative operators of Fig. 5.
    std::vector<std::string> reps = {"attn_qkv", "attn_score",
                                     "attn_norm", "ffn_down"};

    for (const auto& model : models) {
        auto graph = graph::build_decode_graph(model, 32, 2048);
        compiler::Compiler comp(graph, cfg, nullptr, n_jobs);
        std::map<std::string, bool> done;
        for (const auto& op : graph.ops()) {
            bool wanted = false;
            for (const auto& rep : reps) {
                if (op.name == rep) {
                    wanted = true;
                }
            }
            if (!wanted || done[op.name]) {
                continue;
            }
            done[op.name] = true;
            for (const auto& plan : comp.library().exec_plans(op.id)) {
                table.add(model.name, op.name, plan.to_string(),
                          static_cast<double>(plan.exec_space) / 1024.0,
                          util::to_us(plan.exec_time));
            }
        }
    }

    table.print("Fig. 5: operator execution time vs execution space");
    table.write_csv("fig05_exec_space");
    return 0;
}
