/**
 * @file
 * bench_perf — the simulator raw-speed harness (not a paper figure).
 *
 * Where bench_serving reports what the *simulated* system does, this
 * harness reports how fast the *simulator itself* runs those
 * workloads, so the trajectory can be tracked across PRs
 * (`BENCH_perf.json`, diffed by tools/perf_report.py). Three serve
 * phases time the real serving workloads end to end:
 *
 *   serve_modes  — closed-loop decode serving of the quickstart model
 *                  across all five design modes (the PR 2 loop);
 *   serve_varlen — the length-skewed geometric prompt trace through
 *                  the (batch, prompt-length) prefill bucket grid;
 *   serve_kv     — the same trace under a 1/8-SRAM per-core KV budget
 *                  (spills, refetch stalls, deferred admissions: the
 *                  KV-residency bookkeeping on its hottest path);
 *   serve_prefix — a conversational session trace (multi-turn, Zipf-
 *                  shared prefixes, bursty arrivals) with prefix-cache
 *                  KV sharing on under the same budget (refcounted
 *                  shared segments, longest-match, copy-on-extend);
 *   serve_slo    — the length-skewed trace tagged with 3 tenants and
 *                  per-request deadlines, served under EDF + 4:2:1
 *                  fairness shares (the SLO scheduler's sorted-queue
 *                  and deficit bookkeeping on its hottest path);
 *   serve_cluster— the same session trace routed across 4 chip
 *                  replicas (round-robin, KV migration over a ring
 *                  interconnect): the cluster router plus four full
 *                  replica serves per run;
 *
 * and one micro phase isolates the engine sections those serves are
 * built from:
 *
 *   engine_step   — begin/step/finish of a compiled decode program on
 *                   one resident EngineState (steps/s);
 *   kv_pool       — kv_alloc/grow/pin/unpin/fetch/free churn against
 *                   a tight KV budget (pool ops/s);
 *   fluid_network — add_flow + progressive-filling drain of mixed
 *                   preload/peer flow groups (flows/s).
 *
 * Every cell runs --warmup untimed runs (which also populate the plan
 * caches, so compile time never pollutes a serving measurement) and
 * --repeat timed runs; the JSON records every repeat's wall seconds
 * and the headline rate uses the minimum (the least-perturbed run).
 * Timings vary run to run, but the simulated results must not: each
 * cell's report digest is asserted identical across warmup and every
 * repeat, recorded in the JSON, and `tools/perf_report.py --digests`
 * extracts them in a stable order so CI can diff --jobs 1 against
 * --jobs N — and one commit against another — conclusively.
 *
 * Flags (strict; an unknown argument is fatal): --jobs N, --warmup N,
 * --repeat N, --json PATH. ELK_BENCH_FAST=1 trims the grid for CI.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/cluster.h"
#include "runtime/server.h"
#include "util/bits.h"
#include "util/parse.h"

namespace {

using namespace elk;
using Clock = std::chrono::steady_clock;

/// FNV-1a hex digest of a report's exact bit serialization.
std::string
digest_report(const runtime::ServingReport& rep)
{
    std::string bits = rep.serialize_bits();
    util::Fnv1a h;
    h.mix(bits.data(), bits.size());
    return h.hex();
}

/// One measured cell of the harness grid.
struct PerfCell {
    std::string phase;          ///< phase name ("serve_kv", ...).
    std::string name;           ///< design mode or micro section.
    double work = 0.0;          ///< work units one run performs.
    const char* unit = "req/s"; ///< rate unit (work units per second).
    int iterations = 0;         ///< engine iterations per run (serves).
    int64_t tokens = 0;         ///< decode tokens per run (serves).
    std::string digest;         ///< simulated-result digest (FNV-1a).
    std::vector<double> wall_s; ///< one entry per timed repeat.

    double
    min_wall() const
    {
        double best = wall_s.empty() ? 0.0 : wall_s[0];
        for (double w : wall_s) {
            best = std::min(best, w);
        }
        return best;
    }

    double
    rate() const
    {
        double w = min_wall();
        return w > 0.0 ? work / w : 0.0;
    }
};

/**
 * Times @p run (which returns a result digest) with @p warmup untimed
 * and @p repeat timed executions, filling @p cell. Dies if any
 * execution's digest differs from the first — a perf harness that
 * changed the simulated answer is measuring the wrong thing.
 */
template <typename Fn>
void
time_cell(PerfCell& cell, int warmup, int repeat, Fn&& run)
{
    for (int i = 0; i < warmup; ++i) {
        std::string d = run();
        if (cell.digest.empty()) {
            cell.digest = d;
        }
        util::check(d == cell.digest,
                    "bench_perf: digest drift across warmup runs");
    }
    cell.wall_s.reserve(repeat);
    for (int i = 0; i < repeat; ++i) {
        auto t0 = Clock::now();
        std::string d = run();
        auto t1 = Clock::now();
        if (cell.digest.empty()) {
            cell.digest = d;
        }
        util::check(d == cell.digest,
                    "bench_perf: digest drift across timed repeats");
        cell.wall_s.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }
}

/// Minimal JSON string escape (labels here are plain ASCII anyway).
std::string
json_str(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    out += '"';
    return out;
}

std::string
json_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
write_json(const std::string& path, const std::vector<PerfCell>& cells,
           int jobs, int warmup, int repeat, bool fast)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    util::check(f != nullptr,
                "bench_perf: cannot open --json path for writing");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"elk-bench-perf/1\",\n");
    std::fprintf(f, "  \"fast\": %s,\n", fast ? "true" : "false");
    std::fprintf(f, "  \"jobs\": %d,\n", jobs);
    std::fprintf(f, "  \"warmup\": %d,\n", warmup);
    std::fprintf(f, "  \"repeat\": %d,\n", repeat);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
        const PerfCell& c = cells[i];
        std::fprintf(f, "    {\"phase\": %s, \"name\": %s, ",
                     json_str(c.phase).c_str(),
                     json_str(c.name).c_str());
        std::fprintf(f, "\"work\": %s, \"unit\": %s, ",
                     json_double(c.work).c_str(),
                     json_str(c.unit).c_str());
        std::fprintf(f, "\"iterations\": %d, \"tokens\": %" PRId64
                        ", \"digest\": %s, ",
                     c.iterations, c.tokens,
                     json_str(c.digest).c_str());
        std::fprintf(f, "\"wall_s\": [");
        for (size_t r = 0; r < c.wall_s.size(); ++r) {
            std::fprintf(f, "%s%s", r == 0 ? "" : ", ",
                         json_double(c.wall_s[r]).c_str());
        }
        std::fprintf(f, "], \"wall_min_s\": %s, \"rate\": %s}%s\n",
                     json_double(c.min_wall()).c_str(),
                     json_double(c.rate()).c_str(),
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%d cells)\n", path.c_str(),
                static_cast<int>(cells.size()));
}

}  // namespace

int
main(int argc, char** argv)
{
    int jobs = -1;
    int warmup = 1;
    int repeat = 3;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) {
            if (i + 1 >= argc) {
                util::fatal(std::string(flag) + " requires a value");
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = util::ThreadPool::parse_jobs_arg(need("--jobs"),
                                                    "--jobs");
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            warmup = util::parse_int_arg(need("--warmup"), "--warmup",
                                         0, 1000);
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            repeat = util::parse_int_arg(need("--repeat"), "--repeat",
                                         1, 1000);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_path = need("--json");
        } else {
            util::fatal(std::string("unknown argument '") + argv[i] +
                        "'; usage: " + argv[0] +
                        " [--jobs N] [--warmup N] [--repeat N]"
                        " [--json PATH]");
        }
    }
    if (jobs < 0) {
        jobs = bench::jobs();  // the ELK_BENCH_JOBS fallback
    }

    const bool fast = bench::fast_mode();
    const int requests = fast ? 24 : 96;
    const int tokens = 4;
    const int batch = fast ? 8 : 16;
    const int seq = fast ? 512 : 1024;
    const int prefill_batch = fast ? 2 : 4;
    const double prompt_mean = seq / 8.0;
    const std::vector<int> prompt_buckets = {seq / 8, seq / 2, seq};

    graph::ModelConfig model = graph::llama2_13b();
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    auto modes = bench::all_designs();

    int pool_threads = util::ThreadPool::resolve_jobs(jobs);
    std::unique_ptr<util::ThreadPool> pool;
    if (pool_threads > 1) {
        pool = std::make_unique<util::ThreadPool>(pool_threads);
    }

    compiler::PlanCache cache;
    std::vector<std::unique_ptr<compiler::ServingCompiler>> decodes;
    std::vector<std::unique_ptr<compiler::ServingCompiler>> prefills;
    for (auto mode : modes) {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = fast ? 6 : 12;
        decodes.push_back(std::make_unique<compiler::ServingCompiler>(
            model, seq, chip, copts, &cache, jobs));
        prefills.push_back(std::make_unique<compiler::ServingCompiler>(
            model, seq, chip, copts, &cache, jobs,
            compiler::ServingCompiler::Options::prefill()));
    }

    runtime::ServerOptions base;
    base.max_batch = batch;
    base.tokens_per_request = tokens;

    // The length-skewed prefill trace the varlen and KV phases serve
    // (same construction as bench_serving phases 4/5). The arrival
    // rate is fixed, not capacity-derived, so the harness times one
    // stable workload per phase across commits.
    auto skewed_trace = [&](uint64_t seed) {
        auto trace = runtime::make_request_trace(
            runtime::ArrivalTrace::poisson(requests, /*rate_per_s=*/400.0,
                                           seed),
            tokens, /*prefill_frac=*/1.0, /*high_frac=*/0.0, seed);
        runtime::tag_prompt_lengths(trace, seq, prompt_mean, seed);
        return trace;
    };
    // The conversational trace the prefix phase serves: multi-turn
    // sessions with think-time, 8 Zipf-shared prefixes, bursty
    // arrivals (same construction as bench_serving phase 6, at a
    // fixed session rate).
    auto session_trace = [&](uint64_t seed) {
        runtime::SessionTraceOptions st;
        st.sessions = requests / 2;
        st.rate_per_s = 200.0;
        st.burst_factor = 2.0;
        st.mean_turns = 3.0;
        st.think_time_s = 0.02;
        st.decode_tokens = tokens;
        st.max_prompt_len = seq;
        st.prompt_mean_len = prompt_mean;
        st.prefix_population = 8;
        st.prefix_zipf_s = 1.0;
        st.prefix_mean_len = prompt_mean;
        return runtime::make_session_trace(st, seed);
    };

    std::vector<PerfCell> cells;

    // --- serve phases: one cell per (phase, design mode) -----------
    struct ServeSpec {
        const char* phase;
        uint64_t kv_budget;  ///< 0 = varlen (no KV modeling).
        bool closed_decode;  ///< serve_modes: plain closed-loop loop.
        bool prefix;         ///< serve_prefix: session trace, sharing.
        bool slo;            ///< serve_slo: tenant/deadline tagging.
        int chunk;           ///< serve_chunked: prefill chunk size.
    };
    const uint64_t kv_budget = chip.usable_sram_per_core() / 8;
    const std::vector<ServeSpec> specs = {
        {"serve_modes", 0, true, false, false, 0},
        {"serve_varlen", 0, false, false, false, 0},
        {"serve_kv", kv_budget, false, false, false, 0},
        {"serve_prefix", kv_budget, false, true, false, 0},
        {"serve_slo", 0, false, false, true, 0},
        {"serve_chunked", 0, false, false, false, seq / 16},
    };
    struct ServeCellRef {
        int spec;
        int mode;
    };
    std::vector<ServeCellRef> refs;
    for (size_t s = 0; s < specs.size(); ++s) {
        for (size_t m = 0; m < modes.size(); ++m) {
            refs.push_back({static_cast<int>(s), static_cast<int>(m)});
        }
    }
    std::vector<PerfCell> serve_cells(refs.size());
    util::ThreadPool::run(
        pool.get(), static_cast<int>(refs.size()), [&](int i) {
            const ServeSpec& spec = specs[refs[i].spec];
            const int m = refs[i].mode;
            PerfCell& cell = serve_cells[i];
            cell.phase = spec.phase;
            cell.name = decodes[m]->mode();
            cell.work = requests;
            cell.unit = "req/s";
            time_cell(cell, warmup, repeat, [&] {
                runtime::ServingReport rep;
                if (spec.closed_decode) {
                    runtime::Server server(decodes[m]->machine(), base);
                    rep = server.serve(
                        runtime::ArrivalTrace::closed_loop(requests),
                        [&](int b) { return decodes[m]->program(b); });
                } else {
                    runtime::ServerOptions opts = base;
                    opts.max_prefill_batch = prefill_batch;
                    opts.max_prompt_len = seq;
                    opts.prompt_buckets = prompt_buckets;
                    opts.kv_budget = spec.kv_budget;
                    if (spec.kv_budget > 0) {
                        opts.kv_bytes_per_token =
                            graph::kv_bytes_per_token(model);
                    }
                    opts.prefix_sharing = spec.prefix;
                    opts.prefill_chunk = spec.chunk;
                    auto trace = spec.prefix
                                     ? session_trace(/*seed=*/23)
                                     : skewed_trace(/*seed=*/19);
                    if (spec.slo) {
                        opts.slo = true;
                        opts.tenants = 3;
                        opts.tenant_shares = {4.0, 2.0, 1.0};
                        runtime::tag_tenants(trace, /*tenants=*/3,
                                             /*seed=*/29);
                        // A fixed 50 ms budget (the rate is fixed
                        // too): misses are expected and fine — the
                        // harness times the scheduler, not the SLO.
                        runtime::tag_deadlines(trace, /*slo_s=*/0.05);
                    }
                    cell.work = static_cast<double>(trace.size());
                    runtime::Server server(decodes[m]->machine(), opts);
                    rep = server.serve(
                        trace,
                        [&](int b, int len) {
                            return prefills[m]->program(b, len);
                        },
                        [&](int b) { return decodes[m]->program(b); });
                }
                cell.iterations = rep.iterations;
                cell.tokens = rep.tokens;
                return digest_report(rep);
            });
        });
    cells.insert(cells.end(), serve_cells.begin(), serve_cells.end());

    // --- serve_cluster: the session trace routed across 4 replicas
    // (round-robin, KV migration over a ring interconnect) — times
    // the cluster router plus four full replica serves per run.
    std::vector<PerfCell> cluster_cells(modes.size());
    util::ThreadPool::run(
        pool.get(), static_cast<int>(modes.size()), [&](int m) {
            PerfCell& cell = cluster_cells[m];
            cell.phase = "serve_cluster";
            cell.name = decodes[m]->mode();
            cell.unit = "req/s";
            runtime::ClusterOptions clopts;
            clopts.replicas = 4;
            clopts.router = runtime::RouterPolicy::kRoundRobin;
            clopts.migrate_kv = true;
            clopts.server = base;
            clopts.server.max_prefill_batch = prefill_batch;
            clopts.server.max_prompt_len = seq;
            clopts.server.prompt_buckets = prompt_buckets;
            clopts.server.kv_budget = kv_budget;
            clopts.server.kv_bytes_per_token =
                graph::kv_bytes_per_token(model);
            clopts.server.prefix_sharing = true;
            auto trace = session_trace(/*seed=*/23);
            cell.work = static_cast<double>(trace.size());
            runtime::Cluster cluster(decodes[m]->machine(), clopts);
            time_cell(cell, warmup, repeat, [&] {
                runtime::ClusterReport rep = cluster.serve(
                    trace,
                    [&](int b, int len) {
                        return prefills[m]->program(b, len);
                    },
                    [&](int b) { return decodes[m]->program(b); });
                int iters = 0;
                for (const auto& r : rep.replica_reports) {
                    iters += r.iterations;
                }
                cell.iterations = iters;
                cell.tokens = rep.tokens;
                std::string bits = rep.serialize_bits();
                util::Fnv1a h;
                h.mix(bits.data(), bits.size());
                return h.hex();
            });
        });
    cells.insert(cells.end(), cluster_cells.begin(),
                 cluster_cells.end());

    // --- engine micro sections -------------------------------------
    // Sized in work units, not wall-clock, so the JSON trajectory is
    // comparable across machines of different speeds.
    const int step_runs = fast ? 20 : 50;
    const int kv_ops = fast ? 20000 : 100000;
    const int flow_groups = fast ? 2000 : 8000;

    {
        PerfCell cell;
        cell.phase = "engine_micro";
        cell.name = "engine_step";
        cell.unit = "steps/s";
        auto program = decodes.back()->program(batch);  // ideal mode
        const sim::Machine& machine = decodes.back()->machine();
        time_cell(cell, warmup, repeat, [&] {
            sim::EngineState::Options opts;
            opts.residency_budget =
                machine.config().usable_sram_per_core() / 2;
            sim::EngineState state(machine, opts);
            int64_t steps = 0;
            util::Fnv1a h;
            for (int run = 0; run < step_runs; ++run) {
                state.begin(*program);
                while (state.step()) {
                    ++steps;
                }
                sim::SimResult r = state.finish();
                h.mix_value(r.total_time);
                h.mix_value(r.hbm_util);
            }
            h.mix_value(steps);
            h.mix_value(state.resident_hits());
            cell.work = static_cast<double>(steps);
            return h.hex();
        });
        cells.push_back(cell);
    }

    {
        PerfCell cell;
        cell.phase = "engine_micro";
        cell.name = "kv_pool";
        cell.unit = "ops/s";
        const sim::Machine& machine = decodes.front()->machine();
        time_cell(cell, warmup, repeat, [&] {
            sim::EngineState::Options opts;
            opts.kv_budget = 256 * 1024;
            sim::EngineState state(machine, opts);
            const int window = 64;  // live segments at steady state
            int64_t ops = 0;
            for (int i = 0; i < kv_ops; ++i) {
                const uint64_t bytes = (i % 7 + 1) * 2048;
                if (state.kv_alloc(i, bytes)) {
                    state.kv_pin(i);
                    state.kv_unpin(i);
                    ops += 2;
                }
                state.kv_grow(i, 2048);
                ops += 2;
                if (i >= window) {
                    const int victim = i - window;
                    state.kv_fetch(victim);
                    state.kv_free(victim);
                    ops += 2;
                }
            }
            util::Fnv1a h;
            h.mix_value(state.kv_bytes());
            h.mix_value(state.kv_bytes_peak());
            h.mix_value(state.kv_evictions());
            h.mix_value(state.kv_segments());
            cell.work = static_cast<double>(ops);
            return h.hex();
        });
        cells.push_back(cell);
    }

    {
        PerfCell cell;
        cell.phase = "engine_micro";
        cell.name = "fluid_network";
        cell.unit = "flows/s";
        const sim::Machine& machine = decodes.front()->machine();
        time_cell(cell, warmup, repeat, [&] {
            int64_t flows = 0;
            double sum = 0.0;
            // Groups of contending preload + peer flows, drained to
            // completion; a fresh network per group bounds the flow
            // table like one program's lifetime does.
            for (int g = 0; g < flow_groups; ++g) {
                sim::FluidNetwork net(machine.capacities());
                const double mb = 1024.0 * 1024.0;
                net.add_flow(
                    (g % 13 + 1) * mb,
                    machine.preload_weights((g % 13 + 1) * mb,
                                            (g % 3 + 1) * mb),
                    sim::FlowTag::kHbmPreload);
                net.add_flow((g % 5 + 1) * mb, machine.peer_weights(),
                             sim::FlowTag::kDistribute);
                net.add_flow((g % 9 + 1) * mb, machine.peer_weights(),
                             sim::FlowTag::kExecFetch);
                flows += 3;
                while (net.num_active() > 0) {
                    double dt = net.time_to_next_completion();
                    sum += dt * net.resource_usage(
                                    sim::Resources::kHbmDram);
                    net.advance(dt);
                }
            }
            util::Fnv1a h;
            h.mix_value(sum);
            h.mix_value(flows);
            cell.work = static_cast<double>(flows);
            return h.hex();
        });
        cells.push_back(cell);
    }

    // --- report ----------------------------------------------------
    util::Table table({"phase", "cell", "rate", "unit", "wall_min(s)",
                       "iters", "digest"});
    for (const PerfCell& c : cells) {
        table.add(c.phase, c.name, c.rate(), c.unit, c.min_wall(),
                  c.iterations, c.digest);
    }
    table.print("simulator raw speed (" + model.name + ", " +
                std::to_string(requests) + " reqs, warmup " +
                std::to_string(warmup) + ", repeat " +
                std::to_string(repeat) + ")");
    table.write_csv("perf");

    if (!json_path.empty()) {
        write_json(json_path, cells, jobs, warmup, repeat, fast);
    }
    return 0;
}
