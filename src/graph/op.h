/**
 * @file
 * Operator IR consumed by the Elk compiler.
 *
 * Elk's frontend (paper §5) reduces an ONNX graph to a sequence of
 * operators with types, tensor shapes and dependency order; since the
 * scheduling problem only needs that information, this IR keeps exactly
 * it: semantic dimensions (batch, m, n, k), byte counts split by where
 * the data lives (HBM-resident parameters, HBM-resident streaming data
 * like the KV cache, on-chip activations), and FLOP counts.
 */
#ifndef ELK_GRAPH_OP_H
#define ELK_GRAPH_OP_H

#include <cstdint>
#include <string>

namespace elk::graph {

/// Operator kinds Elk schedules. Matmul-like kinds use the tensor-core
/// (AMP) pipeline; the rest use the vector pipeline.
enum class OpKind {
    kMatMul,       ///< [m,k] x [k,n]; the k x n operand is a parameter.
    kBatchMatMul,  ///< batch x ([m,k] x [k,n]); operand may stream (KV).
    kElementwise,  ///< pointwise over n elements (add, mul, activation).
    kSoftmax,      ///< row softmax over [m, n] with reduction along n.
    kLayerNorm,    ///< normalization over [m, n] rows.
    kEmbedding,    ///< table lookup; parameter-heavy, trivial compute.
};

/// Human-readable kind name.
std::string op_kind_name(OpKind kind);

/// True for kinds executed on the MatMul (tensor-core) pipeline.
bool uses_matmul_pipeline(OpKind kind);

/**
 * One schedulable operator. Operators execute in graph order (data
 * dependence makes DL model execution essentially sequential, §4.2).
 */
struct Operator {
    int id = -1;           ///< dense index within the graph.
    OpKind kind = OpKind::kElementwise;
    std::string name;
    int layer = -1;        ///< transformer layer index; -1 = outside.

    // Semantic dimensions: output is [batch, m, n]; k is contracted.
    // Elementwise-like ops use m*n as the element count with batch=1.
    long batch = 1;
    long m = 1;
    long n = 1;
    long k = 1;
    int dtype_bytes = 2;   ///< fp16 by default.

    /**
     * Sharing span of the weight/stream (W) operand along the output
     * rows: how many consecutive output rows consume the same W block.
     * 0 means "all rows" (a weight matrix reused by every row, the
     * MatMul case). Attention BatchMatMuls set heads/kv_heads * q_len
     * (GQA sharing, paper §6.2).
     */
    long w_share_rows = 0;

    /// Reusable parameters resident in HBM (weights); preloaded.
    uint64_t param_bytes = 0;
    /// Streaming HBM data with no cross-request reuse (e.g., KV cache).
    uint64_t stream_bytes = 0;
    /// Input activations produced on-chip by predecessors.
    uint64_t act_in_bytes = 0;
    /// Output activations kept on-chip for successors.
    uint64_t act_out_bytes = 0;

    /// Floating-point operations performed.
    double flops = 0.0;

    /// Bytes this operator must preload from HBM.
    uint64_t hbm_bytes() const { return param_bytes + stream_bytes; }

    /// Paper §4.4: operators whose HBM tensor volume is above the
    /// model average are eligible for preload reordering.
    bool
    hbm_heavy(uint64_t avg_hbm_bytes) const
    {
        return hbm_bytes() > avg_hbm_bytes;
    }

    /// Total on-chip working footprint if held whole (for sanity checks).
    uint64_t
    total_bytes() const
    {
        return hbm_bytes() + act_in_bytes + act_out_bytes;
    }
};

/**
 * Computes flops for a matmul-like operator (2*b*m*n*k) or a
 * vector-op estimate for the other kinds, and stores it in @p op.
 */
void finalize_flops(Operator& op);

}  // namespace elk::graph

#endif  // ELK_GRAPH_OP_H
