/**
 * @file
 * Transformer model configurations for the evaluation workloads
 * (paper Table 2): Llama2-13B, Gemma2-27B, OPT-30B, Llama2-70B and the
 * DiT-XL diffusion transformer.
 */
#ifndef ELK_GRAPH_MODEL_CONFIG_H
#define ELK_GRAPH_MODEL_CONFIG_H

#include <string>

namespace elk::graph {

/// Architectural hyperparameters of a transformer model.
struct ModelConfig {
    std::string name;
    int hidden = 0;        ///< model dimension.
    int layers = 0;        ///< number of transformer blocks.
    int heads = 0;         ///< query heads.
    int kv_heads = 0;      ///< key/value heads (GQA when < heads).
    int head_dim = 0;      ///< per-head dimension.
    int ffn = 0;           ///< FFN inner dimension.
    int vocab = 0;         ///< vocabulary size.
    bool gated_ffn = false;///< SwiGLU/GeGLU style 3-matrix FFN.
    int dtype_bytes = 2;   ///< fp16.

    /// Approximate parameter count (embedding + blocks), in elements.
    double param_count() const;

    /// Parameter bytes at the configured dtype.
    double param_bytes() const { return param_count() * dtype_bytes; }
};

/// Llama2-13B (paper Table 2).
ModelConfig llama2_13b();
/// Gemma2-27B with grouped-query attention.
ModelConfig gemma2_27b();
/// OPT-30B (ReLU FFN, no GQA).
ModelConfig opt_30b();
/// Llama2-70B with grouped-query attention.
ModelConfig llama2_70b();
/// DiT-XL/2 diffusion transformer (image tokens, compute-intensive).
ModelConfig dit_xl();

/// Returns the config by name; util::fatal on unknown names.
ModelConfig model_by_name(const std::string& name);

}  // namespace elk::graph

#endif  // ELK_GRAPH_MODEL_CONFIG_H
