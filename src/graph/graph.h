/**
 * @file
 * The model graph: an ordered operator sequence plus model metadata.
 *
 * Operators in a DL model execute in a sequential order imposed by data
 * dependence (paper §4.2); the graph is therefore a vector of operators
 * in execution order, annotated with layer boundaries so the preload
 * reordering pass can work per transformer layer (paper §4.4).
 */
#ifndef ELK_GRAPH_GRAPH_H
#define ELK_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.h"

namespace elk::graph {

/// Ordered operator sequence of one model invocation.
class Graph {
  public:
    /// Creates an empty graph for a model named @p name.
    explicit Graph(std::string name) : name_(std::move(name)) {}

    /// Appends @p op, assigning its dense id; returns the id.
    int add(Operator op);

    /// Model name (e.g., "Llama2-13B").
    const std::string& name() const { return name_; }

    /// Sequence length this graph was built at: the KV depth of a
    /// decode graph, the (bucketed) prompt length of a forward/prefill
    /// graph, the token count of a DiT graph. 0 = unknown (e.g. a
    /// graph loaded from an .egf file). Plan-cache keys carry it so
    /// prefill length buckets partition cleanly (see plan_cache.h).
    int seq() const { return seq_; }
    void set_seq(int seq) { seq_ = seq; }

    /// KV-cache bytes one token appends across the whole machine
    /// (2 x layers x kv_heads x head_dim x dtype), stamped by the
    /// decode/forward model builders next to seq(). 0 = the workload
    /// keeps no KV state (DiT, or a graph loaded from an .egf file).
    /// The serving runtime sizes per-request KV residency segments
    /// from it (see runtime::ServerOptions::kv_bytes_per_token).
    uint64_t kv_bytes_per_token() const { return kv_bytes_per_token_; }
    void set_kv_bytes_per_token(uint64_t bytes)
    {
        kv_bytes_per_token_ = bytes;
    }

    /// All operators in execution order.
    const std::vector<Operator>& ops() const { return ops_; }

    /// Operator by id.
    const Operator& op(int id) const { return ops_[id]; }

    /// Number of operators (the paper's N).
    int size() const { return static_cast<int>(ops_.size()); }

    /// Number of distinct transformer layers seen.
    int num_layers() const { return num_layers_; }

    /// Ids of the operators in @p layer, in execution order.
    std::vector<int> ops_in_layer(int layer) const;

    /// Sum of HBM bytes over all operators (weights + streams).
    uint64_t total_hbm_bytes() const;

    /// Mean HBM bytes per operator; the §4.4 HBM-heavy threshold.
    uint64_t avg_hbm_bytes() const;

    /// Sum of FLOPs over all operators.
    double total_flops() const;

    /// Ids of §4.4 HBM-heavy operators (volume above model average).
    std::vector<int> hbm_heavy_ops() const;

    /// The paper's H: max number of HBM-heavy operators in one layer.
    int hbm_heavy_per_layer() const;

  private:
    std::string name_;
    int seq_ = 0;
    uint64_t kv_bytes_per_token_ = 0;
    std::vector<Operator> ops_;
    int num_layers_ = 0;
};

}  // namespace elk::graph

#endif  // ELK_GRAPH_GRAPH_H
