/**
 * @file
 * Builders that expand a ModelConfig into the operator sequence Elk
 * compiles. This substitutes the paper's ONNX frontend (§5): the
 * compiler only consumes operator kinds, tensor shapes and execution
 * order, which these builders emit analytically.
 *
 * Three graph flavors cover the paper's workloads:
 *  - decode: one token of LLM inference with a KV cache (Figs. 5-22);
 *  - forward: full-sequence forward pass (training, Fig. 24);
 *  - DiT: one denoising step of a diffusion transformer (Fig. 23).
 */
#ifndef ELK_GRAPH_MODEL_BUILDER_H
#define ELK_GRAPH_MODEL_BUILDER_H

#include "graph/graph.h"
#include "graph/model_config.h"

namespace elk::graph {

/**
 * KV-cache bytes one token appends for one request across the whole
 * machine: 2 (K and V) x layers x kv_heads x head_dim x dtype. The
 * decode and forward builders stamp it on their graphs
 * (Graph::kv_bytes_per_token), and the serving drivers derive the
 * default per-request KV footprint from it.
 */
uint64_t kv_bytes_per_token(const ModelConfig& cfg);

/**
 * LLM decoding step: batch @p batch requests, each with a KV cache of
 * @p seq past tokens. Weights and the KV cache stream from HBM.
 */
Graph build_decode_graph(const ModelConfig& cfg, int batch, int seq);

/**
 * Full-sequence forward pass (the compute-intensive training shape):
 * all @p seq tokens of @p batch sequences are processed at once, so
 * attention is S x S and no KV cache streams from HBM. Serving prefill
 * compiles this shape at the *bucketed prompt length* — pass the
 * prompt bucket as @p seq and a 32-token prompt stops paying for a
 * full-sequence forward pass (see elk/serving_compiler.h).
 */
Graph build_forward_graph(const ModelConfig& cfg, int batch, int seq);

/**
 * One denoising step of a diffusion transformer over @p tokens image
 * tokens per sample (DiT-XL/2 at 256x256 uses 256 tokens).
 */
Graph build_dit_graph(const ModelConfig& cfg, int batch, int tokens);

}  // namespace elk::graph

#endif  // ELK_GRAPH_MODEL_BUILDER_H
