#include "graph/op.h"

namespace elk::graph {

std::string
op_kind_name(OpKind kind)
{
    switch (kind) {
      case OpKind::kMatMul: return "MatMul";
      case OpKind::kBatchMatMul: return "BatchMatMul";
      case OpKind::kElementwise: return "Elementwise";
      case OpKind::kSoftmax: return "Softmax";
      case OpKind::kLayerNorm: return "LayerNorm";
      case OpKind::kEmbedding: return "Embedding";
    }
    return "?";
}

bool
uses_matmul_pipeline(OpKind kind)
{
    return kind == OpKind::kMatMul || kind == OpKind::kBatchMatMul;
}

void
finalize_flops(Operator& op)
{
    double b = static_cast<double>(op.batch);
    double m = static_cast<double>(op.m);
    double n = static_cast<double>(op.n);
    double k = static_cast<double>(op.k);
    switch (op.kind) {
      case OpKind::kMatMul:
      case OpKind::kBatchMatMul:
        op.flops = 2.0 * b * m * n * k;
        break;
      case OpKind::kElementwise:
        op.flops = b * m * n;
        break;
      case OpKind::kSoftmax:
        // exp + sum + div per element, ~5 vector ops.
        op.flops = 5.0 * b * m * n;
        break;
      case OpKind::kLayerNorm:
        // two reduction passes + scale/shift, ~6 vector ops.
        op.flops = 6.0 * b * m * n;
        break;
      case OpKind::kEmbedding:
        op.flops = b * m * n;  // copy-dominated
        break;
    }
}

}  // namespace elk::graph
