#include "graph/model_config.h"

#include "util/logging.h"

namespace elk::graph {

double
ModelConfig::param_count() const
{
    double h = hidden;
    double qkv = h * (heads + 2.0 * kv_heads) * head_dim;
    double out_proj = static_cast<double>(heads) * head_dim * h;
    double ffn_mats = (gated_ffn ? 3.0 : 2.0) * h * ffn;
    double norms = 2.0 * h;
    double per_layer = qkv + out_proj + ffn_mats + norms;
    double embedding = static_cast<double>(vocab) * h;
    return per_layer * layers + 2.0 * embedding;
}

ModelConfig
llama2_13b()
{
    ModelConfig cfg;
    cfg.name = "Llama2-13B";
    cfg.hidden = 5120;
    cfg.layers = 40;
    cfg.heads = 40;
    cfg.kv_heads = 40;
    cfg.head_dim = 128;
    cfg.ffn = 13824;
    cfg.vocab = 32000;
    cfg.gated_ffn = true;
    return cfg;
}

ModelConfig
gemma2_27b()
{
    ModelConfig cfg;
    cfg.name = "Gemma2-27B";
    cfg.hidden = 4608;
    cfg.layers = 46;
    cfg.heads = 32;
    cfg.kv_heads = 16;
    cfg.head_dim = 128;
    cfg.ffn = 36864;
    cfg.vocab = 256128;
    cfg.gated_ffn = true;
    return cfg;
}

ModelConfig
opt_30b()
{
    ModelConfig cfg;
    cfg.name = "OPT-30B";
    cfg.hidden = 7168;
    cfg.layers = 48;
    cfg.heads = 56;
    cfg.kv_heads = 56;
    cfg.head_dim = 128;
    cfg.ffn = 28672;
    cfg.vocab = 50272;
    cfg.gated_ffn = false;
    return cfg;
}

ModelConfig
llama2_70b()
{
    ModelConfig cfg;
    cfg.name = "Llama2-70B";
    cfg.hidden = 8192;
    cfg.layers = 80;
    cfg.heads = 64;
    cfg.kv_heads = 8;
    cfg.head_dim = 128;
    cfg.ffn = 28672;
    cfg.vocab = 32000;
    cfg.gated_ffn = true;
    return cfg;
}

ModelConfig
dit_xl()
{
    ModelConfig cfg;
    cfg.name = "DiT-XL";
    cfg.hidden = 1152;
    cfg.layers = 28;
    cfg.heads = 16;
    cfg.kv_heads = 16;
    cfg.head_dim = 72;
    cfg.ffn = 4608;
    cfg.vocab = 0;  // no token embedding; patch projection instead.
    cfg.gated_ffn = false;
    return cfg;
}

ModelConfig
model_by_name(const std::string& name)
{
    if (name == "Llama2-13B") return llama2_13b();
    if (name == "Gemma2-27B") return gemma2_27b();
    if (name == "OPT-30B") return opt_30b();
    if (name == "Llama2-70B") return llama2_70b();
    if (name == "DiT-XL") return dit_xl();
    util::fatal("unknown model: " + name);
}

}  // namespace elk::graph
