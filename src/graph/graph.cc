#include "graph/graph.h"

#include <algorithm>
#include <map>

namespace elk::graph {

int
Graph::add(Operator op)
{
    op.id = static_cast<int>(ops_.size());
    finalize_flops(op);
    num_layers_ = std::max(num_layers_, op.layer + 1);
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

std::vector<int>
Graph::ops_in_layer(int layer) const
{
    std::vector<int> ids;
    for (const auto& op : ops_) {
        if (op.layer == layer) {
            ids.push_back(op.id);
        }
    }
    return ids;
}

uint64_t
Graph::total_hbm_bytes() const
{
    uint64_t total = 0;
    for (const auto& op : ops_) {
        total += op.hbm_bytes();
    }
    return total;
}

uint64_t
Graph::avg_hbm_bytes() const
{
    if (ops_.empty()) {
        return 0;
    }
    return total_hbm_bytes() / ops_.size();
}

double
Graph::total_flops() const
{
    double total = 0;
    for (const auto& op : ops_) {
        total += op.flops;
    }
    return total;
}

std::vector<int>
Graph::hbm_heavy_ops() const
{
    uint64_t avg = avg_hbm_bytes();
    std::vector<int> ids;
    for (const auto& op : ops_) {
        if (op.hbm_heavy(avg)) {
            ids.push_back(op.id);
        }
    }
    return ids;
}

int
Graph::hbm_heavy_per_layer() const
{
    uint64_t avg = avg_hbm_bytes();
    std::map<int, int> per_layer;
    int best = 0;
    for (const auto& op : ops_) {
        if (op.layer >= 0 && op.hbm_heavy(avg)) {
            best = std::max(best, ++per_layer[op.layer]);
        }
    }
    return best;
}

}  // namespace elk::graph
