#include "graph/model_builder.h"

#include "util/logging.h"

namespace elk::graph {

namespace {

/// Convenience builder that threads layer ids and dtype through ops.
class LayerBuilder {
  public:
    LayerBuilder(Graph& graph, int dtype_bytes)
        : graph_(graph), dtype_(dtype_bytes)
    {
    }

    void set_layer(int layer) { layer_ = layer; }

    /// Adds a MatMul [m,k]x[k,n] whose k x n operand is a HBM weight.
    int
    matmul(const std::string& name, long m, long k, long n)
    {
        Operator op;
        op.kind = OpKind::kMatMul;
        op.name = name;
        op.layer = layer_;
        op.m = m;
        op.k = k;
        op.n = n;
        op.dtype_bytes = dtype_;
        op.param_bytes = bytes(k * n);
        op.act_in_bytes = bytes(m * k);
        op.act_out_bytes = bytes(m * n);
        return graph_.add(op);
    }

    /// Adds a BatchMatMul; @p stream_elems elements stream from HBM
    /// (the KV cache in decode; zero in forward/DiT attention).
    int
    batch_matmul(const std::string& name, long b, long m, long k, long n,
                 long stream_elems)
    {
        Operator op;
        op.kind = OpKind::kBatchMatMul;
        op.name = name;
        op.layer = layer_;
        op.batch = b;
        op.m = m;
        op.k = k;
        op.n = n;
        op.dtype_bytes = dtype_;
        op.stream_bytes = bytes(stream_elems);
        op.act_in_bytes = bytes(b * m * k);
        op.act_out_bytes = bytes(b * m * n);
        op.w_share_rows = w_share_rows_;
        return graph_.add(op);
    }

    /// Sets the W sharing span applied to subsequent batch_matmuls.
    void set_w_share_rows(long rows) { w_share_rows_ = rows; }

    /// Adds an elementwise op over m x n elements.
    int
    elementwise(const std::string& name, long m, long n,
                long param_elems = 0)
    {
        Operator op;
        op.kind = OpKind::kElementwise;
        op.name = name;
        op.layer = layer_;
        op.m = m;
        op.n = n;
        op.dtype_bytes = dtype_;
        op.param_bytes = bytes(param_elems);
        op.act_in_bytes = bytes(m * n);
        op.act_out_bytes = bytes(m * n);
        return graph_.add(op);
    }

    /// Adds a softmax over rows of [b*m, n].
    int
    softmax(const std::string& name, long b, long m, long n)
    {
        Operator op;
        op.kind = OpKind::kSoftmax;
        op.name = name;
        op.layer = layer_;
        op.batch = b;
        op.m = m;
        op.n = n;
        op.dtype_bytes = dtype_;
        op.act_in_bytes = bytes(b * m * n);
        op.act_out_bytes = bytes(b * m * n);
        return graph_.add(op);
    }

    /// Adds a layernorm over rows of [m, n] with 2n scale parameters.
    int
    layer_norm(const std::string& name, long m, long n)
    {
        Operator op;
        op.kind = OpKind::kLayerNorm;
        op.name = name;
        op.layer = layer_;
        op.m = m;
        op.n = n;
        op.dtype_bytes = dtype_;
        op.param_bytes = bytes(2 * n);
        op.act_in_bytes = bytes(m * n);
        op.act_out_bytes = bytes(m * n);
        return graph_.add(op);
    }

  private:
    uint64_t
    bytes(long elems) const
    {
        return static_cast<uint64_t>(elems) * dtype_;
    }

    Graph& graph_;
    int dtype_;
    int layer_ = -1;
    long w_share_rows_ = 1;
};

/**
 * Emits one transformer block. @p tokens is the number of query rows
 * fed to the projections (batch for decode, batch*seq otherwise);
 * @p q_len / @p kv_len are the attention geometry; @p kv_streams
 * selects whether K/V arrive from HBM (decode) or on-chip (forward).
 */
void
emit_block(LayerBuilder& lb, const ModelConfig& cfg, int layer, long tokens,
           long batch_seqs, long q_len, long kv_len, bool kv_streams)
{
    lb.set_layer(layer);
    const long h = cfg.hidden;
    const long qkv_out =
        (static_cast<long>(cfg.heads) + 2L * cfg.kv_heads) * cfg.head_dim;

    lb.layer_norm("attn_norm", tokens, h);
    lb.matmul("attn_qkv", tokens, h, qkv_out);
    lb.elementwise("rope", tokens, (cfg.heads + cfg.kv_heads) *
                                       static_cast<long>(cfg.head_dim));

    const long bh = batch_seqs * cfg.heads;
    const long kv_elems_each =
        kv_streams ? batch_seqs * cfg.kv_heads * kv_len *
                         static_cast<long>(cfg.head_dim)
                   : 0;
    // Query rows that share one K/V block: q_len rows per head times
    // the GQA group of query heads mapping to one KV head.
    lb.set_w_share_rows(q_len * (cfg.heads / cfg.kv_heads));
    lb.batch_matmul("attn_score", bh, q_len, cfg.head_dim, kv_len,
                    kv_elems_each);
    lb.softmax("attn_softmax", bh, q_len, kv_len);
    lb.batch_matmul("attn_value", bh, q_len, kv_len, cfg.head_dim,
                    kv_elems_each);
    lb.set_w_share_rows(1);
    lb.matmul("attn_output",
              tokens, static_cast<long>(cfg.heads) * cfg.head_dim, h);
    lb.elementwise("attn_residual", tokens, h);

    lb.layer_norm("ffn_norm", tokens, h);
    lb.matmul("ffn_up", tokens, h, cfg.ffn);
    if (cfg.gated_ffn) {
        lb.matmul("ffn_gate", tokens, h, cfg.ffn);
    }
    lb.elementwise("ffn_act", tokens, cfg.ffn);
    lb.matmul("ffn_down", tokens, cfg.ffn, h);
    lb.elementwise("ffn_residual", tokens, h);
}

}  // namespace

uint64_t
kv_bytes_per_token(const ModelConfig& cfg)
{
    return 2ull * cfg.layers * cfg.kv_heads * cfg.head_dim *
           cfg.dtype_bytes;
}

Graph
build_decode_graph(const ModelConfig& cfg, int batch, int seq)
{
    util::check(batch > 0 && seq > 0, "decode graph: bad batch/seq");
    Graph graph(cfg.name);
    graph.set_seq(seq);
    graph.set_kv_bytes_per_token(kv_bytes_per_token(cfg));
    LayerBuilder lb(graph, cfg.dtype_bytes);

    for (int layer = 0; layer < cfg.layers; ++layer) {
        emit_block(lb, cfg, layer, /*tokens=*/batch, /*batch_seqs=*/batch,
                   /*q_len=*/1, /*kv_len=*/seq, /*kv_streams=*/true);
    }
    lb.set_layer(-1);
    lb.layer_norm("final_norm", batch, cfg.hidden);
    if (cfg.vocab > 0) {
        lb.matmul("lm_head", batch, cfg.hidden, cfg.vocab);
    }
    return graph;
}

Graph
build_forward_graph(const ModelConfig& cfg, int batch, int seq)
{
    util::check(batch > 0 && seq > 0, "forward graph: bad batch/seq");
    Graph graph(cfg.name + "-fwd");
    graph.set_seq(seq);
    graph.set_kv_bytes_per_token(kv_bytes_per_token(cfg));
    LayerBuilder lb(graph, cfg.dtype_bytes);

    const long tokens = static_cast<long>(batch) * seq;
    for (int layer = 0; layer < cfg.layers; ++layer) {
        emit_block(lb, cfg, layer, tokens, /*batch_seqs=*/batch,
                   /*q_len=*/seq, /*kv_len=*/seq, /*kv_streams=*/false);
    }
    lb.set_layer(-1);
    lb.layer_norm("final_norm", tokens, cfg.hidden);
    if (cfg.vocab > 0) {
        lb.matmul("lm_head", tokens, cfg.hidden, cfg.vocab);
    }
    return graph;
}

Graph
build_dit_graph(const ModelConfig& cfg, int batch, int tokens)
{
    util::check(batch > 0 && tokens > 0, "dit graph: bad batch/tokens");
    Graph graph(cfg.name);
    graph.set_seq(tokens);
    LayerBuilder lb(graph, cfg.dtype_bytes);

    const long rows = static_cast<long>(batch) * tokens;
    lb.set_layer(-1);
    lb.matmul("patch_embed", rows, 3L * 4 * 4, cfg.hidden);
    for (int layer = 0; layer < cfg.layers; ++layer) {
        lb.set_layer(layer);
        // adaLN-Zero conditioning: 6 modulation vectors per block.
        lb.elementwise("ada_ln", rows, cfg.hidden, 6L * cfg.hidden);
        emit_block(lb, cfg, layer, rows, /*batch_seqs=*/batch,
                   /*q_len=*/tokens, /*kv_len=*/tokens,
                   /*kv_streams=*/false);
    }
    lb.set_layer(-1);
    lb.layer_norm("final_norm", rows, cfg.hidden);
    lb.matmul("patch_unembed", rows, cfg.hidden, 3L * 4 * 4 * 2);
    return graph;
}

}  // namespace elk::graph
