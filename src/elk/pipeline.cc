/**
 * @file
 * The standard pass pipeline (see pass.h): hardware analysis, plan
 * library, the four mode-gated scheduling passes, the §4.4 preload
 * order search, and the Table 2 statistics finalizer.
 *
 * Every parallel loop here follows the same shape: candidates are
 * enumerated serially in a fixed order, evaluated into per-candidate
 * slots (possibly across the pool), and merged by a serial
 * first-minimum scan — so the winning plan is bit-identical to what a
 * serial sweep in the same candidate order would pick.
 */
#include "elk/pass.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "elk/ideal.h"
#include "elk/inductive_scheduler.h"
#include "elk/preload_reorder.h"
#include "runtime/executor.h"
#include "sim/engine.h"
#include "util/logging.h"

namespace elk::compiler {

std::string
mode_name(Mode mode)
{
    switch (mode) {
      case Mode::kBasic: return "Basic";
      case Mode::kStatic: return "Static";
      case Mode::kElkDyn: return "Elk-Dyn";
      case Mode::kElkFull: return "Elk-Full";
      case Mode::kIdeal: return "Ideal";
    }
    return "?";
}

int
max_fit_window(const PlanLibrary& library)
{
    const graph::Graph& graph = library.graph();
    const uint64_t budget = library.context().sram_budget();
    const int n = graph.size();
    // Minimum per-op preload space (smallest plan).
    std::vector<uint64_t> min_space(n);
    for (int i = 0; i < n; ++i) {
        min_space[i] = library.preload_plans(i, 0).back().preload_space;
    }
    // Longest window via two pointers.
    int best = 0;
    uint64_t sum = 0;
    int left = 0;
    for (int right = 0; right < n; ++right) {
        sum += min_space[right];
        while (sum > budget && left <= right) {
            sum -= min_space[left++];
        }
        best = std::max(best, right - left + 1);
    }
    return best;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Runs fn(0..n-1) on the state's pool, or inline without one.
void
for_each_candidate(CompileState& state, int n,
                   const std::function<void(int)>& fn)
{
    util::ThreadPool::run(state.pool, n, fn);
}

/// Index of the first strict minimum of @p scores (-1 when every slot
/// is infinite) — the deterministic merge matching a serial sweep
/// that keeps the first strictly better candidate.
int
argmin_first(const std::vector<double>& scores)
{
    int best = -1;
    double best_score = kInf;
    for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
        if (scores[i] < best_score) {
            best_score = scores[i];
            best = i;
        }
    }
    return best;
}

/// Builds (or reuses) the simulator machine the offline tuning sweeps
/// estimate performance on.
const sim::Machine&
ensure_tuning_machine(CompileState& state)
{
    if (!state.tuning_machine) {
        state.tuning_machine = std::make_shared<sim::Machine>(*state.cfg);
    }
    return *state.tuning_machine;
}

// ---------------------------------------------------------------------------
// hardware-analysis

class HardwareAnalysisPass : public Pass {
  public:
    std::string name() const override { return "hardware-analysis"; }

    void
    run(CompileState& state) const override
    {
        util::check(state.graph != nullptr && state.cfg != nullptr,
                    "hardware-analysis: CompileState needs a graph and "
                    "a chip config");
        if (state.topo) {
            return;  // analysis products already built (state reuse)
        }
        state.cfg->validate();
        state.topo = std::make_shared<hw::Topology>(*state.cfg);
        state.traffic =
            std::make_shared<hw::TrafficModel>(*state.topo, *state.cfg);
        if (state.ctx.exec_cost == nullptr) {
            state.ctx.set_cost_model(cost::make_analytic_cost());
        }
        state.ctx.cfg = state.cfg.get();
        state.ctx.traffic = state.traffic.get();
    }
};

// ---------------------------------------------------------------------------
// plan-library

class PlanLibraryPass : public Pass {
  public:
    std::string name() const override { return "plan-library"; }

    void
    run(CompileState& state) const override
    {
        if (state.library) {
            return;  // already built (state reuse across compiles)
        }
        util::check(state.ctx.cfg != nullptr,
                    "plan-library: hardware-analysis must run first");
        state.library = std::make_shared<PlanLibrary>(
            *state.graph, state.ctx, state.pool);
    }
};

// ---------------------------------------------------------------------------
// schedule-basic

class BasicSchedulePass : public Pass {
  public:
    std::string name() const override { return "schedule-basic"; }

    bool
    enabled(const CompileState& state) const override
    {
        return state.opts.mode == Mode::kBasic && !state.cached_plan;
    }

    void
    run(CompileState& state) const override
    {
        const graph::Graph& graph = *state.graph;
        const PlanLibrary& library = *state.library;
        const int n = graph.size();
        const uint64_t budget = state.ctx.sram_budget();
        ExecutionPlan plan;
        plan.mode = "Basic";
        plan.ops.resize(n);
        InductiveScheduler sched(library);

        for (int i = 0; i < n; ++i) {
            OpSchedule& op = plan.ops[i];
            op.op_id = i;
            // Basic maximizes the execution space: always the fastest
            // plan.
            op.exec = library.exec_plans(i)[0];
            op.est_exec_time = op.exec.exec_time;
        }
        for (int i = 0; i < n; ++i) {
            OpSchedule& op = plan.ops[i];
            // The remaining space while the *previous* operator
            // executes bounds this operator's preload footprint.
            uint64_t prev_exec =
                i > 0 ? plan.ops[i - 1].exec.exec_space : 0;
            uint64_t room = budget > prev_exec ? budget - prev_exec : 0;
            const auto& front = library.preload_plans(i, 0);
            int pick = static_cast<int>(front.size()) - 1;
            for (int c = 0; c < static_cast<int>(front.size()); ++c) {
                if (front[c].preload_space <= room) {
                    pick = c;
                    break;
                }
            }
            op.preload = front[pick];
            op.est_preload_time = sched.preload_duration(i, op.preload);
            plan.preload_order.push_back(i);
            plan.issue_slot.push_back(std::max(0, i - 1));
        }
        double exec_sum = 0.0;
        for (const auto& op : plan.ops) {
            exec_sum += op.est_exec_time + op.est_preload_time;
        }
        plan.est_total_time = exec_sum;
        state.plan = std::move(plan);
    }
};

// ---------------------------------------------------------------------------
// schedule-static

/**
 * The Static (T10-extended) schedule: fixed preload/execution split,
 * best static sizes searched offline (§6.1). Shared with schedule-elk,
 * which keeps the uniform split as a never-regress baseline. Each
 * (region, policy) candidate is built and simulated independently —
 * the parallel fan-out — and merged by first-minimum.
 */
ExecutionPlan
schedule_static(CompileState& state)
{
    const graph::Graph& graph = *state.graph;
    const PlanLibrary& library = *state.library;
    const plan::PlanContext& ctx = state.ctx;
    const CompileOptions& opts = state.opts;
    const int n = graph.size();
    const uint64_t budget = ctx.sram_budget();
    const InductiveScheduler sched(library);

    // Candidate static preload-region sizes and preload-state policy
    // (paper §6.1: all-largest or all-smallest footprint, whichever is
    // faster; best static sizes for the whole model). A caller-fixed
    // region skips the size search (used by the Fig. 6 sweep).
    std::vector<uint64_t> regions;
    if (opts.static_region > 0) {
        regions.push_back(std::min(opts.static_region, budget - 1));
    } else {
        for (uint64_t kb : {64, 96, 128, 192, 256, 320, 384, 448}) {
            uint64_t r = kb * 1024;
            if (r < budget) {
                regions.push_back(r);
            }
        }
    }
    std::vector<std::pair<uint64_t, bool>> candidates;
    for (uint64_t region : regions) {
        for (bool use_max : {true, false}) {
            candidates.emplace_back(region, use_max);
        }
    }

    const sim::Machine& machine = ensure_tuning_machine(state);
    std::vector<ExecutionPlan> plans(candidates.size());
    std::vector<double> times(candidates.size(), kInf);

    for_each_candidate(state, static_cast<int>(candidates.size()),
                       [&](int c) {
        const auto [region, use_max] = candidates[c];
        ExecutionPlan plan;
        plan.mode = "Static";
        plan.ops.resize(n);
        for (int i = 0; i < n; ++i) {
            OpSchedule& op = plan.ops[i];
            op.op_id = i;
            // Fastest plan within the fixed execution region; an
            // operator whose smallest plan exceeds it temporarily
            // borrows from the preload region (the region is a
            // policy, not a hardware fence).
            const auto& front = library.exec_plans(i);
            int pick = static_cast<int>(front.size()) - 1;
            for (int e = 0; e < static_cast<int>(front.size()); ++e) {
                if (front[e].exec_space <= budget - region) {
                    pick = e;
                    break;
                }
            }
            op.exec = front[pick];
            op.est_exec_time = op.exec.exec_time;
            const auto& pre = library.preload_plans(i, pick);
            int k = use_max ? 0 : static_cast<int>(pre.size()) - 1;
            // The chosen footprint must fit the region at all.
            while (k < static_cast<int>(pre.size()) - 1 &&
                   pre[k].preload_space > region) {
                ++k;
            }
            op.preload = pre[k];
            op.est_preload_time = sched.preload_duration(i, op.preload);
        }
        // Forward-fill preload issue slots into the fixed region.
        std::vector<std::pair<int, uint64_t>> live;  // (op, space)
        uint64_t avail = region;
        int next = 0;
        for (int slot = 0; slot < n && next < n; ++slot) {
            // Free preloads whose operators have executed.
            while (!live.empty() && live.front().first < slot) {
                avail += live.front().second;
                live.erase(live.begin());
            }
            while (next < n) {
                uint64_t space = plan.ops[next].preload.preload_space;
                bool must_issue = next == slot;
                if (!must_issue && space > avail) {
                    break;
                }
                avail = space > avail ? 0 : avail - space;
                live.emplace_back(next, space);
                plan.preload_order.push_back(next);
                plan.issue_slot.push_back(slot);
                ++next;
            }
        }
        for (; next < n; ++next) {
            plan.preload_order.push_back(next);
            plan.issue_slot.push_back(next);
        }

        sim::Engine engine(machine);
        sim::SimResult run =
            engine.run(runtime::lower_to_sim(graph, plan, ctx));
        plan.est_total_time = run.total_time;
        times[c] = run.total_time;
        plans[c] = std::move(plan);
    });

    int best = argmin_first(times);
    util::check(best >= 0, "Static: no feasible configuration");
    return std::move(plans[best]);
}

class StaticSchedulePass : public Pass {
  public:
    std::string name() const override { return "schedule-static"; }

    bool
    enabled(const CompileState& state) const override
    {
        return state.opts.mode == Mode::kStatic && !state.cached_plan;
    }

    void
    run(CompileState& state) const override
    {
        state.plan = schedule_static(state);
    }
};

// ---------------------------------------------------------------------------
// schedule-elk

class ElkSchedulePass : public Pass {
  public:
    std::string name() const override { return "schedule-elk"; }

    bool
    enabled(const CompileState& state) const override
    {
        return (state.opts.mode == Mode::kElkDyn ||
                state.opts.mode == Mode::kElkFull) &&
               !state.cached_plan;
    }

    void
    run(CompileState& state) const override
    {
        const graph::Graph& graph = *state.graph;
        const PlanLibrary& library = *state.library;
        const plan::PlanContext& ctx = state.ctx;
        const CompileOptions& opts = state.opts;
        const InductiveScheduler sched(library);
        ScheduleOptions sopts;
        sopts.max_window = opts.max_window;

        // The scheduler's additive estimate cannot see global fabric
        // contention, so the preload depth cap is itself a tuning
        // knob: schedule the identity order at a few caps and keep
        // the best simulated plan (offline tuning, like the Static
        // size search). Every (window, weight) candidate is
        // independent — the parallel fan-out.
        std::vector<ScheduleOptions> candidates;
        for (int w = opts.max_window; w >= 1; w = w * 2 / 3) {
            for (double weight : {0.0, 0.25, 1.0, 4.0, 1e9}) {
                ScheduleOptions wopts = sopts;
                wopts.max_window = w;
                wopts.overhead_weight = weight;
                candidates.push_back(wopts);
            }
            if (w == 1) {
                break;
            }
        }

        const sim::Machine& machine = ensure_tuning_machine(state);
        std::vector<std::optional<ExecutionPlan>> plans(candidates.size());
        std::vector<double> times(candidates.size(), kInf);
        for_each_candidate(state, static_cast<int>(candidates.size()),
                           [&](int c) {
            auto cand = sched.schedule_in_order(candidates[c]);
            if (!cand) {
                return;
            }
            sim::Engine engine(machine);
            times[c] =
                engine.run(runtime::lower_to_sim(graph, *cand, ctx))
                    .total_time;
            plans[c] = std::move(cand);
        });

        int best = argmin_first(times);
        util::check(best >= 0, "Elk: identity preload order infeasible");
        sopts = candidates[best];
        std::optional<ExecutionPlan> in_order = std::move(plans[best]);

        // The uniform preload/execution split is one more point of
        // Elk's trade-off space (a fixed frontier with fixed spaces);
        // include it in the sweep so the dynamic search never
        // regresses below it.
        {
            sim::Engine engine(machine);
            // times[best] is *in_order's simulated total time already
            // (same plan, same deterministic machine) — no re-run.
            double in_order_time = times[best];
            ExecutionPlan uniform = schedule_static(state);
            double uniform_time =
                engine.run(runtime::lower_to_sim(graph, uniform, ctx))
                    .total_time;
            if (uniform_time < in_order_time) {
                in_order = std::move(uniform);
            }
        }
        in_order->mode = "Elk-Dyn";
        if (state.opts.mode == Mode::kElkDyn) {
            state.stats.orders_tested = 1;
        }
        state.tuned_schedule = sopts;
        state.plan = std::move(in_order);
    }
};

// ---------------------------------------------------------------------------
// preload-order-search

class PreloadOrderSearchPass : public Pass {
  public:
    std::string name() const override { return "preload-order-search"; }

    bool
    enabled(const CompileState& state) const override
    {
        return state.opts.mode == Mode::kElkFull && !state.cached_plan;
    }

    void
    run(CompileState& state) const override
    {
        util::check(state.plan.has_value() &&
                        state.tuned_schedule.has_value(),
                    "preload-order-search: schedule-elk must run first");
        const graph::Graph& graph = *state.graph;
        const PlanLibrary& library = *state.library;
        const plan::PlanContext& ctx = state.ctx;
        const CompileOptions& opts = state.opts;
        const ScheduleOptions& sopts = *state.tuned_schedule;
        const InductiveScheduler sched(library);
        std::optional<ExecutionPlan> in_order = std::move(state.plan);

        // Elk-Full: evaluate candidate preload orders on a model
        // prefix, then schedule the full model with the winner (§4.4).
        ReorderStats rstats;
        auto orders =
            generate_candidate_orders(library, opts.max_orders, &rstats);
        state.stats.heavy_per_layer = rstats.heavy_per_layer;
        state.stats.heavy_fit = rstats.heavy_fit_on_chip;
        state.stats.orders_tested = rstats.candidates;

        // Score on a prefix of the model.
        int prefix_ops = 0;
        for (const auto& op : graph.ops()) {
            if (op.layer >= 0 && op.layer < opts.score_layers) {
                prefix_ops = op.id + 1;
            }
        }
        if (prefix_ops == 0) {
            prefix_ops = graph.size();
        }
        ScheduleOptions score_opts = sopts;
        score_opts.limit_ops = prefix_ops;

        // Each candidate order is scheduled on the prefix and
        // *simulated* (the paper: "applies operator scheduling
        // policies and conducts a performance estimation") — the
        // simulator sees the interconnect contention that reordering
        // is meant to avoid. The per-order scoring fans out over the
        // pool; the first-minimum merge keeps the serial winner.
        const sim::Machine& machine = ensure_tuning_machine(state);
        std::vector<double> scores = score_candidate_orders(
            library, orders, score_opts, machine, state.pool);
        int best = argmin_first(scores);

        // Schedule the winner on the full model; fall back to the
        // identity order when it does not actually win end to end.
        std::optional<ExecutionPlan> full;
        if (best >= 0) {
            full = sched.schedule(orders[best], sopts);
        }
        if (full) {
            sim::Engine engine(machine);
            double full_time =
                engine.run(runtime::lower_to_sim(graph, *full, ctx))
                    .total_time;
            double identity_time =
                engine.run(runtime::lower_to_sim(graph, *in_order, ctx))
                    .total_time;
            if (identity_time < full_time) {
                full = std::move(in_order);
            }
        } else {
            full = std::move(in_order);
        }
        full->mode = "Elk-Full";
        state.plan = std::move(full);
    }
};

// ---------------------------------------------------------------------------
// schedule-ideal

class IdealSchedulePass : public Pass {
  public:
    std::string name() const override { return "schedule-ideal"; }

    bool
    enabled(const CompileState& state) const override
    {
        return state.opts.mode == Mode::kIdeal && !state.cached_plan;
    }

    void
    run(CompileState& state) const override
    {
        state.plan = build_ideal_plan(*state.library);
    }
};

// ---------------------------------------------------------------------------
// finalize

class FinalizePass : public Pass {
  public:
    std::string name() const override { return "finalize"; }

    void
    run(CompileState& state) const override
    {
        util::check(state.library != nullptr,
                    "finalize: plan-library must run first");
        state.stats.n_ops = state.graph->size();
        state.stats.max_plans = state.library->max_plans_per_op();
        state.stats.max_fit_window = max_fit_window(*state.library);
        if (state.stats.heavy_per_layer == 0) {
            state.stats.heavy_per_layer =
                state.graph->hbm_heavy_per_layer();
        }
        if (state.stats.heavy_fit == 0) {
            state.stats.heavy_fit = heavy_ops_fit_on_chip(*state.library);
        }
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// CompilerPipeline

CompilerPipeline&
CompilerPipeline::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

std::vector<std::string>
CompilerPipeline::pass_names() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto& pass : passes_) {
        names.push_back(pass->name());
    }
    return names;
}

bool
CompilerPipeline::selected(const Pass& pass, const CompileState& state) const
{
    if (!pass.enabled(state)) {
        return false;
    }
    const auto& filter = state.opts.pass_filter;
    if (filter.empty()) {
        return true;
    }
    return std::find(filter.begin(), filter.end(), pass.name()) !=
           filter.end();
}

std::vector<std::string>
CompilerPipeline::enabled_passes(const CompileState& state) const
{
    std::vector<std::string> names;
    for (const auto& pass : passes_) {
        if (selected(*pass, state)) {
            names.push_back(pass->name());
        }
    }
    return names;
}

void
CompilerPipeline::run(CompileState& state) const
{
    for (const auto& pass : passes_) {
        if (selected(*pass, state)) {
            pass->run(state);
        }
    }
}

void
CompilerPipeline::run_prefix(CompileState& state,
                             const std::string& last_pass) const
{
    bool found = false;
    for (const auto& pass : passes_) {
        if (selected(*pass, state)) {
            pass->run(state);
        }
        if (pass->name() == last_pass) {
            found = true;
            break;
        }
    }
    util::check(found, "run_prefix: no pass named '" + last_pass + "'");
}

void
CompilerPipeline::validate_filter(
    const std::vector<std::string>& filter) const
{
    if (filter.empty()) {
        return;
    }
    auto names = pass_names();
    for (const auto& want : filter) {
        if (std::find(names.begin(), names.end(), want) == names.end()) {
            std::string all;
            for (const auto& n : names) {
                all += (all.empty() ? "" : ", ") + n;
            }
            util::fatal("unknown pass '" + want + "' (available: " + all +
                        ")");
        }
    }
}

CompilerPipeline
CompilerPipeline::standard()
{
    CompilerPipeline pipeline;
    pipeline.add(std::make_unique<HardwareAnalysisPass>())
        .add(std::make_unique<PlanLibraryPass>())
        .add(std::make_unique<BasicSchedulePass>())
        .add(std::make_unique<StaticSchedulePass>())
        .add(std::make_unique<ElkSchedulePass>())
        .add(std::make_unique<PreloadOrderSearchPass>())
        .add(std::make_unique<IdealSchedulePass>())
        .add(std::make_unique<FinalizePass>());
    return pipeline;
}

}  // namespace elk::compiler
