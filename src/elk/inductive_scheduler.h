/**
 * @file
 * Two-level inductive operator scheduling (paper §4.2).
 *
 * Operators execute in graph order; preloads run sequentially in a
 * given preload order pi. Scheduling decides, per operator i (backward
 * from the last), the preload frontier F_i — how many pi-positions are
 * issued before execute(i) in the device program. The preloads between
 * F_i and F_{i+1} are issued right after execute(i), so choosing a
 * larger F_i overlaps more preloads with execute(i) at the cost of
 * their SRAM footprints, which the §4.3 allocator must then fit.
 *
 * Times are backward-relative: T_end = 0 and all start times are
 * negative. For each candidate frontier the scheduler invokes the
 * allocator on the live set, chains ALAP preload start estimates, and
 * picks the frontier maximizing T_s-exe(i) — exactly the paper's
 * "minimize current-to-end time" rule (Theorem 4.2).
 */
#ifndef ELK_ELK_INDUCTIVE_SCHEDULER_H
#define ELK_ELK_INDUCTIVE_SCHEDULER_H

#include <optional>
#include <vector>

#include "elk/memory_allocator.h"
#include "elk/schedule_ir.h"

namespace elk::compiler {

/// Knobs of the scheduling pass.
struct ScheduleOptions {
    /// Cap on simultaneously live preloaded operators (search width).
    int max_window = 28;
    /// Schedule only the first @p limit_ops operators (0 = all); used
    /// to score candidate preload orders cheaply (§4.4).
    int limit_ops = 0;
    /**
     * Weight of the delivery-replication fabric overhead when anchoring
     * each operator's preload-state plan: the walk starts at
     * argmin(distribute_time + overhead_weight * delivery_overhead).
     * 0 starts at full broadcast (overhead hides under execution in
     * compute-bound regimes), large values start at scatter (fabric is
     * precious in bandwidth-bound regimes). The compiler sweeps this
     * offline and keeps the best simulated plan.
     */
    double overhead_weight = 1.0;
};

/// The §4.2 scheduler; one instance per (graph, plan library).
class InductiveScheduler {
  public:
    explicit InductiveScheduler(const PlanLibrary& library)
        : library_(library), allocator_(library)
    {
    }

    /**
     * Schedules the model under preload order @p preload_order (a
     * permutation of execution indices 0..N-1). Returns nullopt when
     * the order cannot fit on-chip memory (invalid order, §4.4).
     */
    std::optional<ExecutionPlan> schedule(
        const std::vector<int>& preload_order,
        const ScheduleOptions& opts = {}) const;

    /// Convenience: schedule with the identity (execution) order.
    std::optional<ExecutionPlan> schedule_in_order(
        const ScheduleOptions& opts = {}) const;

    /// Estimated preload duration of op given its preload plan
    /// (max of HBM roofline and interconnect delivery, paper §4.2).
    double preload_duration(int op_id,
                            const plan::PreloadPlan& preload) const;

  private:
    const PlanLibrary& library_;
    MemoryAllocator allocator_;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_INDUCTIVE_SCHEDULER_H
