#include "elk/memory_allocator.h"

#include <limits>

#include "util/logging.h"

namespace elk::compiler {

AllocationChoice
MemoryAllocator::allocate(int current_op, const std::vector<int>& live_ops,
                          const std::vector<int>& live_exec_idx,
                          const std::vector<int>& live_floor_idx,
                          uint64_t budget) const
{
    util::check(live_ops.size() == live_exec_idx.size() &&
                    live_ops.size() == live_floor_idx.size(),
                "MemoryAllocator: request size mismatch");

    const auto& exec_front = library_.exec_plans(current_op);
    AllocationChoice choice;
    choice.exec_idx = 0;
    choice.preload_idx = live_floor_idx;

    // Total footprint of the current selection.
    auto preload_front = [&](size_t j) -> const auto& {
        return library_.preload_plans(live_ops[j], live_exec_idx[j]);
    };
    auto total_space = [&] {
        uint64_t space = exec_front[choice.exec_idx].exec_space;
        for (size_t j = 0; j < live_ops.size(); ++j) {
            space += preload_front(j)[choice.preload_idx[j]].preload_space;
        }
        return space;
    };

    uint64_t space = total_space();
    while (space > budget) {
        // Candidate downgrades: current op's next exec plan, or any
        // live op's next preload plan. Pick max freed-space/added-time.
        double best_delta = -1.0;
        int best_kind = -1;  // 0 = exec plan, 1 = preload plan
        size_t best_j = 0;

        if (choice.exec_idx + 1 < static_cast<int>(exec_front.size())) {
            const auto& cur = exec_front[choice.exec_idx];
            const auto& nxt = exec_front[choice.exec_idx + 1];
            double freed = static_cast<double>(cur.exec_space) -
                           static_cast<double>(nxt.exec_space);
            double added = nxt.time_cost() - cur.time_cost();
            double delta = added <= 0
                               ? std::numeric_limits<double>::infinity()
                               : freed / added;
            if (delta > best_delta) {
                best_delta = delta;
                best_kind = 0;
            }
        }
        for (size_t j = 0; j < live_ops.size(); ++j) {
            const auto& front = preload_front(j);
            if (choice.preload_idx[j] + 1 >=
                static_cast<int>(front.size())) {
                continue;
            }
            const auto& cur = front[choice.preload_idx[j]];
            const auto& nxt = front[choice.preload_idx[j] + 1];
            double freed = static_cast<double>(cur.preload_space) -
                           static_cast<double>(nxt.preload_space);
            double added = nxt.time_cost() - cur.time_cost();
            double delta = added <= 0
                               ? std::numeric_limits<double>::infinity()
                               : freed / added;
            if (delta > best_delta) {
                best_delta = delta;
                best_kind = 1;
                best_j = j;
            }
        }

        if (best_kind < 0) {
            choice.feasible = false;
            choice.used_space = space;
            return choice;  // every operator already at its smallest plan
        }
        if (best_kind == 0) {
            ++choice.exec_idx;
        } else {
            ++choice.preload_idx[best_j];
        }
        space = total_space();
    }

    choice.feasible = true;
    choice.used_space = space;
    choice.exec_time = exec_front[choice.exec_idx].exec_time;
    for (size_t j = 0; j < live_ops.size(); ++j) {
        choice.total_distribute_time +=
            preload_front(j)[choice.preload_idx[j]].time_cost();
    }
    return choice;
}

}  // namespace elk::compiler
