/**
 * @file
 * The Elk compiler facade (paper Fig. 9): owns the hardware analysis,
 * the plan library and the scheduling passes, and produces execution
 * plans for the Elk designs and the evaluation baselines of §6.1:
 *
 *  - Basic:    maximize execution space, preload only the next op;
 *  - Static:   T10-extended — fixed preload/execution split, best
 *              static sizes searched offline;
 *  - Elk-Dyn:  inductive scheduling + cost-aware allocation (§4.2-4.3);
 *  - Elk-Full: Elk-Dyn plus preload order permutation (§4.4);
 *  - Ideal:    the §6.1 roofline (run it on an ideal split-fabric
 *              Machine).
 */
#ifndef ELK_ELK_COMPILER_H
#define ELK_ELK_COMPILER_H

#include <memory>
#include <string>

#include "cost/exec_cost.h"
#include "elk/schedule_ir.h"
#include "hw/chip_config.h"
#include "hw/topology.h"
#include "hw/traffic.h"
#include "sim/machine.h"

namespace elk::compiler {

/// Compilation designs (paper §6.1).
enum class Mode { kBasic, kStatic, kElkDyn, kElkFull, kIdeal };

/// Human-readable mode name as used in the paper's figures.
std::string mode_name(Mode mode);

/// Compiler knobs.
struct CompileOptions {
    Mode mode = Mode::kElkFull;
    /// Cap on simultaneously live preloads the scheduler explores.
    int max_window = 28;
    /// Maximum candidate preload orders evaluated (Elk-Full).
    int max_orders = 96;
    /// Layers of the model used to score candidate orders before the
    /// winner is scheduled on the full model (compile-time pruning).
    int score_layers = 2;
    /// Static mode only: fixed per-core preload-region size in bytes;
    /// 0 searches the best static size offline (§6.1).
    uint64_t static_region = 0;
};

/// Search-space statistics (paper Table 2) gathered during compile.
struct SearchStats {
    int n_ops = 0;          ///< N.
    int max_plans = 0;      ///< P.
    int max_fit_window = 0; ///< K.
    int heavy_per_layer = 0;///< H.
    int heavy_fit = 0;      ///< C.
    int orders_tested = 0;  ///< candidate preload orders evaluated.
};

/// Result of one compilation.
struct CompileResult {
    ExecutionPlan plan;
    SearchStats stats;
    double compile_seconds = 0.0;
};

/// The compiler; one instance per (graph, chip) pair.
class Compiler {
  public:
    /**
     * Builds hardware analysis and the plan library. @p cost_model
     * overrides the planner's execution cost model (default: the
     * analytic model); the pointer must outlive the compiler.
     */
    Compiler(const graph::Graph& graph, const hw::ChipConfig& cfg,
             const cost::ExecCostModel* cost_model = nullptr);

    /// Compiles an execution plan for the requested design.
    CompileResult compile(const CompileOptions& opts = {}) const;

    /// Plan library (Table 2 statistics, tests).
    const PlanLibrary& library() const { return *library_; }

    /// Plan context (for lowering to the simulator).
    const plan::PlanContext& context() const { return ctx_; }

    /// The paper's K for this graph: the longest run of consecutive
    /// operators whose minimum preload spaces fit on-chip together.
    int max_fit_window() const;

  private:
    /// Lazily built simulator machine used for offline tuning (Static
    /// size search, §4.4 candidate-order performance estimation).
    const sim::Machine& tuning_machine() const;
    ExecutionPlan compile_basic() const;
    ExecutionPlan compile_static(const CompileOptions& opts) const;
    ExecutionPlan compile_elk(const CompileOptions& opts,
                              SearchStats* stats) const;

    const graph::Graph& graph_;
    hw::ChipConfig cfg_;
    std::unique_ptr<hw::Topology> topo_;
    std::unique_ptr<hw::TrafficModel> traffic_;
    std::unique_ptr<cost::ExecCostModel> owned_cost_;
    plan::PlanContext ctx_;
    std::unique_ptr<PlanLibrary> library_;
    mutable std::unique_ptr<sim::Machine> machine_;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_COMPILER_H
