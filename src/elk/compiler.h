/**
 * @file
 * The Elk compiler facade (paper Fig. 9): a thin driver over the pass
 * pipeline in pass.h. It owns the analysis products (hardware
 * analysis + plan library, built once per (graph, chip) pair) and
 * runs the mode-gated scheduling passes per compile() call:
 *
 *  - Basic:    maximize execution space, preload only the next op;
 *  - Static:   T10-extended — fixed preload/execution split, best
 *              static sizes searched offline;
 *  - Elk-Dyn:  inductive scheduling + cost-aware allocation (§4.2-4.3);
 *  - Elk-Full: Elk-Dyn plus preload order permutation (§4.4);
 *  - Ideal:    the §6.1 roofline (run it on an ideal split-fabric
 *              Machine).
 *
 * Compilation parallelizes over a work-stealing pool (the `jobs`
 * knob); the produced plan is bit-identical at any job count.
 */
#ifndef ELK_ELK_COMPILER_H
#define ELK_ELK_COMPILER_H

#include <memory>
#include <mutex>
#include <string>

#include "cost/exec_cost.h"
#include "elk/pass.h"
#include "elk/schedule_ir.h"
#include "hw/chip_config.h"
#include "util/thread_pool.h"

namespace elk::compiler {

class PlanCache;

/// Result of one compilation.
struct CompileResult {
    ExecutionPlan plan;
    SearchStats stats;
    double compile_seconds = 0.0;
    /// True when the plan came from the PlanCache (the scheduling
    /// passes were skipped via the CompileState::cached_plan hook).
    bool from_cache = false;
};

/// The compiler; one instance per (graph, chip) pair.
class Compiler {
  public:
    /**
     * Builds the analysis products (hardware analysis + plan library)
     * by running the pipeline prefix. @p cost_model overrides the
     * planner's execution cost model (default: the analytic model);
     * the pointer must outlive the compiler. @p jobs sets the worker
     * threads for the parallel passes — 1 (default) is serial, 0 uses
     * every hardware thread, N > 1 uses N threads; the plan library
     * build in this constructor already fans out over them.
     */
    Compiler(const graph::Graph& graph, const hw::ChipConfig& cfg,
             const cost::ExecCostModel* cost_model = nullptr,
             int jobs = 1);

    /// Compiles an execution plan for the requested design by running
    /// the scheduling passes of the pipeline. With a plan cache
    /// attached, a hit skips them (CompileState::cached_plan hook)
    /// and a miss stores the freshly compiled result.
    CompileResult compile(const CompileOptions& opts = {}) const;

    /**
     * Attaches a compiled-plan cache (thread-safe, shared across
     * compilers and threads; the serving runtime's amortization
     * point). @p cache must outlive the compiler; nullptr detaches.
     */
    void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }

    /// Plan library (Table 2 statistics, tests).
    const PlanLibrary& library() const { return *state_.library; }

    /// Plan context (for lowering to the simulator).
    const plan::PlanContext& context() const { return state_.ctx; }

    /// The pass pipeline this compiler drives (--passes, tests).
    const CompilerPipeline& pipeline() const { return pipeline_; }

    /// The paper's K for this graph: the longest run of consecutive
    /// operators whose minimum preload spaces fit on-chip together.
    int max_fit_window() const;

    /// Worker threads of the construction-time pool (1 = serial).
    int jobs() const;

  private:
    CompilerPipeline pipeline_;
    std::unique_ptr<util::ThreadPool> pool_;
    CompileState state_;  ///< analysis products shared by compiles.
    /// Offline-tuning machine cached across compile() calls; guarded
    /// by machine_mu_ so concurrent compile() calls on one Compiler
    /// are safe (the rest of compile() works on a private state copy).
    mutable std::mutex machine_mu_;
    mutable std::shared_ptr<const sim::Machine> cached_machine_;
    PlanCache* plan_cache_ = nullptr;  ///< non-owning, optional.
};

}  // namespace elk::compiler

#endif  // ELK_ELK_COMPILER_H
