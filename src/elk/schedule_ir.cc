#include "elk/schedule_ir.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace elk::compiler {

double
ExecutionPlan::reorder_edit_distance() const
{
    double moved = 0.0;
    double total = 0.0;
    for (size_t r = 0; r < preload_order.size(); ++r) {
        double d = std::fabs(static_cast<double>(preload_order[r]) -
                             static_cast<double>(r));
        if (d > 0) {
            moved += d;
            total += 1.0;
        }
    }
    return total > 0 ? moved / total : 0.0;
}

namespace {

/// Signature key for plan sharing across identical operators.
std::string
signature(const graph::Operator& op)
{
    std::ostringstream key;
    key << static_cast<int>(op.kind) << ":" << op.batch << ":" << op.m
        << ":" << op.n << ":" << op.k << ":" << op.param_bytes << ":"
        << op.stream_bytes << ":" << op.w_share_rows << ":"
        << op.dtype_bytes;
    return key.str();
}

}  // namespace

PlanLibrary::PlanLibrary(const graph::Graph& graph,
                         const plan::PlanContext& ctx)
    : graph_(graph), ctx_(ctx)
{
    std::map<std::string, int> seen;
    signature_of_.reserve(graph.size());
    for (const auto& op : graph.ops()) {
        std::string key = signature(op);
        auto it = seen.find(key);
        if (it == seen.end()) {
            int idx = static_cast<int>(fronts_.size());
            fronts_.push_back(plan::enumerate_exec_plans(op, ctx_));
            seen.emplace(std::move(key), idx);
            signature_of_.push_back(idx);
        } else {
            signature_of_.push_back(it->second);
        }
    }
}

const std::vector<plan::ExecPlan>&
PlanLibrary::exec_plans(int id) const
{
    return fronts_[signature_of_[id]];
}

const std::vector<plan::PreloadPlan>&
PlanLibrary::preload_plans(int id, int exec_idx) const
{
    int sig = signature_of_[id];
    auto key = std::make_pair(sig, exec_idx);
    auto it = preload_cache_.find(key);
    if (it == preload_cache_.end()) {
        const auto& exec = fronts_[sig].at(exec_idx);
        it = preload_cache_
                 .emplace(key, plan::enumerate_preload_plans(
                                   graph_.op(id), exec, ctx_))
                 .first;
    }
    return it->second;
}

int
PlanLibrary::max_plans_per_op() const
{
    size_t best = 0;
    for (const auto& front : fronts_) {
        best = std::max(best, front.size());
    }
    return static_cast<int>(best);
}

}  // namespace elk::compiler
