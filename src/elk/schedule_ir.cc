#include "elk/schedule_ir.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>

#include "util/bits.h"
#include "util/logging.h"

namespace elk::compiler {

double
ExecutionPlan::reorder_edit_distance() const
{
    if (ops.empty() || preload_order.empty()) {
        return 0.0;
    }
    double moved = 0.0;
    double total = 0.0;
    for (size_t r = 0; r < preload_order.size(); ++r) {
        double d = std::fabs(static_cast<double>(preload_order[r]) -
                             static_cast<double>(r));
        if (d > 0) {
            moved += d;
            total += 1.0;
        }
    }
    return total > 0 ? moved / total : 0.0;
}

namespace {

using util::append_bits;

void
append_exec_bits(std::string& out, const plan::ExecPlan& p)
{
    append_bits(out, p.parts_rows);
    append_bits(out, p.parts_cols);
    append_bits(out, p.parts_k);
    append_bits(out, p.repl_a);
    append_bits(out, p.repl_w);
    append_bits(out, p.tile_rows);
    append_bits(out, p.tile_cols);
    append_bits(out, p.tile_k);
    append_bits(out, p.a_need);
    append_bits(out, p.w_need);
    append_bits(out, p.out_bytes);
    append_bits(out, p.group_a);
    append_bits(out, p.group_w);
    append_bits(out, p.exec_space);
    append_bits(out, p.fetch_bytes);
    append_bits(out, p.reduce_bytes);
    append_bits(out, p.hbm_stream_bytes);
    append_bits(out, p.compute_time);
    append_bits(out, p.exec_time);
    append_bits(out, p.fabric_time);
}

void
append_preload_bits(std::string& out, const plan::PreloadPlan& p)
{
    append_bits(out, p.gamma);
    append_bits(out, p.preload_space);
    append_bits(out, p.distribute_bytes);
    append_bits(out, p.distribute_time);
    append_bits(out, p.noc_delivery_bytes);
    append_bits(out, p.dram_fraction);
    append_bits(out, p.delivery_overhead_time);
}

}  // namespace

std::string
ExecutionPlan::serialize_bits() const
{
    std::string out;
    out.reserve(64 + ops.size() * 256);
    out += mode;
    out.push_back('\0');
    append_bits(out, static_cast<uint64_t>(ops.size()));
    for (const auto& op : ops) {
        append_bits(out, op.op_id);
        append_exec_bits(out, op.exec);
        append_preload_bits(out, op.preload);
        append_bits(out, op.est_exec_time);
        append_bits(out, op.est_preload_time);
    }
    append_bits(out, static_cast<uint64_t>(preload_order.size()));
    for (int r : preload_order) {
        append_bits(out, r);
    }
    append_bits(out, static_cast<uint64_t>(issue_slot.size()));
    for (int s : issue_slot) {
        append_bits(out, s);
    }
    append_bits(out, est_total_time);
    return out;
}

namespace {

/// Signature key for plan sharing across identical operators.
std::string
signature(const graph::Operator& op)
{
    std::ostringstream key;
    key << static_cast<int>(op.kind) << ":" << op.batch << ":" << op.m
        << ":" << op.n << ":" << op.k << ":" << op.param_bytes << ":"
        << op.stream_bytes << ":" << op.w_share_rows << ":"
        << op.dtype_bytes;
    return key.str();
}

}  // namespace

PlanLibrary::PlanLibrary(const graph::Graph& graph,
                         const plan::PlanContext& ctx,
                         util::ThreadPool* pool)
    : graph_(graph), ctx_(ctx)
{
    // Signature discovery is a cheap serial scan that fixes the front
    // order (first-seen); the expensive per-signature enumerations
    // then fan out over the pool into pre-sized slots.
    std::map<std::string, int> seen;
    std::vector<const graph::Operator*> reps;
    signature_of_.reserve(graph.size());
    for (const auto& op : graph.ops()) {
        std::string key = signature(op);
        auto it = seen.find(key);
        if (it == seen.end()) {
            int idx = static_cast<int>(reps.size());
            reps.push_back(&op);
            seen.emplace(std::move(key), idx);
            signature_of_.push_back(idx);
        } else {
            signature_of_.push_back(it->second);
        }
    }

    fronts_ = plan::enumerate_exec_fronts(reps, ctx_, pool);

    // Eagerly derive every (signature, exec plan) preload front so the
    // library is immutable afterwards — the scheduler's inner loops
    // and the parallel order-scoring pass read without locks.
    preload_fronts_.resize(fronts_.size());
    std::vector<std::pair<int, int>> pairs;
    for (size_t s = 0; s < fronts_.size(); ++s) {
        preload_fronts_[s].resize(fronts_[s].size());
        for (size_t e = 0; e < fronts_[s].size(); ++e) {
            pairs.emplace_back(static_cast<int>(s), static_cast<int>(e));
        }
    }
    util::ThreadPool::run(pool, static_cast<int>(pairs.size()),
                          [&](int i) {
        auto [s, e] = pairs[i];
        preload_fronts_[s][e] = plan::enumerate_preload_plans(
            *reps[s], fronts_[s][e], ctx_);
    });
}

int
PlanLibrary::checked_signature(int id, const char* what) const
{
    // Guards are on the scheduler's hottest path: build the message
    // only on failure.
    if (id < 0 || id >= static_cast<int>(signature_of_.size())) {
        util::panic(std::string(what) + ": operator id " +
                    std::to_string(id) + " out of range (graph has " +
                    std::to_string(signature_of_.size()) + " operators)");
    }
    return signature_of_[id];
}

const std::vector<plan::ExecPlan>&
PlanLibrary::exec_plans(int id) const
{
    int sig = checked_signature(id, "exec_plans");
    const auto& front = fronts_[sig];
    if (front.empty()) {
        util::panic("exec_plans: operator '" + graph_.op(id).name +
                    "' has an empty execute-state Pareto front — no "
                    "partition plan fits the chip");
    }
    return front;
}

const std::vector<plan::PreloadPlan>&
PlanLibrary::preload_plans(int id, int exec_idx) const
{
    int sig = checked_signature(id, "preload_plans");
    const auto& per_exec = preload_fronts_[sig];
    if (exec_idx < 0 || exec_idx >= static_cast<int>(per_exec.size())) {
        util::panic("preload_plans: exec plan index " +
                    std::to_string(exec_idx) + " out of range for '" +
                    graph_.op(id).name + "' (front has " +
                    std::to_string(per_exec.size()) + " plans)");
    }
    const auto& front = per_exec[exec_idx];
    if (front.empty()) {
        util::panic("preload_plans: operator '" + graph_.op(id).name +
                    "' has an empty preload-state Pareto front");
    }
    return front;
}

int
PlanLibrary::max_plans_per_op() const
{
    size_t best = 0;
    for (const auto& front : fronts_) {
        best = std::max(best, front.size());
    }
    return static_cast<int>(best);
}

}  // namespace elk::compiler
