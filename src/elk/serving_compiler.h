/**
 * @file
 * ServingCompiler: the compile side of the serving stack.
 *
 * The Server asks for "the program for batch bucket b" once per decode
 * iteration; this facade memoizes the whole chain behind that call —
 * decode graph construction, Compiler analysis, the (PlanCache-backed)
 * compile, and lowering to the simulator program — per batch size.
 * Returning the same SimProgram object for a repeated bucket is what
 * lets the engine keep weights resident across iterations.
 *
 * Thread-safe: replica sweeps share one instance (and its PlanCache)
 * across worker threads; compiles are serialized by an internal lock
 * so each bucket is compiled exactly once.
 */
#ifndef ELK_ELK_SERVING_COMPILER_H
#define ELK_ELK_SERVING_COMPILER_H

#include <map>
#include <memory>
#include <mutex>

#include "elk/compiler.h"
#include "elk/plan_cache.h"
#include "graph/model_config.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::compiler {

class ServingCompiler {
  public:
    /**
     * @p cache may be nullptr (no cross-instance amortization) and
     * must outlive the serving compiler otherwise. @p jobs is the
     * compiler worker-thread knob; plans are bit-identical at any
     * setting.
     */
    ServingCompiler(graph::ModelConfig model, int seq,
                    const hw::ChipConfig& cfg, CompileOptions opts,
                    PlanCache* cache, int jobs = 1);

    /// Compiled decode program for @p batch (memoized).
    std::shared_ptr<const sim::SimProgram> program(int batch);

    /// The machine serving runs on (split fabric for Ideal mode).
    const sim::Machine& machine() const { return machine_; }

    /// Accumulated wall-clock compile seconds across buckets.
    double compile_seconds() const;

    /// Design-mode name of the compiled plans.
    std::string mode() const { return mode_name(opts_.mode); }

  private:
    struct Entry {
        std::unique_ptr<graph::Graph> graph;
        std::unique_ptr<Compiler> compiler;
        std::shared_ptr<const sim::SimProgram> program;
    };

    graph::ModelConfig model_;
    int seq_;
    hw::ChipConfig cfg_;
    CompileOptions opts_;
    PlanCache* cache_;
    int jobs_;
    sim::Machine machine_;
    mutable std::mutex mu_;
    std::map<int, Entry> entries_;
    double compile_seconds_ = 0.0;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_SERVING_COMPILER_H
