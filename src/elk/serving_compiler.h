/**
 * @file
 * ServingCompiler: the compile side of the serving stack.
 *
 * The Server asks for "the program for bucket (batch, prompt_len)"
 * once per iteration; this facade memoizes the whole chain behind
 * that call — graph construction, Compiler analysis, the
 * (PlanCache-backed) compile, and lowering to the simulator program —
 * per bucket. Returning the same SimProgram object for a repeated
 * bucket is what lets the engine keep weights resident across
 * iterations.
 *
 * A serving compiler builds one graph family: decode steps
 * (GraphKind::kDecode, one token per request against a KV cache of
 * the model sequence length) or prefill (GraphKind::kPrefill, the
 * forward shape that ingests a prompt). Prefill is two-dimensional:
 * each (batch, prompt_len) bucket compiles build_forward_graph at its
 * *bucketed length*, so a short prompt stops paying for a
 * full-sequence forward pass. Disaggregated serving runs one compiler
 * per family over a shared PlanCache, with disjoint op-id namespaces
 * (Options::op_id_offset plus the per-length sub-namespace scheme
 * below) so every family and every prefill length bucket can share
 * one EngineState residency pool without op-id aliasing.
 *
 * Thread-safe: replica sweeps share one instance (and its PlanCache)
 * across worker threads. The per-iteration lookup of an
 * already-compiled bucket — the overwhelmingly common case once the
 * grid is warm — takes a shared (reader) lock only; a miss upgrades
 * to the exclusive lock and double-checks before compiling, so each
 * bucket is still compiled exactly once.
 */
#ifndef ELK_ELK_SERVING_COMPILER_H
#define ELK_ELK_SERVING_COMPILER_H

#include <map>
#include <memory>
#include <shared_mutex>
#include <utility>

#include "elk/compiler.h"
#include "elk/plan_cache.h"
#include "graph/model_config.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::compiler {

/// Which graph family a ServingCompiler builds per bucket.
enum class GraphKind {
    kDecode,   ///< one-token decode step with a KV cache of seq.
    kPrefill,  ///< forward pass over the (bucketed) prompt length.
};

class ServingCompiler {
  public:
    /// Conventional op-id offset for the prefill family: far above any
    /// real graph's operator count, so prefill and decode programs
    /// never alias in a shared residency pool. Prefill length buckets
    /// are further sub-namespaced per power-of-two band: a program at
    /// prompt length L is offset by
    ///   op_id_offset + ceil(log2(L)) * kPrefillIdOffset,
    /// so every bucket of the default power-of-two ladder owns a
    /// disjoint id range and stays resident independently. (Two
    /// non-power-of-two bucket lengths in one band would share a
    /// namespace; the engine's footprint-verified residency keeps that
    /// correct, merely evicting on a mismatch.)
    static constexpr int kPrefillIdOffset = 1 << 20;

    /// Serving-specific knobs (the CompileOptions cover the search).
    struct Options {
        /// Graph family every bucket of this compiler builds.
        GraphKind kind = GraphKind::kDecode;
        /// Added to every lowered SimOp id (see kPrefillIdOffset).
        int op_id_offset = 0;

        /// The prefill family with its conventional id namespace —
        /// always pair the two, or prefill and decode entries alias
        /// in a shared residency pool.
        static Options prefill()
        {
            Options o;
            o.kind = GraphKind::kPrefill;
            o.op_id_offset = kPrefillIdOffset;
            return o;
        }
    };

    /**
     * @p cache may be nullptr (no cross-instance amortization) and
     * must outlive the serving compiler otherwise. @p seq is the
     * model sequence length: the KV depth of every decode program and
     * the longest prompt a prefill bucket can ingest. @p jobs is the
     * compiler worker-thread knob; plans are bit-identical at any
     * setting.
     */
    ServingCompiler(graph::ModelConfig model, int seq,
                    const hw::ChipConfig& cfg, CompileOptions opts,
                    PlanCache* cache, int jobs = 1);
    /// Same, with explicit serving knobs — Options::prefill() for the
    /// prefill family's conventional id namespace.
    ServingCompiler(graph::ModelConfig model, int seq,
                    const hw::ChipConfig& cfg, CompileOptions opts,
                    PlanCache* cache, int jobs, Options serving_opts);

    /// Compiled program for the (batch, prompt_len) bucket
    /// (memoized). For the prefill family @p batch prompts, each of
    /// @p prompt_len tokens, are ingested together by a forward graph
    /// built at that length; the decode family is one-dimensional and
    /// requires prompt_len == seq (its KV depth).
    std::shared_ptr<const sim::SimProgram> program(int batch,
                                                   int prompt_len);

    /// Compiled program for @p batch at the model sequence length —
    /// the full-length bucket (and the only one decode has).
    std::shared_ptr<const sim::SimProgram> program(int batch);

    /// The machine serving runs on (split fabric for Ideal mode).
    const sim::Machine& machine() const { return machine_; }

    /// Accumulated wall-clock compile seconds across buckets.
    double compile_seconds() const;

    /// Design-mode name of the compiled plans.
    std::string mode() const { return mode_name(opts_.mode); }

    /// The graph family this compiler builds.
    GraphKind kind() const { return serving_opts_.kind; }

    /// The model sequence length buckets are bounded by.
    int seq() const { return seq_; }

  private:
    struct Entry {
        std::unique_ptr<graph::Graph> graph;
        std::unique_ptr<Compiler> compiler;
        std::shared_ptr<const sim::SimProgram> program;
    };

    graph::ModelConfig model_;
    int seq_;
    hw::ChipConfig cfg_;
    CompileOptions opts_;
    PlanCache* cache_;
    int jobs_;
    Options serving_opts_;
    sim::Machine machine_;
    mutable std::shared_mutex mu_;
    /// (batch, prompt_len) -> compiled chain.
    std::map<std::pair<int, int>, Entry> entries_;
    double compile_seconds_ = 0.0;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_SERVING_COMPILER_H
