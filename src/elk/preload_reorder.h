/**
 * @file
 * Preload order permutation (paper §4.4).
 *
 * Elk may preload operators in a different order than they execute:
 * delaying a large operator's preload shortens the lifespan of its
 * SRAM footprint (more execution space for earlier operators), and
 * shifting heavy preload traffic avoids interconnect "rush hours".
 *
 * Search-space pruning follows the paper:
 *  - only operators with above-average HBM volume are reordered;
 *    light operators keep their execution position;
 *  - reordering happens within one transformer layer and the same
 *    permutation applies to every identical layer;
 *  - permutations whose displacement exceeds what the on-chip memory
 *    can tolerate are dropped (the Fig. 14 suffix-tree feasibility
 *    check, realized as a per-element displacement bound derived from
 *    how many heavy operators fit on-chip simultaneously).
 */
#ifndef ELK_ELK_PRELOAD_REORDER_H
#define ELK_ELK_PRELOAD_REORDER_H

#include <vector>

#include "elk/inductive_scheduler.h"
#include "elk/schedule_ir.h"
#include "sim/machine.h"
#include "util/thread_pool.h"

namespace elk::compiler {

/// Statistics of the candidate-order generation (Table 2 inputs).
struct ReorderStats {
    int heavy_per_layer = 0;   ///< the paper's H.
    int heavy_fit_on_chip = 0; ///< the paper's C.
    int candidates = 0;        ///< orders actually generated.
};

/**
 * Generates candidate preload orders (each a permutation of execution
 * indices 0..N-1). The identity order is always candidate 0. At most
 * @p max_orders candidates are returned.
 */
std::vector<std::vector<int>> generate_candidate_orders(
    const PlanLibrary& library, int max_orders, ReorderStats* stats);

/**
 * The paper's C for a graph: the maximum number of HBM-heavy
 * operators of one layer whose minimum preload spaces fit on-chip
 * simultaneously.
 */
int heavy_ops_fit_on_chip(const PlanLibrary& library);

/**
 * Scores every candidate order: schedules it under @p score_opts
 * (typically truncated to a model prefix via limit_ops) and simulates
 * the result on @p machine — the paper's §4.4 "performance
 * estimation". Returns one total-time score per candidate, infinity
 * for orders the scheduler rejects. Candidates fan out over @p pool
 * (nullptr = serial) and write disjoint slots, so the scores — and
 * any first-minimum winner selection over them — are bit-identical to
 * the serial evaluation.
 */
std::vector<double> score_candidate_orders(
    const PlanLibrary& library, const std::vector<std::vector<int>>& orders,
    const ScheduleOptions& score_opts, const sim::Machine& machine,
    util::ThreadPool* pool);

}  // namespace elk::compiler

#endif  // ELK_ELK_PRELOAD_REORDER_H
