#include "elk/serving_compiler.h"

#include <utility>

#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "util/logging.h"

namespace elk::compiler {

ServingCompiler::ServingCompiler(graph::ModelConfig model, int seq,
                                 const hw::ChipConfig& cfg,
                                 CompileOptions opts, PlanCache* cache,
                                 int jobs)
    : model_(std::move(model)),
      seq_(seq),
      cfg_(cfg),
      opts_(std::move(opts)),
      cache_(cache),
      jobs_(jobs),
      machine_(cfg_, opts_.mode == Mode::kIdeal)
{
    util::check(seq_ >= 1, "ServingCompiler: seq must be >= 1");
}

std::shared_ptr<const sim::SimProgram>
ServingCompiler::program(int batch)
{
    util::check(batch >= 1, "ServingCompiler: batch must be >= 1");
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(batch);
    if (it != entries_.end()) {
        return it->second.program;
    }

    Entry entry;
    entry.graph = std::make_unique<graph::Graph>(
        graph::build_decode_graph(model_, batch, seq_));
    entry.compiler = std::make_unique<Compiler>(*entry.graph, cfg_,
                                                nullptr, jobs_);
    entry.compiler->set_plan_cache(cache_);
    CompileResult compiled = entry.compiler->compile(opts_);
    compile_seconds_ += compiled.compile_seconds;
    entry.program = std::make_shared<sim::SimProgram>(
        runtime::lower_to_sim(*entry.graph, compiled.plan,
                              entry.compiler->context()));
    auto program = entry.program;
    entries_.emplace(batch, std::move(entry));
    return program;
}

double
ServingCompiler::compile_seconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return compile_seconds_;
}

}  // namespace elk::compiler
