#include "elk/serving_compiler.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "util/logging.h"

namespace elk::compiler {

namespace {

/// ceil(log2(v)) for v >= 1: the power-of-two band index of a prompt
/// length, and with it the prefill sub-namespace of that bucket.
int
ceil_log2(int v)
{
    int n = 0;
    while ((1 << n) < v) {
        ++n;
    }
    return n;
}

}  // namespace

ServingCompiler::ServingCompiler(graph::ModelConfig model, int seq,
                                 const hw::ChipConfig& cfg,
                                 CompileOptions opts, PlanCache* cache,
                                 int jobs)
    : ServingCompiler(std::move(model), seq, cfg, std::move(opts),
                      cache, jobs, Options())
{
}

ServingCompiler::ServingCompiler(graph::ModelConfig model, int seq,
                                 const hw::ChipConfig& cfg,
                                 CompileOptions opts, PlanCache* cache,
                                 int jobs, Options serving_opts)
    : model_(std::move(model)),
      seq_(seq),
      cfg_(cfg),
      opts_(std::move(opts)),
      cache_(cache),
      jobs_(jobs),
      serving_opts_(serving_opts),
      machine_(cfg_, opts_.mode == Mode::kIdeal)
{
    util::check(seq_ >= 1, "ServingCompiler: seq must be >= 1");
    util::check(serving_opts_.op_id_offset >= 0,
                "ServingCompiler: op id offset must be >= 0");
}

std::shared_ptr<const sim::SimProgram>
ServingCompiler::program(int batch)
{
    return program(batch, seq_);
}

std::shared_ptr<const sim::SimProgram>
ServingCompiler::program(int batch, int prompt_len)
{
    util::check(batch >= 1, "ServingCompiler: batch must be >= 1");
    util::check(prompt_len >= 1 && prompt_len <= seq_,
                "ServingCompiler: prompt_len must be in [1, seq]");
    util::check(serving_opts_.kind == GraphKind::kPrefill ||
                    prompt_len == seq_,
                "ServingCompiler: decode programs are compiled at the "
                "model sequence length only");
    const std::pair<int, int> key(batch, prompt_len);
    {
        // Warm-grid fast path: the per-iteration lookup shares the
        // lock with every other server thread.
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            return it->second.program;
        }
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Double-check: another thread may have compiled the bucket
    // between the two locks.
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        return it->second.program;
    }

    Entry entry;
    entry.graph = std::make_unique<graph::Graph>(
        serving_opts_.kind == GraphKind::kPrefill
            ? graph::build_forward_graph(model_, batch, prompt_len)
            : graph::build_decode_graph(model_, batch, seq_));
    entry.compiler = std::make_unique<Compiler>(*entry.graph, cfg_,
                                                nullptr, jobs_);
    entry.compiler->set_plan_cache(cache_);
    CompileResult compiled = entry.compiler->compile(opts_);
    compile_seconds_ += compiled.compile_seconds;
    sim::SimProgram lowered = runtime::lower_to_sim(
        *entry.graph, compiled.plan, entry.compiler->context());
    // Namespacing happens after lowering so the plan cache still keys
    // on the structural graph (the offset never changes the plan).
    // Prefill length buckets get a per-band sub-namespace on top of
    // the family offset (see kPrefillIdOffset).
    int offset = serving_opts_.op_id_offset;
    if (serving_opts_.kind == GraphKind::kPrefill) {
        offset += ceil_log2(prompt_len) * kPrefillIdOffset;
        util::check(entry.graph->size() < kPrefillIdOffset,
                    "ServingCompiler: graph too large for the prefill "
                    "id namespace scheme");
    }
    for (sim::SimOp& op : lowered.ops) {
        op.op_id += offset;
    }
    entry.program =
        std::make_shared<sim::SimProgram>(std::move(lowered));
    auto program = entry.program;
    entries_.emplace(key, std::move(entry));
    return program;
}

double
ServingCompiler::compile_seconds() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return compile_seconds_;
}

}  // namespace elk::compiler
