#include "elk/preload_reorder.h"

#include <algorithm>
#include <limits>
#include <map>

#include "runtime/executor.h"
#include "sim/engine.h"
#include "util/logging.h"

namespace elk::compiler {

namespace {

/// Minimum per-core preload space of an operator (smallest plan of its
/// fastest execute-state plan's preload front).
uint64_t
min_preload_space(const PlanLibrary& library, int op)
{
    const auto& front = library.preload_plans(op, 0);
    return front.back().preload_space;
}

}  // namespace

int
heavy_ops_fit_on_chip(const PlanLibrary& library)
{
    const graph::Graph& graph = library.graph();
    uint64_t budget = library.context().sram_budget();
    // Gather heavy ops of the busiest layer, cheapest-space first.
    uint64_t avg = graph.avg_hbm_bytes();
    std::map<int, std::vector<uint64_t>> per_layer;
    for (const auto& op : graph.ops()) {
        if (op.layer >= 0 && op.hbm_heavy(avg)) {
            per_layer[op.layer].push_back(
                min_preload_space(library, op.id));
        }
    }
    int best = 0;
    for (auto& [layer, spaces] : per_layer) {
        std::sort(spaces.begin(), spaces.end());
        uint64_t used = 0;
        int fit = 0;
        for (uint64_t s : spaces) {
            if (used + s > budget) {
                break;
            }
            used += s;
            ++fit;
        }
        best = std::max(best, fit);
    }
    return best;
}

std::vector<std::vector<int>>
generate_candidate_orders(const PlanLibrary& library, int max_orders,
                          ReorderStats* stats)
{
    const graph::Graph& graph = library.graph();
    const int n = graph.size();

    std::vector<int> identity(n);
    for (int i = 0; i < n; ++i) {
        identity[i] = i;
    }
    std::vector<std::vector<int>> orders;
    orders.push_back(identity);

    // Heavy operators of the first full layer form the permutation
    // template; the same relative order maps onto every layer.
    uint64_t avg = graph.avg_hbm_bytes();
    std::vector<int> heavy0;
    for (int id : graph.ops_in_layer(0)) {
        if (graph.op(id).hbm_heavy(avg)) {
            heavy0.push_back(id);
        }
    }
    const int h = static_cast<int>(heavy0.size());
    const int c = heavy_ops_fit_on_chip(library);
    if (stats != nullptr) {
        stats->heavy_per_layer = h;
        stats->heavy_fit_on_chip = c;
    }
    if (h < 2 || c < 1) {
        if (stats != nullptr) {
            stats->candidates = static_cast<int>(orders.size());
        }
        return orders;
    }

    // Heavy slots per layer, by layer-local position.
    std::vector<std::vector<int>> heavy_slots(graph.num_layers());
    for (int layer = 0; layer < graph.num_layers(); ++layer) {
        for (int id : graph.ops_in_layer(layer)) {
            if (graph.op(id).hbm_heavy(avg)) {
                heavy_slots[layer].push_back(id);
            }
        }
    }

    // Enumerate permutations of 0..h-1 whose per-element displacement
    // stays within the memory-derived bound: displacing an operator by
    // d forces d+1 heavy footprints to coexist, so d < C.
    const int max_disp = std::max(1, c - 1);
    std::vector<int> perm(h);
    for (int i = 0; i < h; ++i) {
        perm[i] = i;
    }
    while (std::next_permutation(perm.begin(), perm.end())) {
        bool ok = true;
        for (int i = 0; i < h && ok; ++i) {
            ok = std::abs(perm[i] - i) <= max_disp;
        }
        if (!ok) {
            continue;
        }
        // Build the full order: identity with each layer's heavy slots
        // permuted the same way. Only layers with the template's slot
        // count participate (the last partial layer stays in order).
        std::vector<int> order = identity;
        for (const auto& slots : heavy_slots) {
            if (static_cast<int>(slots.size()) != h) {
                continue;
            }
            // Position slots[i] receives the op that originally sat at
            // slots[perm[i]].
            for (int i = 0; i < h; ++i) {
                order[slots[i]] = slots[perm[i]];
            }
        }
        orders.push_back(std::move(order));
        if (static_cast<int>(orders.size()) >= max_orders) {
            break;
        }
    }

    if (stats != nullptr) {
        stats->candidates = static_cast<int>(orders.size());
    }
    return orders;
}

std::vector<double>
score_candidate_orders(const PlanLibrary& library,
                       const std::vector<std::vector<int>>& orders,
                       const ScheduleOptions& score_opts,
                       const sim::Machine& machine, util::ThreadPool* pool)
{
    const graph::Graph& graph = library.graph();
    const plan::PlanContext& ctx = library.context();
    const InductiveScheduler sched(library);
    std::vector<double> scores(orders.size(),
                               std::numeric_limits<double>::infinity());
    util::ThreadPool::run(pool, static_cast<int>(orders.size()),
                          [&](int i) {
        auto result = sched.schedule(orders[i], score_opts);
        if (!result) {
            return;  // invalid order: stays at infinity
        }
        sim::Engine engine(machine);
        scores[i] =
            engine.run(runtime::lower_to_sim(graph, *result, ctx))
                .total_time;
    });
    return scores;
}

}  // namespace elk::compiler
