/**
 * @file
 * The abstract device programming model (paper §4.5, Fig. 15): a
 * linear program of preload_async(op) and execute(op) calls whose
 * one-way synchronization rules the hardware (here: the simulator
 * engine) enforces. Also provides a printable listing used by docs
 * and examples.
 */
#ifndef ELK_ELK_DEVICE_PROGRAM_H
#define ELK_ELK_DEVICE_PROGRAM_H

#include <string>
#include <vector>

#include "elk/schedule_ir.h"

namespace elk::compiler {

/// One device call.
struct DeviceInstr {
    enum class Kind { kPreloadAsync, kExecute };
    Kind kind = Kind::kExecute;
    int op_id = -1;
};

/// Linear device program in issue order.
using DeviceProgram = std::vector<DeviceInstr>;

/**
 * Lowers an ExecutionPlan to the device call sequence: for each
 * execute slot, the preload_asyncs issued before it, then the execute.
 */
DeviceProgram build_device_program(const ExecutionPlan& plan);

/// Pretty-prints a program (operator names resolved via @p graph).
std::string to_string(const DeviceProgram& program,
                      const graph::Graph& graph);

}  // namespace elk::compiler

#endif  // ELK_ELK_DEVICE_PROGRAM_H
