#include "elk/inductive_scheduler.h"

#include <algorithm>
#include <limits>

#include "cost/hbm_cost.h"
#include "util/logging.h"

namespace elk::compiler {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Weighted-cost starting index on a preload front.
int
policy_start(const std::vector<plan::PreloadPlan>& front, double weight)
{
    int best = 0;
    double best_cost = front[0].distribute_time +
                       weight * front[0].delivery_overhead_time;
    for (int i = 1; i < static_cast<int>(front.size()); ++i) {
        double cost = front[i].distribute_time +
                      weight * front[i].delivery_overhead_time;
        if (cost < best_cost) {
            best_cost = cost;
            best = i;
        }
    }
    return best;
}

}  // namespace

double
InductiveScheduler::preload_duration(int op_id,
                                     const plan::PreloadPlan& preload) const
{
    const plan::PlanContext& ctx = library_.context();
    const graph::Operator& op = library_.graph().op(op_id);
    if (op.hbm_bytes() == 0) {
        return 0.0;
    }
    double dram = cost::hbm_load_time(
        static_cast<double>(op.hbm_bytes()) * preload.dram_fraction,
        *ctx.cfg);
    double delivery_capacity =
        ctx.traffic->hbm_delivery_capacity() * ctx.cfg->num_chips;
    double delivery = preload.noc_delivery_bytes / delivery_capacity;
    return std::max(dram, delivery);
}

std::optional<ExecutionPlan>
InductiveScheduler::schedule_in_order(const ScheduleOptions& opts) const
{
    std::vector<int> order(library_.graph().size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
    }
    return schedule(order, opts);
}

std::optional<ExecutionPlan>
InductiveScheduler::schedule(const std::vector<int>& preload_order,
                             const ScheduleOptions& opts) const
{
    const graph::Graph& graph = library_.graph();
    const plan::PlanContext& ctx = library_.context();
    const uint64_t budget = ctx.sram_budget();
    const int n = graph.size();
    util::check(static_cast<int>(preload_order.size()) == n,
                "schedule: preload order must cover all operators");

    // Optional truncation for cheap candidate-order scoring (§4.4).
    const int m =
        opts.limit_ops > 0 ? std::min(opts.limit_ops, n) : n;
    std::vector<int> order;
    order.reserve(m);
    for (int op : preload_order) {
        if (op < m) {
            order.push_back(op);
        }
    }

    // Position of each operator in the preload order.
    std::vector<int> pos(m);
    for (int r = 0; r < m; ++r) {
        pos[order[r]] = r;
    }
    // lo[i]: minimum frontier before execute(i) — every operator that
    // executes at or before i must already be issued.
    std::vector<int> lo(m);
    int running = -1;
    for (int i = 0; i < m; ++i) {
        running = std::max(running, pos[i]);
        lo[i] = running + 1;
    }

    // --- backward induction state ---
    std::vector<int> exec_choice(m, 0);
    std::vector<int> preload_choice(m, 0);  // tightening-only floor
    std::vector<double> t_exe_start(m, 0.0);
    std::vector<double> t_pre_start(m, 0.0);  // by position
    std::vector<int> slot_of_pos(m, 0);
    int frontier_next = m;  // F_{i+1} of the step being processed

    // Scratch buffers reused across candidates.
    std::vector<int> live, live_exec, live_floor;
    std::vector<double> chain;

    for (int i = m - 1; i >= 0; --i) {
        if (lo[i] > frontier_next) {
            return std::nullopt;  // order forces issue after own execute
        }

        double best_start = -kInf;
        int best_frontier = -1;
        AllocationChoice best_alloc;
        std::vector<int> best_live;
        std::vector<double> best_chain;

        for (int frontier = lo[i]; frontier <= frontier_next; ++frontier) {
            // Live set: issued before execute(i), not yet executed.
            live.clear();
            live_exec.clear();
            live_floor.clear();
            for (int r = 0; r < frontier; ++r) {
                int j = order[r];
                if (j > i) {
                    live.push_back(j);
                    live_exec.push_back(exec_choice[j]);
                    live_floor.push_back(std::max(
                        preload_choice[j],
                        policy_start(library_.preload_plans(
                                         j, exec_choice[j]),
                                     opts.overhead_weight)));
                }
            }
            if (static_cast<int>(live.size()) > opts.max_window) {
                break;
            }
            AllocationChoice alloc = allocator_.allocate(
                i, live, live_exec, live_floor, budget);
            if (!alloc.feasible) {
                break;  // larger frontiers only add live operators
            }

            // ALAP preload chain for positions [frontier, F_{i+1}).
            double next_start =
                frontier_next < m ? t_pre_start[frontier_next] : kInf;
            chain.assign(frontier_next - frontier, 0.0);
            for (int r = frontier_next - 1; r >= frontier; --r) {
                int j = order[r];
                const auto& pre_front =
                    library_.preload_plans(j, exec_choice[j]);
                double d =
                    preload_duration(j, pre_front[preload_choice[j]]);
                double start =
                    std::min(next_start, t_exe_start[j]) - d;
                chain[r - frontier] = start;
                next_start = start;
            }

            double exec_end_bound =
                i + 1 < m ? t_exe_start[i + 1] : 0.0;
            double exec_end = std::min(exec_end_bound, next_start);
            // The operator's own data-distribution phase runs on its
            // execute critical path; price it with the preload plan
            // this policy would anchor (later steps may still tighten
            // it under memory pressure).
            const auto& own_cand_front =
                library_.preload_plans(i, alloc.exec_idx);
            double own_dist =
                own_cand_front[policy_start(own_cand_front,
                                            opts.overhead_weight)]
                    .distribute_time;
            double cand_start =
                exec_end - (alloc.exec_time + own_dist);
            // Ties favor the larger frontier: preloading further ahead
            // is free when memory allows and absorbs timing jitter the
            // estimate cannot see (e.g., per-op HBM access latency).
            if (cand_start >= best_start) {
                best_start = cand_start;
                best_frontier = frontier;
                best_alloc = alloc;
                best_live = live;
                best_chain = chain;
            }
        }

        if (best_frontier < 0) {
            return std::nullopt;  // no feasible frontier: invalid order
        }

        // Commit the winning frontier.
        exec_choice[i] = best_alloc.exec_idx;
        preload_choice[i] = policy_start(
            library_.preload_plans(i, exec_choice[i]),
            opts.overhead_weight);
        t_exe_start[i] = best_start;
        for (size_t jj = 0; jj < best_live.size(); ++jj) {
            int j = best_live[jj];
            preload_choice[j] =
                std::max(preload_choice[j], best_alloc.preload_idx[jj]);
        }
        for (int r = best_frontier; r < frontier_next; ++r) {
            t_pre_start[r] = best_chain[r - best_frontier];
            slot_of_pos[r] = i + 1;
        }
        frontier_next = best_frontier;
    }

    // Positions before the final frontier are issued before execute(0).
    {
        double next_start =
            frontier_next < m ? t_pre_start[frontier_next] : kInf;
        for (int r = frontier_next - 1; r >= 0; --r) {
            int j = order[r];
            const auto& pre_front =
                library_.preload_plans(j, exec_choice[j]);
            double d = preload_duration(j, pre_front[preload_choice[j]]);
            double start = std::min(next_start, t_exe_start[j]) - d;
            t_pre_start[r] = start;
            slot_of_pos[r] = 0;
            next_start = start;
        }
    }

    // --- assemble the plan ---
    ExecutionPlan plan;
    plan.ops.resize(m);
    for (int i = 0; i < m; ++i) {
        OpSchedule& sched = plan.ops[i];
        sched.op_id = i;
        sched.exec = library_.exec_plans(i)[exec_choice[i]];
        const auto& pre_front = library_.preload_plans(i, exec_choice[i]);
        sched.preload = pre_front[std::min<int>(
            preload_choice[i], static_cast<int>(pre_front.size()) - 1)];
        sched.est_exec_time = sched.exec.exec_time;
        sched.est_preload_time = preload_duration(i, sched.preload);
    }
    plan.preload_order = order;
    plan.issue_slot.resize(m);
    for (int r = 0; r < m; ++r) {
        plan.issue_slot[r] = slot_of_pos[r];
    }
    double t_begin = m > 0 ? std::min(t_exe_start[0], t_pre_start[0]) : 0.0;
    plan.est_total_time = -t_begin;
    return plan;
}

}  // namespace elk::compiler
