/**
 * @file
 * Schedule IR: the compiler's output (which plan each operator uses,
 * when it preloads) and the PlanLibrary cache of per-operator plan
 * Pareto fronts.
 */
#ifndef ELK_ELK_SCHEDULE_IR_H
#define ELK_ELK_SCHEDULE_IR_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "plan/plan_enumerator.h"
#include "util/thread_pool.h"

namespace elk::compiler {

/// Per-operator outcome of compilation.
struct OpSchedule {
    int op_id = -1;
    plan::ExecPlan exec;        ///< chosen execute-state plan.
    plan::PreloadPlan preload;  ///< chosen preload-state plan.
    double est_exec_time = 0.0; ///< exec incl. fetch, excl. distribution.
    double est_preload_time = 0.0;  ///< max(DRAM, delivery) roofline.
};

/// Whole-model execution plan (paper Fig. 9 "Best Plan").
struct ExecutionPlan {
    std::string mode;
    std::vector<OpSchedule> ops;     ///< by execution order.
    std::vector<int> preload_order;  ///< execution indices, issue order.
    std::vector<int> issue_slot;     ///< per preload_order entry.
    double est_total_time = 0.0;     ///< scheduler's own estimate.

    /// Average §6.2-style edit distance of the preload order from the
    /// execution order (mean |position - exec index| over moved ops);
    /// 0 for an empty or unmoved plan.
    double reorder_edit_distance() const;

    /**
     * Exact byte-level serialization of the whole plan (doubles as
     * IEEE bit patterns). Two plans serialize identically iff every
     * field is bit-identical — the check the parallel compiler uses
     * to prove it matches the serial path.
     */
    std::string serialize_bits() const;
};

/**
 * Caches Pareto plan fronts per operator. Operators with identical
 * signatures (kind + dims + byte counts) share one entry, which keeps
 * enumeration cost sub-linear in model size (paper §5 scalability).
 */
class PlanLibrary {
  public:
    /**
     * Enumerates every signature's execute-state front and, for each
     * of its plans, the derived preload-state front. @p pool fans the
     * per-signature enumerations out across worker threads (nullptr =
     * serial); the resulting library is bit-identical either way and
     * fully immutable afterwards, so lookups are safe from any thread.
     */
    PlanLibrary(const graph::Graph& graph, const plan::PlanContext& ctx,
                util::ThreadPool* pool = nullptr);

    /// Pareto-front execute-state plans of op @p id, fastest first.
    /// Panics with the operator's name if the front is empty.
    const std::vector<plan::ExecPlan>& exec_plans(int id) const;

    /**
     * Pareto-front preload-state plans of op @p id given that it will
     * execute with exec_plans(id)[exec_idx]; largest-memory first
     * (MaxPreload at index 0). Panics with a clear message when
     * exec_idx is out of range or the front is empty.
     */
    const std::vector<plan::PreloadPlan>& preload_plans(int id,
                                                        int exec_idx) const;

    /// The paper's P: maximum Pareto plans across operators.
    int max_plans_per_op() const;

    /// Number of distinct operator signatures (diagnostics).
    int num_signatures() const { return static_cast<int>(fronts_.size()); }

    const graph::Graph& graph() const { return graph_; }
    const plan::PlanContext& context() const { return ctx_; }

  private:
    int checked_signature(int id, const char* what) const;

    const graph::Graph& graph_;
    plan::PlanContext ctx_;
    std::vector<int> signature_of_;  ///< op id -> front index.
    std::vector<std::vector<plan::ExecPlan>> fronts_;
    /// [front index][exec plan index] -> preload front; eagerly built
    /// so post-construction reads never mutate the library.
    std::vector<std::vector<std::vector<plan::PreloadPlan>>>
        preload_fronts_;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_SCHEDULE_IR_H
