#include "elk/plan_cache.h"

#include <sstream>
#include <tuple>

#include "util/bits.h"

namespace elk::compiler {

using util::Fnv1a;

bool
PlanKey::operator<(const PlanKey& o) const
{
    return std::tie(model, chip, mode, batch, seq, options) <
           std::tie(o.model, o.chip, o.mode, o.batch, o.seq, o.options);
}

std::string
PlanKey::to_string() const
{
    std::ostringstream out;
    out << model << "|" << chip << "|" << mode << "|b" << batch << "|s"
        << seq << "|" << options;
    return out.str();
}

std::string
model_signature(const graph::Graph& graph)
{
    Fnv1a h;
    for (const auto& op : graph.ops()) {
        h.mix_value(static_cast<int>(op.kind));
        h.mix_value(op.layer);
        h.mix_value(op.batch);
        h.mix_value(op.m);
        h.mix_value(op.n);
        h.mix_value(op.k);
        h.mix_value(op.dtype_bytes);
        h.mix_value(op.w_share_rows);
        h.mix_value(op.param_bytes);
        h.mix_value(op.stream_bytes);
        h.mix_value(op.act_in_bytes);
        h.mix_value(op.act_out_bytes);
        h.mix_value(op.flops);
    }
    std::ostringstream out;
    out << graph.name() << ":" << graph.size() << ":" << h.hex();
    return out.str();
}

std::string
chip_signature(const hw::ChipConfig& cfg)
{
    Fnv1a h;
    h.mix_value(cfg.cores_per_chip);
    h.mix_value(cfg.num_chips);
    h.mix_value(cfg.core_matmul_flops);
    h.mix_value(cfg.core_vector_flops);
    h.mix_value(cfg.tile_launch_overhead_s);
    h.mix_value(cfg.sram_per_core);
    h.mix_value(cfg.transfer_buffer_per_core);
    h.mix_value(cfg.sram_read_bw);
    h.mix_value(static_cast<int>(cfg.topology));
    h.mix_value(cfg.inter_core_link_bw);
    h.mix_value(cfg.link_latency_s);
    h.mix_value(cfg.mesh_width);
    h.mix_value(cfg.mesh_height);
    h.mix_value(cfg.mesh_link_bw);
    h.mix_value(cfg.hbm_total_bw);
    h.mix_value(cfg.hbm_channels_per_chip);
    h.mix_value(cfg.hbm_access_latency_s);
    h.mix_value(cfg.inter_chip_bw);
    std::ostringstream out;
    out << cfg.num_chips << "x" << cfg.cores_per_chip << ":" << h.hex();
    return out.str();
}

PlanKey
make_plan_key(const graph::Graph& graph, const hw::ChipConfig& cfg,
              const CompileOptions& opts)
{
    PlanKey key;
    key.model = model_signature(graph);
    key.chip = chip_signature(cfg);
    key.mode = mode_name(opts.mode);
    key.seq = graph.seq();
    for (const auto& op : graph.ops()) {
        key.batch = std::max(key.batch, static_cast<int>(op.batch));
    }
    // Everything except `jobs` can change the produced plan; jobs is
    // excluded by the bit-identical determinism contract.
    Fnv1a h;
    h.mix_value(opts.max_window);
    h.mix_value(opts.max_orders);
    h.mix_value(opts.score_layers);
    h.mix_value(opts.static_region);
    for (const auto& pass : opts.pass_filter) {
        h.mix(pass.data(), pass.size());
        h.mix_value('\0');
    }
    key.options = h.hex();
    return key;
}

std::shared_ptr<const CompileResult>
PlanCache::lookup(const PlanKey& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    return it->second;
}

void
PlanCache::insert(const PlanKey& key,
                  std::shared_ptr<const CompileResult> result)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, std::move(result));
    stats_.entries = static_cast<int>(entries_.size());
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<std::string>
PlanCache::keys() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, result] : entries_) {
        out.push_back(key.to_string());
    }
    return out;
}

}  // namespace elk::compiler
