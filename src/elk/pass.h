/**
 * @file
 * The compiler's pass pipeline (paper Fig. 9, staged).
 *
 * Compilation is a sequence of passes over one shared CompileState:
 *
 *   hardware-analysis  -> topology + traffic model + plan context
 *   plan-library       -> per-signature Pareto fronts (parallel)
 *   schedule-basic     |  mode-gated scheduling: exactly one of these
 *   schedule-static    |  produces state.plan for the requested design
 *   schedule-elk       |  (Elk-Dyn; Elk-Full refines it below)
 *   schedule-ideal     |
 *   preload-order-search -> §4.4 candidate scoring (parallel), Elk-Full
 *   finalize           -> Table 2 search statistics
 *
 * Contract: a pass reads only CompileState fields produced by earlier
 * passes and fills its own products; environment products (topology,
 * plan library, tuning machine) are shared_ptrs so states can be
 * copied per compile() call, and passes skip work that is already
 * present. Parallel passes fan out over state.pool and must merge
 * deterministically — the compiled plan is bit-identical at any job
 * count (enforced by pipeline_test).
 */
#ifndef ELK_ELK_PASS_H
#define ELK_ELK_PASS_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/exec_cost.h"
#include "elk/inductive_scheduler.h"
#include "elk/schedule_ir.h"
#include "hw/chip_config.h"
#include "hw/topology.h"
#include "hw/traffic.h"
#include "sim/machine.h"
#include "util/thread_pool.h"

namespace elk::compiler {

/// Compilation designs (paper §6.1).
enum class Mode { kBasic, kStatic, kElkDyn, kElkFull, kIdeal };

/// Human-readable mode name as used in the paper's figures.
std::string mode_name(Mode mode);

/// Compiler knobs.
struct CompileOptions {
    Mode mode = Mode::kElkFull;
    /// Cap on simultaneously live preloads the scheduler explores.
    int max_window = 28;
    /// Maximum candidate preload orders evaluated (Elk-Full).
    int max_orders = 96;
    /// Layers of the model used to score candidate orders before the
    /// winner is scheduled on the full model (compile-time pruning).
    int score_layers = 2;
    /// Static mode only: fixed per-core preload-region size in bytes;
    /// 0 searches the best static size offline (§6.1).
    uint64_t static_region = 0;
    /// Worker threads for the parallel passes: 0 inherits the
    /// Compiler's job count, 1 forces serial, N > 1 uses N threads.
    /// The compiled plan is bit-identical at any setting.
    int jobs = 0;
    /// When non-empty, only the named passes run (--passes); unknown
    /// names are a fatal error. Mode gating still applies.
    std::vector<std::string> pass_filter;
};

/// Search-space statistics (paper Table 2) gathered during compile.
struct SearchStats {
    int n_ops = 0;          ///< N.
    int max_plans = 0;      ///< P.
    int max_fit_window = 0; ///< K.
    int heavy_per_layer = 0;///< H.
    int heavy_fit = 0;      ///< C.
    int orders_tested = 0;  ///< candidate preload orders evaluated.
};

/**
 * Everything the passes consume and produce. Environment products are
 * shared so per-compile copies are cheap; per-compile products (plan,
 * stats) are value members of each copy.
 */
struct CompileState {
    // --- inputs ---
    const graph::Graph* graph = nullptr;
    CompileOptions opts;
    /// Worker pool for the parallel passes; nullptr = serial.
    util::ThreadPool* pool = nullptr;

    // --- hardware-analysis products ---
    std::shared_ptr<const hw::ChipConfig> cfg;  ///< validated copy.
    std::shared_ptr<const hw::Topology> topo;
    std::shared_ptr<const hw::TrafficModel> traffic;
    plan::PlanContext ctx;  ///< points into cfg/traffic/cost handle.

    // --- plan-library products ---
    std::shared_ptr<const PlanLibrary> library;

    // --- scheduling scratch (built on demand, reused if present) ---
    std::shared_ptr<const sim::Machine> tuning_machine;

    /// Plan-cache hook: when the driver resolves the compile from a
    /// cached plan it sets this (and copies it into `plan`); every
    /// scheduling pass then disables itself, so a cache hit runs only
    /// the analysis/finalize stages.
    std::shared_ptr<const ExecutionPlan> cached_plan;

    // --- per-compile products ---
    /// Scheduler knobs tuned by schedule-elk's offline sweep; the
    /// preload-order-search pass schedules candidates with them.
    std::optional<ScheduleOptions> tuned_schedule;
    std::optional<ExecutionPlan> plan;
    SearchStats stats;
};

/// One pipeline stage.
class Pass {
  public:
    virtual ~Pass() = default;

    /// Stable pass name (used by --passes and the pipeline tests).
    virtual std::string name() const = 0;

    /// Whether the pass participates for @p state's mode/options
    /// (before the pass_filter is applied).
    virtual bool enabled(const CompileState& state) const
    {
        (void)state;
        return true;
    }

    /// Runs the pass; must only read products of earlier passes.
    virtual void run(CompileState& state) const = 0;
};

/// An ordered list of passes plus gating/filter logic.
class CompilerPipeline {
  public:
    CompilerPipeline() = default;
    CompilerPipeline(CompilerPipeline&&) = default;
    CompilerPipeline& operator=(CompilerPipeline&&) = default;

    /// Appends a pass; returns *this for chaining.
    CompilerPipeline& add(std::unique_ptr<Pass> pass);

    /// All registered pass names, in pipeline order.
    std::vector<std::string> pass_names() const;

    /// Names of the passes that would actually run for @p state
    /// (mode gating plus the options' pass filter), in order.
    std::vector<std::string> enabled_passes(const CompileState& state) const;

    /// Runs every selected pass in order.
    void run(CompileState& state) const;

    /// Runs the selected passes up to and including @p last_pass
    /// (used to build the analysis products at Compiler construction).
    void run_prefix(CompileState& state, const std::string& last_pass) const;

    /// Panics when @p filter names a pass this pipeline doesn't have.
    void validate_filter(const std::vector<std::string>& filter) const;

    /// The standard Fig. 9 pipeline; passes self-gate by mode.
    static CompilerPipeline standard();

  private:
    bool selected(const Pass& pass, const CompileState& state) const;

    std::vector<std::unique_ptr<Pass>> passes_;
};

/// The paper's K for a plan library: the longest run of consecutive
/// operators whose minimum preload spaces fit on-chip together.
int max_fit_window(const PlanLibrary& library);

}  // namespace elk::compiler

#endif  // ELK_ELK_PASS_H
