#include "elk/ideal.h"

#include "cost/hbm_cost.h"

namespace elk::compiler {

ExecutionPlan
build_ideal_plan(const PlanLibrary& library)
{
    const graph::Graph& graph = library.graph();
    const plan::PlanContext& ctx = library.context();
    const int n = graph.size();

    ExecutionPlan plan;
    plan.mode = "Ideal";
    plan.ops.resize(n);
    double exec_sum = 0.0;
    double hbm_sum = 0.0;
    for (int i = 0; i < n; ++i) {
        OpSchedule& sched = plan.ops[i];
        sched.op_id = i;
        // Fastest plan (index 0 of the Pareto front).
        sched.exec = library.exec_plans(i)[0];
        // Minimum preload space (last plan), but zero-latency
        // distribution per the Ideal definition.
        const auto& pre_front = library.preload_plans(i, 0);
        sched.preload = pre_front.back();
        sched.preload.distribute_bytes = 0.0;
        sched.preload.distribute_time = 0.0;
        // Zero-latency distribution also means Ideal never pays
        // broadcast replication on its dedicated preload fabric: the
        // delivered volume equals the unique DRAM volume.
        sched.preload.noc_delivery_bytes = 0.0;
        sched.est_exec_time = sched.exec.exec_time;
        sched.est_preload_time = cost::hbm_load_time(
            static_cast<double>(graph.op(i).hbm_bytes()), *ctx.cfg);
        exec_sum += sched.est_exec_time;
        hbm_sum += sched.est_preload_time;
        plan.preload_order.push_back(i);
        plan.issue_slot.push_back(0);  // stream preloads from t = 0
    }
    plan.est_total_time = std::max(exec_sum, hbm_sum);
    return plan;
}

}  // namespace elk::compiler
