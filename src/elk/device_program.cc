#include "elk/device_program.h"

#include <sstream>

#include "util/logging.h"

namespace elk::compiler {

DeviceProgram
build_device_program(const ExecutionPlan& plan)
{
    DeviceProgram program;
    const int n = static_cast<int>(plan.ops.size());
    size_t r = 0;
    for (int slot = 0; slot <= n; ++slot) {
        while (r < plan.preload_order.size() &&
               plan.issue_slot[r] == slot) {
            program.push_back({DeviceInstr::Kind::kPreloadAsync,
                               plan.preload_order[r]});
            ++r;
        }
        if (slot < n) {
            program.push_back({DeviceInstr::Kind::kExecute, slot});
        }
    }
    util::check(r == plan.preload_order.size(),
                "build_device_program: unissued preloads remain");
    return program;
}

std::string
to_string(const DeviceProgram& program, const graph::Graph& graph)
{
    std::ostringstream out;
    for (const auto& instr : program) {
        const auto& op = graph.op(instr.op_id);
        if (instr.kind == DeviceInstr::Kind::kPreloadAsync) {
            out << "preload_async(op=" << instr.op_id << ")  // "
                << op.name << "\n";
        } else {
            out << "execute(op=" << instr.op_id << ")        // "
                << op.name << "\n";
        }
    }
    return out.str();
}

}  // namespace elk::compiler
