/**
 * @file
 * The Ideal roofline design (paper §6.1): dedicated interconnects for
 * preload and execution (no fabric contention), full-sized on-chip
 * memory for every operator's execution space, minimum preload spaces
 * (maximum preload depth), and a zero-latency data-distribution phase.
 */
#ifndef ELK_ELK_IDEAL_H
#define ELK_ELK_IDEAL_H

#include "elk/schedule_ir.h"

namespace elk::compiler {

/**
 * Builds the Ideal execution plan: every operator takes its fastest
 * execute-state plan ignoring the SRAM budget shared with preloads,
 * preloads stream continuously from program start (issue slot 0), and
 * distribution is free. Run it on a Machine constructed with
 * ideal_split_fabric = true.
 */
ExecutionPlan build_ideal_plan(const PlanLibrary& library);

}  // namespace elk::compiler

#endif  // ELK_ELK_IDEAL_H
