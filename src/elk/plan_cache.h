/**
 * @file
 * Compiled-plan cache for the serving runtime.
 *
 * Compilation is per (model, mode, batch, chip) and deterministic, so
 * the serving stack caches ExecutionPlans under a structural key and
 * skips the scheduling passes on a hit (the CompileState::cached_plan
 * hook — see pass.h). The cache is thread-safe: replica-level sweeps
 * (arrival rate x batch grids) share one cache across worker threads,
 * and because plans are bit-identical at any job count it never
 * matters which worker filled an entry first.
 */
#ifndef ELK_ELK_PLAN_CACHE_H
#define ELK_ELK_PLAN_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "elk/compiler.h"
#include "graph/graph.h"
#include "hw/chip_config.h"

namespace elk::compiler {

/// Structural cache key: what the produced plan depends on.
struct PlanKey {
    std::string model;    ///< graph name + operator-signature digest.
    std::string chip;     ///< chip configuration signature.
    std::string mode;     ///< design mode name.
    int batch = 0;        ///< max operator batch (diagnostics).
    /// Sequence length the graph was built at (Graph::seq; 0 when
    /// unknown). Decode programs and every (batch, prompt-length)
    /// prefill bucket partition cleanly on it — the operator digest
    /// already separates them, this keeps the partition visible in
    /// keys() and ordered by length.
    int seq = 0;
    std::string options;  ///< search-knob digest (windows, orders...).

    /// Lexicographic over every field, in declaration order — the
    /// map order keys() lists entries in.
    bool operator<(const PlanKey& o) const;

    /// Human-readable form ("model|chip|mode|batch|seq|opts").
    std::string to_string() const;
};

/// Digest of a graph's structure: name, size, and an FNV-1a hash over
/// every operator's plan-relevant fields. Two graphs with equal
/// signatures compile to bit-identical plans on equal chips/options.
std::string model_signature(const graph::Graph& graph);

/// Digest of every ChipConfig field the compiler reads.
std::string chip_signature(const hw::ChipConfig& cfg);

/// Cache key for compiling @p graph on @p cfg with @p opts.
PlanKey make_plan_key(const graph::Graph& graph,
                      const hw::ChipConfig& cfg,
                      const CompileOptions& opts);

/// Thread-safe (key -> CompileResult) store with hit/miss counters.
class PlanCache {
  public:
    /// Lifetime counters, returned by stats().
    struct Stats {
        int64_t hits = 0;    ///< lookups that found an entry.
        int64_t misses = 0;  ///< lookups that compiled fresh.
        int entries = 0;     ///< distinct keys currently cached.
    };

    /// Cached result for @p key, or nullptr; counts a hit or miss.
    std::shared_ptr<const CompileResult> lookup(const PlanKey& key);

    /// Stores @p result under @p key (first insert wins; results are
    /// bit-identical by the determinism contract, so ties are moot).
    void insert(const PlanKey& key,
                std::shared_ptr<const CompileResult> result);

    /// Snapshot of the lifetime hit/miss/entry counters.
    Stats stats() const;

    /// Human-readable key of every cached entry, in key order — the
    /// diagnostic view drivers print to show what a serving run
    /// actually compiled (e.g. prefill vs decode plan partitions).
    std::vector<std::string> keys() const;

  private:
    mutable std::mutex mu_;
    std::map<PlanKey, std::shared_ptr<const CompileResult>> entries_;
    Stats stats_;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_PLAN_CACHE_H
