#include "elk/compiler.h"

#include <chrono>
#include <optional>

#include "elk/plan_cache.h"
#include "util/logging.h"

namespace elk::compiler {

Compiler::Compiler(const graph::Graph& graph, const hw::ChipConfig& cfg,
                   const cost::ExecCostModel* cost_model, int jobs)
    : pipeline_(CompilerPipeline::standard())
{
    int threads = util::ThreadPool::resolve_jobs(jobs);
    if (threads > 1) {
        pool_ = std::make_unique<util::ThreadPool>(threads);
    }
    state_.graph = &graph;
    state_.pool = pool_.get();
    state_.cfg = std::make_shared<hw::ChipConfig>(cfg);
    if (cost_model != nullptr) {
        state_.ctx.set_cost_model(cost::borrow_cost_model(cost_model));
    }
    // Build the analysis products once; every compile() reuses them.
    pipeline_.run_prefix(state_, "plan-library");
}

int
Compiler::jobs() const
{
    return pool_ ? pool_->size() : 1;
}

int
Compiler::max_fit_window() const
{
    return compiler::max_fit_window(*state_.library);
}

CompileResult
Compiler::compile(const CompileOptions& opts) const
{
    auto t0 = std::chrono::steady_clock::now();
    pipeline_.validate_filter(opts.pass_filter);

    CompileState state = state_;  // shares the analysis products
    state.opts = opts;
    {
        std::lock_guard<std::mutex> lock(machine_mu_);
        state.tuning_machine = cached_machine_;
    }

    // Plan-cache consult: on a hit the cached plan becomes the state's
    // product and every scheduling pass disables itself (the
    // cached_plan hook), leaving only the cheap analysis/finalize
    // stages to run below.
    std::optional<PlanKey> cache_key;
    std::shared_ptr<const CompileResult> cache_hit;
    if (plan_cache_ != nullptr) {
        cache_key = make_plan_key(*state_.graph, *state_.cfg, opts);
        cache_hit = plan_cache_->lookup(*cache_key);
        if (cache_hit) {
            state.cached_plan = std::shared_ptr<const ExecutionPlan>(
                cache_hit, &cache_hit->plan);
            state.plan = cache_hit->plan;
        }
    }

    // Per-compile job override: 0 inherits the construction pool.
    std::unique_ptr<util::ThreadPool> local_pool;
    if (opts.jobs != 0) {
        int threads = util::ThreadPool::resolve_jobs(opts.jobs);
        if (threads <= 1) {
            state.pool = nullptr;
        } else if (pool_ && pool_->size() == threads) {
            state.pool = pool_.get();
        } else {
            local_pool = std::make_unique<util::ThreadPool>(threads);
            state.pool = local_pool.get();
        }
    }

    pipeline_.run(state);
    util::check(state.plan.has_value(),
                "compile: the pipeline produced no ExecutionPlan for "
                "mode " + mode_name(opts.mode) +
                    " — a scheduling pass was skipped (--passes?)");
    {
        std::lock_guard<std::mutex> lock(machine_mu_);
        if (!cached_machine_) {
            cached_machine_ = state.tuning_machine;
        }
    }

    CompileResult result;
    result.plan = std::move(*state.plan);
    if (cache_hit) {
        // Search statistics describe the original search, not the
        // (skipped) cached compile.
        result.stats = cache_hit->stats;
        result.from_cache = true;
    } else {
        result.stats = state.stats;
        if (cache_key) {
            plan_cache_->insert(
                *cache_key, std::make_shared<CompileResult>(result));
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    result.compile_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace elk::compiler
