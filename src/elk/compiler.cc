#include "elk/compiler.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "elk/ideal.h"
#include "elk/inductive_scheduler.h"
#include "elk/preload_reorder.h"
#include "runtime/executor.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "util/logging.h"

namespace elk::compiler {

std::string
mode_name(Mode mode)
{
    switch (mode) {
      case Mode::kBasic: return "Basic";
      case Mode::kStatic: return "Static";
      case Mode::kElkDyn: return "Elk-Dyn";
      case Mode::kElkFull: return "Elk-Full";
      case Mode::kIdeal: return "Ideal";
    }
    return "?";
}

Compiler::Compiler(const graph::Graph& graph, const hw::ChipConfig& cfg,
                   const cost::ExecCostModel* cost_model)
    : graph_(graph), cfg_(cfg)
{
    cfg_.validate();
    topo_ = std::make_unique<hw::Topology>(cfg_);
    traffic_ = std::make_unique<hw::TrafficModel>(*topo_, cfg_);
    if (cost_model == nullptr) {
        owned_cost_ = std::make_unique<cost::AnalyticExecCost>();
        cost_model = owned_cost_.get();
    }
    ctx_.cfg = &cfg_;
    ctx_.traffic = traffic_.get();
    ctx_.exec_cost = cost_model;
    library_ = std::make_unique<PlanLibrary>(graph_, ctx_);
}

const sim::Machine&
Compiler::tuning_machine() const
{
    if (!machine_) {
        machine_ = std::make_unique<sim::Machine>(cfg_);
    }
    return *machine_;
}

int
Compiler::max_fit_window() const
{
    const uint64_t budget = ctx_.sram_budget();
    const int n = graph_.size();
    // Minimum per-op preload space (smallest plan).
    std::vector<uint64_t> min_space(n);
    for (int i = 0; i < n; ++i) {
        min_space[i] = library_->preload_plans(i, 0).back().preload_space;
    }
    // Longest window via two pointers.
    int best = 0;
    uint64_t sum = 0;
    int left = 0;
    for (int right = 0; right < n; ++right) {
        sum += min_space[right];
        while (sum > budget && left <= right) {
            sum -= min_space[left++];
        }
        best = std::max(best, right - left + 1);
    }
    return best;
}

ExecutionPlan
Compiler::compile_basic() const
{
    const int n = graph_.size();
    const uint64_t budget = ctx_.sram_budget();
    ExecutionPlan plan;
    plan.mode = "Basic";
    plan.ops.resize(n);
    InductiveScheduler sched(*library_);

    for (int i = 0; i < n; ++i) {
        OpSchedule& op = plan.ops[i];
        op.op_id = i;
        // Basic maximizes the execution space: always the fastest plan.
        op.exec = library_->exec_plans(i)[0];
        op.est_exec_time = op.exec.exec_time;
    }
    for (int i = 0; i < n; ++i) {
        OpSchedule& op = plan.ops[i];
        // The remaining space while the *previous* operator executes
        // bounds this operator's preload footprint.
        uint64_t prev_exec =
            i > 0 ? plan.ops[i - 1].exec.exec_space : 0;
        uint64_t room = budget > prev_exec ? budget - prev_exec : 0;
        const auto& front = library_->preload_plans(i, 0);
        int pick = static_cast<int>(front.size()) - 1;
        for (int c = 0; c < static_cast<int>(front.size()); ++c) {
            if (front[c].preload_space <= room) {
                pick = c;
                break;
            }
        }
        op.preload = front[pick];
        op.est_preload_time = sched.preload_duration(i, op.preload);
        plan.preload_order.push_back(i);
        plan.issue_slot.push_back(std::max(0, i - 1));
    }
    double exec_sum = 0.0;
    for (const auto& op : plan.ops) {
        exec_sum += op.est_exec_time + op.est_preload_time;
    }
    plan.est_total_time = exec_sum;
    return plan;
}

ExecutionPlan
Compiler::compile_static(const CompileOptions& opts) const
{
    const int n = graph_.size();
    const uint64_t budget = ctx_.sram_budget();
    InductiveScheduler sched(*library_);

    // Candidate static preload-region sizes and preload-state policy
    // (paper §6.1: all-largest or all-smallest footprint, whichever is
    // faster; best static sizes for the whole model). A caller-fixed
    // region skips the size search (used by the Fig. 6 sweep).
    std::vector<uint64_t> regions;
    if (opts.static_region > 0) {
        regions.push_back(std::min(opts.static_region, budget - 1));
    } else {
        for (uint64_t kb : {64, 96, 128, 192, 256, 320, 384, 448}) {
            uint64_t r = kb * 1024;
            if (r < budget) {
                regions.push_back(r);
            }
        }
    }

    ExecutionPlan best;
    double best_time = std::numeric_limits<double>::infinity();
    sim::Engine engine(tuning_machine());

    for (uint64_t region : regions) {
        for (bool use_max : {true, false}) {
            ExecutionPlan plan;
            plan.mode = "Static";
            plan.ops.resize(n);
            bool ok = true;
            for (int i = 0; i < n && ok; ++i) {
                OpSchedule& op = plan.ops[i];
                op.op_id = i;
                // Fastest plan within the fixed execution region; an
                // operator whose smallest plan exceeds it temporarily
                // borrows from the preload region (the region is a
                // policy, not a hardware fence).
                const auto& front = library_->exec_plans(i);
                int pick = static_cast<int>(front.size()) - 1;
                for (int e = 0; e < static_cast<int>(front.size()); ++e) {
                    if (front[e].exec_space <= budget - region) {
                        pick = e;
                        break;
                    }
                }
                op.exec = front[pick];
                op.est_exec_time = op.exec.exec_time;
                const auto& pre = library_->preload_plans(i, pick);
                int c = use_max ? 0 : static_cast<int>(pre.size()) - 1;
                // The chosen footprint must fit the region at all.
                while (c < static_cast<int>(pre.size()) - 1 &&
                       pre[c].preload_space > region) {
                    ++c;
                }
                op.preload = pre[c];
                op.est_preload_time = sched.preload_duration(i, op.preload);
            }
            if (!ok) {
                continue;
            }
            // Forward-fill preload issue slots into the fixed region.
            plan.preload_order.clear();
            plan.issue_slot.clear();
            std::vector<std::pair<int, uint64_t>> live;  // (op, space)
            uint64_t avail = region;
            int next = 0;
            for (int slot = 0; slot < n && next < n; ++slot) {
                // Free preloads whose operators have executed.
                while (!live.empty() && live.front().first < slot) {
                    avail += live.front().second;
                    live.erase(live.begin());
                }
                while (next < n) {
                    uint64_t space = plan.ops[next].preload.preload_space;
                    bool must_issue = next == slot;
                    if (!must_issue && space > avail) {
                        break;
                    }
                    avail = space > avail ? 0 : avail - space;
                    live.emplace_back(next, space);
                    plan.preload_order.push_back(next);
                    plan.issue_slot.push_back(slot);
                    ++next;
                }
            }
            for (; next < n; ++next) {
                plan.preload_order.push_back(next);
                plan.issue_slot.push_back(next);
            }

            sim::SimResult run = engine.run(
                runtime::lower_to_sim(graph_, plan, ctx_));
            plan.est_total_time = run.total_time;
            if (run.total_time < best_time) {
                best_time = run.total_time;
                best = std::move(plan);
            }
        }
    }
    util::check(!best.ops.empty(), "Static: no feasible configuration");
    return best;
}

ExecutionPlan
Compiler::compile_elk(const CompileOptions& opts, SearchStats* stats) const
{
    InductiveScheduler sched(*library_);
    ScheduleOptions sopts;
    sopts.max_window = opts.max_window;

    // The scheduler's additive estimate cannot see global fabric
    // contention, so the preload depth cap is itself a tuning knob:
    // schedule the identity order at a few caps and keep the best
    // simulated plan (offline tuning, like the Static size search).
    std::optional<ExecutionPlan> in_order;
    {
        sim::Engine engine(tuning_machine());
        double best_time = std::numeric_limits<double>::infinity();
        std::vector<int> windows;
        for (int w = opts.max_window; w >= 1; w = w * 2 / 3) {
            windows.push_back(w);
            if (w == 1) {
                break;
            }
        }
        for (int window : windows) {
            for (double weight : {0.0, 0.25, 1.0, 4.0, 1e9}) {
                ScheduleOptions wopts = sopts;
                wopts.max_window = window;
                wopts.overhead_weight = weight;
                auto cand = sched.schedule_in_order(wopts);
                if (!cand) {
                    continue;
                }
                double t =
                    engine.run(runtime::lower_to_sim(graph_, *cand, ctx_))
                        .total_time;
                if (t < best_time) {
                    best_time = t;
                    sopts.max_window = window;
                    sopts.overhead_weight = weight;
                    in_order = std::move(cand);
                }
            }
        }
    }
    util::check(in_order.has_value(),
                "Elk: identity preload order infeasible");
    // The uniform preload/execution split is one more point of Elk's
    // trade-off space (a fixed frontier with fixed spaces); include it
    // in the sweep so the dynamic search never regresses below it.
    {
        sim::Engine engine(tuning_machine());
        double in_order_time =
            engine.run(runtime::lower_to_sim(graph_, *in_order, ctx_))
                .total_time;
        ExecutionPlan uniform = compile_static(opts);
        double uniform_time =
            engine.run(runtime::lower_to_sim(graph_, uniform, ctx_))
                .total_time;
        if (uniform_time < in_order_time) {
            in_order = std::move(uniform);
        }
    }
    in_order->mode = "Elk-Dyn";
    if (opts.mode == Mode::kElkDyn) {
        if (stats != nullptr) {
            stats->orders_tested = 1;
        }
        return *in_order;
    }

    // Elk-Full: evaluate candidate preload orders on a model prefix,
    // then schedule the full model with the winner (§4.4).
    ReorderStats rstats;
    auto orders =
        generate_candidate_orders(*library_, opts.max_orders, &rstats);
    if (stats != nullptr) {
        stats->heavy_per_layer = rstats.heavy_per_layer;
        stats->heavy_fit = rstats.heavy_fit_on_chip;
        stats->orders_tested = rstats.candidates;
    }

    // Score on a prefix of the model.
    int prefix_ops = 0;
    for (const auto& op : graph_.ops()) {
        if (op.layer >= 0 && op.layer < opts.score_layers) {
            prefix_ops = op.id + 1;
        }
    }
    if (prefix_ops == 0) {
        prefix_ops = graph_.size();
    }
    ScheduleOptions score_opts = sopts;
    score_opts.limit_ops = prefix_ops;

    // Each candidate order is scheduled on the prefix and *simulated*
    // (the paper: "applies operator scheduling policies and conducts a
    // performance estimation") — the simulator sees the interconnect
    // contention that reordering is meant to avoid.
    sim::Engine engine(tuning_machine());
    const std::vector<int>* best_order = nullptr;
    double best_score = std::numeric_limits<double>::infinity();
    for (const auto& order : orders) {
        auto result = sched.schedule(order, score_opts);
        if (!result) {
            continue;
        }
        double score =
            engine.run(runtime::lower_to_sim(graph_, *result, ctx_))
                .total_time;
        if (score < best_score) {
            best_score = score;
            best_order = &order;
        }
    }

    // Schedule the winner on the full model; fall back to the identity
    // order when it does not actually win end to end.
    std::optional<ExecutionPlan> full;
    if (best_order != nullptr) {
        full = sched.schedule(*best_order, sopts);
    }
    if (full) {
        double full_time =
            engine.run(runtime::lower_to_sim(graph_, *full, ctx_))
                .total_time;
        double identity_time =
            engine.run(runtime::lower_to_sim(graph_, *in_order, ctx_))
                .total_time;
        if (identity_time < full_time) {
            full = std::move(in_order);
        }
    } else {
        full = std::move(in_order);
    }
    full->mode = "Elk-Full";
    return *full;
}

CompileResult
Compiler::compile(const CompileOptions& opts) const
{
    auto t0 = std::chrono::steady_clock::now();
    CompileResult result;
    switch (opts.mode) {
      case Mode::kBasic:
        result.plan = compile_basic();
        break;
      case Mode::kStatic:
        result.plan = compile_static(opts);
        break;
      case Mode::kElkDyn:
      case Mode::kElkFull:
        result.plan = compile_elk(opts, &result.stats);
        break;
      case Mode::kIdeal:
        result.plan = build_ideal_plan(*library_);
        break;
    }
    result.stats.n_ops = graph_.size();
    result.stats.max_plans = library_->max_plans_per_op();
    result.stats.max_fit_window = max_fit_window();
    if (result.stats.heavy_per_layer == 0) {
        result.stats.heavy_per_layer = graph_.hbm_heavy_per_layer();
    }
    if (result.stats.heavy_fit == 0) {
        result.stats.heavy_fit = heavy_ops_fit_on_chip(*library_);
    }
    auto t1 = std::chrono::steady_clock::now();
    result.compile_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace elk::compiler
