/**
 * @file
 * Cost-aware on-chip memory allocation (paper §4.3).
 *
 * Given the currently executing operator and the set of operators
 * preloaded (live) during its execution, choose the execution-space
 * plan for the current operator and the preload-space plan for every
 * live operator so that everything fits per-core SRAM.
 *
 * The algorithm starts every operator at its fastest (largest-memory)
 * Pareto plan, then repeatedly downgrades the most "cost-effective"
 * operator — the one whose next smaller plan gives the largest
 * delta = freed space / added time — until the total fits (paper
 * Fig. 11). O(P*K) for K live operators with P plans each.
 */
#ifndef ELK_ELK_MEMORY_ALLOCATOR_H
#define ELK_ELK_MEMORY_ALLOCATOR_H

#include <cstdint>
#include <vector>

#include "elk/schedule_ir.h"

namespace elk::compiler {

/// Outcome of one allocation.
struct AllocationChoice {
    bool feasible = false;
    int exec_idx = 0;  ///< index into the current op's exec Pareto front.
    /// Per live op (same order as the request): preload plan index.
    std::vector<int> preload_idx;
    double exec_time = 0.0;  ///< current op's execution time estimate.
    double total_distribute_time = 0.0;  ///< sum over live ops.
    uint64_t used_space = 0;  ///< per-core bytes after allocation.
};

/// The §4.3 greedy allocator over Pareto fronts.
class MemoryAllocator {
  public:
    explicit MemoryAllocator(const PlanLibrary& library)
        : library_(library)
    {
    }

    /**
     * Allocates SRAM between the current operator and the live set.
     *
     * @param current_op     execution index of the executing operator.
     * @param live_ops       execution indices of preloaded operators.
     * @param live_exec_idx  per live op: its (already fixed) exec plan
     *                       index — preload fronts derive from it.
     * @param live_floor_idx per live op: minimum preload plan index
     *                       (monotone-tightening floor committed by
     *                       later scheduling steps; pass 0s if none).
     * @param budget         per-core SRAM bytes available.
     */
    AllocationChoice allocate(int current_op,
                              const std::vector<int>& live_ops,
                              const std::vector<int>& live_exec_idx,
                              const std::vector<int>& live_floor_idx,
                              uint64_t budget) const;

  private:
    const PlanLibrary& library_;
};

}  // namespace elk::compiler

#endif  // ELK_ELK_MEMORY_ALLOCATOR_H
