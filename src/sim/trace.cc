#include "sim/trace.h"

#include <sstream>

namespace elk::sim {

std::string
SimResult::summary() const
{
    std::ostringstream out;
    out << "total " << total_time * 1e3 << " ms"
        << " | hbm " << hbm_util * 100 << "%"
        << " | noc " << noc_util * 100 << "%"
        << " | " << achieved_tflops << " TFLOPS"
        << " | peak sram/core " << peak_sram_per_core / 1024 << " KB";
    return out.str();
}

}  // namespace elk::sim
