#include "sim/trace.h"

#include <sstream>

#include "util/bits.h"

namespace elk::sim {

using util::append_bits;

std::string
SimResult::serialize_bits() const
{
    std::string out;
    out.reserve(96 + timing.size() * 40);
    append_bits(out, total_time);
    append_bits(out, static_cast<uint64_t>(timing.size()));
    for (const auto& t : timing) {
        append_bits(out, t.op_id);
        append_bits(out, t.pre_start);
        append_bits(out, t.pre_end);
        append_bits(out, t.exec_start);
        append_bits(out, t.exec_end);
    }
    append_bits(out, preload_only);
    append_bits(out, execute_only);
    append_bits(out, overlapped);
    append_bits(out, interconnect_stall);
    append_bits(out, hbm_util);
    append_bits(out, noc_util);
    append_bits(out, noc_util_preload);
    append_bits(out, noc_util_peer);
    append_bits(out, achieved_tflops);
    append_bits(out, peak_sram_per_core);
    append_bits(out, static_cast<uint8_t>(memory_exceeded ? 1 : 0));
    return out;
}

std::string
SimResult::summary() const
{
    std::ostringstream out;
    out << "total " << total_time * 1e3 << " ms"
        << " | hbm " << hbm_util * 100 << "%"
        << " | noc " << noc_util * 100 << "%"
        << " | " << achieved_tflops << " TFLOPS"
        << " | peak sram/core " << peak_sram_per_core / 1024 << " KB";
    return out.str();
}

}  // namespace elk::sim
