/**
 * @file
 * Interval trace recorded by the simulator: per-operator phase timings
 * plus time-integrated resource usage, from which the paper's latency
 * breakdown (Fig. 18a/20: preload / execute / overlapped /
 * interconnect) and utilization figures are computed.
 */
#ifndef ELK_SIM_TRACE_H
#define ELK_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace elk::sim {

/// Phase timestamps of one operator (seconds from program start).
struct OpTiming {
    int op_id = -1;
    double pre_start = 0.0;
    double pre_end = 0.0;
    double exec_start = 0.0;  ///< includes the distribution phase.
    double exec_end = 0.0;

    double preload_duration() const { return pre_end - pre_start; }
    double exec_duration() const { return exec_end - exec_start; }
};

/// Aggregated result of one simulated program run.
struct SimResult {
    double total_time = 0.0;
    std::vector<OpTiming> timing;  ///< by execution order.

    // --- latency breakdown (paper Fig. 18a) ---
    double preload_only = 0.0;   ///< HBM loading, cores idle.
    double execute_only = 0.0;   ///< cores busy, HBM idle.
    double overlapped = 0.0;     ///< both busy.
    double interconnect_stall = 0.0;  ///< stretch caused by fabric
                                      ///< contention (subset of the
                                      ///< above buckets).

    // --- resource utilization (paper Fig. 18b-d) ---
    double hbm_util = 0.0;        ///< mean DRAM bandwidth fraction.
    double noc_util = 0.0;        ///< mean fabric usage fraction.
    double noc_util_preload = 0.0;///< fabric share used by preload.
    double noc_util_peer = 0.0;   ///< fabric share used by inter-core.
    double achieved_tflops = 0.0; ///< total FLOPs / total time / 1e12.

    // --- memory accounting ---
    uint64_t peak_sram_per_core = 0;
    bool memory_exceeded = false;

    /// One-line summary for logs.
    std::string summary() const;

    /**
     * Exact byte-level serialization of every field (doubles as IEEE
     * bit patterns). Two results serialize identically iff they are
     * bit-identical — the check the resumable engine and the serving
     * runtime use to prove determinism (step-driven == one-shot,
     * --jobs N == --jobs 1).
     */
    std::string serialize_bits() const;
};

}  // namespace elk::sim

#endif  // ELK_SIM_TRACE_H
