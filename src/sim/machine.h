/**
 * @file
 * Machine: binds a ChipConfig to the simulator's resource model.
 *
 * Builds the Topology and TrafficModel once and exposes the capacity
 * vector plus flow-weight constructors the engine uses. The multi-chip
 * system (paper §5) aggregates identical chips: model parallelism
 * splits every operator across chips, so pattern capacities scale by
 * the chip count while the per-core numbers stay per-chip.
 */
#ifndef ELK_SIM_MACHINE_H
#define ELK_SIM_MACHINE_H

#include <map>
#include <memory>
#include <vector>

#include "hw/chip_config.h"
#include "hw/topology.h"
#include "hw/traffic.h"
#include "sim/network.h"

namespace elk::sim {

/// Resource layout of a machine, optionally with the paper's "Ideal"
/// split fabric (separate interconnects for preload and execution).
class Machine {
  public:
    /// Builds topology + traffic analysis for @p cfg.
    explicit Machine(const hw::ChipConfig& cfg,
                     bool ideal_split_fabric = false);

    /// Capacity vector for FluidNetwork construction.
    std::vector<double> capacities() const;

    /**
     * Weights of an HBM preload flow whose volume is @p unique_bytes
     * read from DRAM and @p delivery_bytes delivered over the fabric
     * (delivery >= unique when broadcast replication duplicates data).
     */
    FlowWeights preload_weights(double unique_bytes,
                                double delivery_bytes) const;

    /// Weights of an inter-core (peer exchange) flow.
    FlowWeights peer_weights() const;

    /// System-aggregate peer-exchange capacity (bytes/s).
    double peer_capacity() const { return peer_capacity_; }

    /// System-aggregate HBM delivery capacity over the fabric (bytes/s).
    double delivery_capacity() const { return delivery_capacity_; }

    const hw::ChipConfig& config() const { return cfg_; }
    const hw::Topology& topology() const { return *topo_; }
    const hw::TrafficModel& traffic() const { return *traffic_; }

    /// True when preload and peer traffic use disjoint fabrics (Ideal).
    bool ideal_split_fabric() const { return ideal_split_; }

    /// Resource index carrying inter-core (peer) traffic.
    int fabric_resource_for_peer() const;

    /// Resource index carrying HBM delivery traffic.
    int fabric_resource_for_preload() const;

  private:

    hw::ChipConfig cfg_;
    std::unique_ptr<hw::Topology> topo_;
    std::unique_ptr<hw::TrafficModel> traffic_;
    double peer_capacity_ = 0.0;
    double delivery_capacity_ = 0.0;
    bool ideal_split_ = false;
};

}  // namespace elk::sim

#endif  // ELK_SIM_MACHINE_H
