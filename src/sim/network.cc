#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {
constexpr double kEpsilonBytes = 1e-6;
}

void
FlowWeights::set(int resource, double weight)
{
    util::check(resource >= 0 && resource < kMaxResources,
                "FlowWeights: bad resource index");
    util::check(weight > 0, "FlowWeights: non-positive weight");
    util::check(w_[resource] == 0.0, "FlowWeights: duplicate resource");
    w_[resource] = weight;
}

FlowWeights::FlowWeights(std::initializer_list<std::pair<int, double>> init)
{
    for (const auto& [res, w] : init) {
        set(res, w);
    }
}

FlowWeights::FlowWeights(const std::map<int, double>& weights)
{
    for (const auto& [res, w] : weights) {
        set(res, w);
    }
}

int
FlowWeights::max_resource() const
{
    for (int res = kMaxResources - 1; res >= 0; --res) {
        if (w_[res] != 0.0) {
            return res;
        }
    }
    return -1;
}

FluidNetwork::FluidNetwork(std::vector<double> capacities)
    : capacities_(std::move(capacities))
{
    for (double c : capacities_) {
        util::check(c > 0, "FluidNetwork: non-positive capacity");
    }
}

FlowId
FluidNetwork::add_flow(double bytes, FlowWeights weights, FlowTag tag)
{
    util::check(bytes > 0, "FluidNetwork: flow with no bytes");
    util::check(weights.max_resource() <
                    static_cast<int>(capacities_.size()),
                "FluidNetwork: bad resource index");
    Flow f;
    f.remaining = bytes;
    f.weights = weights;
    f.tag = tag;
    flows_.push_back(f);
    const FlowId id = static_cast<FlowId>(flows_.size() - 1);
    active_ids_.push_back(id);
    assign_rates();
    return id;
}

bool
FluidNetwork::flow_active(FlowId id) const
{
    return flows_[id].active;
}

double
FluidNetwork::flow_rate(FlowId id) const
{
    return flows_[id].active ? flows_[id].rate : 0.0;
}

void
FluidNetwork::reset_flows()
{
    flows_.clear();
    active_ids_.clear();
}

void
FluidNetwork::assign_rates()
{
    // Progressive filling: all unfixed flows share a common rate that
    // grows until some resource saturates; flows traversing a
    // saturated resource freeze at the current rate.
    //
    // Weight entries are scanned densely in ascending resource order —
    // the same order the associative form iterated — and zero entries
    // are skipped everywhere a key would have been absent, so every
    // floating-point accumulation below sums the same terms in the
    // same order as the pre-dense implementation (bit-identity).
    const int n_res = static_cast<int>(capacities_.size());
    unfixed_.clear();
    for (FlowId i : active_ids_) {
        flows_[i].rate = 0.0;
        unfixed_.push_back(i);
    }
    left_ = capacities_;

    while (!unfixed_.empty()) {
        // Headroom per resource given the unfixed flows' weights.
        double delta = std::numeric_limits<double>::infinity();
        for (int res = 0; res < n_res; ++res) {
            double weight_sum = 0.0;
            for (int i : unfixed_) {
                weight_sum += flows_[i].weights[res];
            }
            if (weight_sum > 0) {
                delta = std::min(delta, left_[res] / weight_sum);
            }
        }
        if (!std::isfinite(delta)) {
            break;  // remaining flows use no constrained resource
        }

        // Grow everyone, charge resources.
        for (int i : unfixed_) {
            flows_[i].rate += delta;
            for (int res = 0; res < n_res; ++res) {
                double w = flows_[i].weights[res];
                if (w != 0.0) {
                    left_[res] -= delta * w;
                }
            }
        }

        // Freeze flows on (numerically) saturated resources.
        next_unfixed_.clear();
        for (int i : unfixed_) {
            bool saturated = false;
            for (int res = 0; res < n_res; ++res) {
                if (flows_[i].weights[res] != 0.0 &&
                    left_[res] <= 1e-9 * capacities_[res]) {
                    saturated = true;
                    break;
                }
            }
            if (!saturated) {
                next_unfixed_.push_back(i);
            }
        }
        if (next_unfixed_.size() == unfixed_.size()) {
            break;  // no progress possible (shouldn't happen)
        }
        std::swap(unfixed_, next_unfixed_);
    }
}

double
FluidNetwork::time_to_next_completion() const
{
    double best = std::numeric_limits<double>::infinity();
    for (FlowId i : active_ids_) {
        const Flow& f = flows_[i];
        if (f.rate > 0) {
            best = std::min(best, f.remaining / f.rate);
        }
    }
    return best;
}

void
FluidNetwork::advance(double dt)
{
    // In-place compaction of active_ids_: survivors keep their
    // ascending order, completed flows drop out of every later scan.
    size_t out = 0;
    for (FlowId i : active_ids_) {
        Flow& f = flows_[i];
        f.remaining -= f.rate * dt;
        if (f.remaining <= kEpsilonBytes) {
            f.remaining = 0.0;
            f.active = false;
        } else {
            active_ids_[out++] = i;
        }
    }
    if (out != active_ids_.size()) {
        active_ids_.resize(out);
        assign_rates();
    }
}

double
FluidNetwork::resource_usage(int resource, FlowTag tag) const
{
    double usage = 0.0;
    for (FlowId i : active_ids_) {
        const Flow& f = flows_[i];
        if (f.tag != tag) {
            continue;
        }
        double w = f.weights[resource];
        if (w != 0.0) {
            usage += f.rate * w;
        }
    }
    return usage;
}

double
FluidNetwork::resource_usage(int resource) const
{
    double usage = 0.0;
    for (FlowId i : active_ids_) {
        const Flow& f = flows_[i];
        double w = f.weights[resource];
        if (w != 0.0) {
            usage += f.rate * w;
        }
    }
    return usage;
}

int
FluidNetwork::num_active() const
{
    return static_cast<int>(active_ids_.size());
}

}  // namespace elk::sim
