#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {
constexpr double kEpsilonBytes = 1e-6;
}

FluidNetwork::FluidNetwork(std::vector<double> capacities)
    : capacities_(std::move(capacities))
{
    for (double c : capacities_) {
        util::check(c > 0, "FluidNetwork: non-positive capacity");
    }
}

FlowId
FluidNetwork::add_flow(double bytes, std::map<int, double> weights,
                       FlowTag tag)
{
    util::check(bytes > 0, "FluidNetwork: flow with no bytes");
    Flow f;
    f.remaining = bytes;
    f.weights = std::move(weights);
    f.tag = tag;
    for (const auto& [res, w] : f.weights) {
        util::check(res >= 0 && res < static_cast<int>(capacities_.size()),
                    "FluidNetwork: bad resource index");
        util::check(w > 0, "FluidNetwork: non-positive weight");
    }
    flows_.push_back(std::move(f));
    assign_rates();
    return static_cast<FlowId>(flows_.size() - 1);
}

bool
FluidNetwork::flow_active(FlowId id) const
{
    return flows_[id].active;
}

double
FluidNetwork::flow_rate(FlowId id) const
{
    return flows_[id].active ? flows_[id].rate : 0.0;
}

void
FluidNetwork::assign_rates()
{
    // Progressive filling: all unfixed flows share a common rate that
    // grows until some resource saturates; flows traversing a
    // saturated resource freeze at the current rate.
    std::vector<int> unfixed;
    for (size_t i = 0; i < flows_.size(); ++i) {
        if (flows_[i].active) {
            flows_[i].rate = 0.0;
            unfixed.push_back(static_cast<int>(i));
        }
    }
    std::vector<double> left = capacities_;

    while (!unfixed.empty()) {
        // Headroom per resource given the unfixed flows' weights.
        double delta = std::numeric_limits<double>::infinity();
        for (size_t res = 0; res < capacities_.size(); ++res) {
            double weight_sum = 0.0;
            for (int i : unfixed) {
                auto it = flows_[i].weights.find(static_cast<int>(res));
                if (it != flows_[i].weights.end()) {
                    weight_sum += it->second;
                }
            }
            if (weight_sum > 0) {
                delta = std::min(delta, left[res] / weight_sum);
            }
        }
        if (!std::isfinite(delta)) {
            break;  // remaining flows use no constrained resource
        }

        // Grow everyone, charge resources.
        for (int i : unfixed) {
            flows_[i].rate += delta;
            for (const auto& [res, w] : flows_[i].weights) {
                left[res] -= delta * w;
            }
        }

        // Freeze flows on (numerically) saturated resources.
        std::vector<int> next;
        for (int i : unfixed) {
            bool saturated = false;
            for (const auto& [res, w] : flows_[i].weights) {
                if (left[res] <= 1e-9 * capacities_[res]) {
                    saturated = true;
                    break;
                }
            }
            if (!saturated) {
                next.push_back(i);
            }
        }
        if (next.size() == unfixed.size()) {
            break;  // no progress possible (shouldn't happen)
        }
        unfixed = std::move(next);
    }
}

double
FluidNetwork::time_to_next_completion() const
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto& f : flows_) {
        if (f.active && f.rate > 0) {
            best = std::min(best, f.remaining / f.rate);
        }
    }
    return best;
}

void
FluidNetwork::advance(double dt)
{
    bool changed = false;
    for (auto& f : flows_) {
        if (!f.active) {
            continue;
        }
        f.remaining -= f.rate * dt;
        if (f.remaining <= kEpsilonBytes) {
            f.remaining = 0.0;
            f.active = false;
            changed = true;
        }
    }
    if (changed) {
        assign_rates();
    }
}

double
FluidNetwork::resource_usage(int resource, FlowTag tag) const
{
    double usage = 0.0;
    for (const auto& f : flows_) {
        if (!f.active || f.tag != tag) {
            continue;
        }
        auto it = f.weights.find(resource);
        if (it != f.weights.end()) {
            usage += f.rate * it->second;
        }
    }
    return usage;
}

double
FluidNetwork::resource_usage(int resource) const
{
    double usage = 0.0;
    for (const auto& f : flows_) {
        if (!f.active) {
            continue;
        }
        auto it = f.weights.find(resource);
        if (it != f.weights.end()) {
            usage += f.rate * it->second;
        }
    }
    return usage;
}

int
FluidNetwork::num_active() const
{
    int n = 0;
    for (const auto& f : flows_) {
        n += f.active ? 1 : 0;
    }
    return n;
}

}  // namespace elk::sim
