/**
 * @file
 * Fluid flow network with weighted max-min fair bandwidth sharing.
 *
 * The simulator models the chip's shared resources (HBM DRAM bandwidth
 * and the interconnect fabric) as capacity pools. A flow moves a byte
 * volume and consumes each resource proportionally to a per-resource
 * weight: a flow progressing at rate r (bytes/s) uses r * weight of a
 * resource's capacity. Weights encode traffic-pattern efficiency: an
 * HBM broadcast with replication rho consumes the fabric at rho times
 * its unique-byte rate; a peer-exchange flow on a mesh consumes
 * 1/pattern-capacity per byte (paper §5: per-link sequential service,
 * summarized by the TrafficModel's bottleneck analysis).
 *
 * Rates are assigned by progressive filling (weighted max-min): all
 * unfixed flows grow at equal rates until a resource saturates; its
 * flows freeze; repeat. When preload delivery and inter-core exchange
 * are simultaneously active on the fabric, both slow down — the
 * interconnect-contention behaviour of paper Fig. 2 (tussle 2).
 */
#ifndef ELK_SIM_NETWORK_H
#define ELK_SIM_NETWORK_H

#include <cstdint>
#include <map>
#include <vector>

namespace elk::sim {

/// Flow identifier returned by FluidNetwork::add_flow.
using FlowId = int;

/// Category tag used for utilization attribution.
enum class FlowTag {
    kHbmPreload,   ///< HBM DRAM read + controller-to-core delivery.
    kDistribute,   ///< preload-to-execute state data distribution.
    kExecFetch,    ///< on-demand inter-core fetch during execution.
};

/// Resource indices used by the machine model.
struct Resources {
    static constexpr int kHbmDram = 0;  ///< aggregate DRAM bandwidth.
    static constexpr int kFabric = 1;   ///< interconnect fabric (normalized).
    static constexpr int kCount = 2;
};

/// One active flow.
struct Flow {
    double remaining = 0.0;  ///< bytes left.
    double rate = 0.0;       ///< current bytes/s (assigned).
    std::map<int, double> weights;  ///< resource -> usage per byte/s.
    FlowTag tag = FlowTag::kHbmPreload;
    bool active = true;
};

/**
 * The fluid network: tracks active flows, assigns max-min fair rates,
 * and advances simulated time to flow completions.
 */
class FluidNetwork {
  public:
    /// Creates a network with the given per-resource capacities.
    explicit FluidNetwork(std::vector<double> capacities);

    /// Adds a flow of @p bytes with resource @p weights; returns its id.
    FlowId add_flow(double bytes, std::map<int, double> weights,
                    FlowTag tag);

    /// True while the flow has bytes remaining.
    bool flow_active(FlowId id) const;

    /// Current rate of a flow (bytes/s).
    double flow_rate(FlowId id) const;

    /// Seconds until the earliest active flow completes; +inf if none.
    double time_to_next_completion() const;

    /**
     * Advances all active flows by @p dt seconds at their current
     * rates, deactivating flows that complete (remaining <= epsilon).
     */
    void advance(double dt);

    /// Sum over active flows with @p tag of rate * weight[resource].
    double resource_usage(int resource, FlowTag tag) const;

    /// Total usage of @p resource across all active flows.
    double resource_usage(int resource) const;

    /// Capacity of @p resource.
    double capacity(int resource) const { return capacities_[resource]; }

    /// Number of currently active flows.
    int num_active() const;

  private:
    /// Recomputes all rates by progressive filling.
    void assign_rates();

    std::vector<double> capacities_;
    std::vector<Flow> flows_;
};

}  // namespace elk::sim

#endif  // ELK_SIM_NETWORK_H
