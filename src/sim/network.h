/**
 * @file
 * Fluid flow network with weighted max-min fair bandwidth sharing.
 *
 * The simulator models the chip's shared resources (HBM DRAM bandwidth
 * and the interconnect fabric) as capacity pools. A flow moves a byte
 * volume and consumes each resource proportionally to a per-resource
 * weight: a flow progressing at rate r (bytes/s) uses r * weight of a
 * resource's capacity. Weights encode traffic-pattern efficiency: an
 * HBM broadcast with replication rho consumes the fabric at rho times
 * its unique-byte rate; a peer-exchange flow on a mesh consumes
 * 1/pattern-capacity per byte (paper §5: per-link sequential service,
 * summarized by the TrafficModel's bottleneck analysis).
 *
 * Rates are assigned by progressive filling (weighted max-min): all
 * unfixed flows grow at equal rates until a resource saturates; its
 * flows freeze; repeat. When preload delivery and inter-core exchange
 * are simultaneously active on the fabric, both slow down — the
 * interconnect-contention behaviour of paper Fig. 2 (tussle 2).
 *
 * assign_rates() runs on every flow arrival and completion — it is
 * the single hottest loop of the whole simulator — so the network is
 * built around two representation choices. First, a flow's weights
 * are a small dense array (FlowWeights) indexed by resource, not an
 * associative container: a zero entry means "does not use the
 * resource", and every present weight is validated positive at
 * construction, which keeps the dense scan's skip-zero behaviour
 * exactly equivalent to the absent-key semantics the progressive
 * filling relies on (a flow only freezes on resources it uses).
 * Second, completed flows never get scanned again: an ascending list
 * of active flow ids drives every per-event loop, so the cost of an
 * event is O(active flows) rather than O(flows ever added) — the
 * table itself only grows so that FlowIds stay stable for callers.
 */
#ifndef ELK_SIM_NETWORK_H
#define ELK_SIM_NETWORK_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <utility>
#include <vector>

namespace elk::sim {

/// Flow identifier returned by FluidNetwork::add_flow.
using FlowId = int;

/// Category tag used for utilization attribution.
enum class FlowTag {
    kHbmPreload,   ///< HBM DRAM read + controller-to-core delivery.
    kDistribute,   ///< preload-to-execute state data distribution.
    kExecFetch,    ///< on-demand inter-core fetch during execution.
};

/// Resource indices used by the machine model.
struct Resources {
    static constexpr int kHbmDram = 0;  ///< aggregate DRAM bandwidth.
    static constexpr int kFabric = 1;   ///< interconnect fabric (normalized).
    static constexpr int kCount = 2;
};

/**
 * Dense per-resource weights of one flow. Index = resource, value =
 * capacity consumed per byte/s of flow rate; zero = the flow does not
 * use the resource (the old map's absent key). Sized for every
 * machine layout (two resources, plus the Ideal split fabric's
 * third); constructing an entry at or above kMaxResources, a
 * non-positive entry, or a duplicate entry panics.
 */
class FlowWeights {
  public:
    /// Upper bound on resource indices across all machine layouts.
    static constexpr int kMaxResources = 4;

    FlowWeights() = default;

    /// From explicit (resource, weight) pairs:
    /// `{{Resources::kHbmDram, 1.0}, {fabric, rho}}`.
    FlowWeights(std::initializer_list<std::pair<int, double>> init);

    /// From the associative form (implicit: pre-dense call sites and
    /// tests pass std::map).
    FlowWeights(const std::map<int, double>& weights);

    /// Weight on @p resource; 0 when the flow does not use it.
    double
    operator[](int resource) const
    {
        return w_[resource];
    }

    /// Highest resource index with a non-zero weight; -1 when empty.
    int max_resource() const;

  private:
    void set(int resource, double weight);

    double w_[kMaxResources] = {0.0, 0.0, 0.0, 0.0};
};

/// One active flow.
struct Flow {
    double remaining = 0.0;  ///< bytes left.
    double rate = 0.0;       ///< current bytes/s (assigned).
    FlowWeights weights;     ///< resource -> usage per byte/s.
    FlowTag tag = FlowTag::kHbmPreload;
    bool active = true;
};

/**
 * The fluid network: tracks active flows, assigns max-min fair rates,
 * and advances simulated time to flow completions.
 */
class FluidNetwork {
  public:
    /// Creates a network with the given per-resource capacities.
    explicit FluidNetwork(std::vector<double> capacities);

    /// Adds a flow of @p bytes with resource @p weights; returns its id.
    FlowId add_flow(double bytes, FlowWeights weights, FlowTag tag);

    /// True while the flow has bytes remaining.
    bool flow_active(FlowId id) const;

    /// Current rate of a flow (bytes/s).
    double flow_rate(FlowId id) const;

    /// Seconds until the earliest active flow completes; +inf if none.
    double time_to_next_completion() const;

    /**
     * Advances all active flows by @p dt seconds at their current
     * rates, deactivating flows that complete (remaining <= epsilon).
     */
    void advance(double dt);

    /// Sum over active flows with @p tag of rate * weight[resource].
    double resource_usage(int resource, FlowTag tag) const;

    /// Total usage of @p resource across all active flows.
    double resource_usage(int resource) const;

    /// Capacity of @p resource.
    double capacity(int resource) const { return capacities_[resource]; }

    /// Number of currently active flows.
    int num_active() const;

    /// Drops every flow (ids restart at 0) but keeps the capacities
    /// and the table's allocations — how one network object serves
    /// back-to-back programs without reallocating per program.
    void reset_flows();

  private:
    /// Recomputes all rates by progressive filling.
    void assign_rates();

    std::vector<double> capacities_;
    std::vector<Flow> flows_;
    // Ids of the active flows, ascending. Completed flows stay in
    // flows_ (ids are indices) but drop out of this list, so every
    // per-event scan costs O(active) instead of O(all flows ever
    // added). Ascending order keeps each floating-point accumulation
    // summing the same terms in the same order as a full-table scan.
    std::vector<FlowId> active_ids_;
    // assign_rates() scratch, kept across calls so the hot loop never
    // allocates once the high-water mark is reached.
    std::vector<int> unfixed_;
    std::vector<int> next_unfixed_;
    std::vector<double> left_;
};

}  // namespace elk::sim

#endif  // ELK_SIM_NETWORK_H
