/**
 * @file
 * Event-driven execution engine for ICCA chip programs.
 *
 * The engine interprets a SimProgram — the device-level program of
 * paper §4.5: a sequence of preload_async and execute calls with
 * one-way synchronization:
 *
 *  1. an execute blocks all preload_asyncs and executes that appear
 *     after it in program order until it finishes;
 *  2. preload_asyncs run sequentially in issue order;
 *  3. preload_async(i) blocks only execute(i) (done-tag wait).
 *
 * Every execute runs as a data-distribution phase (peer flow + local
 * SRAM time) followed by an execution phase (fixed local compute time
 * plus an on-demand inter-core fetch flow). Preloads are HBM flows.
 * All flows share the machine's resources through the FluidNetwork,
 * so HBM delivery and inter-core exchange contend for the fabric
 * exactly as in paper Fig. 2.
 */
#ifndef ELK_SIM_ENGINE_H
#define ELK_SIM_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/trace.h"

namespace elk::sim {

/// One operator's simulation parameters (already planned/compiled).
struct SimOp {
    int op_id = -1;
    std::string name;

    // --- preload ---
    double dram_bytes = 0.0;      ///< unique bytes read from HBM.
    double delivery_bytes = 0.0;  ///< fabric bytes delivered to cores.
    uint64_t preload_space = 0;   ///< per-core bytes while resident.

    // --- distribution (preload-state -> execute-state) ---
    double distribute_bytes = 0.0;      ///< aggregate peer bytes.
    double distribute_local_time = 0.0; ///< SRAM copy-in time.

    // --- execution ---
    double exec_local_time = 0.0;  ///< compute + SRAM-contention time.
    double fetch_bytes = 0.0;      ///< aggregate on-demand peer bytes
                                   ///< (includes reductions).
    /// Aggregate HBM bytes streamed from DRAM during execution
    /// (chunked KV consumption); contends with ongoing preloads.
    double exec_stream_dram = 0.0;
    uint64_t exec_space = 0;       ///< per-core bytes while executing.
    double flops = 0.0;
};

/// Full program: operators in execution order plus the preload order.
struct SimProgram {
    std::vector<SimOp> ops;  ///< indexed by execution order.
    /// Execution-order indices in preload issue order.
    std::vector<int> preload_order;
    /// For preload_order[r]: the execution index before which the
    /// preload_async is issued (it must wait for execute(slot-1)).
    std::vector<int> issue_slot;

    /// Builds identity preload order with slots = own exec index.
    void finalize_default_order();

    /// Sanity checks (sizes match, slots valid); panics on violation.
    void validate() const;
};

/// Runs SimPrograms on a Machine.
class Engine {
  public:
    explicit Engine(const Machine& machine) : machine_(machine) {}

    /// Simulates @p program to completion and returns the trace.
    SimResult run(const SimProgram& program) const;

  private:
    const Machine& machine_;
};

}  // namespace elk::sim

#endif  // ELK_SIM_ENGINE_H
