/**
 * @file
 * Event-driven execution engine for ICCA chip programs.
 *
 * The engine interprets a SimProgram — the device-level program of
 * paper §4.5: a sequence of preload_async and execute calls with
 * one-way synchronization:
 *
 *  1. an execute blocks all preload_asyncs and executes that appear
 *     after it in program order until it finishes;
 *  2. preload_asyncs run sequentially in issue order;
 *  3. preload_async(i) blocks only execute(i) (done-tag wait).
 *
 * Every execute runs as a data-distribution phase (peer flow + local
 * SRAM time) followed by an execution phase (fixed local compute time
 * plus an on-demand inter-core fetch flow). Preloads are HBM flows.
 * All flows share the machine's resources through the FluidNetwork,
 * so HBM delivery and inter-core exchange contend for the fabric
 * exactly as in paper Fig. 2.
 *
 * Programs run on a resumable EngineState: the serving runtime
 * advances it event by event (step) or up to a wall-clock horizon
 * (run_to), and back-to-back programs on one state keep operator
 * weights resident in SRAM so steady-state decode steps skip the HBM
 * preload. A running program can also be parked at any step()
 * boundary — its complete interpreter frame is lifted off the state so
 * another program (a high-priority request's iteration) can run on the
 * same state, and resumed later exactly where it stopped; the serving
 * runtime's preemption is built on this. Engine::run() is the one-shot
 * convenience wrapper.
 */
#ifndef ELK_SIM_ENGINE_H
#define ELK_SIM_ENGINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.h"
#include "sim/trace.h"

namespace elk::sim {

/// One operator's simulation parameters (already planned/compiled).
struct SimOp {
    int op_id = -1;
    std::string name;

    // --- preload ---
    double dram_bytes = 0.0;      ///< unique bytes read from HBM.
    double delivery_bytes = 0.0;  ///< fabric bytes delivered to cores.
    uint64_t preload_space = 0;   ///< per-core bytes while resident.

    // --- distribution (preload-state -> execute-state) ---
    double distribute_bytes = 0.0;      ///< aggregate peer bytes.
    double distribute_local_time = 0.0; ///< SRAM copy-in time.

    // --- execution ---
    double exec_local_time = 0.0;  ///< compute + SRAM-contention time.
    double fetch_bytes = 0.0;      ///< aggregate on-demand peer bytes
                                   ///< (includes reductions).
    /// Aggregate HBM bytes streamed from DRAM during execution
    /// (chunked KV consumption); contends with ongoing preloads.
    double exec_stream_dram = 0.0;
    uint64_t exec_space = 0;       ///< per-core bytes while executing.
    double flops = 0.0;
};

/// Full program: operators in execution order plus the preload order.
struct SimProgram {
    std::vector<SimOp> ops;  ///< indexed by execution order.
    /// Execution-order indices in preload issue order.
    std::vector<int> preload_order;
    /// For preload_order[r]: the execution index before which the
    /// preload_async is issued (it must wait for execute(slot-1)).
    std::vector<int> issue_slot;

    /// Builds identity preload order with slots = own exec index.
    void finalize_default_order();

    /// Sanity checks (sizes match, every op preloaded exactly once,
    /// slots in range and monotone); panics on violation.
    void validate() const;
};

/// How EngineState decides which resident entries — operator weights
/// and decode KV segments alike — survive.
enum class ResidencyPolicy {
    /// Admit in retire order while the budget lasts; evict the oldest
    /// entry first under SRAM pressure (the PR 2 behavior).
    kRetireOrder,
    /// Value-aware: an entry's worth is
    /// dram_bytes x (1 + reuse_count) / preload_space — the HBM
    /// traffic it saves per byte of SRAM it holds, scaled by how often
    /// it has actually been reused. A KV segment is scored by the same
    /// formula with its machine-total bytes as the saved HBM traffic,
    /// which reduces to core_count x (1 + reuse). Eviction (pressure
    /// or budget displacement) always takes the lowest-worth unpinned
    /// entry; admission may displace strictly lower-worth entries
    /// when the budget is full.
    kFrequencyAware,
};

/// Short name for reports ("retire-order" / "frequency").
std::string residency_policy_name(ResidencyPolicy policy);

/**
 * Resumable interpreter state for SimPrograms on one Machine.
 *
 * A state outlives individual programs: begin() loads a program at the
 * current clock, step()/run_to() advance it, finish() returns its
 * SimResult (timestamps relative to its begin). The next begin()
 * continues on the same clock, which is how the serving runtime
 * simulates back-to-back decode iterations and idle gaps.
 *
 * Residency: with a non-zero residency budget, operator weights stay
 * in SRAM after their execute completes. A subsequent program whose
 * operator matches a resident entry (same op id, HBM bytes, and
 * footprint) completes its preload instantly without touching HBM —
 * the steady-state decode fast path. Which entries are admitted and
 * which are evicted under pressure is the ResidencyPolicy. A zero
 * budget reproduces one-shot Engine::run() semantics exactly.
 *
 * Preemption: park() lifts the loaded program's whole interpreter
 * frame (network flows, phase timers, per-op timings, local clock) off
 * the state; begin()/resume() can then run other programs on the same
 * state — sharing the residency pool — and resume() puts the parked
 * frame back with its local clock intact, so the victim's remaining
 * arithmetic (and result bits) are unchanged by the interruption as
 * long as the interleaved programs leave the resident entries it uses
 * alone (entries consumed by a parked program stay pinned). While
 * parked, a program's flows are quiesced: the model is that the
 * hardware halts the victim's DMA queues at the boundary.
 *
 * KV segments: the pool's second entry class. A segment models one
 * serving request's decode KV state — per-core bytes that grow with
 * every decoded token, occupy SRAM next to resident weights, and
 * compete with them under pressure eviction. Segments are never
 * implicitly created by programs; the serving runtime drives the
 * kv_alloc/kv_grow/kv_pin/kv_free lifecycle between iterations (see
 * docs/ENGINE.md for the full contract). With no segments the
 * engine's arithmetic is bit-identical to the KV-free engine.
 */
class EngineState {
    struct Frame;  // one loaded program's interpreter state, below.

  public:
    struct Options {
        /// Per-core byte cap on weights kept resident across programs;
        /// 0 disables retention entirely.
        uint64_t residency_budget = 0;
        /// Retention/eviction policy for resident weights and KV
        /// segments.
        ResidencyPolicy policy = ResidencyPolicy::kRetireOrder;
        /// Per-core byte cap on resident KV segments; 0 = uncapped
        /// (segments still occupy SRAM, they just never spill at a
        /// budget boundary — only under pressure). The serving runtime
        /// only creates segments when its own kv_budget is non-zero,
        /// which is what keeps the default bit-identical to the
        /// KV-free engine.
        uint64_t kv_budget = 0;
    };

    explicit EngineState(const Machine& machine);
    EngineState(const Machine& machine, Options opts);

    /// Loads @p program at the current clock. Requires done(). The
    /// program must stay alive until finish(). Resident entries that
    /// are stale for this program (same op id, different preload
    /// footprint or HBM volume) are evicted here unless pinned by a
    /// parked program; entries for absent op ids stay (they may serve
    /// a later program of another class).
    void begin(const SimProgram& program);

    /// True when no program is loaded or the loaded one has finished
    /// (every execute and preload complete).
    bool done() const;

    /// Global simulation clock in seconds, monotone across programs.
    /// Internally each program runs on a zero-based local clock (so a
    /// run's arithmetic — and result bits — do not depend on when it
    /// starts); now() is the local clock plus the accumulated base.
    double now() const { return clock_base_ + f_.t; }

    /// Advances past the next event of the loaded program; returns
    /// false (and does nothing) once done().
    bool step();

    /**
     * Advances until done() or the clock reaches @p t_target. When the
     * program finishes early — or none is loaded — the clock still
     * moves to @p t_target as idle time, so the serving runtime can
     * wait for the next request arrival.
     */
    void run_to(double t_target);

    /// Finalizes the loaded program's result (requires done()) and
    /// unloads it. Timestamps are relative to its begin() call; a
    /// one-shot run from a fresh state is bit-identical to
    /// Engine::run().
    SimResult finish();

    /**
     * The lifted interpreter frame of a parked program. Move-only and
     * opaque: it is only useful to hand back to resume() on the state
     * that produced it.
     */
    class Parked {
      public:
        Parked(Parked&&) = default;
        Parked& operator=(Parked&&) = default;

      private:
        friend class EngineState;
        explicit Parked(std::unique_ptr<Frame> f) : f_(std::move(f)) {}
        std::unique_ptr<Frame> f_;
    };

    /**
     * Parks the loaded program at the current step() boundary and
     * returns its frame; the state is then idle (done()) at the same
     * global clock and can begin() other programs. The parked
     * program's local clock is frozen while it is off the state.
     * Requires a loaded, unfinished program.
     */
    Parked park();

    /**
     * Puts a parked frame back. Requires the state to be idle (the
     * interleaved program finished). The global clock keeps its
     * current value — the victim's local clock continues from where
     * park() froze it, so time spent preempted never enters its own
     * result arithmetic.
     */
    void resume(Parked&& parked);

    /// Bytes per core currently resident across programs.
    uint64_t resident_bytes() const { return resident_bytes_; }

    /// Number of operators whose weights are resident.
    int resident_ops() const { return static_cast<int>(resident_.size()); }

    /// Op ids of the resident entries, ascending (test/diagnostics).
    std::vector<int> resident_op_ids() const;

    /**
     * Adjusts the residency budget between programs. The serving
     * runtime sizes it to the measured slack (usable SRAM minus the
     * cold run's peak) after the first iteration: entries retained
     * within that slack never face pressure eviction, so they survive
     * a whole decode cycle and satisfy the next iteration's preloads.
     * Shrinking the budget stops new retention but does not evict
     * existing entries (pressure eviction still does).
     */
    void set_residency_budget(uint64_t bytes)
    {
        opts_.residency_budget = bytes;
    }

    /// Preloads satisfied from residency since construction.
    int64_t resident_hits() const { return resident_hits_; }

    /// Resident entries evicted since construction — under SRAM
    /// pressure, or displaced by a higher-worth admission under the
    /// frequency-aware policy.
    int64_t resident_evictions() const { return resident_evictions_; }

    // --- KV segments -----------------------------------------------
    //
    // A KV segment is a request's decode KV state, modeled as a
    // first-class entry of the residency pool: per-core bytes that
    // occupy SRAM next to resident weights, compete with them under
    // pressure eviction, and can be pinned (in use by a running or
    // parked iteration) or spilled to HBM (evicted). Segments are
    // created/grown/freed by the serving runtime between programs;
    // the engine owns the byte accounting and the eviction decisions.
    // A spilled segment stays owned (its bytes live in HBM) until
    // kv_free(); re-admitting it is kv_fetch(), whose HBM transfer
    // time the caller charges (see runtime::Server).

    /**
     * Creates the segment @p id at @p per_core_bytes and tries to
     * make it resident, spilling unpinned KV segments in policy order
     * while the KV budget requires it. Returns whether the segment is
     * resident (false = born spilled: the budget is exhausted by
     * pinned segments, or the segment alone exceeds it). @p id must
     * not already exist.
     */
    bool kv_alloc(int64_t id, uint64_t per_core_bytes);

    /// Re-admits a spilled segment (same spill rules as kv_alloc);
    /// true when @p id ends up resident. A resident @p id is a no-op
    /// returning true. The caller models the HBM transfer this stands
    /// for by advancing the clock (run_to) before the next program.
    bool kv_fetch(int64_t id);

    /// Grows @p id by @p per_core_bytes — one decoded token's KV, or
    /// a whole prefill chunk's worth at once: chunked prefill
    /// (runtime::ServerOptions::prefill_chunk) grows a prompt's
    /// segment chunk by chunk through this same call, so multi-token
    /// growths are first-class. A resident segment's growth can spill
    /// other unpinned segments at the budget boundary — or, when only
    /// the growing segment itself is evictable, spill the segment
    /// whole (the thrash case a tight budget produces). A spilled
    /// segment grows in HBM for free.
    void kv_grow(int64_t id, uint64_t per_core_bytes);

    /// Marks one consuming iteration: pins @p id against every form
    /// of eviction until kv_unpin(), and refreshes its recency and
    /// reuse count. Requires the segment to be resident. Pins nest
    /// (a parked victim and its interrupter both hold one).
    void kv_pin(int64_t id);

    /// Releases one kv_pin().
    void kv_unpin(int64_t id);

    /// Destroys @p id (request completed), releasing its bytes.
    /// Requires the segment to exist, be unpinned, and hold no shares;
    /// freeing an unowned, pinned, or shared segment panics.
    void kv_free(int64_t id);

    // --- shared prefix segments ------------------------------------
    //
    // A segment can additionally be a *shared prefix*: many requests
    // claim the same cached KV bytes (a common system prompt) instead
    // of each recomputing them. kv_share()/kv_release() manage the
    // refcount. Sharing does not block eviction — an unpinned shared
    // prefix can still be spilled at the budget boundary or under
    // pressure, and the serving runtime prices the re-fetch every
    // sharer then pays — but it does forbid kv_free() and kv_grow():
    // a request growing past a shared prefix must fork a private tail
    // segment (copy-on-extend) rather than mutate bytes other sharers
    // read. Under kFrequencyAware a prefix's worth scales with its
    // sharer count on top of its reuse count. With no kv_share()
    // calls every refcount is zero and the pool's arithmetic is
    // bit-identical to the share-free engine.

    /// Registers one sharer on segment @p id. Requires the segment to
    /// exist (resident or spilled).
    void kv_share(int64_t id);

    /// Releases one kv_share(). Releasing a segment with no shares
    /// panics.
    void kv_release(int64_t id);

    /// Current sharer count of @p id (0 for a private segment).
    int kv_share_count(int64_t id) const;

    /**
     * Explicitly spills the resident segment @p id to HBM — the
     * serving runtime's cache-management eviction, counted like any
     * other spill. Evicting a pinned segment (in use by a running or
     * parked iteration) panics; a shared-but-unpinned prefix is fair
     * game, its sharers pay the re-fetch. Requires residency.
     */
    void kv_evict(int64_t id);

    /// Per-core bytes of resident segments whose share count is > 0.
    uint64_t kv_shared_bytes() const { return kv_shared_bytes_; }

    /// High-water mark of kv_shared_bytes() since construction.
    uint64_t kv_shared_bytes_peak() const { return kv_shared_peak_; }

    /// True when @p id exists and currently occupies SRAM.
    bool kv_resident(int64_t id) const;

    /// Current per-core bytes of segment @p id (resident or spilled).
    uint64_t kv_segment_bytes(int64_t id) const;

    /// Admission-feasibility check for the serving runtime's
    /// backpressure: would a new segment of @p per_core_bytes fit the
    /// KV budget next to the segments that are resident right now,
    /// without spilling any of them? (Always true when uncapped.)
    bool kv_would_fit(uint64_t per_core_bytes) const;

    /// Per-core bytes of resident KV across all segments.
    uint64_t kv_bytes() const { return kv_resident_bytes_; }

    /// High-water mark of kv_bytes() since construction.
    uint64_t kv_bytes_peak() const { return kv_bytes_peak_; }

    /// Number of owned segments (resident + spilled).
    int kv_segments() const { return static_cast<int>(kv_.size()); }

    /// KV segments spilled to HBM since construction — at the KV
    /// budget boundary or under SRAM pressure.
    int64_t kv_evictions() const { return kv_evictions_; }

  private:
    /// Execution-side phase of the per-program state machine.
    enum class ExecPhase { kWaitPreload, kDistribute, kExecute, kDone };

    /// One resident weight set left behind by a completed execute.
    struct ResidentEntry {
        uint64_t space = 0;      ///< per-core bytes held.
        double dram_bytes = 0.0; ///< HBM volume the entry substitutes.
        uint64_t seq = 0;        ///< recency for oldest-first eviction.
        int64_t hits = 0;        ///< reuse count (worth under
                                 ///< kFrequencyAware).
        /// In-flight consumers among loaded/parked programs (preload
        /// skipped, execute pending) — not evictable while > 0.
        int pin_count = 0;
    };

    /// One request's decode KV state in the residency pool.
    struct KvSegment {
        uint64_t bytes = 0;  ///< per-core bytes (prompt + decoded).
        uint64_t seq = 0;    ///< recency (shared counter with weights).
        int64_t hits = 0;    ///< consuming iterations (worth under
                             ///< kFrequencyAware).
        int pin_count = 0;   ///< running/parked consumers; > 0 blocks
                             ///< every form of eviction.
        int share_count = 0; ///< prefix sharers; > 0 forbids
                             ///< kv_free()/kv_grow(), not eviction.
        bool resident = false;  ///< in SRAM (vs spilled to HBM).
    };

    /**
     * Everything the interpreter knows about one loaded program: the
     * fluid network with its in-flight flows, the exec/preload state
     * machines, per-op timings, accounting integrals, and the
     * program-local clock. begin() builds one, finish() tears it
     * down, park()/resume() move it off/onto the state whole — which
     * is what makes preemption a frame swap instead of a simulator
     * special case.
     */
    struct Frame {
        const SimProgram* program = nullptr;
        std::optional<FluidNetwork> net;
        SimResult result;
        double t = 0.0;  ///< local clock (zero at begin).
        int exec_i = 0;
        ExecPhase phase = ExecPhase::kDone;
        double phase_local_left = 0.0;
        FlowId phase_flow = -1;
        FlowId stream_flow = -1;
        double phase_start = 0.0;
        int pre_r = 0;
        FlowId pre_flow = -1;
        double pre_latency_left = 0.0;
        int pre_op = -1;
        int completed_execs = 0;
        std::vector<bool> preload_done;
        /// Per op: preload was satisfied by a residency hit (so this
        /// program owes the entry an unpin + occupancy credit at
        /// retire). Distinguishes "we consumed the entry" from "a
        /// matching entry appeared while we were parked".
        std::vector<bool> used_resident;
        bool complete = false;
        double t_complete = 0.0;  ///< local clock at completion.
        double peak = 0.0;
        double hbm_busy = 0.0;
        double fabric_preload = 0.0;
        double fabric_peer = 0.0;
        int guard = 0;
    };

    bool preload_active() const { return f_.pre_op >= 0; }
    bool exec_active() const;
    bool program_complete() const;
    /// Runs state transitions until quiescent (the event dispatch).
    void advance_transitions();
    /// Seconds until the next internal event (+inf when none).
    double event_horizon() const;
    /// Integrates accounting and moves flows/timers/clock by @p dt.
    void advance_time(double dt);
    /// Advances past one event, clipping at @p cap; false when done.
    bool step_until(double cap);
    /// True when @p entry holds exactly the bytes @p op preloads.
    static bool entry_matches(const ResidentEntry& entry, const SimOp& op);
    /// Resident worth under kFrequencyAware (saved HBM bytes per
    /// resident byte, scaled by reuse).
    static double entry_score(const ResidentEntry& entry);
    /// Pool index of op @p op_id's weight entry, -1 when absent.
    int resident_find(int op_id) const;
    /// The next weight entry the policy would evict (unpinned, lowest
    /// seq/worth); -1 when everything is pinned.
    int pick_victim();
    /// Drops the entry at @p idx from the resident set and the
    /// occupancy.
    void evict(int idx);
    /// KV analogue of entry_score: machine-total bytes saved per
    /// resident byte, scaled by reuse.
    double kv_score(const KvSegment& seg) const;
    /// Pool index of segment @p id, -1 when unowned.
    int kv_find(int64_t id) const;
    /// The resident, unpinned KV segment the policy would spill next
    /// (-1 when none), optionally excluding @p excluded_id.
    int kv_pick_victim(int64_t excluded_id = -1);
    /// Spills the segment at @p idx to HBM: bytes leave SRAM, the
    /// segment stays owned (resident = false).
    void kv_spill(int idx);
    /// Debug-build audit of the flat pools: sortedness and the
    /// running byte counters (resident_bytes_, kv_resident_bytes_)
    /// against full rescans. Compiled out under NDEBUG.
    void check_pool_invariants() const;
    /// Rebuilds f_ for the next program, salvaging the previous
    /// frame's heap blocks (flow table, per-op vectors).
    void reset_frame();
    /// Spills unpinned KV in policy order until @p need extra bytes
    /// fit the KV budget; false when pinned segments are in the way
    /// (or @p need alone exceeds the budget). @p excluded_id is never
    /// spilled. No-op true when uncapped.
    bool kv_make_room(uint64_t need, int64_t excluded_id = -1);
    /// Evicts victims — weights and KV segments compete under the
    /// policy — while per-core occupancy exceeds the machine's usable
    /// SRAM.
    void relieve_pressure();
    /// Retention decision at execute completion of op @p i.
    void retire_op(int i);

    double standalone_preload(const SimOp& op) const;
    double standalone_exec(const SimOp& op) const;
    double standalone_distribute(const SimOp& op) const;

    const Machine& machine_;
    Options opts_;

    /// Flat-pool slot of the weights class: the pools are sorted
    /// vectors (ascending key), not node-based maps — pool scans
    /// (victim picks, stale eviction, pressure relief) run on every
    /// engine step and iterate contiguous memory, and lookups are a
    /// binary search over a handful of cache lines. Ascending order
    /// matches the old std::map iteration exactly, so every policy
    /// scan visits candidates in the same order (bit-identity).
    struct ResidentSlot {
        int op_id;
        ResidentEntry entry;
    };
    /// Flat-pool slot of the KV class (sorted by request id).
    struct KvSlot {
        int64_t id;
        KvSegment seg;
    };

    // --- cross-program state ---
    double clock_base_ = 0.0;  ///< global seconds before this program.
    std::vector<ResidentSlot> resident_;  ///< sorted by op id.
    uint64_t resident_bytes_ = 0;
    uint64_t resident_seq_ = 0;
    int64_t resident_hits_ = 0;
    int64_t resident_evictions_ = 0;
    std::vector<KvSlot> kv_;  ///< sorted by request id.
    uint64_t kv_resident_bytes_ = 0;
    uint64_t kv_bytes_peak_ = 0;
    uint64_t kv_shared_bytes_ = 0;  ///< resident bytes with shares > 0.
    uint64_t kv_shared_peak_ = 0;
    int64_t kv_evictions_ = 0;
    double occupancy_ = 0.0;  ///< per-core bytes (incl. residents
                              ///< and resident KV segments).
    /// begin()'s stale-eviction scratch: (op_id, exec index) of the
    /// incoming program, sorted — reused so begin() stops allocating
    /// a lookup structure per iteration.
    std::vector<std::pair<int, int>> begin_scratch_;

    // --- the loaded program (reset by begin, swapped by park/resume)
    Frame f_;
};

/// Runs SimPrograms on a Machine.
class Engine {
  public:
    explicit Engine(const Machine& machine) : machine_(machine) {}

    /// Simulates @p program to completion on a fresh EngineState
    /// (no residency) and returns the trace.
    SimResult run(const SimProgram& program) const;

  private:
    const Machine& machine_;
};

}  // namespace elk::sim

#endif  // ELK_SIM_ENGINE_H
