#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Execution-side phase of the engine's state machine.
enum class ExecPhase { kWaitPreload, kDistribute, kExecute, kDone };

}  // namespace

void
SimProgram::finalize_default_order()
{
    preload_order.clear();
    issue_slot.clear();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        preload_order.push_back(i);
        issue_slot.push_back(i);
    }
}

void
SimProgram::validate() const
{
    util::check(preload_order.size() == ops.size(),
                "SimProgram: preload order size mismatch");
    util::check(issue_slot.size() == preload_order.size(),
                "SimProgram: issue slot size mismatch");
    std::vector<bool> seen(ops.size(), false);
    for (size_t r = 0; r < preload_order.size(); ++r) {
        int op = preload_order[r];
        util::check(op >= 0 && op < static_cast<int>(ops.size()),
                    "SimProgram: bad preload order entry");
        util::check(!seen[op], "SimProgram: duplicate preload entry");
        seen[op] = true;
        util::check(issue_slot[r] >= 0 && issue_slot[r] <= op,
                    "SimProgram: preload issued after own execute");
        if (r > 0) {
            util::check(issue_slot[r] >= issue_slot[r - 1],
                        "SimProgram: issue slots not monotone");
        }
    }
}

SimResult
Engine::run(const SimProgram& program) const
{
    program.validate();
    const hw::ChipConfig& cfg = machine_.config();
    const int n = static_cast<int>(program.ops.size());
    const int num_preloads = static_cast<int>(program.preload_order.size());

    FluidNetwork net(machine_.capacities());

    SimResult result;
    result.timing.assign(n, {});
    for (int i = 0; i < n; ++i) {
        result.timing[i].op_id = program.ops[i].op_id;
    }

    // --- state ---
    double t = 0.0;
    int exec_i = 0;
    ExecPhase phase = n > 0 ? ExecPhase::kWaitPreload : ExecPhase::kDone;
    double phase_local_left = 0.0;   // local timer of the current phase
    FlowId phase_flow = -1;          // peer flow of the current phase
    FlowId stream_flow = -1;         // exec-phase HBM stream flow
    double phase_start = 0.0;

    int pre_r = 0;                   // next preload_order entry to issue
    FlowId pre_flow = -1;
    double pre_latency_left = 0.0;   // HBM access latency before flow
    int pre_op = -1;                 // op currently preloading
    int completed_execs = 0;
    std::vector<bool> preload_done(n, false);

    double occupancy = 0.0;          // per-core bytes
    double peak = 0.0;

    // --- accounting integrals ---
    double hbm_busy = 0.0;
    double fabric_preload = 0.0;
    double fabric_peer = 0.0;
    const int pre_fab = machine_.fabric_resource_for_preload();
    const int peer_fab = machine_.fabric_resource_for_peer();

    auto preload_active = [&] {
        return pre_op >= 0;
    };
    auto exec_active = [&] {
        return phase == ExecPhase::kDistribute ||
               phase == ExecPhase::kExecute;
    };

    // Standalone (contention-free) durations, for stall attribution.
    auto standalone_preload = [&](const SimOp& op) {
        double dram = op.dram_bytes / cfg.hbm_total_bw;
        double fabric = op.delivery_bytes / machine_.delivery_capacity();
        return cfg.hbm_access_latency_s + std::max(dram, fabric);
    };
    auto standalone_exec = [&](const SimOp& op) {
        return std::max({op.exec_local_time,
                         op.fetch_bytes / machine_.peer_capacity(),
                         op.exec_stream_dram / cfg.hbm_total_bw});
    };
    auto standalone_distribute = [&](const SimOp& op) {
        return std::max(op.distribute_local_time,
                        op.distribute_bytes / machine_.peer_capacity());
    };

    int guard = 0;
    const int guard_limit = 64 * (n + 1) + 1024;

    while (phase != ExecPhase::kDone || pre_r < num_preloads ||
           preload_active()) {
        util::check(++guard < guard_limit, "Engine: no forward progress");

        // ---- state transitions (repeat until quiescent) ----
        bool moved = true;
        while (moved) {
            moved = false;

            // Issue the next preload when its slot's predecessors are
            // done and the previous preload finished.
            if (!preload_active() && pre_r < num_preloads) {
                int op_idx = program.preload_order[pre_r];
                int slot = program.issue_slot[pre_r];
                if (completed_execs >= slot) {
                    const SimOp& op = program.ops[op_idx];
                    result.timing[op_idx].pre_start = t;
                    if (op.dram_bytes <= 0.0) {
                        result.timing[op_idx].pre_end = t;
                        preload_done[op_idx] = true;
                        occupancy += static_cast<double>(op.preload_space);
                        ++pre_r;
                    } else {
                        pre_op = op_idx;
                        pre_latency_left = cfg.hbm_access_latency_s;
                        occupancy += static_cast<double>(op.preload_space);
                        ++pre_r;
                    }
                    peak = std::max(peak, occupancy);
                    moved = true;
                    continue;
                }
            }

            // Preload latency elapsed: start the HBM flow.
            if (preload_active() && pre_flow < 0 &&
                pre_latency_left <= 0.0) {
                const SimOp& op = program.ops[pre_op];
                pre_flow = net.add_flow(
                    op.dram_bytes,
                    machine_.preload_weights(op.dram_bytes,
                                             op.delivery_bytes),
                    FlowTag::kHbmPreload);
                moved = true;
                continue;
            }

            // Preload flow completed.
            if (preload_active() && pre_flow >= 0 &&
                !net.flow_active(pre_flow)) {
                result.timing[pre_op].pre_end = t;
                result.interconnect_stall +=
                    std::max(0.0, (t - result.timing[pre_op].pre_start) -
                                      standalone_preload(
                                          program.ops[pre_op]));
                preload_done[pre_op] = true;
                pre_op = -1;
                pre_flow = -1;
                moved = true;
                continue;
            }

            // Execute side transitions.
            if (phase == ExecPhase::kWaitPreload && exec_i < n &&
                preload_done[exec_i]) {
                const SimOp& op = program.ops[exec_i];
                result.timing[exec_i].exec_start = t;
                occupancy += static_cast<double>(op.exec_space) -
                             static_cast<double>(op.preload_space);
                peak = std::max(peak, occupancy);
                phase = ExecPhase::kDistribute;
                phase_start = t;
                phase_local_left = op.distribute_local_time;
                phase_flow =
                    op.distribute_bytes > 0
                        ? net.add_flow(op.distribute_bytes,
                                       machine_.peer_weights(),
                                       FlowTag::kDistribute)
                        : -1;
                moved = true;
                continue;
            }
            if (phase == ExecPhase::kDistribute &&
                phase_local_left <= 0.0 &&
                (phase_flow < 0 || !net.flow_active(phase_flow))) {
                const SimOp& op = program.ops[exec_i];
                result.interconnect_stall += std::max(
                    0.0, (t - phase_start) - standalone_distribute(op));
                phase = ExecPhase::kExecute;
                phase_start = t;
                phase_local_left = op.exec_local_time;
                phase_flow = op.fetch_bytes > 0
                                 ? net.add_flow(op.fetch_bytes,
                                                machine_.peer_weights(),
                                                FlowTag::kExecFetch)
                                 : -1;
                // Chunked streamed operands keep drawing their HBM
                // bytes while executing, contending with preloads.
                stream_flow =
                    op.exec_stream_dram > 0
                        ? net.add_flow(
                              op.exec_stream_dram,
                              machine_.preload_weights(
                                  op.exec_stream_dram,
                                  op.exec_stream_dram),
                              FlowTag::kHbmPreload)
                        : -1;
                moved = true;
                continue;
            }
            if (phase == ExecPhase::kExecute && phase_local_left <= 0.0 &&
                (phase_flow < 0 || !net.flow_active(phase_flow)) &&
                (stream_flow < 0 || !net.flow_active(stream_flow))) {
                const SimOp& op = program.ops[exec_i];
                result.timing[exec_i].exec_end = t;
                result.interconnect_stall += std::max(
                    0.0, (t - phase_start) - standalone_exec(op));
                occupancy -= static_cast<double>(op.exec_space);
                ++completed_execs;
                ++exec_i;
                phase_flow = -1;
                stream_flow = -1;
                if (exec_i >= n) {
                    phase = ExecPhase::kDone;
                } else {
                    phase = ExecPhase::kWaitPreload;
                }
                moved = true;
                continue;
            }
        }

        if (phase == ExecPhase::kDone && pre_r >= num_preloads &&
            !preload_active()) {
            break;
        }

        // ---- determine the next event horizon ----
        double dt = net.time_to_next_completion();
        if (preload_active() && pre_flow < 0 && pre_latency_left > 0) {
            dt = std::min(dt, pre_latency_left);
        }
        if ((phase == ExecPhase::kDistribute ||
             phase == ExecPhase::kExecute) &&
            phase_local_left > 0) {
            dt = std::min(dt, phase_local_left);
        }
        util::check(std::isfinite(dt) && dt >= 0,
                    "Engine: stalled with no pending event");
        dt = std::max(dt, 0.0);

        // ---- integrate accounting over dt ----
        if (dt > 0) {
            double hbm_cap = net.capacity(Resources::kHbmDram);
            hbm_busy +=
                dt * net.resource_usage(Resources::kHbmDram) / hbm_cap;
            fabric_preload +=
                dt * net.resource_usage(pre_fab, FlowTag::kHbmPreload);
            fabric_peer +=
                dt * (net.resource_usage(peer_fab, FlowTag::kDistribute) +
                      net.resource_usage(peer_fab, FlowTag::kExecFetch));
            bool e = exec_active();
            bool p = preload_active();
            if (e && p) {
                result.overlapped += dt;
            } else if (e) {
                result.execute_only += dt;
            } else {
                result.preload_only += dt;
            }
        }

        // ---- advance ----
        net.advance(dt);
        if (preload_active() && pre_flow < 0) {
            pre_latency_left -= dt;
        }
        if ((phase == ExecPhase::kDistribute ||
             phase == ExecPhase::kExecute) &&
            phase_local_left > 0) {
            phase_local_left -= dt;
        }
        t += dt;
    }

    // ---- final metrics ----
    result.total_time = t;
    double total_flops = 0.0;
    for (const auto& op : program.ops) {
        total_flops += op.flops;
    }
    if (t > 0) {
        result.hbm_util = hbm_busy / t;
        result.noc_util_preload = fabric_preload / t;
        result.noc_util_peer = fabric_peer / t;
        result.noc_util = result.noc_util_preload + result.noc_util_peer;
        result.achieved_tflops = total_flops / t / 1e12;
    }
    result.peak_sram_per_core = static_cast<uint64_t>(peak);
    result.memory_exceeded =
        result.peak_sram_per_core > cfg.usable_sram_per_core();
    return result;
}

}  // namespace elk::sim
