#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void
SimProgram::finalize_default_order()
{
    preload_order.clear();
    issue_slot.clear();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        preload_order.push_back(i);
        issue_slot.push_back(i);
    }
}

void
SimProgram::validate() const
{
    const int n = static_cast<int>(ops.size());
    util::check(preload_order.size() == ops.size(),
                "SimProgram: preload order size mismatch");
    util::check(issue_slot.size() == preload_order.size(),
                "SimProgram: issue slot size mismatch");
    std::vector<bool> seen(ops.size(), false);
    for (size_t r = 0; r < preload_order.size(); ++r) {
        int op = preload_order[r];
        util::check(op >= 0 && op < n,
                    "SimProgram: bad preload order entry");
        util::check(!seen[op], "SimProgram: duplicate preload entry");
        seen[op] = true;
        util::check(issue_slot[r] >= 0 && issue_slot[r] <= n,
                    "SimProgram: issue slot past program end");
        util::check(issue_slot[r] <= op,
                    "SimProgram: preload issued after own execute");
        if (r > 0) {
            util::check(issue_slot[r] >= issue_slot[r - 1],
                        "SimProgram: issue slots not monotone");
        }
    }
}

std::string
residency_policy_name(ResidencyPolicy policy)
{
    switch (policy) {
        case ResidencyPolicy::kRetireOrder:
            return "retire-order";
        case ResidencyPolicy::kFrequencyAware:
            return "frequency";
    }
    util::fatal("unknown residency policy");
}

// ---------------------------------------------------------------------------
// EngineState

EngineState::EngineState(const Machine& machine)
    : EngineState(machine, Options())
{
}

EngineState::EngineState(const Machine& machine, Options opts)
    : machine_(machine), opts_(opts)
{
}

bool
EngineState::exec_active() const
{
    return f_.phase == ExecPhase::kDistribute ||
           f_.phase == ExecPhase::kExecute;
}

bool
EngineState::program_complete() const
{
    return f_.phase == ExecPhase::kDone &&
           f_.pre_r >= static_cast<int>(f_.program->preload_order.size()) &&
           !preload_active();
}

bool
EngineState::done() const
{
    return f_.program == nullptr || f_.complete;
}

void
EngineState::begin(const SimProgram& program)
{
    util::check(done(), "EngineState: begin() while a program is running");
    program.validate();
    const int n = static_cast<int>(program.ops.size());

    // Evict resident entries this program would stale-hit: the op id
    // is present but was compiled to a different preload footprint /
    // HBM volume (e.g. a different batch bucket's plan). Entries for
    // op ids the program does not mention stay — they may belong to
    // another program class sharing the pool (prefill vs decode use
    // disjoint id spaces) — and pinned entries always stay: they are
    // in use by a parked program.
    if (!resident_.empty()) {
        std::map<int, int> by_id;  // op_id -> exec index
        for (int i = 0; i < n; ++i) {
            by_id.emplace(program.ops[i].op_id, i);
        }
        for (auto it = resident_.begin(); it != resident_.end();) {
            auto hit = by_id.find(it->first);
            bool stale = hit != by_id.end() &&
                         !entry_matches(it->second, program.ops[hit->second]);
            if (stale && it->second.pin_count == 0) {
                occupancy_ -= static_cast<double>(it->second.space);
                resident_bytes_ -= it->second.space;
                it = resident_.erase(it);
            } else {
                ++it;
            }
        }
    }

    clock_base_ += f_.t;  // previous program's span becomes history
    f_ = Frame{};
    f_.program = &program;
    f_.net.emplace(machine_.capacities());
    f_.result.timing.assign(n, {});
    for (int i = 0; i < n; ++i) {
        f_.result.timing[i].op_id = program.ops[i].op_id;
    }
    f_.phase = n > 0 ? ExecPhase::kWaitPreload : ExecPhase::kDone;
    f_.preload_done.assign(n, false);
    f_.used_resident.assign(n, false);
    f_.peak = occupancy_;
    if (program_complete()) {
        f_.complete = true;
    }
}

EngineState::Parked
EngineState::park()
{
    util::check(f_.program != nullptr,
                "EngineState: park() without a program");
    util::check(!f_.complete,
                "EngineState: park() after completion; finish() instead");
    // Fold the parked local clock into the base so the idle state sits
    // at the same global now (its fresh frame's local clock is zero).
    clock_base_ += f_.t;
    auto frame = std::make_unique<Frame>(std::move(f_));
    f_ = Frame{};
    return Parked(std::move(frame));
}

void
EngineState::resume(Parked&& parked)
{
    util::check(f_.program == nullptr,
                "EngineState: resume() while a program is loaded");
    util::check(parked.f_ != nullptr && parked.f_->program != nullptr,
                "EngineState: resume() of an empty parked frame");
    // Keep the global clock: the victim's local clock continues from
    // where park() froze it.
    clock_base_ = (clock_base_ + f_.t) - parked.f_->t;
    f_ = std::move(*parked.f_);
    parked.f_.reset();
}

double
EngineState::standalone_preload(const SimOp& op) const
{
    const hw::ChipConfig& cfg = machine_.config();
    double dram = op.dram_bytes / cfg.hbm_total_bw;
    double fabric = op.delivery_bytes / machine_.delivery_capacity();
    return cfg.hbm_access_latency_s + std::max(dram, fabric);
}

double
EngineState::standalone_exec(const SimOp& op) const
{
    return std::max({op.exec_local_time,
                     op.fetch_bytes / machine_.peer_capacity(),
                     op.exec_stream_dram / machine_.config().hbm_total_bw});
}

double
EngineState::standalone_distribute(const SimOp& op) const
{
    return std::max(op.distribute_local_time,
                    op.distribute_bytes / machine_.peer_capacity());
}

bool
EngineState::entry_matches(const ResidentEntry& entry, const SimOp& op)
{
    return entry.space == op.preload_space &&
           entry.dram_bytes == op.dram_bytes;
}

double
EngineState::entry_score(const ResidentEntry& entry)
{
    return entry.dram_bytes * (1.0 + static_cast<double>(entry.hits)) /
           static_cast<double>(entry.space);
}

double
EngineState::kv_score(const KvSegment& seg) const
{
    // The segment substitutes streaming its machine-total bytes back
    // from HBM; per resident byte that is the core count. Same units
    // as entry_score, so weights and KV compare directly.
    return static_cast<double>(machine_.config().total_cores()) *
           (1.0 + static_cast<double>(seg.hits));
}

std::map<int64_t, EngineState::KvSegment>::iterator
EngineState::kv_pick_victim(int64_t excluded_id)
{
    auto victim = kv_.end();
    for (auto it = kv_.begin(); it != kv_.end(); ++it) {
        if (!it->second.resident || it->second.pin_count > 0 ||
            it->first == excluded_id) {
            continue;
        }
        if (victim == kv_.end()) {
            victim = it;
            continue;
        }
        bool better;
        if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double s = kv_score(it->second);
            double v = kv_score(victim->second);
            better = s < v ||
                     (s == v && it->second.seq < victim->second.seq);
        } else {
            better = it->second.seq < victim->second.seq;
        }
        if (better) {
            victim = it;
        }
    }
    return victim;
}

void
EngineState::kv_spill(std::map<int64_t, KvSegment>::iterator victim)
{
    victim->second.resident = false;
    kv_resident_bytes_ -= victim->second.bytes;
    occupancy_ -= static_cast<double>(victim->second.bytes);
    ++kv_evictions_;
}

bool
EngineState::kv_make_room(uint64_t need, int64_t excluded_id)
{
    if (opts_.kv_budget == 0) {
        return true;
    }
    if (need > opts_.kv_budget) {
        return false;
    }
    while (kv_resident_bytes_ + need > opts_.kv_budget) {
        auto victim = kv_pick_victim(excluded_id);
        if (victim == kv_.end()) {
            return false;  // only pinned (or excluded) segments left
        }
        kv_spill(victim);
    }
    return true;
}

bool
EngineState::kv_alloc(int64_t id, uint64_t per_core_bytes)
{
    util::check(kv_.find(id) == kv_.end(),
                "EngineState: kv_alloc() of an existing segment");
    KvSegment seg;
    seg.bytes = per_core_bytes;
    seg.seq = resident_seq_++;
    auto it = kv_.emplace(id, seg).first;
    if (kv_make_room(per_core_bytes, id)) {
        it->second.resident = true;
        kv_resident_bytes_ += per_core_bytes;
        occupancy_ += static_cast<double>(per_core_bytes);
        kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    }
    // Pressure relief may spill the newcomer right back out (it is
    // unpinned and freshest); report what actually stuck.
    relieve_pressure();
    return it->second.resident;
}

bool
EngineState::kv_fetch(int64_t id)
{
    auto it = kv_.find(id);
    util::check(it != kv_.end(),
                "EngineState: kv_fetch() of an unowned segment");
    KvSegment& seg = it->second;
    if (seg.resident) {
        return true;
    }
    seg.seq = resident_seq_++;
    if (!kv_make_room(seg.bytes, id)) {
        return false;
    }
    seg.resident = true;
    kv_resident_bytes_ += seg.bytes;
    occupancy_ += static_cast<double>(seg.bytes);
    kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    relieve_pressure();
    return seg.resident;
}

void
EngineState::kv_grow(int64_t id, uint64_t per_core_bytes)
{
    auto it = kv_.find(id);
    util::check(it != kv_.end(),
                "EngineState: kv_grow() of an unowned segment");
    KvSegment& seg = it->second;
    seg.bytes += per_core_bytes;
    if (!seg.resident) {
        return;  // grows in HBM for free
    }
    kv_resident_bytes_ += per_core_bytes;
    occupancy_ += static_cast<double>(per_core_bytes);
    if (opts_.kv_budget != 0 && kv_resident_bytes_ > opts_.kv_budget &&
        !kv_make_room(0, id)) {
        // Nothing else can move: spill the growing segment itself —
        // unless a pin (a parked consumer) forbids it, in which case
        // the overshoot stands until the pin drops.
        if (seg.pin_count == 0) {
            kv_spill(it);
        }
    }
    if (seg.resident) {
        kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    }
    relieve_pressure();
}

void
EngineState::kv_pin(int64_t id)
{
    auto it = kv_.find(id);
    util::check(it != kv_.end() && it->second.resident,
                "EngineState: kv_pin() needs a resident segment");
    ++it->second.pin_count;
    ++it->second.hits;
    it->second.seq = resident_seq_++;
}

void
EngineState::kv_unpin(int64_t id)
{
    auto it = kv_.find(id);
    util::check(it != kv_.end() && it->second.pin_count > 0,
                "EngineState: kv_unpin() without a pin");
    --it->second.pin_count;
}

void
EngineState::kv_free(int64_t id)
{
    auto it = kv_.find(id);
    util::check(it != kv_.end(),
                "EngineState: kv_free() of an unowned segment");
    util::check(it->second.pin_count == 0,
                "EngineState: kv_free() of a pinned segment");
    if (it->second.resident) {
        kv_resident_bytes_ -= it->second.bytes;
        occupancy_ -= static_cast<double>(it->second.bytes);
    }
    kv_.erase(it);
}

bool
EngineState::kv_resident(int64_t id) const
{
    auto it = kv_.find(id);
    return it != kv_.end() && it->second.resident;
}

uint64_t
EngineState::kv_segment_bytes(int64_t id) const
{
    auto it = kv_.find(id);
    util::check(it != kv_.end(),
                "EngineState: kv_segment_bytes() of an unowned segment");
    return it->second.bytes;
}

bool
EngineState::kv_would_fit(uint64_t per_core_bytes) const
{
    return opts_.kv_budget == 0 ||
           kv_resident_bytes_ + per_core_bytes <= opts_.kv_budget;
}

std::map<int, EngineState::ResidentEntry>::iterator
EngineState::pick_victim()
{
    auto victim = resident_.end();
    for (auto it = resident_.begin(); it != resident_.end(); ++it) {
        if (it->second.pin_count > 0) {
            continue;
        }
        if (victim == resident_.end()) {
            victim = it;
            continue;
        }
        bool better;
        if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double s = entry_score(it->second);
            double v = entry_score(victim->second);
            better = s < v ||
                     (s == v && it->second.seq < victim->second.seq);
        } else {
            better = it->second.seq < victim->second.seq;
        }
        if (better) {
            victim = it;
        }
    }
    return victim;
}

void
EngineState::evict(std::map<int, ResidentEntry>::iterator victim)
{
    occupancy_ -= static_cast<double>(victim->second.space);
    resident_bytes_ -= victim->second.space;
    resident_.erase(victim);
    ++resident_evictions_;
}

void
EngineState::relieve_pressure()
{
    if (resident_.empty() && kv_.empty()) {
        return;
    }
    const double limit =
        static_cast<double>(machine_.config().usable_sram_per_core());
    while (occupancy_ > limit) {
        // Weights and KV segments compete: the policy's best victim
        // across both classes goes first (lower seq under retire
        // order, lower worth under frequency-aware, ties by seq —
        // the seq counter is shared, so ties cannot cross classes).
        auto w = pick_victim();
        auto k = kv_pick_victim();
        bool have_w = w != resident_.end();
        bool have_k = k != kv_.end();
        if (!have_w && !have_k) {
            break;  // everything left is pinned by running programs
        }
        bool take_kv;
        if (!have_w || !have_k) {
            take_kv = have_k;
        } else if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double ws = entry_score(w->second);
            double ks = kv_score(k->second);
            take_kv = ks < ws ||
                      (ks == ws && k->second.seq < w->second.seq);
        } else {
            take_kv = k->second.seq < w->second.seq;
        }
        if (take_kv) {
            kv_spill(k);
        } else {
            evict(w);
        }
    }
}

void
EngineState::retire_op(int i)
{
    const SimOp& op = f_.program->ops[i];
    occupancy_ -= static_cast<double>(op.exec_space);
    if (f_.used_resident[i]) {
        // This program's preload consumed the entry: one consumer
        // done, weights stay in place, refreshed for recency-based
        // eviction. The entry is pinned, so it cannot have vanished.
        auto it = resident_.find(op.op_id);
        util::check(it != resident_.end(),
                    "EngineState: consumed resident entry vanished");
        it->second.pin_count = std::max(0, it->second.pin_count - 1);
        it->second.seq = resident_seq_++;
        occupancy_ += static_cast<double>(op.preload_space);
        return;
    }
    if (resident_.find(op.op_id) != resident_.end()) {
        // An entry under this id appeared independently (admitted by
        // an interleaved program while we were parked, or a stale one
        // belonging to a parked program). This op preloaded its own
        // copy, which is simply dropped: re-crediting preload_space
        // here would double-count the entry's bytes.
        return;
    }
    if (opts_.residency_budget == 0 || op.preload_space == 0 ||
        op.dram_bytes <= 0.0) {
        return;
    }
    if (resident_bytes_ + op.preload_space > opts_.residency_budget &&
        opts_.policy == ResidencyPolicy::kFrequencyAware) {
        // Budget full: displace strictly lower-worth entries to make
        // room for a higher-worth candidate (a fresh candidate scores
        // with reuse count zero). Only if displacing them actually
        // frees enough space — otherwise evicting would be pure loss
        // with no admission.
        ResidentEntry candidate;
        candidate.space = op.preload_space;
        candidate.dram_bytes = op.dram_bytes;
        const double cand_score = entry_score(candidate);
        uint64_t displaceable = 0;
        for (const auto& [id, entry] : resident_) {
            if (entry.pin_count == 0 && entry_score(entry) < cand_score) {
                displaceable += entry.space;
            }
        }
        if (resident_bytes_ - displaceable + op.preload_space <=
            opts_.residency_budget) {
            while (resident_bytes_ + op.preload_space >
                   opts_.residency_budget) {
                auto victim = pick_victim();
                if (victim == resident_.end() ||
                    entry_score(victim->second) >= cand_score) {
                    break;  // unreachable given the feasibility check
                }
                evict(victim);
            }
        }
    }
    if (resident_bytes_ + op.preload_space <= opts_.residency_budget) {
        ResidentEntry entry;
        entry.space = op.preload_space;
        entry.dram_bytes = op.dram_bytes;
        entry.seq = resident_seq_++;
        resident_.emplace(op.op_id, entry);
        resident_bytes_ += op.preload_space;
        occupancy_ += static_cast<double>(op.preload_space);
    }
}

std::vector<int>
EngineState::resident_op_ids() const
{
    std::vector<int> ids;
    ids.reserve(resident_.size());
    for (const auto& [id, entry] : resident_) {
        ids.push_back(id);
    }
    return ids;
}

void
EngineState::advance_transitions()
{
    const SimProgram& program = *f_.program;
    const hw::ChipConfig& cfg = machine_.config();
    const int n = static_cast<int>(program.ops.size());
    const int num_preloads = static_cast<int>(program.preload_order.size());

    bool moved = true;
    while (moved) {
        moved = false;

        // Issue the next preload when its slot's predecessors are done
        // and the previous preload finished.
        if (!preload_active() && f_.pre_r < num_preloads) {
            int op_idx = program.preload_order[f_.pre_r];
            int slot = program.issue_slot[f_.pre_r];
            if (f_.completed_execs >= slot) {
                const SimOp& op = program.ops[op_idx];
                f_.result.timing[op_idx].pre_start = f_.t;
                auto res = resident_.find(op.op_id);
                if (res != resident_.end() &&
                    entry_matches(res->second, op)) {
                    // Weights already in SRAM from an earlier program:
                    // the preload completes instantly with no HBM
                    // traffic. Pin the entry until the execute retires
                    // so pressure eviction cannot take it first.
                    ++res->second.pin_count;
                    ++res->second.hits;
                    ++resident_hits_;
                    f_.result.timing[op_idx].pre_end = f_.t;
                    f_.preload_done[op_idx] = true;
                    f_.used_resident[op_idx] = true;
                    ++f_.pre_r;
                } else if (op.dram_bytes <= 0.0) {
                    f_.result.timing[op_idx].pre_end = f_.t;
                    f_.preload_done[op_idx] = true;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++f_.pre_r;
                } else {
                    f_.pre_op = op_idx;
                    f_.pre_latency_left = cfg.hbm_access_latency_s;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++f_.pre_r;
                }
                relieve_pressure();
                f_.peak = std::max(f_.peak, occupancy_);
                moved = true;
                continue;
            }
        }

        // Preload latency elapsed: start the HBM flow.
        if (preload_active() && f_.pre_flow < 0 &&
            f_.pre_latency_left <= 0.0) {
            const SimOp& op = program.ops[f_.pre_op];
            f_.pre_flow = f_.net->add_flow(
                op.dram_bytes,
                machine_.preload_weights(op.dram_bytes, op.delivery_bytes),
                FlowTag::kHbmPreload);
            moved = true;
            continue;
        }

        // Preload flow completed.
        if (preload_active() && f_.pre_flow >= 0 &&
            !f_.net->flow_active(f_.pre_flow)) {
            f_.result.timing[f_.pre_op].pre_end = f_.t;
            f_.result.interconnect_stall += std::max(
                0.0, (f_.t - f_.result.timing[f_.pre_op].pre_start) -
                         standalone_preload(program.ops[f_.pre_op]));
            f_.preload_done[f_.pre_op] = true;
            f_.pre_op = -1;
            f_.pre_flow = -1;
            moved = true;
            continue;
        }

        // Execute side transitions.
        if (f_.phase == ExecPhase::kWaitPreload && f_.exec_i < n &&
            f_.preload_done[f_.exec_i]) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.timing[f_.exec_i].exec_start = f_.t;
            occupancy_ += static_cast<double>(op.exec_space) -
                          static_cast<double>(op.preload_space);
            relieve_pressure();
            f_.peak = std::max(f_.peak, occupancy_);
            f_.phase = ExecPhase::kDistribute;
            f_.phase_start = f_.t;
            f_.phase_local_left = op.distribute_local_time;
            f_.phase_flow =
                op.distribute_bytes > 0
                    ? f_.net->add_flow(op.distribute_bytes,
                                       machine_.peer_weights(),
                                       FlowTag::kDistribute)
                    : -1;
            moved = true;
            continue;
        }
        if (f_.phase == ExecPhase::kDistribute &&
            f_.phase_local_left <= 0.0 &&
            (f_.phase_flow < 0 || !f_.net->flow_active(f_.phase_flow))) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.interconnect_stall += std::max(
                0.0, (f_.t - f_.phase_start) - standalone_distribute(op));
            f_.phase = ExecPhase::kExecute;
            f_.phase_start = f_.t;
            f_.phase_local_left = op.exec_local_time;
            f_.phase_flow = op.fetch_bytes > 0
                                ? f_.net->add_flow(op.fetch_bytes,
                                                   machine_.peer_weights(),
                                                   FlowTag::kExecFetch)
                                : -1;
            // Chunked streamed operands keep drawing their HBM bytes
            // while executing, contending with preloads.
            f_.stream_flow =
                op.exec_stream_dram > 0
                    ? f_.net->add_flow(op.exec_stream_dram,
                                       machine_.preload_weights(
                                           op.exec_stream_dram,
                                           op.exec_stream_dram),
                                       FlowTag::kHbmPreload)
                    : -1;
            moved = true;
            continue;
        }
        if (f_.phase == ExecPhase::kExecute && f_.phase_local_left <= 0.0 &&
            (f_.phase_flow < 0 || !f_.net->flow_active(f_.phase_flow)) &&
            (f_.stream_flow < 0 || !f_.net->flow_active(f_.stream_flow))) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.timing[f_.exec_i].exec_end = f_.t;
            f_.result.interconnect_stall +=
                std::max(0.0, (f_.t - f_.phase_start) - standalone_exec(op));
            retire_op(f_.exec_i);
            ++f_.completed_execs;
            ++f_.exec_i;
            f_.phase_flow = -1;
            f_.stream_flow = -1;
            if (f_.exec_i >= n) {
                f_.phase = ExecPhase::kDone;
            } else {
                f_.phase = ExecPhase::kWaitPreload;
            }
            moved = true;
            continue;
        }
    }
}

double
EngineState::event_horizon() const
{
    double dt = f_.net->time_to_next_completion();
    if (preload_active() && f_.pre_flow < 0 && f_.pre_latency_left > 0) {
        dt = std::min(dt, f_.pre_latency_left);
    }
    if (exec_active() && f_.phase_local_left > 0) {
        dt = std::min(dt, f_.phase_local_left);
    }
    return dt;
}

void
EngineState::advance_time(double dt)
{
    if (dt > 0) {
        const int pre_fab = machine_.fabric_resource_for_preload();
        const int peer_fab = machine_.fabric_resource_for_peer();
        double hbm_cap = f_.net->capacity(Resources::kHbmDram);
        f_.hbm_busy +=
            dt * f_.net->resource_usage(Resources::kHbmDram) / hbm_cap;
        f_.fabric_preload +=
            dt * f_.net->resource_usage(pre_fab, FlowTag::kHbmPreload);
        f_.fabric_peer +=
            dt * (f_.net->resource_usage(peer_fab, FlowTag::kDistribute) +
                  f_.net->resource_usage(peer_fab, FlowTag::kExecFetch));
        bool e = exec_active();
        bool p = preload_active();
        if (e && p) {
            f_.result.overlapped += dt;
        } else if (e) {
            f_.result.execute_only += dt;
        } else {
            f_.result.preload_only += dt;
        }
    }

    f_.net->advance(dt);
    if (preload_active() && f_.pre_flow < 0) {
        f_.pre_latency_left -= dt;
    }
    if (exec_active() && f_.phase_local_left > 0) {
        f_.phase_local_left -= dt;
    }
    f_.t += dt;
}

bool
EngineState::step_until(double cap)
{
    if (done()) {
        return false;
    }
    advance_transitions();
    if (program_complete()) {
        f_.complete = true;
        f_.t_complete = f_.t;
        return false;
    }
    const int n = static_cast<int>(f_.program->ops.size());
    util::check(++f_.guard < 64 * (n + 1) + 1024,
                "Engine: no forward progress");
    double dt = event_horizon();
    util::check(std::isfinite(dt) && dt >= 0,
                "Engine: stalled with no pending event");
    dt = std::max(dt, 0.0);
    if (f_.t + dt > cap) {
        // Clipped at the caller's horizon: this is not an engine
        // event, so it does not count against the progress guard.
        dt = std::max(cap - f_.t, 0.0);
        --f_.guard;
    }
    advance_time(dt);
    return true;
}

bool
EngineState::step()
{
    return step_until(kInf);
}

void
EngineState::run_to(double t_target)
{
    const double cap = t_target - clock_base_;  // local horizon
    while (!done() && f_.t < cap) {
        if (!step_until(cap)) {
            break;
        }
    }
    if (done() && f_.t < cap) {
        f_.t = cap;  // idle until the horizon
    }
}

SimResult
EngineState::finish()
{
    util::check(f_.program != nullptr,
                "EngineState: finish() without a program");
    util::check(f_.complete, "EngineState: finish() before completion");
    const double total = f_.t_complete;
    f_.result.total_time = total;
    double total_flops = 0.0;
    for (const auto& op : f_.program->ops) {
        total_flops += op.flops;
    }
    if (total > 0) {
        f_.result.hbm_util = f_.hbm_busy / total;
        f_.result.noc_util_preload = f_.fabric_preload / total;
        f_.result.noc_util_peer = f_.fabric_peer / total;
        f_.result.noc_util =
            f_.result.noc_util_preload + f_.result.noc_util_peer;
        f_.result.achieved_tflops = total_flops / total / 1e12;
    }
    f_.result.peak_sram_per_core = static_cast<uint64_t>(f_.peak);
    f_.result.memory_exceeded = f_.result.peak_sram_per_core >
                                machine_.config().usable_sram_per_core();
    SimResult out = std::move(f_.result);
    f_.result = SimResult{};
    f_.program = nullptr;
    f_.net.reset();
    return out;
}

// ---------------------------------------------------------------------------
// Engine

SimResult
Engine::run(const SimProgram& program) const
{
    EngineState state(machine_);
    state.begin(program);
    while (state.step()) {
    }
    return state.finish();
}

}  // namespace elk::sim
