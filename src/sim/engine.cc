#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void
SimProgram::finalize_default_order()
{
    preload_order.clear();
    issue_slot.clear();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        preload_order.push_back(i);
        issue_slot.push_back(i);
    }
}

void
SimProgram::validate() const
{
    const int n = static_cast<int>(ops.size());
    util::check(preload_order.size() == ops.size(),
                "SimProgram: preload order size mismatch");
    util::check(issue_slot.size() == preload_order.size(),
                "SimProgram: issue slot size mismatch");
    std::vector<bool> seen(ops.size(), false);
    for (size_t r = 0; r < preload_order.size(); ++r) {
        int op = preload_order[r];
        util::check(op >= 0 && op < n,
                    "SimProgram: bad preload order entry");
        util::check(!seen[op], "SimProgram: duplicate preload entry");
        seen[op] = true;
        util::check(issue_slot[r] >= 0 && issue_slot[r] <= n,
                    "SimProgram: issue slot past program end");
        util::check(issue_slot[r] <= op,
                    "SimProgram: preload issued after own execute");
        if (r > 0) {
            util::check(issue_slot[r] >= issue_slot[r - 1],
                        "SimProgram: issue slots not monotone");
        }
    }
}

std::string
residency_policy_name(ResidencyPolicy policy)
{
    switch (policy) {
        case ResidencyPolicy::kRetireOrder:
            return "retire-order";
        case ResidencyPolicy::kFrequencyAware:
            return "frequency";
    }
    util::fatal("unknown residency policy");
}

// ---------------------------------------------------------------------------
// EngineState

EngineState::EngineState(const Machine& machine)
    : EngineState(machine, Options())
{
}

EngineState::EngineState(const Machine& machine, Options opts)
    : machine_(machine), opts_(opts)
{
}

bool
EngineState::exec_active() const
{
    return f_.phase == ExecPhase::kDistribute ||
           f_.phase == ExecPhase::kExecute;
}

bool
EngineState::program_complete() const
{
    return f_.phase == ExecPhase::kDone &&
           f_.pre_r >= static_cast<int>(f_.program->preload_order.size()) &&
           !preload_active();
}

bool
EngineState::done() const
{
    return f_.program == nullptr || f_.complete;
}

void
EngineState::reset_frame()
{
    // Every serving iteration runs begin()/finish() on this state, so
    // the frame's heap blocks — the network's flow table and the
    // per-op vectors — are lifted out, cleared (capacity kept), and
    // put back into the otherwise default-constructed frame.
    std::optional<FluidNetwork> net = std::move(f_.net);
    std::vector<OpTiming> timing = std::move(f_.result.timing);
    std::vector<bool> preload_done = std::move(f_.preload_done);
    std::vector<bool> used_resident = std::move(f_.used_resident);
    f_ = Frame{};
    if (net) {
        net->reset_flows();
    }
    timing.clear();
    preload_done.clear();
    used_resident.clear();
    f_.net = std::move(net);
    f_.result.timing = std::move(timing);
    f_.preload_done = std::move(preload_done);
    f_.used_resident = std::move(used_resident);
}

void
EngineState::begin(const SimProgram& program)
{
    util::check(done(), "EngineState: begin() while a program is running");
    program.validate();
    check_pool_invariants();
    const int n = static_cast<int>(program.ops.size());

    // Evict resident entries this program would stale-hit: the op id
    // is present but was compiled to a different preload footprint /
    // HBM volume (e.g. a different batch bucket's plan). Entries for
    // op ids the program does not mention stay — they may belong to
    // another program class sharing the pool (prefill vs decode use
    // disjoint id spaces) — and pinned entries always stay: they are
    // in use by a parked program. The program's (op_id, exec index)
    // lookup lives in reused scratch; keeping the first exec index of
    // a duplicated op id matches the old map's emplace semantics, and
    // the in-order compaction preserves the pool's sort.
    if (!resident_.empty()) {
        begin_scratch_.clear();
        for (int i = 0; i < n; ++i) {
            begin_scratch_.emplace_back(program.ops[i].op_id, i);
        }
        std::sort(begin_scratch_.begin(), begin_scratch_.end());
        size_t out = 0;
        for (size_t i = 0; i < resident_.size(); ++i) {
            const ResidentSlot& slot = resident_[i];
            auto hit = std::lower_bound(
                begin_scratch_.begin(), begin_scratch_.end(),
                std::pair<int, int>(slot.op_id, -1));
            bool stale = hit != begin_scratch_.end() &&
                         hit->first == slot.op_id &&
                         !entry_matches(slot.entry,
                                        program.ops[hit->second]);
            if (stale && slot.entry.pin_count == 0) {
                occupancy_ -= static_cast<double>(slot.entry.space);
                resident_bytes_ -= slot.entry.space;
                continue;
            }
            if (out != i) {
                resident_[out] = slot;
            }
            ++out;
        }
        resident_.resize(out);
    }

    clock_base_ += f_.t;  // previous program's span becomes history
    reset_frame();
    f_.program = &program;
    if (!f_.net) {
        f_.net.emplace(machine_.capacities());
    }
    f_.result.timing.assign(n, {});
    for (int i = 0; i < n; ++i) {
        f_.result.timing[i].op_id = program.ops[i].op_id;
    }
    f_.phase = n > 0 ? ExecPhase::kWaitPreload : ExecPhase::kDone;
    f_.preload_done.assign(n, false);
    f_.used_resident.assign(n, false);
    f_.peak = occupancy_;
    if (program_complete()) {
        f_.complete = true;
    }
}

EngineState::Parked
EngineState::park()
{
    util::check(f_.program != nullptr,
                "EngineState: park() without a program");
    util::check(!f_.complete,
                "EngineState: park() after completion; finish() instead");
    // Fold the parked local clock into the base so the idle state sits
    // at the same global now (its fresh frame's local clock is zero).
    clock_base_ += f_.t;
    auto frame = std::make_unique<Frame>(std::move(f_));
    f_ = Frame{};
    return Parked(std::move(frame));
}

void
EngineState::resume(Parked&& parked)
{
    util::check(f_.program == nullptr,
                "EngineState: resume() while a program is loaded");
    util::check(parked.f_ != nullptr && parked.f_->program != nullptr,
                "EngineState: resume() of an empty parked frame");
    // Keep the global clock: the victim's local clock continues from
    // where park() froze it.
    clock_base_ = (clock_base_ + f_.t) - parked.f_->t;
    f_ = std::move(*parked.f_);
    parked.f_.reset();
}

double
EngineState::standalone_preload(const SimOp& op) const
{
    const hw::ChipConfig& cfg = machine_.config();
    double dram = op.dram_bytes / cfg.hbm_total_bw;
    double fabric = op.delivery_bytes / machine_.delivery_capacity();
    return cfg.hbm_access_latency_s + std::max(dram, fabric);
}

double
EngineState::standalone_exec(const SimOp& op) const
{
    return std::max({op.exec_local_time,
                     op.fetch_bytes / machine_.peer_capacity(),
                     op.exec_stream_dram / machine_.config().hbm_total_bw});
}

double
EngineState::standalone_distribute(const SimOp& op) const
{
    return std::max(op.distribute_local_time,
                    op.distribute_bytes / machine_.peer_capacity());
}

bool
EngineState::entry_matches(const ResidentEntry& entry, const SimOp& op)
{
    return entry.space == op.preload_space &&
           entry.dram_bytes == op.dram_bytes;
}

double
EngineState::entry_score(const ResidentEntry& entry)
{
    return entry.dram_bytes * (1.0 + static_cast<double>(entry.hits)) /
           static_cast<double>(entry.space);
}

double
EngineState::kv_score(const KvSegment& seg) const
{
    // The segment substitutes streaming its machine-total bytes back
    // from HBM; per resident byte that is the core count. Same units
    // as entry_score, so weights and KV compare directly. A shared
    // prefix saves that stream once per sharer, so its sharer count
    // adds to the reuse term (exactly +0.0 for private segments —
    // bit-identical to the share-free formula).
    return static_cast<double>(machine_.config().total_cores()) *
           (1.0 + static_cast<double>(seg.hits) +
            static_cast<double>(seg.share_count));
}

int
EngineState::kv_find(int64_t id) const
{
    auto it = std::lower_bound(
        kv_.begin(), kv_.end(), id,
        [](const KvSlot& slot, int64_t key) { return slot.id < key; });
    if (it == kv_.end() || it->id != id) {
        return -1;
    }
    return static_cast<int>(it - kv_.begin());
}

int
EngineState::kv_pick_victim(int64_t excluded_id)
{
    // Ascending id order — the old map's iteration order — so policy
    // ties resolve identically.
    int victim = -1;
    for (size_t i = 0; i < kv_.size(); ++i) {
        const KvSegment& seg = kv_[i].seg;
        if (!seg.resident || seg.pin_count > 0 ||
            kv_[i].id == excluded_id) {
            continue;
        }
        if (victim < 0) {
            victim = static_cast<int>(i);
            continue;
        }
        const KvSegment& best = kv_[victim].seg;
        bool better;
        if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double s = kv_score(seg);
            double v = kv_score(best);
            better = s < v || (s == v && seg.seq < best.seq);
        } else {
            better = seg.seq < best.seq;
        }
        if (better) {
            victim = static_cast<int>(i);
        }
    }
    return victim;
}

void
EngineState::kv_spill(int idx)
{
    KvSegment& seg = kv_[idx].seg;
    seg.resident = false;
    kv_resident_bytes_ -= seg.bytes;
    occupancy_ -= static_cast<double>(seg.bytes);
    if (seg.share_count > 0) {
        kv_shared_bytes_ -= seg.bytes;
    }
    ++kv_evictions_;
}

bool
EngineState::kv_make_room(uint64_t need, int64_t excluded_id)
{
    if (opts_.kv_budget == 0) {
        return true;
    }
    if (need > opts_.kv_budget) {
        return false;
    }
    while (kv_resident_bytes_ + need > opts_.kv_budget) {
        int victim = kv_pick_victim(excluded_id);
        if (victim < 0) {
            return false;  // only pinned (or excluded) segments left
        }
        kv_spill(victim);
    }
    return true;
}

bool
EngineState::kv_alloc(int64_t id, uint64_t per_core_bytes)
{
    auto pos = std::lower_bound(
        kv_.begin(), kv_.end(), id,
        [](const KvSlot& slot, int64_t key) { return slot.id < key; });
    util::check(pos == kv_.end() || pos->id != id,
                "EngineState: kv_alloc() of an existing segment");
    KvSlot slot;
    slot.id = id;
    slot.seg.bytes = per_core_bytes;
    slot.seg.seq = resident_seq_++;
    // Insertion keeps the sort; kv_make_room only marks segments
    // spilled (no erase), so the index stays valid across it.
    const int idx = static_cast<int>(pos - kv_.begin());
    kv_.insert(pos, slot);
    if (kv_make_room(per_core_bytes, id)) {
        kv_[idx].seg.resident = true;
        kv_resident_bytes_ += per_core_bytes;
        occupancy_ += static_cast<double>(per_core_bytes);
        kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    }
    // Pressure relief may spill the newcomer right back out (it is
    // unpinned and freshest); report what actually stuck.
    relieve_pressure();
    return kv_[idx].seg.resident;
}

bool
EngineState::kv_fetch(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_fetch() of an unowned segment");
    KvSegment& seg = kv_[idx].seg;
    if (seg.resident) {
        return true;
    }
    seg.seq = resident_seq_++;
    if (!kv_make_room(seg.bytes, id)) {
        return false;
    }
    seg.resident = true;
    kv_resident_bytes_ += seg.bytes;
    occupancy_ += static_cast<double>(seg.bytes);
    kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    if (seg.share_count > 0) {
        kv_shared_bytes_ += seg.bytes;
        kv_shared_peak_ = std::max(kv_shared_peak_, kv_shared_bytes_);
    }
    relieve_pressure();
    return seg.resident;
}

void
EngineState::kv_grow(int64_t id, uint64_t per_core_bytes)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_grow() of an unowned segment");
    KvSegment& seg = kv_[idx].seg;
    // Copy-on-extend: bytes other sharers read are immutable. The
    // caller forks a private tail segment and grows that instead.
    util::check(seg.share_count == 0,
                "EngineState: kv_grow() of a shared prefix "
                "(copy-on-extend: fork a private tail segment)");
    seg.bytes += per_core_bytes;
    if (!seg.resident) {
        return;  // grows in HBM for free
    }
    kv_resident_bytes_ += per_core_bytes;
    occupancy_ += static_cast<double>(per_core_bytes);
    if (opts_.kv_budget != 0 && kv_resident_bytes_ > opts_.kv_budget &&
        !kv_make_room(0, id)) {
        // Nothing else can move: spill the growing segment itself —
        // unless a pin (a parked consumer) forbids it, in which case
        // the overshoot stands until the pin drops.
        if (seg.pin_count == 0) {
            kv_spill(idx);
        }
    }
    if (seg.resident) {
        kv_bytes_peak_ = std::max(kv_bytes_peak_, kv_resident_bytes_);
    }
    relieve_pressure();
}

void
EngineState::kv_pin(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0 && kv_[idx].seg.resident,
                "EngineState: kv_pin() needs a resident segment");
    ++kv_[idx].seg.pin_count;
    ++kv_[idx].seg.hits;
    kv_[idx].seg.seq = resident_seq_++;
}

void
EngineState::kv_unpin(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0 && kv_[idx].seg.pin_count > 0,
                "EngineState: kv_unpin() without a pin");
    --kv_[idx].seg.pin_count;
}

void
EngineState::kv_free(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_free() of an unowned segment");
    util::check(kv_[idx].seg.pin_count == 0,
                "EngineState: kv_free() of a pinned segment");
    util::check(kv_[idx].seg.share_count == 0,
                "EngineState: kv_free() of a shared segment");
    if (kv_[idx].seg.resident) {
        kv_resident_bytes_ -= kv_[idx].seg.bytes;
        occupancy_ -= static_cast<double>(kv_[idx].seg.bytes);
    }
    kv_.erase(kv_.begin() + idx);
}

void
EngineState::kv_share(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_share() of an unowned segment");
    KvSegment& seg = kv_[idx].seg;
    ++seg.share_count;
    if (seg.resident && seg.share_count == 1) {
        kv_shared_bytes_ += seg.bytes;
        kv_shared_peak_ = std::max(kv_shared_peak_, kv_shared_bytes_);
    }
}

void
EngineState::kv_release(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_release() of an unowned segment");
    KvSegment& seg = kv_[idx].seg;
    util::check(seg.share_count > 0,
                "EngineState: kv_release() of an unshared segment");
    --seg.share_count;
    if (seg.resident && seg.share_count == 0) {
        kv_shared_bytes_ -= seg.bytes;
    }
}

int
EngineState::kv_share_count(int64_t id) const
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_share_count() of an unowned segment");
    return kv_[idx].seg.share_count;
}

void
EngineState::kv_evict(int64_t id)
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_evict() of an unowned segment");
    util::check(kv_[idx].seg.resident,
                "EngineState: kv_evict() of a non-resident segment");
    util::check(kv_[idx].seg.pin_count == 0,
                "EngineState: kv_evict() of a pinned segment");
    kv_spill(idx);
}

bool
EngineState::kv_resident(int64_t id) const
{
    const int idx = kv_find(id);
    return idx >= 0 && kv_[idx].seg.resident;
}

uint64_t
EngineState::kv_segment_bytes(int64_t id) const
{
    const int idx = kv_find(id);
    util::check(idx >= 0,
                "EngineState: kv_segment_bytes() of an unowned segment");
    return kv_[idx].seg.bytes;
}

bool
EngineState::kv_would_fit(uint64_t per_core_bytes) const
{
    // O(1) by the running counter; the debug audit proves the counter
    // equal to a full pool rescan on every probe.
    check_pool_invariants();
    return opts_.kv_budget == 0 ||
           kv_resident_bytes_ + per_core_bytes <= opts_.kv_budget;
}

void
EngineState::check_pool_invariants() const
{
#ifndef NDEBUG
    uint64_t weight_bytes = 0;
    for (size_t i = 0; i < resident_.size(); ++i) {
        weight_bytes += resident_[i].entry.space;
        util::check(i == 0 ||
                        resident_[i - 1].op_id < resident_[i].op_id,
                    "EngineState: weight pool out of order");
    }
    util::check(weight_bytes == resident_bytes_,
                "EngineState: resident_bytes_ drifted from the pool");
    uint64_t kv_bytes = 0;
    uint64_t shared_bytes = 0;
    for (size_t i = 0; i < kv_.size(); ++i) {
        if (kv_[i].seg.resident) {
            kv_bytes += kv_[i].seg.bytes;
            if (kv_[i].seg.share_count > 0) {
                shared_bytes += kv_[i].seg.bytes;
            }
        }
        util::check(i == 0 || kv_[i - 1].id < kv_[i].id,
                    "EngineState: KV pool out of order");
    }
    util::check(kv_bytes == kv_resident_bytes_,
                "EngineState: kv_resident_bytes_ drifted from the pool");
    util::check(shared_bytes == kv_shared_bytes_,
                "EngineState: kv_shared_bytes_ drifted from the pool");
#endif
}

int
EngineState::resident_find(int op_id) const
{
    auto it = std::lower_bound(
        resident_.begin(), resident_.end(), op_id,
        [](const ResidentSlot& slot, int key) {
            return slot.op_id < key;
        });
    if (it == resident_.end() || it->op_id != op_id) {
        return -1;
    }
    return static_cast<int>(it - resident_.begin());
}

int
EngineState::pick_victim()
{
    // Ascending op-id order — the old map's iteration order — so
    // policy ties resolve identically.
    int victim = -1;
    for (size_t i = 0; i < resident_.size(); ++i) {
        const ResidentEntry& entry = resident_[i].entry;
        if (entry.pin_count > 0) {
            continue;
        }
        if (victim < 0) {
            victim = static_cast<int>(i);
            continue;
        }
        const ResidentEntry& best = resident_[victim].entry;
        bool better;
        if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double s = entry_score(entry);
            double v = entry_score(best);
            better = s < v || (s == v && entry.seq < best.seq);
        } else {
            better = entry.seq < best.seq;
        }
        if (better) {
            victim = static_cast<int>(i);
        }
    }
    return victim;
}

void
EngineState::evict(int idx)
{
    occupancy_ -= static_cast<double>(resident_[idx].entry.space);
    resident_bytes_ -= resident_[idx].entry.space;
    resident_.erase(resident_.begin() + idx);
    ++resident_evictions_;
}

void
EngineState::relieve_pressure()
{
    if (resident_.empty() && kv_.empty()) {
        return;
    }
    const double limit =
        static_cast<double>(machine_.config().usable_sram_per_core());
    while (occupancy_ > limit) {
        // Weights and KV segments compete: the policy's best victim
        // across both classes goes first (lower seq under retire
        // order, lower worth under frequency-aware, ties by seq —
        // the seq counter is shared, so ties cannot cross classes).
        int w = pick_victim();
        int k = kv_pick_victim();
        bool have_w = w >= 0;
        bool have_k = k >= 0;
        if (!have_w && !have_k) {
            break;  // everything left is pinned by running programs
        }
        bool take_kv;
        if (!have_w || !have_k) {
            take_kv = have_k;
        } else if (opts_.policy == ResidencyPolicy::kFrequencyAware) {
            double ws = entry_score(resident_[w].entry);
            double ks = kv_score(kv_[k].seg);
            take_kv = ks < ws ||
                      (ks == ws && kv_[k].seg.seq < resident_[w].entry.seq);
        } else {
            take_kv = kv_[k].seg.seq < resident_[w].entry.seq;
        }
        if (take_kv) {
            kv_spill(k);
        } else {
            evict(w);
        }
    }
}

void
EngineState::retire_op(int i)
{
    const SimOp& op = f_.program->ops[i];
    occupancy_ -= static_cast<double>(op.exec_space);
    if (f_.used_resident[i]) {
        // This program's preload consumed the entry: one consumer
        // done, weights stay in place, refreshed for recency-based
        // eviction. The entry is pinned, so it cannot have vanished.
        const int idx = resident_find(op.op_id);
        util::check(idx >= 0,
                    "EngineState: consumed resident entry vanished");
        ResidentEntry& entry = resident_[idx].entry;
        entry.pin_count = std::max(0, entry.pin_count - 1);
        entry.seq = resident_seq_++;
        occupancy_ += static_cast<double>(op.preload_space);
        return;
    }
    if (resident_find(op.op_id) >= 0) {
        // An entry under this id appeared independently (admitted by
        // an interleaved program while we were parked, or a stale one
        // belonging to a parked program). This op preloaded its own
        // copy, which is simply dropped: re-crediting preload_space
        // here would double-count the entry's bytes.
        return;
    }
    if (opts_.residency_budget == 0 || op.preload_space == 0 ||
        op.dram_bytes <= 0.0) {
        return;
    }
    if (resident_bytes_ + op.preload_space > opts_.residency_budget &&
        opts_.policy == ResidencyPolicy::kFrequencyAware) {
        // Budget full: displace strictly lower-worth entries to make
        // room for a higher-worth candidate (a fresh candidate scores
        // with reuse count zero). Only if displacing them actually
        // frees enough space — otherwise evicting would be pure loss
        // with no admission.
        ResidentEntry candidate;
        candidate.space = op.preload_space;
        candidate.dram_bytes = op.dram_bytes;
        const double cand_score = entry_score(candidate);
        uint64_t displaceable = 0;
        for (const ResidentSlot& slot : resident_) {
            if (slot.entry.pin_count == 0 &&
                entry_score(slot.entry) < cand_score) {
                displaceable += slot.entry.space;
            }
        }
        if (resident_bytes_ - displaceable + op.preload_space <=
            opts_.residency_budget) {
            while (resident_bytes_ + op.preload_space >
                   opts_.residency_budget) {
                int victim = pick_victim();
                if (victim < 0 ||
                    entry_score(resident_[victim].entry) >= cand_score) {
                    break;  // unreachable given the feasibility check
                }
                evict(victim);
            }
        }
    }
    if (resident_bytes_ + op.preload_space <= opts_.residency_budget) {
        ResidentSlot slot;
        slot.op_id = op.op_id;
        slot.entry.space = op.preload_space;
        slot.entry.dram_bytes = op.dram_bytes;
        slot.entry.seq = resident_seq_++;
        resident_.insert(
            std::lower_bound(resident_.begin(), resident_.end(),
                             op.op_id,
                             [](const ResidentSlot& s, int key) {
                                 return s.op_id < key;
                             }),
            slot);
        resident_bytes_ += op.preload_space;
        occupancy_ += static_cast<double>(op.preload_space);
    }
}

std::vector<int>
EngineState::resident_op_ids() const
{
    std::vector<int> ids;
    ids.reserve(resident_.size());
    for (const ResidentSlot& slot : resident_) {
        ids.push_back(slot.op_id);
    }
    return ids;
}

void
EngineState::advance_transitions()
{
    const SimProgram& program = *f_.program;
    const hw::ChipConfig& cfg = machine_.config();
    const int n = static_cast<int>(program.ops.size());
    const int num_preloads = static_cast<int>(program.preload_order.size());

    bool moved = true;
    while (moved) {
        moved = false;

        // Issue the next preload when its slot's predecessors are done
        // and the previous preload finished.
        if (!preload_active() && f_.pre_r < num_preloads) {
            int op_idx = program.preload_order[f_.pre_r];
            int slot = program.issue_slot[f_.pre_r];
            if (f_.completed_execs >= slot) {
                const SimOp& op = program.ops[op_idx];
                f_.result.timing[op_idx].pre_start = f_.t;
                const int res = resident_find(op.op_id);
                if (res >= 0 &&
                    entry_matches(resident_[res].entry, op)) {
                    // Weights already in SRAM from an earlier program:
                    // the preload completes instantly with no HBM
                    // traffic. Pin the entry until the execute retires
                    // so pressure eviction cannot take it first.
                    ++resident_[res].entry.pin_count;
                    ++resident_[res].entry.hits;
                    ++resident_hits_;
                    f_.result.timing[op_idx].pre_end = f_.t;
                    f_.preload_done[op_idx] = true;
                    f_.used_resident[op_idx] = true;
                    ++f_.pre_r;
                } else if (op.dram_bytes <= 0.0) {
                    f_.result.timing[op_idx].pre_end = f_.t;
                    f_.preload_done[op_idx] = true;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++f_.pre_r;
                } else {
                    f_.pre_op = op_idx;
                    f_.pre_latency_left = cfg.hbm_access_latency_s;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++f_.pre_r;
                }
                relieve_pressure();
                f_.peak = std::max(f_.peak, occupancy_);
                moved = true;
                continue;
            }
        }

        // Preload latency elapsed: start the HBM flow.
        if (preload_active() && f_.pre_flow < 0 &&
            f_.pre_latency_left <= 0.0) {
            const SimOp& op = program.ops[f_.pre_op];
            f_.pre_flow = f_.net->add_flow(
                op.dram_bytes,
                machine_.preload_weights(op.dram_bytes, op.delivery_bytes),
                FlowTag::kHbmPreload);
            moved = true;
            continue;
        }

        // Preload flow completed.
        if (preload_active() && f_.pre_flow >= 0 &&
            !f_.net->flow_active(f_.pre_flow)) {
            f_.result.timing[f_.pre_op].pre_end = f_.t;
            f_.result.interconnect_stall += std::max(
                0.0, (f_.t - f_.result.timing[f_.pre_op].pre_start) -
                         standalone_preload(program.ops[f_.pre_op]));
            f_.preload_done[f_.pre_op] = true;
            f_.pre_op = -1;
            f_.pre_flow = -1;
            moved = true;
            continue;
        }

        // Execute side transitions.
        if (f_.phase == ExecPhase::kWaitPreload && f_.exec_i < n &&
            f_.preload_done[f_.exec_i]) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.timing[f_.exec_i].exec_start = f_.t;
            occupancy_ += static_cast<double>(op.exec_space) -
                          static_cast<double>(op.preload_space);
            relieve_pressure();
            f_.peak = std::max(f_.peak, occupancy_);
            f_.phase = ExecPhase::kDistribute;
            f_.phase_start = f_.t;
            f_.phase_local_left = op.distribute_local_time;
            f_.phase_flow =
                op.distribute_bytes > 0
                    ? f_.net->add_flow(op.distribute_bytes,
                                       machine_.peer_weights(),
                                       FlowTag::kDistribute)
                    : -1;
            moved = true;
            continue;
        }
        if (f_.phase == ExecPhase::kDistribute &&
            f_.phase_local_left <= 0.0 &&
            (f_.phase_flow < 0 || !f_.net->flow_active(f_.phase_flow))) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.interconnect_stall += std::max(
                0.0, (f_.t - f_.phase_start) - standalone_distribute(op));
            f_.phase = ExecPhase::kExecute;
            f_.phase_start = f_.t;
            f_.phase_local_left = op.exec_local_time;
            f_.phase_flow = op.fetch_bytes > 0
                                ? f_.net->add_flow(op.fetch_bytes,
                                                   machine_.peer_weights(),
                                                   FlowTag::kExecFetch)
                                : -1;
            // Chunked streamed operands keep drawing their HBM bytes
            // while executing, contending with preloads.
            f_.stream_flow =
                op.exec_stream_dram > 0
                    ? f_.net->add_flow(op.exec_stream_dram,
                                       machine_.preload_weights(
                                           op.exec_stream_dram,
                                           op.exec_stream_dram),
                                       FlowTag::kHbmPreload)
                    : -1;
            moved = true;
            continue;
        }
        if (f_.phase == ExecPhase::kExecute && f_.phase_local_left <= 0.0 &&
            (f_.phase_flow < 0 || !f_.net->flow_active(f_.phase_flow)) &&
            (f_.stream_flow < 0 || !f_.net->flow_active(f_.stream_flow))) {
            const SimOp& op = program.ops[f_.exec_i];
            f_.result.timing[f_.exec_i].exec_end = f_.t;
            f_.result.interconnect_stall +=
                std::max(0.0, (f_.t - f_.phase_start) - standalone_exec(op));
            retire_op(f_.exec_i);
            ++f_.completed_execs;
            ++f_.exec_i;
            f_.phase_flow = -1;
            f_.stream_flow = -1;
            if (f_.exec_i >= n) {
                f_.phase = ExecPhase::kDone;
            } else {
                f_.phase = ExecPhase::kWaitPreload;
            }
            moved = true;
            continue;
        }
    }
}

double
EngineState::event_horizon() const
{
    double dt = f_.net->time_to_next_completion();
    if (preload_active() && f_.pre_flow < 0 && f_.pre_latency_left > 0) {
        dt = std::min(dt, f_.pre_latency_left);
    }
    if (exec_active() && f_.phase_local_left > 0) {
        dt = std::min(dt, f_.phase_local_left);
    }
    return dt;
}

void
EngineState::advance_time(double dt)
{
    if (dt > 0) {
        const int pre_fab = machine_.fabric_resource_for_preload();
        const int peer_fab = machine_.fabric_resource_for_peer();
        double hbm_cap = f_.net->capacity(Resources::kHbmDram);
        f_.hbm_busy +=
            dt * f_.net->resource_usage(Resources::kHbmDram) / hbm_cap;
        f_.fabric_preload +=
            dt * f_.net->resource_usage(pre_fab, FlowTag::kHbmPreload);
        f_.fabric_peer +=
            dt * (f_.net->resource_usage(peer_fab, FlowTag::kDistribute) +
                  f_.net->resource_usage(peer_fab, FlowTag::kExecFetch));
        bool e = exec_active();
        bool p = preload_active();
        if (e && p) {
            f_.result.overlapped += dt;
        } else if (e) {
            f_.result.execute_only += dt;
        } else {
            f_.result.preload_only += dt;
        }
    }

    f_.net->advance(dt);
    if (preload_active() && f_.pre_flow < 0) {
        f_.pre_latency_left -= dt;
    }
    if (exec_active() && f_.phase_local_left > 0) {
        f_.phase_local_left -= dt;
    }
    f_.t += dt;
}

bool
EngineState::step_until(double cap)
{
    if (done()) {
        return false;
    }
    advance_transitions();
    if (program_complete()) {
        f_.complete = true;
        f_.t_complete = f_.t;
        return false;
    }
    const int n = static_cast<int>(f_.program->ops.size());
    util::check(++f_.guard < 64 * (n + 1) + 1024,
                "Engine: no forward progress");
    double dt = event_horizon();
    util::check(std::isfinite(dt) && dt >= 0,
                "Engine: stalled with no pending event");
    dt = std::max(dt, 0.0);
    if (f_.t + dt > cap) {
        // Clipped at the caller's horizon: this is not an engine
        // event, so it does not count against the progress guard.
        dt = std::max(cap - f_.t, 0.0);
        --f_.guard;
    }
    advance_time(dt);
    return true;
}

bool
EngineState::step()
{
    return step_until(kInf);
}

void
EngineState::run_to(double t_target)
{
    const double cap = t_target - clock_base_;  // local horizon
    while (!done() && f_.t < cap) {
        if (!step_until(cap)) {
            break;
        }
    }
    if (done() && f_.t < cap) {
        f_.t = cap;  // idle until the horizon
    }
}

SimResult
EngineState::finish()
{
    util::check(f_.program != nullptr,
                "EngineState: finish() without a program");
    util::check(f_.complete, "EngineState: finish() before completion");
    const double total = f_.t_complete;
    f_.result.total_time = total;
    double total_flops = 0.0;
    for (const auto& op : f_.program->ops) {
        total_flops += op.flops;
    }
    if (total > 0) {
        f_.result.hbm_util = f_.hbm_busy / total;
        f_.result.noc_util_preload = f_.fabric_preload / total;
        f_.result.noc_util_peer = f_.fabric_peer / total;
        f_.result.noc_util =
            f_.result.noc_util_preload + f_.result.noc_util_peer;
        f_.result.achieved_tflops = total_flops / total / 1e12;
    }
    f_.result.peak_sram_per_core = static_cast<uint64_t>(f_.peak);
    f_.result.memory_exceeded = f_.result.peak_sram_per_core >
                                machine_.config().usable_sram_per_core();
    SimResult out = std::move(f_.result);
    f_.result = SimResult{};
    f_.program = nullptr;
    // The network object survives for the next begin() (reset_frame
    // clears its flows but keeps the table's allocation).
    return out;
}

// ---------------------------------------------------------------------------
// Engine

SimResult
Engine::run(const SimProgram& program) const
{
    EngineState state(machine_);
    state.begin(program);
    while (state.step()) {
    }
    return state.finish();
}

}  // namespace elk::sim
