#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace elk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void
SimProgram::finalize_default_order()
{
    preload_order.clear();
    issue_slot.clear();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        preload_order.push_back(i);
        issue_slot.push_back(i);
    }
}

void
SimProgram::validate() const
{
    const int n = static_cast<int>(ops.size());
    util::check(preload_order.size() == ops.size(),
                "SimProgram: preload order size mismatch");
    util::check(issue_slot.size() == preload_order.size(),
                "SimProgram: issue slot size mismatch");
    std::vector<bool> seen(ops.size(), false);
    for (size_t r = 0; r < preload_order.size(); ++r) {
        int op = preload_order[r];
        util::check(op >= 0 && op < n,
                    "SimProgram: bad preload order entry");
        util::check(!seen[op], "SimProgram: duplicate preload entry");
        seen[op] = true;
        util::check(issue_slot[r] >= 0 && issue_slot[r] <= n,
                    "SimProgram: issue slot past program end");
        util::check(issue_slot[r] <= op,
                    "SimProgram: preload issued after own execute");
        if (r > 0) {
            util::check(issue_slot[r] >= issue_slot[r - 1],
                        "SimProgram: issue slots not monotone");
        }
    }
}

// ---------------------------------------------------------------------------
// EngineState

EngineState::EngineState(const Machine& machine)
    : EngineState(machine, Options())
{
}

EngineState::EngineState(const Machine& machine, Options opts)
    : machine_(machine), opts_(opts)
{
}

bool
EngineState::exec_active() const
{
    return phase_ == ExecPhase::kDistribute || phase_ == ExecPhase::kExecute;
}

bool
EngineState::program_complete() const
{
    return phase_ == ExecPhase::kDone &&
           pre_r_ >= static_cast<int>(program_->preload_order.size()) &&
           !preload_active();
}

bool
EngineState::done() const
{
    return program_ == nullptr || complete_;
}

void
EngineState::begin(const SimProgram& program)
{
    util::check(done(), "EngineState: begin() while a program is running");
    program.validate();
    program_ = &program;
    const int n = static_cast<int>(program.ops.size());

    // Evict resident entries the new program cannot consume: either
    // the operator is gone or it was compiled to a different preload
    // footprint / HBM volume (e.g. a different batch bucket's plan).
    if (!resident_.empty()) {
        std::map<int, int> by_id;  // op_id -> exec index
        for (int i = 0; i < n; ++i) {
            by_id.emplace(program.ops[i].op_id, i);
        }
        for (auto it = resident_.begin(); it != resident_.end();) {
            auto hit = by_id.find(it->first);
            bool match =
                hit != by_id.end() &&
                program.ops[hit->second].preload_space == it->second.space &&
                program.ops[hit->second].dram_bytes == it->second.dram_bytes;
            if (match) {
                ++it;
            } else {
                occupancy_ -= static_cast<double>(it->second.space);
                resident_bytes_ -= it->second.space;
                it = resident_.erase(it);
            }
        }
    }

    net_.emplace(machine_.capacities());
    result_ = SimResult{};
    result_.timing.assign(n, {});
    for (int i = 0; i < n; ++i) {
        result_.timing[i].op_id = program.ops[i].op_id;
    }
    clock_base_ += t_;  // previous program's span becomes history
    t_ = 0.0;
    exec_i_ = 0;
    phase_ = n > 0 ? ExecPhase::kWaitPreload : ExecPhase::kDone;
    phase_local_left_ = 0.0;
    phase_flow_ = -1;
    stream_flow_ = -1;
    phase_start_ = 0.0;
    pre_r_ = 0;
    pre_flow_ = -1;
    pre_latency_left_ = 0.0;
    pre_op_ = -1;
    completed_execs_ = 0;
    preload_done_.assign(n, false);
    peak_ = occupancy_;
    hbm_busy_ = 0.0;
    fabric_preload_ = 0.0;
    fabric_peer_ = 0.0;
    guard_ = 0;
    complete_ = false;
    t_complete_ = t_;
    if (program_complete()) {
        complete_ = true;
    }
}

double
EngineState::standalone_preload(const SimOp& op) const
{
    const hw::ChipConfig& cfg = machine_.config();
    double dram = op.dram_bytes / cfg.hbm_total_bw;
    double fabric = op.delivery_bytes / machine_.delivery_capacity();
    return cfg.hbm_access_latency_s + std::max(dram, fabric);
}

double
EngineState::standalone_exec(const SimOp& op) const
{
    return std::max({op.exec_local_time,
                     op.fetch_bytes / machine_.peer_capacity(),
                     op.exec_stream_dram / machine_.config().hbm_total_bw});
}

double
EngineState::standalone_distribute(const SimOp& op) const
{
    return std::max(op.distribute_local_time,
                    op.distribute_bytes / machine_.peer_capacity());
}

void
EngineState::relieve_pressure()
{
    if (resident_.empty()) {
        return;
    }
    const double limit =
        static_cast<double>(machine_.config().usable_sram_per_core());
    while (occupancy_ > limit) {
        auto victim = resident_.end();
        for (auto it = resident_.begin(); it != resident_.end(); ++it) {
            if (it->second.pinned) {
                continue;
            }
            if (victim == resident_.end() ||
                it->second.seq < victim->second.seq) {
                victim = it;
            }
        }
        if (victim == resident_.end()) {
            break;  // everything left is pinned by the running program
        }
        occupancy_ -= static_cast<double>(victim->second.space);
        resident_bytes_ -= victim->second.space;
        resident_.erase(victim);
        ++resident_evictions_;
    }
}

void
EngineState::retire_op(int i)
{
    const SimOp& op = program_->ops[i];
    occupancy_ -= static_cast<double>(op.exec_space);
    auto it = resident_.find(op.op_id);
    if (it != resident_.end()) {
        // Was resident before this program: its weights stay in place,
        // unpinned and refreshed for oldest-first eviction.
        it->second.pinned = false;
        it->second.seq = resident_seq_++;
        occupancy_ += static_cast<double>(op.preload_space);
    } else if (opts_.residency_budget > 0 && op.preload_space > 0 &&
               op.dram_bytes > 0.0 &&
               resident_bytes_ + op.preload_space <=
                   opts_.residency_budget) {
        ResidentEntry entry;
        entry.space = op.preload_space;
        entry.dram_bytes = op.dram_bytes;
        entry.seq = resident_seq_++;
        resident_.emplace(op.op_id, entry);
        resident_bytes_ += op.preload_space;
        occupancy_ += static_cast<double>(op.preload_space);
    }
}

void
EngineState::advance_transitions()
{
    const SimProgram& program = *program_;
    const hw::ChipConfig& cfg = machine_.config();
    const int n = static_cast<int>(program.ops.size());
    const int num_preloads = static_cast<int>(program.preload_order.size());

    bool moved = true;
    while (moved) {
        moved = false;

        // Issue the next preload when its slot's predecessors are done
        // and the previous preload finished.
        if (!preload_active() && pre_r_ < num_preloads) {
            int op_idx = program.preload_order[pre_r_];
            int slot = program.issue_slot[pre_r_];
            if (completed_execs_ >= slot) {
                const SimOp& op = program.ops[op_idx];
                result_.timing[op_idx].pre_start = t_;
                auto res = resident_.find(op.op_id);
                if (res != resident_.end()) {
                    // Weights already in SRAM from an earlier program:
                    // the preload completes instantly with no HBM
                    // traffic. Pin the entry until the execute retires
                    // so pressure eviction cannot take it first.
                    res->second.pinned = true;
                    ++resident_hits_;
                    result_.timing[op_idx].pre_end = t_;
                    preload_done_[op_idx] = true;
                    ++pre_r_;
                } else if (op.dram_bytes <= 0.0) {
                    result_.timing[op_idx].pre_end = t_;
                    preload_done_[op_idx] = true;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++pre_r_;
                } else {
                    pre_op_ = op_idx;
                    pre_latency_left_ = cfg.hbm_access_latency_s;
                    occupancy_ += static_cast<double>(op.preload_space);
                    ++pre_r_;
                }
                relieve_pressure();
                peak_ = std::max(peak_, occupancy_);
                moved = true;
                continue;
            }
        }

        // Preload latency elapsed: start the HBM flow.
        if (preload_active() && pre_flow_ < 0 && pre_latency_left_ <= 0.0) {
            const SimOp& op = program.ops[pre_op_];
            pre_flow_ = net_->add_flow(
                op.dram_bytes,
                machine_.preload_weights(op.dram_bytes, op.delivery_bytes),
                FlowTag::kHbmPreload);
            moved = true;
            continue;
        }

        // Preload flow completed.
        if (preload_active() && pre_flow_ >= 0 &&
            !net_->flow_active(pre_flow_)) {
            result_.timing[pre_op_].pre_end = t_;
            result_.interconnect_stall += std::max(
                0.0, (t_ - result_.timing[pre_op_].pre_start) -
                         standalone_preload(program.ops[pre_op_]));
            preload_done_[pre_op_] = true;
            pre_op_ = -1;
            pre_flow_ = -1;
            moved = true;
            continue;
        }

        // Execute side transitions.
        if (phase_ == ExecPhase::kWaitPreload && exec_i_ < n &&
            preload_done_[exec_i_]) {
            const SimOp& op = program.ops[exec_i_];
            result_.timing[exec_i_].exec_start = t_;
            occupancy_ += static_cast<double>(op.exec_space) -
                          static_cast<double>(op.preload_space);
            relieve_pressure();
            peak_ = std::max(peak_, occupancy_);
            phase_ = ExecPhase::kDistribute;
            phase_start_ = t_;
            phase_local_left_ = op.distribute_local_time;
            phase_flow_ =
                op.distribute_bytes > 0
                    ? net_->add_flow(op.distribute_bytes,
                                     machine_.peer_weights(),
                                     FlowTag::kDistribute)
                    : -1;
            moved = true;
            continue;
        }
        if (phase_ == ExecPhase::kDistribute && phase_local_left_ <= 0.0 &&
            (phase_flow_ < 0 || !net_->flow_active(phase_flow_))) {
            const SimOp& op = program.ops[exec_i_];
            result_.interconnect_stall += std::max(
                0.0, (t_ - phase_start_) - standalone_distribute(op));
            phase_ = ExecPhase::kExecute;
            phase_start_ = t_;
            phase_local_left_ = op.exec_local_time;
            phase_flow_ = op.fetch_bytes > 0
                              ? net_->add_flow(op.fetch_bytes,
                                               machine_.peer_weights(),
                                               FlowTag::kExecFetch)
                              : -1;
            // Chunked streamed operands keep drawing their HBM bytes
            // while executing, contending with preloads.
            stream_flow_ =
                op.exec_stream_dram > 0
                    ? net_->add_flow(op.exec_stream_dram,
                                     machine_.preload_weights(
                                         op.exec_stream_dram,
                                         op.exec_stream_dram),
                                     FlowTag::kHbmPreload)
                    : -1;
            moved = true;
            continue;
        }
        if (phase_ == ExecPhase::kExecute && phase_local_left_ <= 0.0 &&
            (phase_flow_ < 0 || !net_->flow_active(phase_flow_)) &&
            (stream_flow_ < 0 || !net_->flow_active(stream_flow_))) {
            const SimOp& op = program.ops[exec_i_];
            result_.timing[exec_i_].exec_end = t_;
            result_.interconnect_stall +=
                std::max(0.0, (t_ - phase_start_) - standalone_exec(op));
            retire_op(exec_i_);
            ++completed_execs_;
            ++exec_i_;
            phase_flow_ = -1;
            stream_flow_ = -1;
            if (exec_i_ >= n) {
                phase_ = ExecPhase::kDone;
            } else {
                phase_ = ExecPhase::kWaitPreload;
            }
            moved = true;
            continue;
        }
    }
}

double
EngineState::event_horizon() const
{
    double dt = net_->time_to_next_completion();
    if (preload_active() && pre_flow_ < 0 && pre_latency_left_ > 0) {
        dt = std::min(dt, pre_latency_left_);
    }
    if (exec_active() && phase_local_left_ > 0) {
        dt = std::min(dt, phase_local_left_);
    }
    return dt;
}

void
EngineState::advance_time(double dt)
{
    if (dt > 0) {
        const int pre_fab = machine_.fabric_resource_for_preload();
        const int peer_fab = machine_.fabric_resource_for_peer();
        double hbm_cap = net_->capacity(Resources::kHbmDram);
        hbm_busy_ +=
            dt * net_->resource_usage(Resources::kHbmDram) / hbm_cap;
        fabric_preload_ +=
            dt * net_->resource_usage(pre_fab, FlowTag::kHbmPreload);
        fabric_peer_ +=
            dt * (net_->resource_usage(peer_fab, FlowTag::kDistribute) +
                  net_->resource_usage(peer_fab, FlowTag::kExecFetch));
        bool e = exec_active();
        bool p = preload_active();
        if (e && p) {
            result_.overlapped += dt;
        } else if (e) {
            result_.execute_only += dt;
        } else {
            result_.preload_only += dt;
        }
    }

    net_->advance(dt);
    if (preload_active() && pre_flow_ < 0) {
        pre_latency_left_ -= dt;
    }
    if (exec_active() && phase_local_left_ > 0) {
        phase_local_left_ -= dt;
    }
    t_ += dt;
}

bool
EngineState::step_until(double cap)
{
    if (done()) {
        return false;
    }
    advance_transitions();
    if (program_complete()) {
        complete_ = true;
        t_complete_ = t_;
        return false;
    }
    const int n = static_cast<int>(program_->ops.size());
    util::check(++guard_ < 64 * (n + 1) + 1024,
                "Engine: no forward progress");
    double dt = event_horizon();
    util::check(std::isfinite(dt) && dt >= 0,
                "Engine: stalled with no pending event");
    dt = std::max(dt, 0.0);
    if (t_ + dt > cap) {
        // Clipped at the caller's horizon: this is not an engine
        // event, so it does not count against the progress guard.
        dt = std::max(cap - t_, 0.0);
        --guard_;
    }
    advance_time(dt);
    return true;
}

bool
EngineState::step()
{
    return step_until(kInf);
}

void
EngineState::run_to(double t_target)
{
    const double cap = t_target - clock_base_;  // local horizon
    while (!done() && t_ < cap) {
        if (!step_until(cap)) {
            break;
        }
    }
    if (done() && t_ < cap) {
        t_ = cap;  // idle until the horizon
    }
}

SimResult
EngineState::finish()
{
    util::check(program_ != nullptr,
                "EngineState: finish() without a program");
    util::check(complete_, "EngineState: finish() before completion");
    const double total = t_complete_;
    result_.total_time = total;
    double total_flops = 0.0;
    for (const auto& op : program_->ops) {
        total_flops += op.flops;
    }
    if (total > 0) {
        result_.hbm_util = hbm_busy_ / total;
        result_.noc_util_preload = fabric_preload_ / total;
        result_.noc_util_peer = fabric_peer_ / total;
        result_.noc_util =
            result_.noc_util_preload + result_.noc_util_peer;
        result_.achieved_tflops = total_flops / total / 1e12;
    }
    result_.peak_sram_per_core = static_cast<uint64_t>(peak_);
    result_.memory_exceeded = result_.peak_sram_per_core >
                              machine_.config().usable_sram_per_core();
    SimResult out = std::move(result_);
    result_ = SimResult{};
    program_ = nullptr;
    net_.reset();
    return out;
}

// ---------------------------------------------------------------------------
// Engine

SimResult
Engine::run(const SimProgram& program) const
{
    EngineState state(machine_);
    state.begin(program);
    while (state.step()) {
    }
    return state.finish();
}

}  // namespace elk::sim
