#include "sim/machine.h"

#include "util/logging.h"

namespace elk::sim {

namespace {
/// Extra fabric resource index used by the Ideal split-fabric mode.
constexpr int kFabricPreloadSplit = 2;
}  // namespace

Machine::Machine(const hw::ChipConfig& cfg, bool ideal_split_fabric)
    : cfg_(cfg), ideal_split_(ideal_split_fabric)
{
    cfg_.validate();
    topo_ = std::make_unique<hw::Topology>(cfg_);
    traffic_ = std::make_unique<hw::TrafficModel>(*topo_, cfg_);
    peer_capacity_ =
        traffic_->peer_exchange_capacity() * cfg_.num_chips;
    delivery_capacity_ =
        traffic_->hbm_delivery_capacity() * cfg_.num_chips;
}

std::vector<double>
Machine::capacities() const
{
    std::vector<double> caps(Resources::kCount, 1.0);
    caps[Resources::kHbmDram] = cfg_.hbm_total_bw;
    caps[Resources::kFabric] = 1.0;  // normalized fabric fraction
    if (ideal_split_) {
        caps.push_back(1.0);  // dedicated preload fabric
    }
    return caps;
}

int
Machine::fabric_resource_for_peer() const
{
    return Resources::kFabric;
}

int
Machine::fabric_resource_for_preload() const
{
    return ideal_split_ ? kFabricPreloadSplit : Resources::kFabric;
}

FlowWeights
Machine::preload_weights(double unique_bytes, double delivery_bytes) const
{
    util::check(unique_bytes > 0, "preload flow without DRAM bytes");
    double rho = delivery_bytes > 0 ? delivery_bytes / unique_bytes : 1.0;
    return {
        {Resources::kHbmDram, 1.0},
        {fabric_resource_for_preload(), rho / delivery_capacity_},
    };
}

FlowWeights
Machine::peer_weights() const
{
    return {{fabric_resource_for_peer(), 1.0 / peer_capacity_}};
}

}  // namespace elk::sim
