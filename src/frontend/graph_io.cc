#include "frontend/graph_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace elk::frontend {

namespace {

const std::map<std::string, graph::OpKind>&
kind_names()
{
    static const std::map<std::string, graph::OpKind> names = {
        {"MatMul", graph::OpKind::kMatMul},
        {"BatchMatMul", graph::OpKind::kBatchMatMul},
        {"Elementwise", graph::OpKind::kElementwise},
        {"Softmax", graph::OpKind::kSoftmax},
        {"LayerNorm", graph::OpKind::kLayerNorm},
        {"Embedding", graph::OpKind::kEmbedding},
    };
    return names;
}

}  // namespace

std::string
to_egf(const graph::Graph& graph)
{
    std::ostringstream out;
    out << "elk-graph-v1 " << graph.name() << "\n";
    for (const auto& op : graph.ops()) {
        out << "op " << op.name << " " << graph::op_kind_name(op.kind)
            << " " << op.layer << " " << op.batch << " " << op.m << " "
            << op.n << " " << op.k << " " << op.dtype_bytes << " "
            << op.w_share_rows << " " << op.param_bytes << " "
            << op.stream_bytes << " " << op.act_in_bytes << " "
            << op.act_out_bytes << "\n";
    }
    return out.str();
}

graph::Graph
from_egf(const std::string& text)
{
    std::istringstream in(text);
    std::string magic;
    std::string name;
    in >> magic >> name;
    if (magic != "elk-graph-v1") {
        util::fatal("EGF parse error: bad magic '" + magic + "'");
    }
    graph::Graph graph(name);
    std::string token;
    while (in >> token) {
        if (token != "op") {
            util::fatal("EGF parse error: expected 'op', got '" + token +
                        "'");
        }
        graph::Operator op;
        std::string kind;
        in >> op.name >> kind >> op.layer >> op.batch >> op.m >> op.n >>
            op.k >> op.dtype_bytes >> op.w_share_rows >> op.param_bytes >>
            op.stream_bytes >> op.act_in_bytes >> op.act_out_bytes;
        if (!in) {
            util::fatal("EGF parse error: truncated operator line");
        }
        auto it = kind_names().find(kind);
        if (it == kind_names().end()) {
            util::fatal("EGF parse error: unknown kind '" + kind + "'");
        }
        op.kind = it->second;
        graph.add(op);
    }
    return graph;
}

void
save_graph(const graph::Graph& graph, const std::string& path)
{
    std::ofstream file(path);
    if (!file) {
        util::fatal("cannot open for write: " + path);
    }
    file << to_egf(graph);
}

graph::Graph
load_graph(const std::string& path)
{
    std::ifstream file(path);
    if (!file) {
        util::fatal("cannot open for read: " + path);
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    return from_egf(buf.str());
}

}  // namespace elk::frontend
