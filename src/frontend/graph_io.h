/**
 * @file
 * Text-format model graph import/export (the "EGF" format).
 *
 * Substitutes the paper's ONNX frontend (§5): the compiler consumes
 * operator kinds, shapes, byte counts and order — exactly what this
 * format stores, one operator per line. It lets users bring their own
 * models without linking an ONNX parser, and lets the builders'
 * graphs be archived alongside experiment results.
 *
 * Format:
 *   elk-graph-v1 <model-name>
 *   op <name> <kind> <layer> <batch> <m> <n> <k> <dtype_bytes>
 *      <w_share_rows> <param_bytes> <stream_bytes> <act_in> <act_out>
 */
#ifndef ELK_FRONTEND_GRAPH_IO_H
#define ELK_FRONTEND_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace elk::frontend {

/// Serializes @p graph to the EGF text format.
std::string to_egf(const graph::Graph& graph);

/// Parses an EGF document; util::fatal on malformed input.
graph::Graph from_egf(const std::string& text);

/// Writes @p graph to @p path; util::fatal on I/O errors.
void save_graph(const graph::Graph& graph, const std::string& path);

/// Reads a graph from @p path; util::fatal on I/O or parse errors.
graph::Graph load_graph(const std::string& path);

}  // namespace elk::frontend

#endif  // ELK_FRONTEND_GRAPH_IO_H
