#include "cost/linear_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace elk::cost {

namespace {

/// Gaussian elimination with partial pivoting; a is n x (n+1) augmented.
std::vector<double>
solve(std::vector<std::vector<double>> a)
{
    const size_t n = a.size();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) {
                pivot = r;
            }
        }
        std::swap(a[col], a[pivot]);
        double diag = a[col][col];
        if (std::fabs(diag) < 1e-300) {
            continue;  // singular direction; ridge term normally avoids
        }
        for (size_t r = 0; r < n; ++r) {
            if (r == col) {
                continue;
            }
            double f = a[r][col] / diag;
            for (size_t c = col; c <= n; ++c) {
                a[r][c] -= f * a[col][c];
            }
        }
    }
    std::vector<double> w(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        w[i] = std::fabs(a[i][i]) < 1e-300 ? 0.0 : a[i][n] / a[i][i];
    }
    return w;
}

double
sse_of(const std::vector<std::vector<double>>& x,
       const std::vector<double>& y, const std::vector<int>& idx,
       const std::vector<double>& w)
{
    double sse = 0.0;
    for (int i : idx) {
        double e = eval_linear(w, x[i]) - y[i];
        sse += e * e;
    }
    return sse;
}

}  // namespace

std::vector<double>
fit_linear(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const std::vector<int>& idx,
           double ridge)
{
    util::check(!idx.empty(), "fit_linear: empty index set");
    const size_t d = x[idx[0]].size() + 1;  // + bias
    std::vector<std::vector<double>> a(d, std::vector<double>(d + 1, 0.0));
    auto feat = [&](int row, size_t j) {
        return j + 1 == d ? 1.0 : x[row][j];
    };
    for (int i : idx) {
        for (size_t r = 0; r < d; ++r) {
            double fr = feat(i, r);
            for (size_t c = 0; c < d; ++c) {
                a[r][c] += fr * feat(i, c);
            }
            a[r][d] += fr * y[i];
        }
    }
    for (size_t r = 0; r < d; ++r) {
        a[r][r] += ridge;
    }
    return solve(std::move(a));
}

double
eval_linear(const std::vector<double>& weights, const std::vector<double>& x)
{
    util::check(weights.size() == x.size() + 1, "eval_linear: dim mismatch");
    double v = weights.back();
    for (size_t i = 0; i < x.size(); ++i) {
        v += weights[i] * x[i];
    }
    return v;
}

void
LinearTreeModel::fit(const std::vector<std::vector<double>>& x,
                     const std::vector<double>& y, const Options& opts)
{
    util::check(x.size() == y.size(), "LinearTreeModel::fit: size mismatch");
    util::check(!x.empty(), "LinearTreeModel::fit: no samples");
    nodes_.clear();
    dim_ = x[0].size();
    std::vector<int> idx(x.size());
    std::iota(idx.begin(), idx.end(), 0);
    root_ = build(x, y, idx, 0, opts);
}

int
LinearTreeModel::build(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y,
                       const std::vector<int>& idx, int depth,
                       const Options& opts)
{
    Node node;
    node.weights = fit_linear(x, y, idx, opts.ridge);
    double base_sse = sse_of(x, y, idx, node.weights);

    if (depth < opts.max_depth &&
        static_cast<int>(idx.size()) >= opts.min_samples &&
        base_sse > 0.0) {
        double best_gain = 0.0;
        int best_feature = -1;
        double best_threshold = 0.0;
        std::vector<int> best_l, best_r;
        for (size_t f = 0; f < dim_; ++f) {
            // Candidate thresholds at the quartiles of this feature.
            std::vector<double> vals;
            vals.reserve(idx.size());
            for (int i : idx) {
                vals.push_back(x[i][f]);
            }
            std::sort(vals.begin(), vals.end());
            for (double q : {0.25, 0.5, 0.75}) {
                double thr = vals[static_cast<size_t>(q * (vals.size() - 1))];
                std::vector<int> l, r;
                for (int i : idx) {
                    (x[i][f] <= thr ? l : r).push_back(i);
                }
                if (static_cast<int>(l.size()) < opts.min_samples / 2 ||
                    static_cast<int>(r.size()) < opts.min_samples / 2) {
                    continue;
                }
                auto wl = fit_linear(x, y, l, opts.ridge);
                auto wr = fit_linear(x, y, r, opts.ridge);
                double gain =
                    base_sse - sse_of(x, y, l, wl) - sse_of(x, y, r, wr);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_feature = static_cast<int>(f);
                    best_threshold = thr;
                    best_l = std::move(l);
                    best_r = std::move(r);
                }
            }
        }
        if (best_feature >= 0 && best_gain > 1e-3 * base_sse) {
            node.feature = best_feature;
            node.threshold = best_threshold;
            int self = static_cast<int>(nodes_.size());
            nodes_.push_back(node);
            int left = build(x, y, best_l, depth + 1, opts);
            int right = build(x, y, best_r, depth + 1, opts);
            nodes_[self].left = left;
            nodes_[self].right = right;
            return self;
        }
    }

    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
}

double
LinearTreeModel::predict(const std::vector<double>& x) const
{
    if (root_ < 0) {
        return 0.0;
    }
    util::check(x.size() == dim_, "LinearTreeModel::predict: dim mismatch");
    int cur = root_;
    while (nodes_[cur].feature >= 0) {
        cur = x[nodes_[cur].feature] <= nodes_[cur].threshold
                  ? nodes_[cur].left
                  : nodes_[cur].right;
    }
    return eval_linear(nodes_[cur].weights, x);
}

}  // namespace elk::cost
