/**
 * @file
 * Inter-core and HBM transfer cost helpers shared by the planner and
 * the simulator. Transfers are staged through the per-core 8 KB
 * transfer buffer (paper §5), so a transfer pays a per-message
 * overhead every buffer flush in addition to the bandwidth term.
 */
#ifndef ELK_COST_TRANSFER_COST_H
#define ELK_COST_TRANSFER_COST_H

#include <cstdint>

#include "hw/chip_config.h"

namespace elk::cost {

/// Per-message (buffer flush / handshake) overhead on the interconnect.
constexpr double kPerMessageOverheadS = 0.4e-6;

/**
 * Seconds to move @p bytes across one link of @p bw bytes/s with
 * one-way latency @p latency, staged in @p granularity-byte messages.
 */
double link_transfer_time(double bytes, double bw, double latency,
                          uint64_t granularity);

/// Convenience using the chip's inter-core link and transfer buffer.
double inter_core_transfer_time(double bytes, const hw::ChipConfig& cfg);

}  // namespace elk::cost

#endif  // ELK_COST_TRANSFER_COST_H
