/**
 * @file
 * Per-core execution cost models.
 *
 * Two layers, mirroring the paper's methodology (§4.3, Fig. 12):
 *
 *  - detailed_tile_time(): the "hardware" behaviour used by the
 *    simulator — includes pipeline-efficiency effects of tile shape
 *    (alignment of the contraction/output dims to the MatMul pipeline
 *    width), per-row loop overheads and the SRAM feed bound;
 *  - AnalyticExecCost: the smooth estimate the compiler plans with;
 *  - a fitted linear-tree model (cost/linear_tree.h) trained on
 *    profiled tiles approximates the detailed model, reproducing the
 *    paper's cost-model validation.
 */
#ifndef ELK_COST_EXEC_COST_H
#define ELK_COST_EXEC_COST_H

#include <memory>

#include "graph/op.h"
#include "hw/chip_config.h"

namespace elk::cost {

/// One core's share of an operator: rows x n output, k contracted.
struct TileWork {
    graph::OpKind kind = graph::OpKind::kElementwise;
    long rows = 1;      ///< output rows computed by this core.
    long n = 1;         ///< output columns.
    long k = 1;         ///< contraction length (matmul-like only).
    int dtype_bytes = 2;

    /// FLOPs of this tile.
    double flops() const;

    /// Bytes the tile reads+writes from local SRAM.
    double bytes_touched() const;
};

/// Interface the planner uses to estimate per-tile execution time.
class ExecCostModel {
  public:
    virtual ~ExecCostModel() = default;

    /// Estimated seconds for one core to execute @p tile.
    virtual double tile_time(const TileWork& tile,
                             const hw::ChipConfig& cfg) const = 0;
};

/// Smooth analytic estimate: max(flops/rate, bytes/sram_bw) + overhead.
class AnalyticExecCost : public ExecCostModel {
  public:
    double tile_time(const TileWork& tile,
                     const hw::ChipConfig& cfg) const override;
};

/**
 * Shared, const-safe handle to a cost model. Implementations must be
 * immutable after construction (tile_time is const and called
 * concurrently from the compiler's parallel passes); the shared_ptr
 * keeps the model alive for every CompileState that references it.
 */
using ExecCostHandle = std::shared_ptr<const ExecCostModel>;

/// A fresh analytic cost model behind a shared handle.
ExecCostHandle make_analytic_cost();

/// Wraps a caller-owned model (must outlive the handle) without
/// taking ownership.
ExecCostHandle borrow_cost_model(const ExecCostModel* model);

/**
 * Detailed per-tile time with shape-dependent pipeline efficiency and
 * loop overheads; the simulator's ground truth. Deterministic — the
 * profiler adds measurement noise separately.
 */
double detailed_tile_time(const TileWork& tile, const hw::ChipConfig& cfg);

/**
 * Pipeline efficiency (0..1] of a matmul tile: fraction of peak the
 * AMP pipeline achieves given dimension alignment to its native
 * 16x(k) / 4x(n) granularity.
 */
double matmul_pipeline_efficiency(long n, long k);

}  // namespace elk::cost

#endif  // ELK_COST_EXEC_COST_H
