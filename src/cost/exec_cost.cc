#include "cost/exec_cost.h"

#include <algorithm>
#include <cmath>

namespace elk::cost {

double
TileWork::flops() const
{
    graph::Operator tmp;
    tmp.kind = kind;
    tmp.m = rows;
    tmp.n = n;
    tmp.k = k;
    graph::finalize_flops(tmp);
    return tmp.flops;
}

double
TileWork::bytes_touched() const
{
    double elems;
    if (graph::uses_matmul_pipeline(kind)) {
        elems = static_cast<double>(rows) * k +
                static_cast<double>(k) * n +
                static_cast<double>(rows) * n;
    } else {
        elems = 2.0 * rows * n;
    }
    return elems * dtype_bytes;
}

double
matmul_pipeline_efficiency(long n, long k)
{
    // The AMP pipeline consumes k in chunks of 16 and produces n in
    // chunks of 4; ragged remainders waste issue slots.
    auto ragged = [](long d, long g) {
        long padded = (d + g - 1) / g * g;
        return static_cast<double>(d) / static_cast<double>(padded);
    };
    return ragged(k, 16) * ragged(n, 4);
}

double
AnalyticExecCost::tile_time(const TileWork& tile,
                            const hw::ChipConfig& cfg) const
{
    double rate = graph::uses_matmul_pipeline(tile.kind)
                      ? cfg.core_matmul_flops
                      : cfg.core_vector_flops;
    double compute = tile.flops() / rate;
    double feed = tile.bytes_touched() / cfg.sram_read_bw;
    return std::max(compute, feed) + cfg.tile_launch_overhead_s;
}

double
detailed_tile_time(const TileWork& tile, const hw::ChipConfig& cfg)
{
    const bool mm = graph::uses_matmul_pipeline(tile.kind);
    double rate = mm ? cfg.core_matmul_flops : cfg.core_vector_flops;
    if (mm) {
        rate *= matmul_pipeline_efficiency(tile.n, tile.k);
    }
    double compute = tile.flops() / rate;
    double feed = tile.bytes_touched() / cfg.sram_read_bw;

    // Inner-loop restart cost per output row, larger for the reduction
    // kinds that make two passes over each row.
    double per_row = 4.0e-9;
    if (tile.kind == graph::OpKind::kSoftmax ||
        tile.kind == graph::OpKind::kLayerNorm) {
        per_row = 9.0e-9;
    }
    double loop_overhead = per_row * static_cast<double>(tile.rows);

    return std::max(compute, feed) + loop_overhead +
           cfg.tile_launch_overhead_s;
}

ExecCostHandle
make_analytic_cost()
{
    return std::make_shared<AnalyticExecCost>();
}

ExecCostHandle
borrow_cost_model(const ExecCostModel* model)
{
    return ExecCostHandle(model, [](const ExecCostModel*) {});
}

}  // namespace elk::cost
