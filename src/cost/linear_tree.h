/**
 * @file
 * Linear tree regressor: a shallow decision tree whose leaves hold
 * ridge-regularized linear models. This is the model family the paper
 * fits to profiled tile execution times and per-link transfer times
 * (§4.3, "we fit a linear tree model using the tile shapes as inputs
 * and the profiled execution times as outputs").
 */
#ifndef ELK_COST_LINEAR_TREE_H
#define ELK_COST_LINEAR_TREE_H

#include <cstddef>
#include <vector>

namespace elk::cost {

/// Shallow regression tree with linear leaf models.
class LinearTreeModel {
  public:
    /// Training hyperparameters.
    struct Options {
        int max_depth = 4;      ///< tree depth limit.
        int min_samples = 24;   ///< minimum samples to attempt a split.
        double ridge = 1e-9;    ///< L2 regularization of leaf models.
    };

    /**
     * Fits the model on feature rows @p x (equal lengths) and targets
     * @p y. Replaces any previous fit.
     */
    void fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, const Options& opts);

    /// fit() with default options.
    void
    fit(const std::vector<std::vector<double>>& x,
        const std::vector<double>& y)
    {
        fit(x, y, Options());
    }

    /// Predicts the target for one feature row; 0 before training.
    double predict(const std::vector<double>& x) const;

    /// True once fit() succeeded.
    bool trained() const { return root_ >= 0; }

    /// Number of tree nodes (diagnostics).
    size_t num_nodes() const { return nodes_.size(); }

  private:
    struct Node {
        int feature = -1;   ///< split feature; -1 for a leaf.
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        std::vector<double> weights;  ///< leaf model (bias last).
    };

    int build(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y,
              const std::vector<int>& idx, int depth, const Options& opts);

    std::vector<Node> nodes_;
    int root_ = -1;
    size_t dim_ = 0;
};

/**
 * Solves the ridge regression (X^T X + ridge I) w = X^T y for rows of
 * @p x restricted to @p idx, with an implicit trailing bias feature.
 * Exposed for testing.
 */
std::vector<double> fit_linear(const std::vector<std::vector<double>>& x,
                               const std::vector<double>& y,
                               const std::vector<int>& idx, double ridge);

/// Evaluates a linear model (bias last) on a feature row.
double eval_linear(const std::vector<double>& weights,
                   const std::vector<double>& x);

}  // namespace elk::cost

#endif  // ELK_COST_LINEAR_TREE_H
