#include "cost/profiler.h"

#include <cmath>
#include <random>

#include "cost/transfer_cost.h"
#include "util/logging.h"

namespace elk::cost {

std::vector<double>
tile_features(const TileWork& tile)
{
    double rows = static_cast<double>(tile.rows);
    double n = static_cast<double>(tile.n);
    double k = static_cast<double>(tile.k);
    return {
        rows,
        n,
        k,
        tile.flops(),
        tile.bytes_touched(),
        rows * n,
    };
}

std::vector<ProfiledSample>
profile_tiles(graph::OpKind kind, int count, const hw::ChipConfig& cfg,
              unsigned seed, double noise_sigma)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> log_rows(0.0, 8.0);
    std::uniform_real_distribution<double> log_n(2.0, 12.0);
    std::uniform_real_distribution<double> log_k(4.0, 12.0);
    std::normal_distribution<double> noise(0.0, noise_sigma);

    std::vector<ProfiledSample> samples;
    samples.reserve(count);
    for (int i = 0; i < count; ++i) {
        TileWork tile;
        tile.kind = kind;
        tile.rows = static_cast<long>(std::exp2(log_rows(rng)));
        tile.n = static_cast<long>(std::exp2(log_n(rng)));
        tile.k = graph::uses_matmul_pipeline(kind)
                     ? static_cast<long>(std::exp2(log_k(rng)))
                     : 1;
        // Keep the tile inside one core's SRAM.
        while (tile.bytes_touched() >
               static_cast<double>(cfg.usable_sram_per_core())) {
            if (tile.n > 4) {
                tile.n /= 2;
            } else if (tile.k > 16) {
                tile.k /= 2;
            } else {
                tile.rows = std::max(1L, tile.rows / 2);
            }
        }
        ProfiledSample s;
        s.tile = tile;
        s.measured =
            detailed_tile_time(tile, cfg) * std::exp(noise(rng));
        samples.push_back(s);
    }
    return samples;
}

std::vector<std::pair<double, double>>
profile_transfers(int count, const hw::ChipConfig& cfg, unsigned seed,
                  double noise_sigma)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> log_bytes(8.0, 19.0);  // 256B..512KB
    std::normal_distribution<double> noise(0.0, noise_sigma);
    std::vector<std::pair<double, double>> samples;
    samples.reserve(count);
    for (int i = 0; i < count; ++i) {
        double bytes = std::exp2(log_bytes(rng));
        double t = inter_core_transfer_time(bytes, cfg) *
                   std::exp(noise(rng));
        samples.emplace_back(bytes, t);
    }
    return samples;
}

FittedExecCost
FittedExecCost::train(const hw::ChipConfig& cfg, int samples_per_kind,
                      unsigned seed)
{
    FittedExecCost fitted;
    for (graph::OpKind kind :
         {graph::OpKind::kMatMul, graph::OpKind::kBatchMatMul,
          graph::OpKind::kElementwise, graph::OpKind::kSoftmax,
          graph::OpKind::kLayerNorm, graph::OpKind::kEmbedding}) {
        auto samples = profile_tiles(kind, samples_per_kind, cfg,
                                     seed + static_cast<unsigned>(kind));
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        x.reserve(samples.size());
        y.reserve(samples.size());
        for (const auto& s : samples) {
            x.push_back(tile_features(s.tile));
            y.push_back(s.measured);
        }
        fitted.models_[kind].fit(x, y);
    }
    return fitted;
}

double
FittedExecCost::tile_time(const TileWork& tile,
                          const hw::ChipConfig& cfg) const
{
    auto it = models_.find(tile.kind);
    util::check(it != models_.end(), "FittedExecCost: kind not trained");
    double t = it->second.predict(tile_features(tile));
    // A fitted model can mildly extrapolate below zero; clamp to the
    // launch overhead floor.
    return std::max(t, cfg.tile_launch_overhead_s);
}

const LinearTreeModel&
FittedExecCost::model(graph::OpKind kind) const
{
    auto it = models_.find(kind);
    util::check(it != models_.end(), "FittedExecCost: kind not trained");
    return it->second;
}

}  // namespace elk::cost
