/**
 * @file
 * HBM access roofline (paper §4.2): an operator's preload duration is
 * the maximum of the DRAM-side load time and the interconnect-side
 * delivery time; this header provides the DRAM side.
 */
#ifndef ELK_COST_HBM_COST_H
#define ELK_COST_HBM_COST_H

#include "hw/chip_config.h"

namespace elk::cost {

/**
 * Seconds for the HBM modules of the whole system to read @p bytes
 * (unique bytes; broadcast replication costs interconnect time, not
 * DRAM time). Tensors are sliced evenly across channels (paper §5), so
 * the aggregate bandwidth applies once the access latency is paid.
 */
double hbm_load_time(double bytes, const hw::ChipConfig& cfg);

}  // namespace elk::cost

#endif  // ELK_COST_HBM_COST_H
