/**
 * @file
 * Tile profiler and fitted cost model (paper §4.3, Fig. 12).
 *
 * The paper profiles randomly shaped tiles on the target device and
 * fits a linear-tree model per operator type, plus a per-link model
 * for inter-core transfers. Our "target device" is the detailed tile
 * model the simulator executes; profiling adds multiplicative
 * measurement noise so the fit faces a realistic task.
 */
#ifndef ELK_COST_PROFILER_H
#define ELK_COST_PROFILER_H

#include <map>
#include <vector>

#include "cost/exec_cost.h"
#include "cost/linear_tree.h"
#include "hw/chip_config.h"

namespace elk::cost {

/// One profiled tile: shape plus its (noisy) measured time.
struct ProfiledSample {
    TileWork tile;
    double measured = 0.0;
};

/// Feature extraction used for both fitting and prediction.
std::vector<double> tile_features(const TileWork& tile);

/**
 * Profiles @p count random tiles of @p kind on @p cfg's core, applying
 * lognormal measurement noise of relative sigma @p noise_sigma.
 */
std::vector<ProfiledSample> profile_tiles(graph::OpKind kind, int count,
                                          const hw::ChipConfig& cfg,
                                          unsigned seed,
                                          double noise_sigma = 0.03);

/**
 * Profiles inter-core transfers of random sizes; returns pairs of
 * (bytes, measured seconds).
 */
std::vector<std::pair<double, double>> profile_transfers(
    int count, const hw::ChipConfig& cfg, unsigned seed,
    double noise_sigma = 0.03);

/**
 * Per-operator-kind fitted cost model, usable by the planner in place
 * of the analytic model.
 */
class FittedExecCost : public ExecCostModel {
  public:
    /// Fits one linear-tree per operator kind from profiled samples.
    static FittedExecCost train(const hw::ChipConfig& cfg,
                                int samples_per_kind = 400,
                                unsigned seed = 7);

    double tile_time(const TileWork& tile,
                     const hw::ChipConfig& cfg) const override;

    /// Access the per-kind model (testing / reporting).
    const LinearTreeModel& model(graph::OpKind kind) const;

  private:
    std::map<graph::OpKind, LinearTreeModel> models_;
};

}  // namespace elk::cost

#endif  // ELK_COST_PROFILER_H
