#include "cost/hbm_cost.h"

namespace elk::cost {

double
hbm_load_time(double bytes, const hw::ChipConfig& cfg)
{
    if (bytes <= 0) {
        return 0.0;
    }
    return cfg.hbm_access_latency_s + bytes / cfg.hbm_total_bw;
}

}  // namespace elk::cost
