#include "cost/energy_model.h"

namespace elk::cost {

EnergyReport
estimate_energy(const sim::SimProgram& program,
                const sim::SimResult& result, const hw::ChipConfig& cfg,
                double avg_hops, const EnergyParams& params)
{
    EnergyReport report;
    const double pj = 1e-12;
    for (const auto& op : program.ops) {
        report.compute += op.flops * params.pj_per_flop * pj;

        // SRAM traffic: every delivered, exchanged or streamed byte is
        // written once and read once; compute reads its working set
        // (approximated by the FLOP-to-byte ratio of the op's phase
        // volumes, folded into delivered/fetched bytes here).
        double sram_bytes = 2.0 * (op.delivery_bytes + op.fetch_bytes +
                                   op.distribute_bytes +
                                   op.exec_stream_dram);
        report.sram += sram_bytes * params.pj_per_sram_byte * pj;

        // NoC traffic: peer bytes travel avg_hops links; HBM delivery
        // enters through one injection plus avg_hops/2 forwarding.
        double peer_bytes = op.fetch_bytes + op.distribute_bytes;
        double delivery = op.delivery_bytes + op.exec_stream_dram;
        report.noc += (peer_bytes * avg_hops +
                       delivery * (1.0 + avg_hops / 2.0)) *
                      params.pj_per_noc_byte_hop * pj;

        report.hbm += (op.dram_bytes + op.exec_stream_dram) *
                      params.pj_per_hbm_byte * pj;
    }
    report.static_energy = params.static_watts_per_core *
                           cfg.total_cores() * result.total_time;
    return report;
}

}  // namespace elk::cost
