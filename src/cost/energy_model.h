/**
 * @file
 * Energy model for ICCA chip executions (paper §7, "apply Elk to other
 * optimization objectives": the performance cost model can be swapped
 * for one that estimates power).
 *
 * Per-event energies follow the usual technology-survey constants:
 * MAC energy per FLOP, SRAM access energy per byte, on-chip link
 * energy per byte-hop, HBM access energy per byte, plus static leakage
 * over the makespan. The model consumes the same plan/simulation
 * artifacts as the performance path, so an energy-aware objective can
 * reuse the whole compiler unchanged.
 */
#ifndef ELK_COST_ENERGY_MODEL_H
#define ELK_COST_ENERGY_MODEL_H

#include "graph/graph.h"
#include "hw/chip_config.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace elk::cost {

/// Technology constants (defaults: ~7 nm class accelerator numbers).
struct EnergyParams {
    double pj_per_flop = 0.4;        ///< MAC datapath energy.
    double pj_per_sram_byte = 1.2;   ///< local scratchpad access.
    double pj_per_noc_byte_hop = 2.0;///< inter-core link traversal.
    double pj_per_hbm_byte = 60.0;   ///< off-chip DRAM access.
    double static_watts_per_core = 0.08;  ///< leakage + clocking.
};

/// Energy breakdown of one simulated run (joules).
struct EnergyReport {
    double compute = 0.0;
    double sram = 0.0;
    double noc = 0.0;
    double hbm = 0.0;
    double static_energy = 0.0;

    double
    total() const
    {
        return compute + sram + noc + hbm + static_energy;
    }

    /// Average power over the run (watts).
    double
    average_power(double makespan) const
    {
        return makespan > 0 ? total() / makespan : 0.0;
    }
};

/**
 * Estimates the energy of executing @p program (its byte/FLOP volumes)
 * with the measured makespan of @p result on @p cfg.
 */
EnergyReport estimate_energy(const sim::SimProgram& program,
                             const sim::SimResult& result,
                             const hw::ChipConfig& cfg,
                             double avg_hops,
                             const EnergyParams& params = EnergyParams());

}  // namespace elk::cost

#endif  // ELK_COST_ENERGY_MODEL_H
