#include "cost/transfer_cost.h"

#include <cmath>

namespace elk::cost {

double
link_transfer_time(double bytes, double bw, double latency,
                   uint64_t granularity)
{
    if (bytes <= 0) {
        return 0.0;
    }
    double messages = std::ceil(bytes / static_cast<double>(granularity));
    return latency + bytes / bw + messages * kPerMessageOverheadS;
}

double
inter_core_transfer_time(double bytes, const hw::ChipConfig& cfg)
{
    return link_transfer_time(bytes, cfg.inter_core_link_bw,
                              cfg.link_latency_s,
                              cfg.transfer_buffer_per_core);
}

}  // namespace elk::cost
