#include "plan/plan_enumerator.h"

#include <algorithm>
#include <cmath>

#include "cost/transfer_cost.h"
#include "plan/pareto.h"
#include "util/logging.h"

namespace elk::plan {

namespace {

/// Ceiling division for positive longs.
long
cdiv(long a, long b)
{
    return (a + b - 1) / b;
}

/**
 * Candidate partition counts for a dimension of extent @p dim with at
 * most @p max_parts parts: 1, powers of two and 3*2^i, plus the exact
 * extent. This approximates the divisor enumeration real compilers use
 * while keeping the space tractable.
 */
std::vector<int>
candidate_parts(long dim, long max_parts)
{
    std::vector<int> parts;
    long limit = std::min(dim, max_parts);
    for (long p = 1; p <= limit; p *= 2) {
        parts.push_back(static_cast<int>(p));
        if (3 * p / 2 > p && 3 * p / 2 <= limit) {
            parts.push_back(static_cast<int>(3 * p / 2));
        }
    }
    if (limit >= 1 &&
        std::find(parts.begin(), parts.end(), static_cast<int>(limit)) ==
            parts.end()) {
        parts.push_back(static_cast<int>(limit));
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    return parts;
}

/// Residency (replication) factor candidates: powers of two <= group.
std::vector<int>
candidate_repl(int group)
{
    std::vector<int> repl;
    for (int r = 1; r <= group; r *= 2) {
        repl.push_back(r);
    }
    if (repl.back() != group) {
        repl.push_back(group);
    }
    return repl;
}

/// Streamed-operand operators (pure KV-cache consumers) may buffer
/// only a chunk of their W operand and consume the rest as it arrives
/// from HBM (flash-attention-style chunking); this caps the chunk
/// count so the double-buffered chunk stays efficient.
constexpr int kMaxStreamChunks = 64;

/// True when the operator's W operand comes from HBM (weights or
/// streams); such operands may be consumed in chunks straight from
/// HBM when the partition leaves them unshared across cores.
bool
w_from_hbm(const graph::Operator& op)
{
    return graph::uses_matmul_pipeline(op.kind) && op.hbm_bytes() > 0;
}

/// True for kinds that reduce along each output row (no column split).
bool
row_reduction_kind(graph::OpKind kind)
{
    return kind == graph::OpKind::kSoftmax ||
           kind == graph::OpKind::kLayerNorm;
}

/// Effective per-core bandwidth for peer exchange when @p cores_used
/// cores are active: endpoint link limited, with the fabric-wide
/// pattern capacity (mesh bisection etc.) as the global cap.
double
per_core_peer_bw(const PlanContext& ctx, long cores_used)
{
    double system_capacity =
        ctx.traffic->peer_exchange_capacity() * ctx.cfg->num_chips;
    double fair_share = system_capacity / std::max(cores_used, 1L);
    return std::min(ctx.cfg->inter_core_link_bw, fair_share);
}

}  // namespace

bool
compute_plan_metrics(const graph::Operator& op, const PlanContext& ctx,
                     ExecPlan& plan)
{
    const hw::ChipConfig& cfg = *ctx.cfg;
    const long rows = op.batch * op.m;
    const long cols = op.n;
    const long contraction = graph::uses_matmul_pipeline(op.kind) ? op.k : 1;

    if (plan.parts_rows > rows || plan.parts_cols > cols ||
        plan.parts_k > contraction) {
        return false;
    }
    if (plan.cores_used() > cfg.total_cores()) {
        return false;
    }

    plan.tile_rows = cdiv(rows, plan.parts_rows);
    plan.tile_cols = cdiv(cols, plan.parts_cols);
    plan.tile_k = cdiv(contraction, plan.parts_k);

    // Sharing groups. A blocks are reused across the column partitions
    // (each column group consumes the same rows of A); W blocks are
    // reused across the row partitions that consume the same weights.
    const long w_share = op.w_share_rows == 0 ? rows : op.w_share_rows;
    plan.group_a = plan.parts_cols;
    plan.group_w = static_cast<int>(
        std::max(1L, std::min<long>(plan.parts_rows,
                                    w_share / plan.tile_rows)));
    // An HBM-fed W whose partition leaves no sharing group is consumed
    // in repl_w chunks straight from HBM rather than fetched from
    // peers (flash-attention-style chunking for KV, column-chunked
    // weight streaming for giant weight matrices such as an LM head
    // that exceeds the chip), so repl_w is then bounded by the chunking
    // cap instead of the sharing group. When the partition does share W
    // across cores, the normal broadcast/peer path applies.
    const bool w_streams = w_from_hbm(op) && plan.group_w == 1;
    int repl_w_limit = w_streams ? kMaxStreamChunks : plan.group_w;
    if (plan.repl_a > plan.group_a || plan.repl_w > repl_w_limit) {
        return false;
    }

    // Per-core byte needs.
    const uint64_t dt = op.dtype_bytes;
    if (graph::uses_matmul_pipeline(op.kind)) {
        plan.a_need =
            static_cast<uint64_t>(plan.tile_rows) * plan.tile_k * dt;
        // The W operand (weights or KV stream) a core consumes: its
        // column/contraction slice of every distinct k x n W block its
        // rows touch. Rows within one w_share span reuse one block.
        double col_frac = static_cast<double>(plan.tile_cols) / cols;
        double k_frac = static_cast<double>(plan.tile_k) / contraction;
        double block_bytes = static_cast<double>(op.k) * op.n * dt;
        double blocks_touched =
            std::max(1.0, static_cast<double>(plan.tile_rows) / w_share);
        plan.w_need = static_cast<uint64_t>(
            blocks_touched * block_bytes * col_frac * k_frac);
        plan.w_need = std::max<uint64_t>(plan.w_need, 1);
    } else {
        plan.a_need =
            static_cast<uint64_t>(plan.tile_rows) * plan.tile_cols * dt;
        plan.w_need = op.hbm_bytes();  // small params, fully replicated
        plan.group_a = 1;
        plan.group_w = plan.parts_rows;
        if (plan.repl_a != 1) {
            return false;
        }
        if (plan.repl_w > plan.group_w) {
            return false;
        }
    }
    plan.out_bytes =
        static_cast<uint64_t>(plan.tile_rows) * plan.tile_cols * dt;

    // Execution space: resident shares + output (+ partial-sum buffer
    // when the contraction is split).
    uint64_t partial = plan.parts_k > 1 ? plan.out_bytes : 0;
    plan.exec_space = plan.a_need / plan.repl_a +
                      plan.w_need / plan.repl_w + plan.out_bytes + partial;
    if (plan.exec_space > ctx.sram_budget()) {
        return false;
    }

    // On-demand inter-core traffic during execution: the non-resident
    // fractions of A and W, rotated in from group peers (Fig. 3c). A
    // streamed W arrives from HBM, not from peers, so its non-resident
    // chunks cost no inter-core traffic.
    double fa = 1.0 / plan.repl_a;
    double fw = 1.0 / plan.repl_w;
    plan.fetch_bytes =
        (1.0 - fa) * static_cast<double>(plan.a_need) +
        (w_streams ? 0.0
                   : (1.0 - fw) * static_cast<double>(plan.w_need));
    // Partial-sum reduction along the k partitions (ring all-reduce).
    plan.reduce_bytes =
        plan.parts_k > 1
            ? 2.0 * (plan.parts_k - 1) / plan.parts_k *
                  static_cast<double>(plan.out_bytes)
            : 0.0;

    // Execution time estimate (per §4.3's cost model): per-core tile
    // compute, on-demand fetches over the interconnect, the SRAM
    // access contention of serving peers (which pauses local compute
    // on IPU-like cores), and the reduction exchange.
    cost::TileWork tile;
    tile.kind = op.kind;
    tile.rows = plan.tile_rows;
    tile.n = plan.tile_cols;
    tile.k = plan.tile_k;
    tile.dtype_bytes = op.dtype_bytes;
    plan.compute_time = ctx.exec_cost->tile_time(tile, cfg);

    double peer_bw = per_core_peer_bw(ctx, plan.cores_used());
    double fetch_time = cost::link_transfer_time(
        plan.fetch_bytes, peer_bw, cfg.link_latency_s,
        cfg.transfer_buffer_per_core);
    double serve_stall = plan.fetch_bytes / cfg.sram_read_bw;
    double reduce_time = cost::link_transfer_time(
        plan.reduce_bytes, peer_bw, cfg.link_latency_s,
        cfg.transfer_buffer_per_core);
    double inter_chip_time =
        cfg.num_chips > 1 && graph::uses_matmul_pipeline(op.kind)
            ? static_cast<double>(op.act_out_bytes) / cfg.inter_chip_bw
            : 0.0;

    // Chunked streamed operands consume their non-resident fraction
    // from HBM while executing; the phase cannot beat that stream.
    plan.hbm_stream_bytes =
        w_streams ? (1.0 - fw) * static_cast<double>(plan.w_need) : 0.0;
    double stream_time = plan.hbm_stream_bytes *
                         static_cast<double>(plan.cores_used()) /
                         cfg.hbm_total_bw;

    // The compute pipeline, the rotation fetches and the HBM stream
    // proceed concurrently within the execution phase (round
    // double-buffering), so the phase lasts as long as the slowest;
    // serving peers' reads stalls the local pipeline (contention 3 in
    // Fig. 2) and therefore adds to the compute side.
    plan.exec_time =
        std::max({plan.compute_time + serve_stall,
                  fetch_time + reduce_time, stream_time}) +
        inter_chip_time;
    double system_peer_capacity =
        ctx.traffic->peer_exchange_capacity() * cfg.num_chips;
    plan.fabric_time = (plan.fetch_bytes + plan.reduce_bytes) *
                       static_cast<double>(plan.cores_used()) /
                       system_peer_capacity;
    return true;
}

std::vector<ExecPlan>
enumerate_exec_plans(const graph::Operator& op, const PlanContext& ctx)
{
    const long rows = op.batch * op.m;
    const long cols = op.n;
    const long total_cores = ctx.cfg->total_cores();
    const bool mm = graph::uses_matmul_pipeline(op.kind);
    const long contraction = mm ? op.k : 1;

    std::vector<ExecPlan> plans;
    auto rows_parts = candidate_parts(rows, total_cores);
    for (int pr : rows_parts) {
        auto cols_parts = row_reduction_kind(op.kind)
                              ? std::vector<int>{1}
                              : candidate_parts(cols, total_cores / pr);
        for (int pc : cols_parts) {
            auto k_parts = mm ? candidate_parts(contraction,
                                                total_cores / (static_cast<long>(pr) * pc))
                              : std::vector<int>{1};
            for (int pk : k_parts) {
                ExecPlan base;
                base.parts_rows = pr;
                base.parts_cols = pc;
                base.parts_k = pk;
                // Probe with no replication choice to get groups.
                ExecPlan probe = base;
                if (!compute_plan_metrics(op, ctx, probe)) {
                    // Try anyway with repl=1; if the tile itself is too
                    // big this partition is hopeless only when repl
                    // can't shrink it further — handled below by
                    // enumerating repl candidates regardless.
                    probe = base;
                    probe.repl_a = 1;
                    probe.repl_w = 1;
                    if (!compute_plan_metrics(op, ctx, probe)) {
                        // Even the largest-memory variant fails; the
                        // higher-repl variants may still fit, so fall
                        // through with conservative group bounds.
                        probe.group_a = pc;
                        probe.group_w = pr;
                    }
                }
                int rw_limit = w_from_hbm(op) && probe.group_w == 1
                                   ? kMaxStreamChunks
                                   : probe.group_w;
                for (int ra : candidate_repl(probe.group_a)) {
                    for (int rw : candidate_repl(rw_limit)) {
                        ExecPlan plan = base;
                        plan.repl_a = ra;
                        plan.repl_w = rw;
                        if (compute_plan_metrics(op, ctx, plan)) {
                            plans.push_back(plan);
                        }
                    }
                }
            }
        }
    }

    auto front = pareto_front(
        std::move(plans), [](const ExecPlan& p) { return p.exec_space; },
        [](const ExecPlan& p) { return p.time_cost(); });
    util::check(!front.empty(),
                "no feasible execution plan for operator " + op.name);
    return front;
}

std::vector<std::vector<ExecPlan>>
enumerate_exec_fronts(const std::vector<const graph::Operator*>& ops,
                      const PlanContext& ctx, util::ThreadPool* pool)
{
    std::vector<std::vector<ExecPlan>> fronts(ops.size());
    util::ThreadPool::run(pool, static_cast<int>(ops.size()), [&](int i) {
        fronts[i] = enumerate_exec_plans(*ops[i], ctx);
    });
    return fronts;
}

int
min_time_cost_index(const std::vector<PreloadPlan>& front, int floor)
{
    int best = std::min<int>(floor, static_cast<int>(front.size()) - 1);
    for (int i = best + 1; i < static_cast<int>(front.size()); ++i) {
        if (front[i].time_cost() < front[best].time_cost()) {
            best = i;
        }
    }
    return best;
}

std::vector<PreloadPlan>
enumerate_preload_plans(const graph::Operator& op, const ExecPlan& exec,
                        const PlanContext& ctx)
{
    const hw::ChipConfig& cfg = *ctx.cfg;
    std::vector<PreloadPlan> plans;

    if (op.hbm_bytes() == 0 || exec.w_need == 0) {
        // Nothing arrives from HBM; a single empty plan.
        plans.push_back({});
        return plans;
    }

    const double fr = 1.0 / exec.repl_w;  // execute-state residency
    // Scatter floor: a shared W may spread to 1/group_w per core; a
    // streamed W has no sharing group — its single preload plan simply
    // buffers the execute-state chunk.
    const double fmin = w_from_hbm(op) && exec.group_w == 1
                            ? fr
                            : 1.0 / exec.group_w;
    double peer_bw = per_core_peer_bw(ctx, exec.cores_used());

    const bool chunked = w_from_hbm(op) && exec.group_w == 1;
    double gamma = fr;
    while (true) {
        PreloadPlan p;
        p.gamma = std::max(gamma, fmin);
        // Chunked streams defer the non-resident fraction of their HBM
        // bytes to execution time.
        p.dram_fraction = chunked ? fr : 1.0;
        p.preload_space = static_cast<uint64_t>(
            std::ceil(p.gamma * static_cast<double>(exec.w_need)));
        p.distribute_bytes =
            std::max(0.0, (fr - p.gamma) * static_cast<double>(exec.w_need));
        p.distribute_time =
            cost::link_transfer_time(p.distribute_bytes, peer_bw,
                                     cfg.link_latency_s,
                                     cfg.transfer_buffer_per_core) +
            p.distribute_bytes / cfg.sram_read_bw;
        p.noc_delivery_bytes = p.gamma * static_cast<double>(exec.w_need) *
                               static_cast<double>(exec.cores_used());
        double delivery_capacity =
            ctx.traffic->hbm_delivery_capacity() * cfg.num_chips;
        p.delivery_overhead_time =
            std::max(0.0, p.noc_delivery_bytes -
                              static_cast<double>(op.hbm_bytes())) /
            delivery_capacity;
        plans.push_back(p);
        if (p.gamma <= fmin) {
            break;
        }
        gamma /= 2.0;
    }

    // Prune on distribution time only so the MaxPreload (broadcast)
    // plan always heads the front: its extra fabric occupancy
    // (delivery_overhead_time) is a *contention* cost that only
    // matters when preload and execution compete for the fabric — the
    // allocator weighs it via time_cost(), and in compute-bound
    // regimes where the fabric is idle the broadcast stays free.
    return pareto_front(
        std::move(plans),
        [](const PreloadPlan& p) { return p.preload_space; },
        [](const PreloadPlan& p) { return p.distribute_time; });
}

}  // namespace elk::plan
