/**
 * @file
 * Partition plans: how one operator's computation and data spread over
 * the cores of an ICCA chip.
 *
 * Following the compute-shift execution model of T10 that the paper
 * builds on (§5), an execute-state plan factorizes the operator's
 * output rows, output columns and contraction dimension over cores and
 * picks a *residency* for each shared operand: a core may hold only
 * 1/repl of the operand block it needs, fetching the rest from the
 * peers in its sharing group while executing (paper Fig. 3c). Less
 * residency = less execution space but more inter-core traffic.
 *
 * A preload-state plan (paper §4.3, "intra-operator tradeoff for
 * preloading") then decides which fraction of the execute-state
 * residency is broadcast by the HBM controllers at preload time versus
 * exchanged between peers in the data-distribution phase.
 */
#ifndef ELK_PLAN_PARTITION_PLAN_H
#define ELK_PLAN_PARTITION_PLAN_H

#include <cstdint>
#include <string>

namespace elk::plan {

/**
 * Execute-state plan: partition factors plus derived per-core metrics.
 * The paper represents plans as small integer lists (e.g., <90,9>);
 * ours are <parts_rows, parts_cols, parts_k, repl_a, repl_w>.
 */
struct ExecPlan {
    // --- decision variables ---
    int parts_rows = 1;  ///< partitions of the output-row dimension.
    int parts_cols = 1;  ///< partitions of the output-column dimension.
    int parts_k = 1;     ///< partitions of the contraction dimension.
    /// Core holds 1/repl_a of the activation (A) block it consumes.
    int repl_a = 1;
    /// Core holds 1/repl_w of the weight/stream (W) block it consumes.
    int repl_w = 1;

    // --- derived metrics (filled by the enumerator) ---
    long tile_rows = 1;      ///< output rows per core.
    long tile_cols = 1;      ///< output columns per core.
    long tile_k = 1;         ///< contraction slice per core.
    uint64_t a_need = 0;     ///< bytes of A a core consumes.
    uint64_t w_need = 0;     ///< bytes of W a core consumes.
    uint64_t out_bytes = 0;  ///< bytes of output a core produces.
    int group_a = 1;         ///< cores sharing an identical A block.
    int group_w = 1;         ///< cores sharing an identical W block.
    uint64_t exec_space = 0; ///< per-core SRAM during execution.
    double fetch_bytes = 0;  ///< per-core on-demand inter-core bytes.
    double reduce_bytes = 0; ///< per-core partial-sum exchange bytes.
    /// Per-core HBM bytes consumed *during* execution by chunked
    /// streamed operands (flash-attention-style KV chunking); zero for
    /// fully resident plans.
    double hbm_stream_bytes = 0;
    double compute_time = 0; ///< per-core pure compute seconds.
    double exec_time = 0;    ///< estimated per-op execution seconds.
    /// Chip-level fabric occupancy of this plan's inter-core traffic
    /// (fetch + reduction aggregated over cores, divided by the peer
    /// pattern capacity). In bandwidth-bound regimes every operator
    /// overlaps, so fabric seconds are the true currency (§4.3's
    /// "divide total traffic by link bandwidth").
    double fabric_time = 0;

    /// Cost axis used by the §4.3 allocator: per-core execution time
    /// plus the plan's chip-level fabric occupancy.
    double time_cost() const { return exec_time + fabric_time; }

    /// Number of cores this plan occupies.
    long
    cores_used() const
    {
        return static_cast<long>(parts_rows) * parts_cols * parts_k;
    }

    /// Execute-state resident W bytes per core (what preload+distribute
    /// must materialize before execution starts).
    uint64_t w_resident() const { return w_need / repl_w; }

    /// Short human-readable form, e.g. "<8,46,16|a2,w4>".
    std::string to_string() const;
};

/**
 * Preload-state plan for one preloaded operator, relative to its
 * chosen execute-state plan. gamma is the fraction of the W block the
 * core receives from the HBM controllers at preload time; the
 * remaining (w_resident/w_need - gamma) is fetched from peers in the
 * data-distribution phase when the operator starts executing.
 */
struct PreloadPlan {
    double gamma = 1.0;            ///< preload-received W fraction.
    uint64_t preload_space = 0;    ///< per-core bytes from preload→exec.
    double distribute_bytes = 0;   ///< per-core peer bytes at distribution.
    double distribute_time = 0;    ///< estimated distribution seconds.
    double noc_delivery_bytes = 0; ///< chip-total HBM→core NoC bytes.
    /// Fraction of the operator's unique HBM bytes loaded at preload
    /// time; the remainder streams from HBM during execution (chunked
    /// streamed operands only — 1.0 otherwise).
    double dram_fraction = 1.0;
    /// Extra fabric occupancy caused by broadcast replication beyond
    /// the unique HBM volume (paper §4.3: interconnect contention of
    /// overlapped preload and execution, estimated as traffic over
    /// bandwidth). Part of the plan's cost axis.
    double delivery_overhead_time = 0;

    /// The §4.3 time cost of this preload-state plan: distribution
    /// latency plus the replication-induced fabric contention.
    double
    time_cost() const
    {
        return distribute_time + delivery_overhead_time;
    }
};

}  // namespace elk::plan

#endif  // ELK_PLAN_PARTITION_PLAN_H
