#include "plan/partition_plan.h"

#include <sstream>

namespace elk::plan {

std::string
ExecPlan::to_string() const
{
    std::ostringstream out;
    out << "<" << parts_rows << "," << parts_cols << "," << parts_k
        << "|a" << repl_a << ",w" << repl_w << ">";
    return out.str();
}

}  // namespace elk::plan
