/**
 * @file
 * Enumeration of execute-state and preload-state partition plans for a
 * single operator (paper §4.3, "intra-operator tradeoffs"), with the
 * per-plan metric computation the scheduler and allocator consume.
 */
#ifndef ELK_PLAN_PLAN_ENUMERATOR_H
#define ELK_PLAN_PLAN_ENUMERATOR_H

#include <vector>

#include "cost/exec_cost.h"
#include "graph/op.h"
#include "hw/chip_config.h"
#include "hw/traffic.h"
#include "plan/partition_plan.h"
#include "util/thread_pool.h"

namespace elk::plan {

/// Everything plan metric computation needs about the target.
struct PlanContext {
    const hw::ChipConfig* cfg = nullptr;
    const hw::TrafficModel* traffic = nullptr;
    const cost::ExecCostModel* exec_cost = nullptr;
    /// Optional owner of exec_cost: a const-safe shared handle that
    /// keeps the model alive across CompileState copies and worker
    /// threads. Set it with set_cost_model(); contexts built around a
    /// caller-owned model may leave it empty and fill exec_cost alone.
    cost::ExecCostHandle exec_cost_owner;

    /// Points exec_cost at @p handle and retains ownership of it.
    void
    set_cost_model(cost::ExecCostHandle handle)
    {
        exec_cost_owner = std::move(handle);
        exec_cost = exec_cost_owner.get();
    }

    /// SRAM budget per core available to the compiler.
    uint64_t sram_budget() const { return cfg->usable_sram_per_core(); }
};

/**
 * Enumerates Pareto-optimal execute-state plans of @p op: every
 * combination of partition factors and residency factors that fits the
 * chip, reduced to the (exec_space, exec_time) Pareto front, sorted
 * fastest-first (descending memory). Never empty for a well-formed
 * operator — at minimum the most-partitioned plan survives.
 */
std::vector<ExecPlan> enumerate_exec_plans(const graph::Operator& op,
                                           const PlanContext& ctx);

/**
 * Enumerates the execute-state Pareto front of every operator in
 * @p ops, optionally fanning the per-operator enumerations out over
 * @p pool (nullptr = serial). Result i is the front of ops[i];
 * identical to calling enumerate_exec_plans per operator, in any
 * pool configuration (per-slot writes, no cross-operator state).
 */
std::vector<std::vector<ExecPlan>> enumerate_exec_fronts(
    const std::vector<const graph::Operator*>& ops, const PlanContext& ctx,
    util::ThreadPool* pool = nullptr);

/**
 * Enumerates Pareto-optimal preload-state plans for a preloaded @p op
 * whose execute-state plan is @p exec: gamma sweeps from the full
 * execute-state residency (MaxPreload, zero distribution) down to
 * 1/group_w (MinPreload, maximum distribution), paper §4.3's
 * 1, 1/2, 1/4 example. Sorted by descending preload space.
 */
std::vector<PreloadPlan> enumerate_preload_plans(const graph::Operator& op,
                                                 const ExecPlan& exec,
                                                 const PlanContext& ctx);

/**
 * Index (>= @p floor) of the preload plan with the lowest combined
 * time cost (distribution + delivery-replication fabric overhead) on
 * a front sorted by descending space — the broadcast/distribution
 * balance point where allocation walks start.
 */
int min_time_cost_index(const std::vector<PreloadPlan>& front,
                        int floor = 0);

/**
 * Fills the derived metrics of @p plan for @p op; exposed for tests.
 * Returns false when the plan is infeasible (tile does not fit in the
 * SRAM budget or factors exceed dims/cores).
 */
bool compute_plan_metrics(const graph::Operator& op, const PlanContext& ctx,
                          ExecPlan& plan);

}  // namespace elk::plan

#endif  // ELK_PLAN_PLAN_ENUMERATOR_H
