/**
 * @file
 * Pareto-front extraction over (memory, time) points (paper §4.3):
 * a plan stays on the front iff no other plan is both at most as
 * large and at most as slow (with one strict).
 */
#ifndef ELK_PLAN_PARETO_H
#define ELK_PLAN_PARETO_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace elk::plan {

/**
 * Returns the Pareto-optimal subset of @p points, sorted by
 * *descending* memory (i.e., ascending time): index 0 is the fastest
 * (largest) plan, the last index the smallest (slowest) plan. This is
 * the walk order of the §4.3 greedy allocator.
 *
 * @param points  candidate set.
 * @param mem_of  functor T -> uint64_t memory footprint.
 * @param time_of functor T -> double time cost.
 */
template <typename T, typename MemFn, typename TimeFn>
std::vector<T>
pareto_front(std::vector<T> points, MemFn mem_of, TimeFn time_of)
{
    if (points.empty()) {
        return points;
    }
    // Sort by memory ascending, time ascending for ties.
    std::sort(points.begin(), points.end(), [&](const T& a, const T& b) {
        if (mem_of(a) != mem_of(b)) {
            return mem_of(a) < mem_of(b);
        }
        return time_of(a) < time_of(b);
    });
    // Sweep: keep a point iff it is strictly faster than everything
    // smaller or equal that we already kept.
    std::vector<T> front;
    double best_time = std::numeric_limits<double>::infinity();
    for (auto& p : points) {
        if (time_of(p) < best_time) {
            best_time = time_of(p);
            front.push_back(std::move(p));
        }
    }
    // Descending memory == ascending time.
    std::reverse(front.begin(), front.end());
    return front;
}

}  // namespace elk::plan

#endif  // ELK_PLAN_PARETO_H
