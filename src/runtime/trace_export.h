/**
 * @file
 * Trace export: dump a simulated run's per-operator phase timings and
 * the derived utilization timeline as CSV, the equivalent of the
 * paper artifact's "trace files" output.
 */
#ifndef ELK_RUNTIME_TRACE_EXPORT_H
#define ELK_RUNTIME_TRACE_EXPORT_H

#include <string>

#include "graph/graph.h"
#include "sim/trace.h"

namespace elk::runtime {

/// Per-operator phase timing rows (CSV text).
std::string timing_csv(const graph::Graph& graph,
                       const sim::SimResult& result);

/// Writes timing_csv to @p path; util::fatal on I/O errors.
void export_timing(const graph::Graph& graph, const sim::SimResult& result,
                   const std::string& path);

/**
 * Gantt-style summary of a run: one line per operator with preload and
 * execute intervals, for quick terminal inspection of schedules.
 */
std::string timeline_summary(const graph::Graph& graph,
                             const sim::SimResult& result,
                             int max_rows = 24);

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_TRACE_EXPORT_H
