/**
 * @file
 * Trace export: dump a simulated run's per-operator phase timings and
 * the derived utilization timeline as CSV, the equivalent of the
 * paper artifact's "trace files" output.
 */
#ifndef ELK_RUNTIME_TRACE_EXPORT_H
#define ELK_RUNTIME_TRACE_EXPORT_H

#include <string>

#include "graph/graph.h"
#include "sim/trace.h"

namespace elk::runtime {

/// Per-operator phase timing rows as CSV text, one row per simulated
/// op in schedule order under the header
/// `op_id,name,kind,pre_start,pre_end,exec_start,exec_end`
/// (times in simulated seconds). @p graph must be the graph @p result
/// was simulated from — op ids are resolved against it for names.
std::string timing_csv(const graph::Graph& graph,
                       const sim::SimResult& result);

/// Writes timing_csv() verbatim to @p path, truncating any existing
/// file; util::fatal (process exit) when the file cannot be opened.
void export_timing(const graph::Graph& graph, const sim::SimResult& result,
                   const std::string& path);

/**
 * Gantt-style summary for quick terminal inspection of a schedule
 * (`elkc --timeline`): one fixed-width bar per sampled operator over
 * the run's total time, marking preload ('p'), execute ('X'), and
 * their overlap ('#') — the overlap the compiler exists to create.
 * At most ~@p max_rows rows are emitted by striding over the ops, so
 * long schedules stay readable; returns "(empty timeline)\n" for a
 * run with no timed ops.
 */
std::string timeline_summary(const graph::Graph& graph,
                             const sim::SimResult& result,
                             int max_rows = 24);

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_TRACE_EXPORT_H
