/**
 * @file
 * The serving runtime: a request queue on top of the resumable
 * simulator engine.
 *
 * A Server turns the one-shot "compile a decode step, simulate it"
 * flow into continuous serving: requests arrive on a trace (closed
 * loop or Poisson open loop), are admitted into decode iterations with
 * iteration-level batching (a request joins the running batch at the
 * next iteration boundary, occupies one slot for one token per
 * iteration, and leaves when its tokens are done), and every iteration
 * executes a compiled SimProgram on one persistent EngineState — so
 * weights kept resident across back-to-back iterations skip their HBM
 * preload, the steady-state decode fast path.
 *
 * The ServingReport aggregates the paper-style serving metrics: tail
 * latency percentiles, tokens/s goodput, queue depth, and
 * time-weighted HBM/NoC utilization. Everything is deterministic:
 * serving the same trace with the same programs is bit-identical at
 * any compiler --jobs setting (serialize_bits is the proof hook).
 */
#ifndef ELK_RUNTIME_SERVER_H
#define ELK_RUNTIME_SERVER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::runtime {

/// Arrival-time generators for serving experiments (seconds, sorted).
struct ArrivalTrace {
    /// Closed loop: all @p n requests queued at t = 0.
    static std::vector<double> closed_loop(int n);

    /**
     * Open loop: @p n Poisson arrivals at @p rate_per_s requests/s.
     * Gaps are drawn from a hand-rolled xorshift-free mt19937_64 +
     * inverse-CDF exponential, so the trace is bit-identical for one
     * @p seed on every platform and standard library.
     */
    static std::vector<double> poisson(int n, double rate_per_s,
                                       uint64_t seed);
};

/// Serving knobs.
struct ServerOptions {
    /// Largest decode batch one iteration can run (slot count).
    int max_batch = 32;
    /// Decode tokens each request needs before it completes.
    int tokens_per_request = 1;
    /// Batch sizes the plan cache holds compiled programs for; the
    /// server picks the smallest bucket covering the running batch.
    /// Empty = powers of two up to max_batch.
    std::vector<int> batch_buckets;
    /// Keep operator weights resident in SRAM across iterations
    /// (evicted oldest-first under pressure); off = every iteration
    /// re-preloads from HBM like a one-shot run.
    bool keep_resident = true;
};

/// Aggregate serving metrics for one trace (paper-style tail report).
struct ServingReport {
    int requests = 0;
    int iterations = 0;
    int64_t tokens = 0;
    double makespan = 0.0;  ///< clock when the last request completed.

    // --- request latency (arrival -> last token), seconds ---
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    double max_latency = 0.0;

    /// Completed tokens per second of makespan (goodput; padded batch
    /// slots do not count).
    double tokens_per_s = 0.0;

    // --- queue (waiting requests, excl. the running batch) ---
    double mean_queue_depth = 0.0;  ///< time-weighted.
    int peak_queue_depth = 0;

    // --- resources (time-weighted over busy iterations) ---
    double hbm_util = 0.0;
    double noc_util = 0.0;
    uint64_t peak_sram_per_core = 0;
    bool memory_exceeded = false;

    // --- residency effect ---
    /// preload_only seconds of the first decode iteration (cold).
    double first_decode_preload = 0.0;
    /// Mean preload_only seconds of the remaining iterations (warm).
    double steady_decode_preload = 0.0;
    /// Weights resident per core when serving finished.
    uint64_t resident_bytes = 0;
    /// Preloads satisfied from resident weights (no HBM traffic).
    int64_t preloads_skipped = 0;

    /// Multi-line human summary.
    std::string summary() const;

    /// Byte-exact serialization of every metric (IEEE bit patterns);
    /// equal strings iff the reports are bit-identical — the --jobs
    /// determinism check.
    std::string serialize_bits() const;
};

/**
 * The serving loop. The server owns no compiler: a ProgramSource maps
 * a batch bucket to its compiled+lowered program (see
 * compiler::ServingCompiler), so the same loop serves any frontend.
 */
class Server {
  public:
    /// Compiled program for one batch bucket; must stay valid for the
    /// duration of serve(). Returning the same object for repeated
    /// buckets is what enables cross-iteration weight residency.
    using ProgramSource =
        std::function<std::shared_ptr<const sim::SimProgram>(int batch)>;

    Server(const sim::Machine& machine, ServerOptions opts);

    /// Serves @p arrivals (sorted seconds) to completion.
    ServingReport serve(const std::vector<double>& arrivals,
                        const ProgramSource& programs) const;

    const ServerOptions& options() const { return opts_; }

  private:
    const sim::Machine& machine_;
    ServerOptions opts_;
};

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_SERVER_H
