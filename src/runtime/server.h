/**
 * @file
 * The serving runtime: a request scheduler on top of the resumable
 * simulator engine.
 *
 * A Server turns the one-shot "compile a decode step, simulate it"
 * flow into continuous serving: requests arrive on a trace (closed
 * loop or Poisson open loop), are admitted into iterations with
 * iteration-level batching, and every iteration executes a compiled
 * SimProgram on one persistent EngineState — so weights kept resident
 * across back-to-back iterations skip their HBM preload, the
 * steady-state decode fast path.
 *
 * Serving is disaggregated: requests carry a phase — prefill (the
 * prompt must be ingested by a forward iteration first) or decode
 * (token generation only) — and prefill and decode form separate
 * arrival classes with their own batch buckets and compiled program
 * families, sharing one EngineState residency pool. Prompts carry
 * their own length: queued prompts are grouped into the smallest
 * covering (batch, prompt-length) bucket, so a short prompt runs a
 * prefill program compiled at its bucketed length instead of paying
 * for a full-sequence forward pass (the report's padding-waste
 * counters measure exactly what that saves). Requests
 * also carry a priority class: a high-priority arrival preempts a
 * running all-normal iteration at the next step() boundary — the
 * victim's interpreter frame is parked, one iteration serving the
 * high-priority requests runs, and the victim resumes exactly where it
 * stopped (EngineState::park/resume). When no preemption fires,
 * step-driven results are bit-identical to unpreempted runs.
 *
 * With a non-zero ServerOptions::kv_budget, decode KV state is
 * modeled as first-class residency-pool entries: every request owns a
 * KV segment sized by its prompt length plus the tokens it has
 * decoded, competing with resident weights for SRAM. Prompts whose KV
 * would not fit are deferred at admission (backpressure), spilled
 * segments stall their next iteration while they stream back from
 * HBM, and parked (preempted) requests keep their segments pinned.
 * The default (0) keeps KV memory free — bit-identical to the pre-KV
 * scheduler.
 *
 * With ServerOptions::slo, the two priority classes generalize to
 * per-request deadlines and per-tenant shares: requests carry a
 * tenant id and an absolute deadline, the wait queues order
 * earliest-deadline-first (deterministic ties on request id), batch
 * slots are claimed under a per-tenant weighted token budget
 * replenished one fairness window at a time (deficit-round-robin
 * style, work-conserving — shares only bite under contention), and an
 * urgent deadline arrival may preempt a running iteration through the
 * same park/resume frames as the priority classes, bounded by a
 * per-request preemption budget. The default (slo off) rejects
 * tagged requests and is bit-identical to the two-class scheduler —
 * as is slo on over a single-tenant, no-deadline trace (the anchor
 * asserted in tests/slo_test.cc).
 *
 * The ServingReport aggregates the paper-style serving metrics: tail
 * latency percentiles, time-to-first-token, tokens/s goodput, queue
 * depth, preemption counts, time-weighted HBM/NoC utilization, and
 * (with slo) SLO attainment and per-tenant token shares.
 * Everything is deterministic: serving the same trace with the same
 * programs is bit-identical at any compiler --jobs setting
 * (serialize_bits is the proof hook).
 */
#ifndef ELK_RUNTIME_SERVER_H
#define ELK_RUNTIME_SERVER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::runtime {

/// Arrival-time generators for serving experiments (seconds, sorted).
struct ArrivalTrace {
    /// Closed loop: all @p n requests queued at t = 0.
    static std::vector<double> closed_loop(int n);

    /**
     * Open loop: @p n Poisson arrivals at @p rate_per_s requests/s.
     * Gaps are drawn from a hand-rolled xorshift-free mt19937_64 +
     * inverse-CDF exponential, so the trace is bit-identical for one
     * @p seed on every platform and standard library.
     */
    static std::vector<double> poisson(int n, double rate_per_s,
                                       uint64_t seed);

    /**
     * Bursty open loop: a two-state Markov-modulated Poisson process
     * averaging @p rate_per_s requests/s. 10% of the time the process
     * sits in a burst state arriving at @p burst_factor x the mean
     * rate; the calm state's rate is scaled down so the long-run mean
     * stays @p rate_per_s. @p burst_factor must be in [1, 10);
     * 1 degenerates to Poisson exactly — the trace equals
     * poisson(n, rate_per_s, seed) element-by-element. Same
     * platform-stable draw discipline as poisson(), with the
     * state-holding times on their own domain-separated stream.
     */
    static std::vector<double> bursty(int n, double rate_per_s,
                                      double burst_factor,
                                      uint64_t seed);
};

/// Which serving stage a request arrives in.
enum class Phase {
    kPrefill,  ///< needs one prefill iteration before decoding.
    kDecode,   ///< decode-only (e.g. a migrated / resumed request).
};

/// Scheduling class of a request.
enum class Priority {
    kNormal,
    /// Admitted ahead of normal requests at every boundary, and (with
    /// ServerOptions::preempt) preempts a running all-normal
    /// iteration at the next step() boundary on arrival.
    kHigh,
};

/// One serving request of the disaggregated scheduler.
struct Request {
    double arrival = 0.0;  ///< seconds; requests must be sorted.
    Phase phase = Phase::kPrefill;
    Priority priority = Priority::kNormal;
    /// Decode tokens generated after the prefill; the request
    /// completes when the last one is produced. Must be >= 1 for
    /// decode-phase requests. Prefill-phase requests may carry 0: the
    /// request completes (and frees its KV) the moment its prompt is
    /// ingested, never joining the decode class — the prefill half of
    /// a disaggregated prefill-tier/decode-tier cluster split.
    int decode_tokens = 1;
    /// Prompt tokens the prefill iteration must ingest. 0 (default)
    /// means the full model sequence length
    /// (ServerOptions::max_prompt_len) — the fixed-shape scheduler's
    /// behavior. Ignored for decode-phase requests.
    int prompt_len = 0;
    /// Shared-prefix population id this prompt starts with, or -1
    /// (default) for a fully private prompt. Requires
    /// ServerOptions::prefix_sharing and Phase::kPrefill.
    int prefix_id = -1;
    /// Prompt tokens the shared prefix covers; must be in
    /// [1, prompt_len - 1] when prefix_id >= 0 (at least one residual
    /// token always reaches prefill). Ignored when prefix_id < 0.
    int prefix_len = 0;
    /// Tokens of KV state arriving with this request over the
    /// cluster's chip-to-chip interconnect (set by the cluster router;
    /// 0 = none, the default). Requires KV modeling (kv_budget > 0).
    /// On a decode-phase request the migrated KV replaces the local
    /// HBM refetch a bare decode arrival would pay; on a prefill-phase
    /// request it must equal prefix_len — the shared prefix segment is
    /// imported (seeding the local cache) instead of being re-prefilled.
    int kv_migrate_tokens = 0;
    /// Seconds the migration transfer stalls this chip's clock,
    /// priced by the router's hw::Interconnect at routing time (the
    /// server stays interconnect-ignorant). Charged like a kv_prepare
    /// stall when the migration is consumed; a migration skipped
    /// because the prefix is already cached locally charges nothing.
    double kv_migrate_stall = 0.0;
    /// Tenant this request bills against, in [0, ServerOptions::
    /// tenants). Requires ServerOptions::slo when non-zero (the
    /// default tenant 0 is what untagged traces carry).
    int tenant = 0;
    /// Absolute completion deadline (seconds, same clock as arrival);
    /// 0 (default) = no deadline. Requires ServerOptions::slo when
    /// set, and must not precede the arrival. Deadline carriers are
    /// claimed earliest-deadline-first and may trigger a bounded
    /// preemption (see ServerOptions::preempt_budget); a request that
    /// completes after its deadline counts one miss and its lateness
    /// enters the report's SLO block.
    double deadline_s = 0.0;
};

/// Helpers to build Request traces from plain arrival times.
std::vector<Request> decode_requests(const std::vector<double>& arrivals,
                                     int decode_tokens);
std::vector<Request> prefill_requests(const std::vector<double>& arrivals,
                                      int decode_tokens);

/**
 * Tags a plain arrival trace into a mixed Request trace: each request
 * is prefill-phase with probability @p prefill_frac and high-priority
 * with probability @p high_frac, drawn from a seeded mt19937_64 so
 * the tagging is bit-identical for one @p seed on every platform.
 * Fractions of 0 and 1 are exact (no draws consumed differently).
 */
std::vector<Request> make_request_trace(
    const std::vector<double>& arrivals, int decode_tokens,
    double prefill_frac, double high_frac, uint64_t seed);

/**
 * Assigns every request a geometric-tailed prompt length in
 * [1, @p max_len]: lengths are 1 + an inverse-CDF exponential of mean
 * @p mean_len drawn from a seeded mt19937_64, clamped to @p max_len —
 * bit-identical for one @p seed on every platform and standard
 * library (one draw per request regardless of phase, so the tagging
 * never depends on the phase mix). The length-skewed trace is where
 * (batch, prompt-length) bucketed prefill beats full-length prefill.
 */
void tag_prompt_lengths(std::vector<Request>& requests, int max_len,
                        double mean_len, uint64_t seed);

/**
 * Assigns every request a tenant id drawn uniformly from
 * [0, @p tenants), from its own domain-separated seeded mt19937_64
 * stream — bit-identical for one @p seed on every platform, one draw
 * per request, and independent of every other tagging stream (the
 * tag_prompt_lengths() discipline). @p tenants == 1 tags every
 * request tenant 0 exactly (no draws consumed).
 */
void tag_tenants(std::vector<Request>& requests, int tenants,
                 uint64_t seed);

/**
 * Assigns every request the absolute deadline `arrival + slo_s` — the
 * uniform-SLO tagging the `elkc serve --slo` driver applies. Purely
 * arithmetic (no draws), so it is trivially platform-stable and never
 * perturbs any seeded stream. @p slo_s must be positive.
 */
void tag_deadlines(std::vector<Request>& requests, double slo_s);

/// Smallest of the sorted @p buckets covering @p need; the largest
/// bucket when none does. The server's bucket-selection rule for
/// decode batches, prefill batches, and prompt lengths alike.
int pick_bucket(const std::vector<int>& buckets, int need);

/**
 * Knobs for make_session_trace(): conversational traffic — multi-turn
 * sessions with think-time between turns, a Zipf-popular population of
 * shared prompt prefixes, and an optionally bursty session arrival
 * process. The defaults (single turn, no prefixes, burst_factor 1)
 * reduce to a Poisson prefill trace.
 */
struct SessionTraceOptions {
    int sessions = 0;           ///< conversation count (>= 0).
    double rate_per_s = 0.0;    ///< session arrival rate; 0 = all at
                                ///< t = 0 (closed loop).
    double burst_factor = 1.0;  ///< ArrivalTrace::bursty() factor in
                                ///< [1, 10); 1 = plain Poisson.
    double mean_turns = 1.0;    ///< mean prompts per session (>= 1,
                                ///< geometric tail).
    double think_time_s = 0.0;  ///< mean gap between a session's
                                ///< turns (exponential; 0 = back to
                                ///< back).
    int decode_tokens = 1;      ///< decode tokens per turn.
    int max_prompt_len = 0;     ///< model sequence length (>= 1; >= 2
                                ///< when prefixes are in play).
    double prompt_mean_len = 0.0;  ///< geometric mean of the private
                                   ///< suffix length; 0 = full-length
                                   ///< prompts.
    int prefix_population = 0;  ///< distinct shared prefixes; 0
                                ///< disables prefix tagging entirely.
    double prefix_zipf_s = 1.0; ///< Zipf popularity exponent.
    double prefix_mean_len = 0.0;  ///< geometric mean of a prefix's
                                   ///< canonical length.
};

/**
 * Builds a conversational Request trace: sessions arrive on a
 * (possibly bursty) open-loop process, each runs a geometric number of
 * prefill turns separated by exponential think-time, every turn of a
 * session reuses the session's Zipf-drawn shared prefix id, and each
 * turn's prompt is that prefix plus a geometric private suffix
 * (clamped so at least one residual token always reaches prefill).
 * All requests are prefill-phase, normal priority, sorted by arrival.
 * Every distribution draws from its own domain-separated mt19937_64
 * stream — like tag_prompt_lengths(), the trace is bit-identical for
 * one @p seed on every platform and standard library, and changing
 * one knob never perturbs another knob's draws.
 */
std::vector<Request> make_session_trace(const SessionTraceOptions& opts,
                                        uint64_t seed);

/// Serving knobs.
struct ServerOptions {
    /// Largest decode batch one iteration can run (slot count).
    int max_batch = 32;
    /// Decode tokens each request needs before it completes (the
    /// plain-arrival serve() entry point; Request carries its own).
    int tokens_per_request = 1;
    /// Batch sizes the plan cache holds compiled decode programs for;
    /// the server picks the smallest bucket covering the running
    /// batch. Empty = powers of two up to max_batch.
    std::vector<int> batch_buckets;
    /// Largest number of prompts one prefill iteration ingests.
    int max_prefill_batch = 4;
    /// Prefill program buckets; empty = powers of two up to
    /// max_prefill_batch.
    std::vector<int> prefill_buckets;
    /// Model sequence length: the longest prompt a prefill iteration
    /// can ingest, and what Request::prompt_len == 0 resolves to.
    /// Required (>= 1) whenever a trace contains prefill-phase
    /// requests; 0 (default) = decode-only serving.
    int max_prompt_len = 0;
    /// Prompt-length buckets prefill programs are compiled at; the
    /// server picks the smallest bucket covering the longest prompt
    /// in the claimed batch. Empty = powers of two up to
    /// max_prompt_len. A single {max_prompt_len} bucket forces every
    /// prompt through full-length prefill (the fixed-shape
    /// scheduler).
    std::vector<int> prompt_buckets;
    /// Keep operator weights resident in SRAM across iterations
    /// (evicted per residency_policy under pressure); off = every
    /// iteration re-preloads from HBM like a one-shot run.
    bool keep_resident = true;
    /// How the engine decides which resident weights survive.
    sim::ResidencyPolicy residency_policy =
        sim::ResidencyPolicy::kRetireOrder;
    /// Let high-priority arrivals park a running all-normal iteration
    /// at the next step() boundary (off = they still jump the queues,
    /// but never interrupt an iteration in flight).
    bool preempt = true;
    /// Per-core byte cap on decode KV state held resident in SRAM.
    /// 0 (default) disables KV modeling entirely — KV memory is free,
    /// the pre-KV behavior, bit-identical to it. When > 0 every
    /// request owns a KV segment in the engine's residency pool:
    /// allocated at prefill admission (sized by its prompt length),
    /// grown one token per decode iteration, pinned while its
    /// iteration runs or is parked by preemption, freed at
    /// completion. Segments past the budget spill to HBM and stall
    /// the next iteration while they stream back; prompts whose KV
    /// would not fit are deferred at admission (backpressure).
    uint64_t kv_budget = 0;
    /// KV-cache bytes one token appends across the whole machine
    /// (graph::kv_bytes_per_token(model); the server divides by the
    /// core count). Required > 0 when kv_budget > 0.
    uint64_t kv_bytes_per_token = 0;
    /// Serve prompts tagged with shared-prefix ids (Request::
    /// prefix_id) from a prefix cache: the first prompt carrying a
    /// prefix seeds a refcounted shared KV segment, later prompts hit
    /// it and skip the covered prefill tokens — the prefill bucket is
    /// chosen for the residual length only. Requires kv_budget > 0
    /// (prefix KV lives in the modeled pool; fatal otherwise). Off
    /// (default) rejects prefix-tagged requests and is bit-identical
    /// to the prefix-free scheduler.
    bool prefix_sharing = false;
    /// Multi-tenant SLO scheduling: honor Request::tenant and
    /// Request::deadline_s — EDF-ordered wait queues (deterministic
    /// ties on request id), per-tenant fairness shares at claim time,
    /// deadline-triggered preemption under preempt_budget, and the
    /// SLO block in the report. Off (default) rejects tagged requests
    /// and is bit-identical to the two-class scheduler; on, a
    /// single-tenant no-deadline trace still reproduces it bit-for-
    /// bit (the tests/slo_test.cc anchor).
    bool slo = false;
    /// Tenant id domain [0, tenants) requests may carry. Must be >= 1;
    /// > 1 requires slo.
    int tenants = 1;
    /// Per-tenant fairness weights (relative, normalized internally).
    /// Empty (default) = equal shares; otherwise exactly `tenants`
    /// positive entries. Requires slo when non-empty.
    std::vector<double> tenant_shares;
    /// Token budget one fairness window distributes across tenants in
    /// proportion to their shares (deficit-round-robin). A tenant
    /// claims batch slots only while its budget is positive; the
    /// window replenishes whenever waiting work exists but nothing is
    /// claimable, so scheduling stays work-conserving — shares govern
    /// claim *order* under contention, never idle the chip. 0
    /// (default) auto-sizes to max_batch + max_prompt_len.
    int fairness_tokens = 0;
    /// Deadline preemptions one request may *trigger* (each firing
    /// decrements the triggering request's budget; riders served by
    /// the same nested iteration spend nothing). 0 disables deadline
    /// preemption entirely; high-priority preemption (preempt) is
    /// unaffected either way. Only meaningful with slo.
    int preempt_budget = 1;
    /// Chunked prefill: split every prompt into chunks of at most this
    /// many tokens (a power of two; the last chunk carries the
    /// residual), each chunk scheduled through the (batch,
    /// prompt-length) bucket grid like a short prompt. Between the
    /// chunks of a long prompt the scheduler yields one decode
    /// iteration whenever decode work waits, so decode latency stops
    /// stalling behind whole long prompts; a chunk's KV grows the
    /// request's segment incrementally and TTFT fires when the final
    /// chunk retires. Chunking also makes prefill claiming
    /// length-aware: the prefill queues order by (effective deadline,
    /// remaining length, id) under a bounded fairness window
    /// (kChunkStarveLimit passes), so short prompts and near-deadline
    /// chunks claim first without starving giants. Must be <=
    /// max_prompt_len and needs a multi-entry prompt-bucket ladder
    /// (with a single full-length bucket every chunk would pad to the
    /// full sequence — fatal). 0 (default) = off, bit-identical to
    /// the unchunked scheduler.
    int prefill_chunk = 0;
    /// KV-locality-aware decode claiming: batch membership prefers
    /// requests whose KV segment is still resident in SRAM; a spilled
    /// request is claimed only when no resident request can fill the
    /// slot (each examined-and-passed-over spilled request counts one
    /// kv_locality_skips). Work-conserving: when nothing resident can
    /// run, the spilled head runs exactly as without this flag.
    /// Requires kv_budget > 0 (fatal otherwise). Off (default) is
    /// bit-identical to residency-blind claiming.
    bool kv_locality = false;
};

/**
 * The chunk schedule prefill_chunk imposes on a prompt: full chunks of
 * @p chunk tokens followed by one residual chunk with the remainder
 * (e.g. a 100-token prompt at chunk 32 -> {32, 32, 32, 4}). @p chunk
 * must be a positive power of two; @p prompt_len >= 1. A prompt no
 * longer than @p chunk yields a single chunk — the degenerate case the
 * chunked bit-identity anchor relies on.
 */
std::vector<int> chunk_plan(int prompt_len, int chunk);

/// Aggregate serving metrics for one trace (paper-style tail report).
struct ServingReport {
    int requests = 0;       ///< requests the trace contained.
    int iterations = 0;     ///< engine iterations run (all classes).
    int64_t tokens = 0;     ///< decode tokens produced (goodput base).
    double makespan = 0.0;  ///< clock when the last request completed.

    // --- request latency (arrival -> last token), seconds ---
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    double max_latency = 0.0;

    /// Completed tokens per second of makespan (goodput; padded batch
    /// slots do not count).
    double tokens_per_s = 0.0;

    // --- queue (waiting requests, excl. the running batch) ---
    double mean_queue_depth = 0.0;  ///< time-weighted.
    int peak_queue_depth = 0;

    // --- resources (time-weighted over busy iterations) ---
    double hbm_util = 0.0;
    double noc_util = 0.0;
    uint64_t peak_sram_per_core = 0;
    bool memory_exceeded = false;

    // --- residency effect ---
    /// preload_only seconds of the first decode iteration (cold).
    double first_decode_preload = 0.0;
    /// Mean preload_only seconds of the remaining decode iterations
    /// (warm).
    double steady_decode_preload = 0.0;
    /// Weights resident per core when serving finished.
    uint64_t resident_bytes = 0;
    /// Preloads satisfied from resident weights (no HBM traffic).
    int64_t preloads_skipped = 0;

    // --- disaggregation / preemption ---
    int prefill_iterations = 0;
    int decode_iterations = 0;
    /// Iterations parked for a high-priority arrival (and resumed).
    int preemptions = 0;
    /// Time to first token (arrival -> prefill completion), over
    /// prefill-phase requests only; zero when the trace has none.
    double mean_ttft = 0.0;
    double p50_ttft = 0.0;
    double p95_ttft = 0.0;
    double max_ttft = 0.0;
    int high_priority_requests = 0;
    /// p95 request latency within the high-priority class (zero when
    /// the trace has none).
    double p95_high_latency = 0.0;

    // --- variable-length prefill ---
    /// Actual prompt tokens ingested across prefill iterations.
    int64_t prompt_tokens = 0;
    /// Token slots the compiled prefill programs computed beyond the
    /// actual prompts: batch padding up to the batch bucket plus
    /// length padding up to the prompt bucket. The waste that
    /// (batch, prompt-length) bucketing exists to shrink.
    int64_t padded_prompt_tokens = 0;
    /// Iterations run per compiled (batch, prompt_len) prefill
    /// bucket, sorted by (prompt_len, batch).
    struct PrefillBucket {
        int batch = 0;       ///< batch bucket the program was built at.
        int prompt_len = 0;  ///< prompt-length bucket.
        int iterations = 0;  ///< iterations served from this bucket.
    };
    std::vector<PrefillBucket> prefill_bucket_iterations;

    // --- KV residency (ServerOptions::kv_budget > 0; all zero when
    // --- KV modeling is off) ---
    /// KV modeling was enabled for this serve (gates the summary
    /// block; the counters below are all zero when false).
    bool kv_modeled = false;
    /// High-water mark of resident KV bytes per core.
    uint64_t kv_bytes_peak = 0;
    /// Time-weighted mean of resident KV bytes per core.
    double mean_kv_bytes = 0.0;
    /// KV segments spilled to HBM — at the KV budget boundary or
    /// under SRAM pressure against resident weights.
    int64_t kv_evictions = 0;
    /// KV streams charged before an iteration could run: spilled
    /// segments fetched back, plus decode-phase arrivals whose KV
    /// state migrates in from HBM.
    int64_t kv_refetches = 0;
    /// Seconds serving stalled on those KV streams.
    double kv_stall = 0.0;
    /// Prompt claims postponed because their KV segment would not fit
    /// the budget next to the segments already resident
    /// (admission backpressure).
    int deferred_admissions = 0;
    /// Cross-chip KV migrations consumed: requests whose KV state
    /// arrived over the cluster interconnect (Request::
    /// kv_migrate_tokens) instead of streaming from local HBM.
    int64_t kv_migrations = 0;
    /// Tokens of KV those migrations carried onto this chip.
    int64_t kv_migrated_tokens = 0;
    /// Seconds serving stalled on interconnect KV transfers (disjoint
    /// from kv_stall, which counts local HBM streams only).
    double kv_migration_stall = 0.0;

    // --- prefix cache (ServerOptions::prefix_sharing; all zero when
    // --- sharing is off) ---
    /// Prefix sharing was enabled for this serve (gates the summary
    /// block; the counters below are all zero when false).
    bool prefix_sharing = false;
    /// Prompts whose prefix id matched a cached shared segment.
    int64_t prefix_hits = 0;
    /// Prompt tokens those hits covered — tokens served from cached
    /// KV instead of being ingested by a prefill iteration.
    int64_t prefix_hit_tokens = 0;
    /// Program-level prefill token slots avoided: for every prefill
    /// iteration, the (batch bucket x length bucket) slots the claimed
    /// prompts would have needed at their full lengths, minus the
    /// slots the residual-length bucket actually computed.
    int64_t prefill_tokens_saved = 0;
    /// High-water mark of resident shared prefix KV bytes per core.
    uint64_t shared_kv_bytes = 0;

    // --- multi-tenant SLO (ServerOptions::slo; all zero when SLO
    // --- scheduling is off) ---
    /// SLO scheduling was enabled for this serve (gates the summary
    /// block; the counters below are all zero when false).
    bool slo = false;
    /// Tenant id domain served (ServerOptions::tenants).
    int tenants = 0;
    /// Requests that carried a deadline.
    int deadline_requests = 0;
    /// Deadline carriers that completed after their deadline.
    int deadline_misses = 0;
    /// Fraction of deadline carriers that met their deadline (1 when
    /// the trace carried none).
    double slo_attainment = 0.0;
    /// p99 of completion lateness (completion - deadline, clamped to
    /// >= 0) over deadline carriers.
    double p99_lateness = 0.0;
    /// Worst completion lateness over deadline carriers.
    double max_lateness = 0.0;
    /// Preemptions triggered by deadline urgency (a subset of
    /// `preemptions`, which also counts high-priority firings).
    int deadline_preemptions = 0;
    /// Fairness windows opened (per-tenant token budgets replenished).
    int64_t fairness_windows = 0;
    /// Per-tenant roll-up, one entry per tenant id in order.
    struct TenantShare {
        int tenant = 0;            ///< tenant id.
        int requests = 0;          ///< requests the tenant submitted.
        int64_t tokens = 0;        ///< work tokens served (prompt +
                                   ///< decode).
        double token_share = 0.0;  ///< tokens / all tenants' tokens.
        int deadline_requests = 0; ///< deadline carriers submitted.
        int deadline_misses = 0;   ///< of those, completed late.
        double attainment = 0.0;   ///< per-tenant SLO attainment.
    };
    std::vector<TenantShare> tenant_shares;

    // --- chunked prefill / KV-locality claiming (ServerOptions::
    // --- prefill_chunk / kv_locality; all zero when both are off) ---
    /// Chunk size served with (ServerOptions::prefill_chunk; 0 = off,
    /// gates the summary block).
    int prefill_chunk = 0;
    /// Prompts whose ingestion needed more than one chunk.
    int64_t chunked_prompts = 0;
    /// Chunk claims across all prefill iterations (== prompts claimed
    /// when chunking is off or every prompt fits one chunk).
    int64_t prefill_chunks = 0;
    /// Decode iterations the scheduler interleaved between the chunks
    /// of partially-ingested prompts (the head-of-line win).
    int64_t chunk_decode_interleaves = 0;
    /// KV-locality decode claiming was enabled
    /// (ServerOptions::kv_locality; gates the summary line).
    bool kv_locality = false;
    /// Spilled requests passed over by a decode claim because a
    /// KV-resident request could fill the slot instead.
    int64_t kv_locality_skips = 0;

    /// Multi-line human summary.
    std::string summary() const;

    /// Byte-exact serialization of every metric (IEEE bit patterns);
    /// equal strings iff the reports are bit-identical — the --jobs
    /// determinism check.
    std::string serialize_bits() const;
};

/**
 * The serving loop. The server owns no compiler: a ProgramSource maps
 * a batch bucket to its compiled+lowered program (see
 * compiler::ServingCompiler), so the same loop serves any frontend.
 */
class Server {
  public:
    /// Compiled program for one batch bucket; must stay valid for the
    /// duration of serve(). Returning the same object for repeated
    /// buckets is what enables cross-iteration weight residency.
    using ProgramSource =
        std::function<std::shared_ptr<const sim::SimProgram>(int batch)>;

    /// Compiled prefill program for one (batch, prompt_len) bucket —
    /// the two-dimensional grid (see ServingCompiler::program(batch,
    /// prompt_len)); the same validity and identity rules as
    /// ProgramSource apply.
    using PrefillProgramSource =
        std::function<std::shared_ptr<const sim::SimProgram>(
            int batch, int prompt_len)>;

    /// Validates and finalizes @p opts (bucket ladders, KV knobs);
    /// bad combinations are fatal here, not mid-serve. @p machine
    /// must outlive the server.
    Server(const sim::Machine& machine, ServerOptions opts);

    /// Serves @p arrivals (sorted seconds) to completion as
    /// decode-only, normal-priority requests of
    /// options().tokens_per_request tokens each — the PR 2 fast path,
    /// bit-identical to the disaggregated scheduler on the same
    /// degenerate trace. KV modeling is not supported on this
    /// reference loop: kv_budget > 0 is fatal here (use the
    /// Request-based overload).
    ServingReport serve(const std::vector<double>& arrivals,
                        const ProgramSource& programs) const;

    /**
     * The disaggregated scheduler: serves @p requests (sorted by
     * arrival) to completion. Prefill-phase requests are batched into
     * prefill iterations — the claimed prompts are grouped into the
     * smallest covering (batch, prompt-length) bucket of @p
     * prefill_programs, prefill-first scheduling — then join the
     * decode class; decode iterations run @p decode_programs buckets.
     * Both program families execute on one EngineState, sharing its
     * residency pool — give them disjoint op-id namespaces
     * (ServingCompiler::Options). @p prefill_programs may be empty
     * when no request has Phase::kPrefill.
     */
    ServingReport serve(const std::vector<Request>& requests,
                        const PrefillProgramSource& prefill_programs,
                        const ProgramSource& decode_programs) const;

    /// The finalized options (default bucket ladders filled in).
    const ServerOptions& options() const { return opts_; }

  private:
    const sim::Machine& machine_;
    ServerOptions opts_;
};

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_SERVER_H
