#include "runtime/server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <random>
#include <sstream>
#include <utility>

#include "runtime/metrics.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/stats.h"

namespace elk::runtime {

using util::append_bits;

int
pick_bucket(const std::vector<int>& buckets, int need)
{
    for (int b : buckets) {
        if (b >= need) {
            return b;
        }
    }
    return buckets.back();
}

std::vector<int>
chunk_plan(int prompt_len, int chunk)
{
    util::check(prompt_len >= 1, "chunk_plan: prompt_len must be >= 1");
    util::check(chunk >= 1 && (chunk & (chunk - 1)) == 0,
                "chunk_plan: chunk must be a positive power of two");
    std::vector<int> out;
    out.reserve(static_cast<size_t>((prompt_len + chunk - 1) / chunk));
    int left = prompt_len;
    while (left > chunk) {
        out.push_back(chunk);
        left -= chunk;
    }
    out.push_back(left);
    return out;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Default bucket ladder: powers of two up to @p max, validated.
void
finalize_buckets(std::vector<int>& buckets, int max, const char* what)
{
    if (buckets.empty()) {
        for (int b = 1; b < max; b *= 2) {
            buckets.push_back(b);
        }
        buckets.push_back(max);
    }
    std::sort(buckets.begin(), buckets.end());
    util::check(buckets.front() >= 1, std::string("Server: ") + what +
                                          " buckets must be positive");
    util::check(buckets.back() == max,
                std::string("Server: largest ") + what +
                    " bucket must equal the class's maximum");
}

sim::EngineState::Options
engine_options(const ServerOptions& opts)
{
    sim::EngineState::Options eopts;
    eopts.policy = opts.residency_policy;
    eopts.kv_budget = opts.kv_budget;
    return eopts;
}

/**
 * One serve() call of the disaggregated scheduler. Requests wait in
 * four queues — (prefill | decode) x (high | normal) — and every
 * iteration serves one class: prefill-first (a waiting prompt blocks
 * nothing longer than one iteration and unlocks its decode work),
 * high before normal within a class. The decode batch itself is
 * iteration-level: members persist across decode iterations until
 * their tokens are done. High-priority arrivals preempt a running
 * all-normal iteration at the next step() boundary via
 * EngineState::park(): one iteration serving only already-queued
 * high-priority work runs on the same state, then the victim resumes
 * where it stopped. On a degenerate trace (decode-only, all normal)
 * this loop performs exactly the PR 2 sequence of engine and
 * accumulator operations, so its report is bit-identical to the plain
 * serve() overload — asserted in tests/preempt_test.cc.
 *
 * With ServerOptions::slo the same queues order earliest-deadline-
 * first (ties on request id — queue_insert keeps them sorted, so
 * every claim site below reads EDF order for free), claims consult a
 * per-tenant deficit-round-robin token budget (replenish() opens a
 * fairness window whenever work waits but nothing is claimable, so
 * the scheduler stays work-conserving), and an urgent deadline
 * arrival can trigger the same park/resume preemption as a
 * high-priority one, bounded by the triggering request's
 * preempt_budget. Every slo branch is guarded by slo_on_, and with
 * slo on over a single-tenant no-deadline trace the EDF order
 * degenerates to FIFO and the replenish loop always fills the batch —
 * the same claims, the same engine ops, bit-identical to slo off
 * (asserted in tests/slo_test.cc).
 */
class DisaggRun {
  public:
    DisaggRun(const sim::Machine& machine, const ServerOptions& opts,
              const std::vector<Request>& requests,
              const Server::PrefillProgramSource& prefill_programs,
              const Server::ProgramSource& decode_programs)
        : machine_(machine),
          opts_(opts),
          requests_(requests),
          prefill_src_(prefill_programs),
          decode_src_(decode_programs),
          state_(machine, engine_options(opts))
    {
    }

    ServingReport run();

  private:
    struct IterOutcome {
        sim::SimResult r;
        /// Wall seconds the iteration actually ran (interrupting
        /// iterations excluded, so durations partition the makespan).
        double duration = 0.0;
    };

    int total_requests() const
    {
        return static_cast<int>(requests_.size());
    }

    size_t waiting_total() const
    {
        return pre_hi_.size() + pre_lo_.size() + dec_hi_.size() +
               dec_lo_.size();
    }

    /// Which waiting requests a claim may take.
    enum class ClaimMode {
        kAll,       ///< both classes (normal scheduling).
        kHighOnly,  ///< high-priority queue only (PR 3 preemption).
        /// High-priority members plus deadline carriers more urgent
        /// than urgent_thresh_ (deadline-triggered preemption).
        kUrgent,
    };

    /// Queues every request that has arrived by the current clock.
    void admit();
    /// Arrival time of the next unadmitted preemption watcher: a
    /// high-priority request, or (slo with a preemption budget) any
    /// deadline carrier.
    void refresh_next_high();
    /// A request's deadline with 0 = "none" mapped to +inf, so EDF
    /// comparisons need no special case.
    double effective_deadline(int r) const
    {
        const double d = requests_[r].deadline_s;
        return d > 0.0 ? d : kInf;
    }
    /// Strict EDF order: (effective deadline, request id) — a total
    /// order, so every tie is broken deterministically.
    bool edf_before(int a, int b) const
    {
        const double da = effective_deadline(a);
        const double db = effective_deadline(b);
        return da != db ? da < db : a < b;
    }
    /// Appends @p r to @p q (slo off) or insert-sorts it EDF (slo on),
    /// so queue order IS claim order in both schedulers.
    void queue_insert(std::deque<int>& q, int r);
    /// Whether @p mode lets @p r into the claimed batch.
    bool claim_eligible(int r, ClaimMode mode) const;
    /// Opens one fairness window: every tenant's deficit gains its
    /// quantum, capped at one quantum of saved-up credit (a long-idle
    /// tenant cannot hoard windows; a tenant in debt climbs out one
    /// window at a time).
    void replenish();
    /// Claims up to @p cap members from @p hi (then @p lo, unless
    /// kHighOnly) in queue order, appending to @p members. With slo
    /// the queue order is EDF and a member's tenant must hold positive
    /// deficit; windows replenish while slots stay unfilled and
    /// eligible work waits, so the claim is work-conserving.
    void claim(std::deque<int>& hi, std::deque<int>& lo, int cap,
               ClaimMode mode, std::vector<int>& members);
    /// Most urgent queued deadline carrier (EDF order) that beats
    /// @p thresh and still holds trigger budget; -1 when none.
    /// @p prefill reports whether it waits in a prefill queue.
    int urgent_trigger(double thresh, bool* prefill) const;
    /// Completion bookkeeping shared by every completion site:
    /// latency, and (slo) deadline lateness and per-tenant misses.
    void record_completion(int r);
    /// Borrows an empty member-list from the scratch pool (capacity
    /// retained from earlier iterations). Pool discipline instead of
    /// one shared buffer because a preemption nests a second
    /// iteration inside execute() while the victim's list is live.
    std::vector<int> acquire_scratch();
    /// Returns a borrowed list to the pool.
    void release_scratch(std::vector<int>&& v);
    /// begin/step/finish one program; steps watch for preemption when
    /// @p can_preempt.
    IterOutcome execute(const sim::SimProgram& program, bool can_preempt);
    /// Parks the running iteration, serves queued high-priority work
    /// for one iteration, resumes; returns the wall seconds consumed.
    double preempt_for_high();
    /// Shared per-iteration accounting (means are order-sensitive:
    /// this mirrors the plain serve() loop exactly). @p nested marks
    /// a preemption iteration, which must not size the residency
    /// budget — its working set (a mini batch) is not representative.
    void account(const IterOutcome& o, bool decode, bool nested);
    void run_prefill_iteration(ClaimMode mode, bool interruptible,
                               bool force_admit = false);
    void run_decode_iteration(bool interruptible);
    /// Nested decode iteration while the preempted victim is parked:
    /// high-priority members only (kHighOnly), or also deadline
    /// carriers beating the victim's bar (kUrgent).
    void run_decode_mini(ClaimMode mode);
    void finalize();

    /// A request's prompt length with the 0 = "full model sequence
    /// length" default resolved.
    int effective_prompt_len(int r) const
    {
        const int len = requests_[r].prompt_len;
        return len > 0 ? len : opts_.max_prompt_len;
    }

    // --- KV residency (all no-ops while kv_on_ is false, which is
    // --- what keeps kv_budget = 0 bit-identical to the pre-KV loop)

    /// Per-core bytes of @p tokens tokens of KV state.
    uint64_t kv_per_core(int64_t tokens) const
    {
        const uint64_t cores =
            static_cast<uint64_t>(machine_.config().total_cores());
        return (tokens * opts_.kv_bytes_per_token + cores - 1) / cores;
    }

    /// Whether the next waiting prompt's KV can be admitted right now:
    /// it fits the budget next to the resident segments, or it could
    /// never fit at all (oversized segments are born spilled instead
    /// of deferred forever).
    bool prefill_admissible() const;

    /// Ensures every member of @p members has a resident, pinned KV
    /// segment where possible, allocating decode-phase arrivals'
    /// segments (their KV migrates in from HBM) and fetching spilled
    /// ones back, then charges the accumulated HBM stream time as an
    /// idle-clock stall before the iteration.
    void kv_prepare(const std::vector<int>& members);

    /// Charges @p stream_tokens tokens of KV streamed from HBM as an
    /// idle-clock stall before an iteration (no-op for 0). The window
    /// enters every time-weighted mean: HBM saturated for the
    /// transfer, fabric quiet.
    void kv_charge_stream(int64_t stream_tokens);

    /// Charges @p dt seconds of cross-chip KV migration (the
    /// router-priced interconnect transfer a Request carries) as an
    /// idle-clock stall before an iteration (no-op for 0). Unlike
    /// kv_charge_stream the data crosses the chip-to-chip wire, so
    /// the window enters the means with local HBM and fabric quiet.
    void kv_charge_migration(double dt);

    /// Post-iteration bookkeeping for one member: releases its pin
    /// and either grows the segment by the decoded token or frees it
    /// (@p completed).
    void kv_retire(int r, bool completed);

    // --- prefix cache (all no-ops while prefix_on_ is false, which
    // --- is what keeps the default bit-identical to the prefix-free
    // --- scheduler)

    /// Engine pool id of prefix population entry @p pid — negative,
    /// so the shared class never collides with per-request ids.
    static int64_t prefix_kv_id(int pid)
    {
        return -static_cast<int64_t>(pid) - 1;
    }

    /// Longest-match lookup: tokens of request @p r's prompt the
    /// cached prefix covers right now — the shorter of the request's
    /// own prefix span and the canonical segment the first carrier
    /// seeded. 0 = miss (or untagged request).
    int64_t prefix_covered(int r) const
    {
        const int pid = requests_[r].prefix_id;
        if (!prefix_on_ || pid < 0 || prefix_tokens_[pid] == 0) {
            return 0;
        }
        return std::min(static_cast<int64_t>(requests_[r].prefix_len),
                        prefix_tokens_[pid]);
    }

    /// KV bytes the head prompt @p r must newly admit: its private
    /// tail, plus its prefix segment when that is spilled (hit) or
    /// not yet seeded (miss). The single source of truth for both
    /// prefill_admissible() and the claim loop, so backpressure and
    /// claiming can never disagree.
    uint64_t prompt_kv_need(int r) const;

    /// Length/KV-aware prefill order under chunking: starved prompts
    /// first (the bounded fairness window), then (effective deadline,
    /// remaining length, id) — a total order, so sorting is
    /// deterministic.
    bool pre_before(int a, int b) const;

    /// Re-sorts both prefill queues by pre_before — claim order is
    /// queue order, and skips/remaining lengths move between claims.
    /// Chunking only.
    void order_prefill_queues();

    /// KV-locality decode claim: fills free batch slots with
    /// KV-resident requests only; every spilled request passed over
    /// while slots remained counts one kv_locality_skips.
    void claim_kv_resident(std::deque<int>& hi, std::deque<int>& lo,
                           int cap, std::vector<int>& members);

    const sim::Machine& machine_;
    const ServerOptions& opts_;
    const std::vector<Request>& requests_;
    const Server::PrefillProgramSource& prefill_src_;
    const Server::ProgramSource& decode_src_;
    sim::EngineState state_;

    std::vector<int> running_;  ///< decode batch (request indices).
    std::deque<int> pre_hi_, pre_lo_, dec_hi_, dec_lo_;
    std::vector<int> tokens_left_;
    std::vector<double> latencies_;
    std::vector<double> ttfts_;
    int next_arrival_ = 0;
    int next_high_idx_ = 0;
    int completed_ = 0;
    double now_ = 0.0;
    double next_high_arrival_ = kInf;

    ServingReport rep_;
    bool budget_set_ = false;
    util::WeightedMean depth_mean_;
    util::WeightedMean hbm_mean_;
    util::WeightedMean noc_mean_;
    double steady_preload_sum_ = 0.0;
    int steady_iterations_ = 0;
    /// Prefill iteration counts, sorted by (prompt_len bucket, batch
    /// bucket) — the grid is tiny, so a flat sorted vector beats a
    /// node-based map on the per-iteration increment and reads out in
    /// the same ascending order the report expects.
    std::vector<ServingReport::PrefillBucket> bucket_iters_;
    /// Scratch pool for per-iteration member lists (see
    /// acquire_scratch).
    std::vector<std::vector<int>> scratch_pool_;

    /// KV modeling on (ServerOptions::kv_budget > 0).
    bool kv_on_ = false;
    /// Per request: tokens its KV segment covers (-1 = no segment).
    /// With prefix sharing this is the *private tail* only — the
    /// shared prefix's tokens live in the refcounted prefix segment.
    std::vector<int64_t> kv_tokens_;
    /// Per request: this run holds a kv_pin on the segment.
    std::vector<bool> kv_pinned_;
    util::WeightedMean kv_mean_;

    /// Prefix sharing on (ServerOptions::prefix_sharing; implies
    /// kv_on_ — the Server constructor enforces it).
    bool prefix_on_ = false;
    /// Cached prefix population: tokens of the seeded shared segment
    /// per prefix id, 0 while unseeded.
    std::vector<int64_t> prefix_tokens_;
    /// Per request: prefix id it holds a kv_share on (-1 = none).
    std::vector<int> prefix_share_;
    /// Per request: this run holds a kv_pin on its shared prefix.
    std::vector<bool> prefix_pinned_;

    /// SLO scheduling on (ServerOptions::slo). Every member below is
    /// inert while this is false — the bit-identity guard.
    bool slo_on_ = false;
    /// Whether refresh_next_high() also watches deadline carriers:
    /// slo_on_ with a positive preemption budget.
    bool watch_deadlines_ = false;
    /// Per tenant: deficit-round-robin token credit. A claim needs
    /// positive deficit; execution charges actual tokens, so a large
    /// prompt can push a tenant into debt it repays over windows.
    std::vector<double> deficit_;
    /// Per tenant: tokens granted per fairness window (shares scaled
    /// to fairness_tokens).
    std::vector<double> quantum_;
    /// Per tenant: work tokens executed (prompt residuals + decode).
    std::vector<int64_t> tenant_tokens_;
    std::vector<int> tenant_requests_;
    std::vector<int> tenant_deadline_reqs_;
    std::vector<int> tenant_deadline_miss_;
    /// Per-completion lateness (>= 0 seconds), deadline carriers only.
    std::vector<double> latenesses_;
    /// Per request: deadline preemptions it may still trigger.
    std::vector<int> preempt_left_;
    int64_t fairness_windows_ = 0;
    int deadline_preemptions_ = 0;
    /// Min effective deadline across the currently executing
    /// iteration's members (kInf when none carry one) — the bar an
    /// urgent arrival must beat to preempt it.
    double iter_min_deadline_ = kInf;
    /// Deadline a kUrgent claim must beat to ride along (set to the
    /// preempted victim's min deadline for the nested iteration).
    double urgent_thresh_ = kInf;

    /// Chunked prefill on (ServerOptions::prefill_chunk > 0). Every
    /// member below is inert while false — the bit-identity guard.
    bool chunk_on_ = false;
    /// Claim passes a waiting prompt may be passed over before the
    /// bounded fairness window sorts it to the queue head — the cap
    /// that keeps length-aware claiming from starving giants.
    static constexpr int kChunkStarveLimit = 8;
    /// Per request: prompt tokens still to ingest (-1 = not yet
    /// claimed; the first chunk resolves the prefix residual).
    std::vector<int> pre_left_;
    /// Per request: ingest tokens left that append no private-tail KV
    /// (the unseeded span of a missed prefix, ingested first — its KV
    /// lives in the prefix segment the first chunk seeded whole).
    std::vector<int> tail_skip_left_;
    /// Per request: prefill claim passes that passed it over since it
    /// was last claimed (>= kChunkStarveLimit makes it starved).
    std::vector<int> pre_skips_;
    /// A prefill iteration re-queued a partially-ingested prompt: the
    /// next boundary yields one decode iteration if decode work waits.
    bool chunk_yield_ = false;
    /// KV-locality decode claiming on (ServerOptions::kv_locality).
    bool kv_locality_on_ = false;
};

void
DisaggRun::admit()
{
    const int n = total_requests();
    while (next_arrival_ < n &&
           requests_[next_arrival_].arrival <= now_) {
        int r = next_arrival_++;
        const Request& req = requests_[r];
        if (req.phase == Phase::kPrefill) {
            queue_insert(
                req.priority == Priority::kHigh ? pre_hi_ : pre_lo_, r);
        } else {
            queue_insert(
                req.priority == Priority::kHigh ? dec_hi_ : dec_lo_, r);
        }
    }
    refresh_next_high();
}

void
DisaggRun::refresh_next_high()
{
    // next_high_idx_ only moves forward (next_arrival_ is monotone),
    // so the whole serve scans each request once — O(1) amortized.
    if (next_high_idx_ < next_arrival_) {
        next_high_idx_ = next_arrival_;
    }
    while (next_high_idx_ < total_requests() &&
           requests_[next_high_idx_].priority != Priority::kHigh &&
           !(watch_deadlines_ &&
             requests_[next_high_idx_].deadline_s > 0.0)) {
        ++next_high_idx_;
    }
    next_high_arrival_ = next_high_idx_ < total_requests()
                             ? requests_[next_high_idx_].arrival
                             : kInf;
}

void
DisaggRun::queue_insert(std::deque<int>& q, int r)
{
    if (!slo_on_) {
        q.push_back(r);
        return;
    }
    q.insert(std::upper_bound(q.begin(), q.end(), r,
                              [this](int a, int b) {
                                  return edf_before(a, b);
                              }),
             r);
}

bool
DisaggRun::claim_eligible(int r, ClaimMode mode) const
{
    switch (mode) {
    case ClaimMode::kAll:
        return true;
    case ClaimMode::kHighOnly:
        return requests_[r].priority == Priority::kHigh;
    case ClaimMode::kUrgent:
        return requests_[r].priority == Priority::kHigh ||
               (requests_[r].deadline_s > 0.0 &&
                requests_[r].deadline_s < urgent_thresh_);
    }
    return false;
}

void
DisaggRun::replenish()
{
    ++fairness_windows_;
    const int t = static_cast<int>(quantum_.size());
    for (int i = 0; i < t; ++i) {
        deficit_[i] = std::min(deficit_[i] + quantum_[i], quantum_[i]);
    }
}

void
DisaggRun::claim(std::deque<int>& hi, std::deque<int>& lo, int cap,
                 ClaimMode mode, std::vector<int>& members)
{
    if (!slo_on_) {
        while (!hi.empty() && static_cast<int>(members.size()) < cap) {
            members.push_back(hi.front());
            hi.pop_front();
        }
        if (mode != ClaimMode::kHighOnly) {
            while (!lo.empty() &&
                   static_cast<int>(members.size()) < cap) {
                members.push_back(lo.front());
                lo.pop_front();
            }
        }
        return;
    }
    // EDF + deficit-round-robin. A pass walks a queue in EDF order
    // claiming eligible members whose tenant holds positive deficit;
    // when slots remain and eligible work waits but nothing was
    // claimable, a fairness window replenishes every deficit and the
    // pass repeats — work-conserving: shares decide claim ORDER under
    // contention, they never idle the chip.
    auto pass = [&](std::deque<int>& q) {
        for (auto it = q.begin();
             it != q.end() && static_cast<int>(members.size()) < cap;) {
            const int r = *it;
            if (claim_eligible(r, mode) &&
                deficit_[requests_[r].tenant] > 0.0) {
                members.push_back(r);
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    };
    auto eligible_waiting = [&](const std::deque<int>& q) {
        for (int r : q) {
            if (claim_eligible(r, mode)) {
                return true;
            }
        }
        return false;
    };
    for (;;) {
        const size_t before = members.size();
        pass(hi);
        if (mode != ClaimMode::kHighOnly) {
            pass(lo);
        }
        if (static_cast<int>(members.size()) >= cap) {
            break;
        }
        const bool waiting =
            eligible_waiting(hi) ||
            (mode != ClaimMode::kHighOnly && eligible_waiting(lo));
        if (!waiting) {
            break;
        }
        // Slots free, eligible work blocked on deficit alone: open a
        // window. Progress is guaranteed — a window with no claim
        // means every eligible tenant sits at a full (positive)
        // quantum, so the next pass claims at least one.
        if (members.size() == before) {
            replenish();
        }
    }
}

bool
DisaggRun::pre_before(int a, int b) const
{
    const bool sa = pre_skips_[a] >= kChunkStarveLimit;
    const bool sb = pre_skips_[b] >= kChunkStarveLimit;
    if (sa != sb) {
        return sa;
    }
    const double da = effective_deadline(a);
    const double db = effective_deadline(b);
    if (da != db) {
        return da < db;
    }
    const int la =
        pre_left_[a] >= 0 ? pre_left_[a] : effective_prompt_len(a);
    const int lb =
        pre_left_[b] >= 0 ? pre_left_[b] : effective_prompt_len(b);
    if (la != lb) {
        return la < lb;
    }
    return a < b;
}

void
DisaggRun::order_prefill_queues()
{
    auto cmp = [this](int a, int b) { return pre_before(a, b); };
    std::sort(pre_hi_.begin(), pre_hi_.end(), cmp);
    std::sort(pre_lo_.begin(), pre_lo_.end(), cmp);
}

void
DisaggRun::claim_kv_resident(std::deque<int>& hi, std::deque<int>& lo,
                             int cap, std::vector<int>& members)
{
    // Residents only; deficit-blocked tenants are skipped without a
    // replenish window (the full claim() fallback opens windows when
    // nothing resident could run at all).
    auto pass = [&](std::deque<int>& q) {
        for (auto it = q.begin();
             it != q.end() && static_cast<int>(members.size()) < cap;) {
            const int r = *it;
            if (slo_on_ && deficit_[requests_[r].tenant] <= 0.0) {
                ++it;
                continue;
            }
            if (kv_tokens_[r] < 0 || !state_.kv_resident(r)) {
                // Spilled (or not yet materialized here): passed over
                // while a resident request could still fill the slot.
                ++rep_.kv_locality_skips;
                ++it;
                continue;
            }
            members.push_back(r);
            it = q.erase(it);
        }
    };
    pass(hi);
    pass(lo);
}

int
DisaggRun::urgent_trigger(double thresh, bool* prefill) const
{
    int best = -1;
    bool best_pre = false;
    auto scan = [&](const std::deque<int>& q, bool pre) {
        for (int r : q) {
            const double d = requests_[r].deadline_s;
            if (d <= 0.0 || d >= thresh || preempt_left_[r] <= 0) {
                continue;
            }
            if (best < 0 || edf_before(r, best)) {
                best = r;
                best_pre = pre;
            }
        }
    };
    scan(pre_hi_, true);
    scan(pre_lo_, true);
    scan(dec_hi_, false);
    scan(dec_lo_, false);
    *prefill = best_pre;
    return best;
}

void
DisaggRun::record_completion(int r)
{
    latencies_[r] = now_ - requests_[r].arrival;
    ++completed_;
    if (slo_on_ && requests_[r].deadline_s > 0.0) {
        const double late = now_ - requests_[r].deadline_s;
        latenesses_.push_back(std::max(0.0, late));
        if (late > 0.0) {
            ++tenant_deadline_miss_[requests_[r].tenant];
        }
    }
}

std::vector<int>
DisaggRun::acquire_scratch()
{
    if (scratch_pool_.empty()) {
        return {};
    }
    std::vector<int> v = std::move(scratch_pool_.back());
    scratch_pool_.pop_back();
    v.clear();
    return v;
}

void
DisaggRun::release_scratch(std::vector<int>&& v)
{
    scratch_pool_.push_back(std::move(v));
}

uint64_t
DisaggRun::prompt_kv_need(int r) const
{
    if (chunk_on_ && pre_left_[r] >= 0) {
        // A chunked prompt past its first chunk: admission gated on
        // the full need at the first chunk, so only the next chunk's
        // private-tail growth is new KV here.
        const int ingest = std::min(opts_.prefill_chunk, pre_left_[r]);
        const int skip = std::min(tail_skip_left_[r], ingest);
        const int64_t tail_before =
            kv_tokens_[r] >= 0 ? kv_tokens_[r] : 0;
        return kv_per_core(tail_before + (ingest - skip)) -
               kv_per_core(tail_before);
    }
    const int64_t len = effective_prompt_len(r);
    const int pid = prefix_on_ ? requests_[r].prefix_id : -1;
    if (pid < 0) {
        return kv_per_core(len);
    }
    const int64_t covered = prefix_covered(r);
    if (covered > 0) {
        // Hit: only the residual tail is new KV; a spilled prefix
        // additionally has to stream back in.
        uint64_t bytes = kv_per_core(len - covered);
        const int64_t pseg = prefix_kv_id(pid);
        if (!state_.kv_resident(pseg)) {
            bytes += state_.kv_segment_bytes(pseg);
        }
        return bytes;
    }
    // Miss: this prompt seeds the prefix segment next to its tail.
    const int64_t plen = requests_[r].prefix_len;
    return kv_per_core(len - plen) + kv_per_core(plen);
}

bool
DisaggRun::prefill_admissible() const
{
    const std::deque<int>& q = !pre_hi_.empty() ? pre_hi_ : pre_lo_;
    if (q.empty()) {
        return true;
    }
    uint64_t bytes = prompt_kv_need(q.front());
    return state_.kv_would_fit(bytes) || bytes > opts_.kv_budget;
}

void
DisaggRun::kv_prepare(const std::vector<int>& members)
{
    int64_t stream_tokens = 0;
    double migrate_stall = 0.0;
    for (int r : members) {
        if (prefix_on_ && prefix_share_[r] >= 0) {
            // The shared prefix is read every iteration. It is
            // brought back (and pinned) before the private tail, so
            // the tail's own fetch can never evict it — eviction of a
            // shared prefix is priced as a refetch here for every
            // sharer that next consumes it.
            const int64_t pseg = prefix_kv_id(prefix_share_[r]);
            if (!state_.kv_resident(pseg)) {
                stream_tokens += prefix_tokens_[prefix_share_[r]];
                ++rep_.kv_refetches;
                state_.kv_fetch(pseg);
            }
            if (state_.kv_resident(pseg) && !prefix_pinned_[r]) {
                state_.kv_pin(pseg);
                prefix_pinned_[r] = true;
            }
        }
        if (kv_tokens_[r] < 0) {
            // Decode-phase arrival: its KV state exists elsewhere.
            // Untagged, it migrates in over local HBM (priced as a
            // refetch); tagged by the cluster router, it arrives over
            // the chip-to-chip interconnect and charges the carried
            // transfer stall instead.
            const int64_t ctx = effective_prompt_len(r);
            kv_tokens_[r] = ctx;
            if (requests_[r].kv_migrate_tokens > 0) {
                ++rep_.kv_migrations;
                rep_.kv_migrated_tokens += requests_[r].kv_migrate_tokens;
                migrate_stall += requests_[r].kv_migrate_stall;
            } else {
                stream_tokens += ctx;
                ++rep_.kv_refetches;
            }
            state_.kv_alloc(r, kv_per_core(ctx));
        } else if (!state_.kv_resident(r)) {
            // Spilled under budget/pressure: stream it back.
            stream_tokens += kv_tokens_[r];
            ++rep_.kv_refetches;
            state_.kv_fetch(r);
        }
        if (state_.kv_resident(r) && !kv_pinned_[r]) {
            state_.kv_pin(r);
            kv_pinned_[r] = true;
        }
    }
    kv_charge_stream(stream_tokens);
    kv_charge_migration(migrate_stall);
}

void
DisaggRun::kv_charge_stream(int64_t stream_tokens)
{
    if (stream_tokens <= 0) {
        return;
    }
    // One serial HBM transfer before the iteration starts; the
    // engine is idle, so this is a pure clock advance. The
    // window still enters every time-weighted mean — HBM is
    // saturated for the transfer part, the fabric is quiet.
    const hw::ChipConfig& cfg = machine_.config();
    double stream =
        static_cast<double>(stream_tokens) *
        static_cast<double>(opts_.kv_bytes_per_token) /
        cfg.hbm_total_bw;
    double dt = cfg.hbm_access_latency_s + stream;
    rep_.kv_stall += dt;
    depth_mean_.add(dt, static_cast<double>(waiting_total()));
    kv_mean_.add(dt, static_cast<double>(state_.kv_bytes()));
    hbm_mean_.add(dt, stream / dt);
    noc_mean_.add(dt, 0.0);
    state_.run_to(state_.now() + dt);
    now_ = state_.now();
}

void
DisaggRun::kv_charge_migration(double dt)
{
    if (dt <= 0.0) {
        return;
    }
    // The segment lands over the chip-to-chip wire while this chip
    // idles: a pure clock advance like kv_charge_stream, but local
    // HBM carries none of it — the wire is the priced resource, and
    // the router already folded its latency + bandwidth into dt.
    rep_.kv_migration_stall += dt;
    depth_mean_.add(dt, static_cast<double>(waiting_total()));
    kv_mean_.add(dt, static_cast<double>(state_.kv_bytes()));
    hbm_mean_.add(dt, 0.0);
    noc_mean_.add(dt, 0.0);
    state_.run_to(state_.now() + dt);
    now_ = state_.now();
}

void
DisaggRun::kv_retire(int r, bool completed)
{
    if (kv_pinned_[r]) {
        state_.kv_unpin(r);
        kv_pinned_[r] = false;
    }
    if (prefix_on_ && prefix_share_[r] >= 0) {
        const int64_t pseg = prefix_kv_id(prefix_share_[r]);
        if (prefix_pinned_[r]) {
            state_.kv_unpin(pseg);
            prefix_pinned_[r] = false;
        }
        if (completed) {
            // Drop the share; the segment itself stays cached for
            // future carriers of the prefix (that is the cache).
            state_.kv_release(pseg);
            prefix_share_[r] = -1;
        }
    }
    if (completed) {
        state_.kv_free(r);
        kv_tokens_[r] = -1;
        return;
    }
    // The decoded token appends to the segment; growth uses the
    // cumulative per-core rounding so the footprint never drifts
    // from kv_per_core(tokens).
    uint64_t before = kv_per_core(kv_tokens_[r]);
    ++kv_tokens_[r];
    state_.kv_grow(r, kv_per_core(kv_tokens_[r]) - before);
}

DisaggRun::IterOutcome
DisaggRun::execute(const sim::SimProgram& program, bool can_preempt)
{
    double start = now_;
    double interrupted = 0.0;
    state_.begin(program);
    while (state_.step()) {
        if (can_preempt && opts_.preempt &&
            next_high_arrival_ <= state_.now()) {
            interrupted += preempt_for_high();
        }
    }
    IterOutcome o;
    o.r = state_.finish();
    now_ = state_.now();
    o.duration = now_ - start - interrupted;
    return o;
}

double
DisaggRun::preempt_for_high()
{
    sim::EngineState::Parked parked = state_.park();
    const double park_t = state_.now();
    now_ = park_t;
    admit();  // the triggering request joins its queue
    // The nested iteration overwrites iter_min_deadline_ /
    // urgent_thresh_; both belong to the parked victim, so save and
    // restore them around the branch (the victim's own watcher keeps
    // firing after resume).
    const double victim_min = iter_min_deadline_;
    const double saved_thresh = urgent_thresh_;
    if (!pre_hi_.empty()) {
        ++rep_.preemptions;
        // A high-priority prompt jumps KV backpressure too: its
        // segment is force-admitted (spilling unpinned segments, or
        // born spilled) rather than deferred — preemption exists to
        // cut its latency, and the spill cost is now modeled.
        run_prefill_iteration(ClaimMode::kHighOnly,
                              /*interruptible=*/false,
                              /*force_admit=*/kv_on_);
    } else if (!dec_hi_.empty()) {
        ++rep_.preemptions;
        run_decode_mini(ClaimMode::kHighOnly);
    } else if (slo_on_) {
        // No high-priority work: a deadline carrier may still have
        // tripped the watcher. It preempts only when it is more
        // urgent than every member of the running iteration AND still
        // holds trigger budget; riders sharing the nested iteration
        // are free (only the trigger pays).
        bool trig_pre = false;
        const int trig = urgent_trigger(victim_min, &trig_pre);
        if (trig >= 0) {
            --preempt_left_[trig];
            ++rep_.preemptions;
            ++deadline_preemptions_;
            urgent_thresh_ = victim_min;
            if (trig_pre) {
                run_prefill_iteration(ClaimMode::kUrgent,
                                      /*interruptible=*/false,
                                      /*force_admit=*/kv_on_);
            } else {
                run_decode_mini(ClaimMode::kUrgent);
            }
        }
        // A watcher trip with no trigger is a harmless exact
        // park/resume: no iteration ran, the engine clock is where
        // park() left it.
    }
    iter_min_deadline_ = victim_min;
    urgent_thresh_ = saved_thresh;
    state_.resume(std::move(parked));
    return state_.now() - park_t;
}

void
DisaggRun::account(const IterOutcome& o, bool decode, bool nested)
{
    ++rep_.iterations;
    // The residency budget is the SRAM slack left by the first cold
    // full iteration's working set. A nested preemption iteration can
    // be accounted before its victim: skip it here — a mini batch's
    // small peak would oversize the budget (and a nested prefill
    // could zero it for good).
    if (!budget_set_ && !nested && opts_.keep_resident) {
        budget_set_ = true;
        uint64_t usable = machine_.config().usable_sram_per_core();
        state_.set_residency_budget(usable > o.r.peak_sram_per_core
                                        ? usable - o.r.peak_sram_per_core
                                        : 0);
    }
    if (decode) {
        ++rep_.decode_iterations;
        if (rep_.decode_iterations == 1) {
            rep_.first_decode_preload = o.r.preload_only;
        } else {
            steady_preload_sum_ += o.r.preload_only;
            ++steady_iterations_;
        }
    } else {
        ++rep_.prefill_iterations;
    }
    hbm_mean_.add(o.duration, o.r.hbm_util);
    noc_mean_.add(o.duration, o.r.noc_util);
    depth_mean_.add(o.duration, static_cast<double>(waiting_total()));
    if (kv_on_) {
        kv_mean_.add(o.duration, static_cast<double>(state_.kv_bytes()));
    }
    rep_.peak_sram_per_core =
        std::max(rep_.peak_sram_per_core, o.r.peak_sram_per_core);
    rep_.memory_exceeded |= o.r.memory_exceeded;
}

void
DisaggRun::run_prefill_iteration(ClaimMode mode, bool interruptible,
                                 bool force_admit)
{
    if (chunk_on_) {
        // Claim order is queue order: refresh the length/KV-aware
        // order here too, so the preemption path (which claims without
        // passing through the run() loop) sees it as well.
        order_prefill_queues();
    }
    std::vector<int> members = acquire_scratch();
    // Parallel to members while prefix_on_ or chunk_on_: prompt tokens
    // each member actually brings to this iteration (full length, the
    // residual past its cached prefix, or this chunk).
    std::vector<int> residuals = acquire_scratch();
    // Parallel to residuals: the tokens this member would have brought
    // with no prefix cached — what the padding-savings counter
    // compares against.
    std::vector<int> fulls = acquire_scratch();
    const bool track_ingest = chunk_on_ || prefix_on_;
    int64_t prefix_stream = 0;  ///< spilled-prefix tokens fetched back.
    double migrate_stall = 0.0;  ///< router-priced interconnect stalls.
    if (!kv_on_) {
        claim(pre_hi_, pre_lo_, opts_.max_prefill_batch, mode,
              members);
        if (chunk_on_) {
            for (int r : members) {
                const int remaining = pre_left_[r] >= 0
                                          ? pre_left_[r]
                                          : effective_prompt_len(r);
                const int ingest =
                    std::min(opts_.prefill_chunk, remaining);
                if (pre_left_[r] < 0 && remaining > ingest) {
                    ++rep_.chunked_prompts;
                }
                pre_left_[r] = remaining - ingest;
                pre_skips_[r] = 0;
                ++rep_.prefill_chunks;
                residuals.push_back(ingest);
                fulls.push_back(ingest);
            }
        }
    } else {
        // KV-gated claiming: members are taken in the usual order
        // (high first, FIFO within a class) but each prompt must fit
        // its KV segment into the budget next to what is already
        // resident. The first prompt that does not fit stops the
        // claim — admitting later ones would starve it — and counts
        // one admission deferral. Oversized prompts (KV bigger than
        // the whole budget) can never fit and are admitted born
        // spilled instead of deferred forever; force_admit pushes the
        // head prompt through the same way when deferring would leave
        // the server with no other work.
        //
        // With prefix sharing, a prompt whose prefix id matches a
        // cached segment is a hit: it shares the segment (refcount),
        // skips the covered tokens — only the residual reaches this
        // iteration — and only its private tail is new KV. The first
        // carrier of a prefix seeds the shared segment next to its
        // tail; a spilled prefix streams back before the iteration,
        // priced like any KV refetch.
        bool deferred = false;
        auto take = [&](std::deque<int>& q) {
            for (auto it = q.begin();
                 it != q.end() && !deferred &&
                 static_cast<int>(members.size()) <
                     opts_.max_prefill_batch;) {
                int r = *it;
                // SLO gating mirrors claim(): skip members the mode
                // excludes or whose tenant is out of deficit — the
                // KV-fit rule below applies to claimable prompts
                // only. Inert while slo is off (every request is
                // eligible and no deficit exists), so the walk is the
                // original front-pop.
                if (slo_on_ && (!claim_eligible(r, mode) ||
                                deficit_[requests_[r].tenant] <= 0.0)) {
                    ++it;
                    continue;
                }
                const int64_t len = effective_prompt_len(r);
                const uint64_t bytes = prompt_kv_need(r);
                bool oversized = bytes > opts_.kv_budget;
                if (!state_.kv_would_fit(bytes) && !oversized &&
                    !(force_admit && members.empty())) {
                    deferred = true;
                    ++rep_.deferred_admissions;
                    break;
                }
                it = q.erase(it);
                members.push_back(r);
                if (chunk_on_ && pre_left_[r] >= 0) {
                    // A later chunk of an admitted prompt: ingest the
                    // next chunk and grow the private tail in place
                    // (admission gated on the full need at the first
                    // chunk; growth spills under pressure instead of
                    // deferring, so mid-prompt chunks cannot
                    // deadlock on backpressure).
                    const int ingest =
                        std::min(opts_.prefill_chunk, pre_left_[r]);
                    pre_left_[r] -= ingest;
                    pre_skips_[r] = 0;
                    ++rep_.prefill_chunks;
                    const int skip_use =
                        std::min(tail_skip_left_[r], ingest);
                    tail_skip_left_[r] -= skip_use;
                    const int tail_add = ingest - skip_use;
                    if (tail_add > 0) {
                        if (kv_tokens_[r] < 0) {
                            kv_tokens_[r] = tail_add;
                            if (state_.kv_alloc(
                                    r, kv_per_core(tail_add))) {
                                state_.kv_pin(r);
                                kv_pinned_[r] = true;
                            }
                        } else {
                            const uint64_t before =
                                kv_per_core(kv_tokens_[r]);
                            kv_tokens_[r] += tail_add;
                            state_.kv_grow(
                                r, kv_per_core(kv_tokens_[r]) - before);
                            if (state_.kv_resident(r) &&
                                !kv_pinned_[r]) {
                                state_.kv_pin(r);
                                kv_pinned_[r] = true;
                            }
                        }
                    }
                    residuals.push_back(ingest);
                    fulls.push_back(ingest);
                    continue;
                }
                int64_t tail = len;
                // Prompt tokens a prefill program must actually
                // ingest for this member (its residual).
                int64_t residual = len;
                if (prefix_on_ && requests_[r].prefix_id >= 0) {
                    const int pid = requests_[r].prefix_id;
                    const int64_t pseg = prefix_kv_id(pid);
                    const int64_t covered = prefix_covered(r);
                    if (covered > 0) {
                        ++rep_.prefix_hits;
                        rep_.prefix_hit_tokens += covered;
                        tail = len - covered;
                        residual = len - covered;
                        if (!state_.kv_resident(pseg)) {
                            prefix_stream += prefix_tokens_[pid];
                            ++rep_.kv_refetches;
                            state_.kv_fetch(pseg);
                        }
                    } else if (requests_[r].kv_migrate_tokens > 0) {
                        // Migration: the shared segment arrives over
                        // the cluster interconnect from the chip that
                        // holds it, seeding the local cache — the
                        // covered tokens skip prefill like a hit, and
                        // the wire transfer (priced by the router)
                        // stalls this chip instead of a re-prefill.
                        const int64_t plen = requests_[r].prefix_len;
                        prefix_tokens_[pid] = plen;
                        ++rep_.prefix_hits;
                        rep_.prefix_hit_tokens += plen;
                        ++rep_.kv_migrations;
                        rep_.kv_migrated_tokens += plen;
                        migrate_stall += requests_[r].kv_migrate_stall;
                        tail = len - plen;
                        residual = len - plen;
                        state_.kv_alloc(pseg, kv_per_core(plen));
                    } else {
                        // Miss: seed the shared segment at the
                        // request's full prefix span.
                        const int64_t plen = requests_[r].prefix_len;
                        prefix_tokens_[pid] = plen;
                        tail = len - plen;
                        state_.kv_alloc(pseg, kv_per_core(plen));
                    }
                    state_.kv_share(pseg);
                    prefix_share_[r] = pid;
                    // Pin the prefix for this iteration before the
                    // tail allocates, so the tail cannot evict it.
                    if (state_.kv_resident(pseg)) {
                        state_.kv_pin(pseg);
                        prefix_pinned_[r] = true;
                    }
                }
                if (!chunk_on_) {
                    kv_tokens_[r] = tail;
                    if (state_.kv_alloc(r, kv_per_core(tail))) {
                        state_.kv_pin(r);
                        kv_pinned_[r] = true;
                    }
                    if (track_ingest) {
                        residuals.push_back(static_cast<int>(residual));
                        fulls.push_back(static_cast<int>(len));
                    }
                } else {
                    // First chunk: prefix-resident tokens were skipped
                    // above; the residual now ingests chunk by chunk,
                    // the private tail allocating with the first chunk
                    // that reaches past any unseeded prefix span.
                    const int res = static_cast<int>(residual);
                    const int ingest =
                        std::min(opts_.prefill_chunk, res);
                    if (res > ingest) {
                        ++rep_.chunked_prompts;
                    }
                    pre_left_[r] = res - ingest;
                    pre_skips_[r] = 0;
                    ++rep_.prefill_chunks;
                    tail_skip_left_[r] =
                        static_cast<int>(residual - tail);
                    const int skip_use =
                        std::min(tail_skip_left_[r], ingest);
                    tail_skip_left_[r] -= skip_use;
                    const int tail_add = ingest - skip_use;
                    if (tail_add > 0) {
                        kv_tokens_[r] = tail_add;
                        if (state_.kv_alloc(r, kv_per_core(tail_add))) {
                            state_.kv_pin(r);
                            kv_pinned_[r] = true;
                        }
                    }
                    residuals.push_back(ingest);
                    fulls.push_back(static_cast<int>(std::min<int64_t>(
                        opts_.prefill_chunk, len)));
                }
            }
        };
        auto take_all = [&] {
            take(pre_hi_);
            if (mode != ClaimMode::kHighOnly && !deferred) {
                take(pre_lo_);
            }
        };
        take_all();
        if (slo_on_) {
            // Work-conserving fairness, mirroring claim(): while batch
            // slots stay open, nothing deferred on KV, and eligible
            // prompts wait blocked on deficit alone, open a window and
            // take again.
            auto eligible_waiting = [&](const std::deque<int>& q) {
                for (int r : q) {
                    if (claim_eligible(r, mode)) {
                        return true;
                    }
                }
                return false;
            };
            while (!deferred &&
                   static_cast<int>(members.size()) <
                       opts_.max_prefill_batch &&
                   (eligible_waiting(pre_hi_) ||
                    (mode != ClaimMode::kHighOnly &&
                     eligible_waiting(pre_lo_)))) {
                replenish();
                take_all();
            }
        }
    }
    if (chunk_on_) {
        // Bounded fairness window: every prompt still waiting after
        // this claim moves one pass closer to starved status (and
        // with it, the head of the claim order).
        for (int r : pre_hi_) {
            ++pre_skips_[r];
        }
        for (int r : pre_lo_) {
            ++pre_skips_[r];
        }
    }
    rep_.peak_queue_depth = std::max(
        rep_.peak_queue_depth, static_cast<int>(waiting_total()));
    kv_charge_stream(prefix_stream);
    kv_charge_migration(migrate_stall);
    int bucket = pick_bucket(opts_.prefill_buckets,
                             static_cast<int>(members.size()));
    // The claimed prompts share one program: the smallest length
    // bucket covering the longest of them — of the tokens actually
    // ingested, i.e. residual lengths once cached prefixes are
    // skipped. Everything shorter is padded up to the bucket — the
    // waste the report tracks.
    int need_len = 1;
    int need_len_full = 1;
    int64_t actual_tokens = 0;
    for (size_t i = 0; i < members.size(); ++i) {
        const int len = effective_prompt_len(members[i]);
        const int res = track_ingest ? residuals[i] : len;
        need_len = std::max(need_len, res);
        need_len_full =
            std::max(need_len_full, track_ingest ? fulls[i] : len);
        actual_tokens += res;
        if (slo_on_) {
            // Fairness charges actual ingested work: a long prompt
            // can push its tenant into deficit debt repaid over the
            // following windows.
            const int t = requests_[members[i]].tenant;
            tenant_tokens_[t] += res;
            deficit_[t] -= static_cast<double>(res);
        }
    }
    int len_bucket = pick_bucket(opts_.prompt_buckets, need_len);
    if (prefix_on_) {
        // Program-level savings: the length bucket these claims would
        // have needed at their full prompt lengths, vs the residual
        // bucket actually compiled.
        const int full_bucket =
            pick_bucket(opts_.prompt_buckets, need_len_full);
        rep_.prefill_tokens_saved += static_cast<int64_t>(bucket) *
                                     (full_bucket - len_bucket);
    }
    std::shared_ptr<const sim::SimProgram> program =
        prefill_src_ ? prefill_src_(bucket, len_bucket) : nullptr;
    util::check(program != nullptr,
                "Server: prefill ProgramSource returned no program");
    rep_.prompt_tokens += actual_tokens;
    rep_.padded_prompt_tokens +=
        static_cast<int64_t>(bucket) * len_bucket - actual_tokens;
    {
        auto pos = std::lower_bound(
            bucket_iters_.begin(), bucket_iters_.end(),
            std::pair<int, int>(len_bucket, bucket),
            [](const ServingReport::PrefillBucket& b,
               const std::pair<int, int>& key) {
                return std::pair<int, int>(b.prompt_len, b.batch) < key;
            });
        if (pos == bucket_iters_.end() ||
            pos->prompt_len != len_bucket || pos->batch != bucket) {
            ServingReport::PrefillBucket b;
            b.prompt_len = len_bucket;
            b.batch = bucket;
            pos = bucket_iters_.insert(pos, b);
        }
        ++pos->iterations;
    }

    bool protected_iter = false;
    iter_min_deadline_ = kInf;
    for (int r : members) {
        protected_iter |= requests_[r].priority == Priority::kHigh;
        if (slo_on_) {
            iter_min_deadline_ =
                std::min(iter_min_deadline_, effective_deadline(r));
        }
    }
    IterOutcome o = execute(*program, interruptible && !protected_iter);
    account(o, /*decode=*/false, /*nested=*/mode != ClaimMode::kAll);

    // Prompt ingested: record TTFT and hand the request to the decode
    // class (high-priority members keep their class). The KV segment
    // (already sized to the prompt) stays for the decode phase; only
    // the iteration's pins are released (the prefix share is held
    // until the request completes). A prefill-only request
    // (decode_tokens == 0 — the prefill half of a cluster tier split)
    // completes here instead: its KV ships onward over the
    // interconnect, so the local segment frees and the prefix share
    // drops immediately.
    for (int r : members) {
        if (kv_on_ && kv_pinned_[r]) {
            state_.kv_unpin(r);
            kv_pinned_[r] = false;
        }
        if (prefix_on_ && prefix_pinned_[r]) {
            state_.kv_unpin(prefix_kv_id(prefix_share_[r]));
            prefix_pinned_[r] = false;
        }
        if (chunk_on_ && pre_left_[r] > 0) {
            // More chunks to ingest: back to the prefill queue (the
            // prefix share and the accumulated tail KV stay), no TTFT
            // yet — it fires when the final chunk retires. The next
            // iteration boundary yields one decode iteration if
            // decode work waits, so decode never stalls behind the
            // whole prompt.
            chunk_yield_ = true;
            queue_insert(requests_[r].priority == Priority::kHigh
                             ? pre_hi_
                             : pre_lo_,
                         r);
            continue;
        }
        ttfts_.push_back(now_ - requests_[r].arrival);
        if (tokens_left_[r] == 0) {
            if (kv_on_) {
                if (prefix_on_ && prefix_share_[r] >= 0) {
                    state_.kv_release(prefix_kv_id(prefix_share_[r]));
                    prefix_share_[r] = -1;
                }
                state_.kv_free(r);
                kv_tokens_[r] = -1;
            }
            record_completion(r);
            continue;
        }
        queue_insert(
            requests_[r].priority == Priority::kHigh ? dec_hi_ : dec_lo_,
            r);
    }
    release_scratch(std::move(fulls));
    release_scratch(std::move(residuals));
    release_scratch(std::move(members));
}

void
DisaggRun::run_decode_iteration(bool interruptible)
{
    // Iteration-level batching: waiting requests claim free batch
    // slots at the iteration boundary, high-priority first.
    // claim() caps the list's total size, so appending to running_
    // directly fills exactly the free batch slots.
    if (kv_locality_on_) {
        // Locality-aware membership: free slots fill with KV-resident
        // requests first; spilled requests run only when nothing
        // resident can (each pass-over counts one kv_locality_skips),
        // so a hot batch never thrashes its SRAM residency streaming
        // a cold segment back mid-flight.
        claim_kv_resident(dec_hi_, dec_lo_, opts_.max_batch, running_);
        if (running_.empty()) {
            claim(dec_hi_, dec_lo_, opts_.max_batch, ClaimMode::kAll,
                  running_);
        }
    } else {
        claim(dec_hi_, dec_lo_, opts_.max_batch, ClaimMode::kAll,
              running_);
    }
    rep_.peak_queue_depth = std::max(
        rep_.peak_queue_depth, static_cast<int>(waiting_total()));

    int bucket = pick_bucket(opts_.batch_buckets,
                             static_cast<int>(running_.size()));
    std::shared_ptr<const sim::SimProgram> program =
        decode_src_ ? decode_src_(bucket) : nullptr;
    util::check(program != nullptr,
                "Server: decode ProgramSource returned no program");

    if (kv_on_) {
        kv_prepare(running_);
    }
    bool protected_iter = false;
    iter_min_deadline_ = kInf;
    for (int r : running_) {
        protected_iter |= requests_[r].priority == Priority::kHigh;
        if (slo_on_) {
            iter_min_deadline_ =
                std::min(iter_min_deadline_, effective_deadline(r));
            ++tenant_tokens_[requests_[r].tenant];
            deficit_[requests_[r].tenant] -= 1.0;
        }
    }
    IterOutcome o = execute(*program, interruptible && !protected_iter);
    account(o, /*decode=*/true, /*nested=*/false);
    rep_.tokens += static_cast<int64_t>(running_.size());

    // Every running request produced one token this iteration.
    for (auto it = running_.begin(); it != running_.end();) {
        bool done = --tokens_left_[*it] == 0;
        if (kv_on_) {
            kv_retire(*it, done);
        }
        if (done) {
            record_completion(*it);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
}

void
DisaggRun::run_decode_mini(ClaimMode mode)
{
    std::vector<int> mini = acquire_scratch();
    claim(dec_hi_, dec_lo_, opts_.max_batch, mode, mini);
    rep_.peak_queue_depth = std::max(
        rep_.peak_queue_depth, static_cast<int>(waiting_total()));
    int bucket = pick_bucket(opts_.batch_buckets,
                             static_cast<int>(mini.size()));
    std::shared_ptr<const sim::SimProgram> program =
        decode_src_ ? decode_src_(bucket) : nullptr;
    util::check(program != nullptr,
                "Server: decode ProgramSource returned no program");

    if (kv_on_) {
        kv_prepare(mini);
    }
    if (slo_on_) {
        for (int r : mini) {
            ++tenant_tokens_[requests_[r].tenant];
            deficit_[requests_[r].tenant] -= 1.0;
        }
    }
    IterOutcome o = execute(*program, /*can_preempt=*/false);
    account(o, /*decode=*/true, /*nested=*/true);
    rep_.tokens += static_cast<int64_t>(mini.size());

    // Completions leave; survivors return to the head of the
    // high-priority queue (or, with slo, to their EDF slot in their
    // own class) and merge into the running batch at the next
    // boundary.
    std::vector<int> survivors = acquire_scratch();
    for (int r : mini) {
        bool done = --tokens_left_[r] == 0;
        if (kv_on_) {
            kv_retire(r, done);
        }
        if (done) {
            record_completion(r);
        } else {
            survivors.push_back(r);
        }
    }
    if (!slo_on_) {
        for (auto it = survivors.rbegin(); it != survivors.rend();
             ++it) {
            dec_hi_.push_front(*it);
        }
    } else {
        for (int r : survivors) {
            queue_insert(requests_[r].priority == Priority::kHigh
                             ? dec_hi_
                             : dec_lo_,
                         r);
        }
    }
    release_scratch(std::move(survivors));
    release_scratch(std::move(mini));
}

void
DisaggRun::finalize()
{
    const int n = total_requests();
    rep_.makespan = now_;
    rep_.tokens_per_s =
        now_ > 0 ? static_cast<double>(rep_.tokens) / now_ : 0.0;
    rep_.mean_queue_depth = depth_mean_.value();
    rep_.hbm_util = hbm_mean_.value();
    rep_.noc_util = noc_mean_.value();
    rep_.steady_decode_preload =
        steady_iterations_ > 0
            ? steady_preload_sum_ / steady_iterations_
            : rep_.first_decode_preload;
    // High-priority latencies are collected before latencies_ is
    // sorted in place below (request indexing would be lost after).
    std::vector<double> high;
    high.reserve(n);
    for (int i = 0; i < n; ++i) {
        if (requests_[i].priority == Priority::kHigh) {
            high.push_back(latencies_[i]);
        }
    }
    if (n > 0) {
        // Mean first (summation order is the arrival order, as the
        // per-sample percentile() calls left it), then one sort
        // serves every percentile read.
        rep_.mean_latency = util::mean(latencies_);
        std::sort(latencies_.begin(), latencies_.end());
        rep_.p50_latency = util::percentile_sorted(latencies_, 50.0);
        rep_.p95_latency = util::percentile_sorted(latencies_, 95.0);
        rep_.p99_latency = util::percentile_sorted(latencies_, 99.0);
        rep_.max_latency = latencies_.back();
    }
    rep_.resident_bytes = state_.resident_bytes();
    rep_.preloads_skipped = state_.resident_hits();

    if (!ttfts_.empty()) {
        rep_.mean_ttft = util::mean(ttfts_);
        std::sort(ttfts_.begin(), ttfts_.end());
        rep_.p50_ttft = util::percentile_sorted(ttfts_, 50.0);
        rep_.p95_ttft = util::percentile_sorted(ttfts_, 95.0);
        rep_.max_ttft = ttfts_.back();
    }
    rep_.prefill_bucket_iterations = bucket_iters_;
    rep_.high_priority_requests = static_cast<int>(high.size());
    if (!high.empty()) {
        std::sort(high.begin(), high.end());
        rep_.p95_high_latency = util::percentile_sorted(high, 95.0);
    }
    if (kv_on_) {
        rep_.kv_bytes_peak = state_.kv_bytes_peak();
        rep_.mean_kv_bytes = kv_mean_.value();
        rep_.kv_evictions = state_.kv_evictions();
    }
    if (prefix_on_) {
        rep_.shared_kv_bytes = state_.kv_shared_bytes_peak();
    }
    if (slo_on_) {
        rep_.tenants = opts_.tenants;
        rep_.deadline_preemptions = deadline_preemptions_;
        rep_.fairness_windows = fairness_windows_;
        int64_t total_work = 0;
        for (int64_t w : tenant_tokens_) {
            total_work += w;
        }
        for (int t = 0; t < opts_.tenants; ++t) {
            ServingReport::TenantShare s;
            s.tenant = t;
            s.requests = tenant_requests_[t];
            s.tokens = tenant_tokens_[t];
            s.token_share =
                total_work > 0 ? static_cast<double>(tenant_tokens_[t]) /
                                     static_cast<double>(total_work)
                               : 0.0;
            s.deadline_requests = tenant_deadline_reqs_[t];
            s.deadline_misses = tenant_deadline_miss_[t];
            s.attainment =
                s.deadline_requests > 0
                    ? static_cast<double>(s.deadline_requests -
                                          s.deadline_misses) /
                          static_cast<double>(s.deadline_requests)
                    : 1.0;
            rep_.deadline_requests += s.deadline_requests;
            rep_.deadline_misses += s.deadline_misses;
            rep_.tenant_shares.push_back(s);
        }
        rep_.slo_attainment =
            rep_.deadline_requests > 0
                ? static_cast<double>(rep_.deadline_requests -
                                      rep_.deadline_misses) /
                      static_cast<double>(rep_.deadline_requests)
                : 1.0;
        if (!latenesses_.empty()) {
            std::sort(latenesses_.begin(), latenesses_.end());
            rep_.p99_lateness =
                util::percentile_sorted(latenesses_, 99.0);
            rep_.max_lateness = latenesses_.back();
        }
    }
}

ServingReport
DisaggRun::run()
{
    const int n = total_requests();
    kv_on_ = opts_.kv_budget > 0;
    prefix_on_ = opts_.prefix_sharing;
    slo_on_ = opts_.slo;
    // Watching deadline carriers is only worth the park/resume churn
    // when a trigger could ever fire.
    watch_deadlines_ = slo_on_ && opts_.preempt_budget > 0;
    chunk_on_ = opts_.prefill_chunk > 0;
    kv_locality_on_ = opts_.kv_locality;
    pre_left_.assign(n, -1);
    tail_skip_left_.assign(n, 0);
    pre_skips_.assign(n, 0);
    tokens_left_.resize(n);
    latencies_.assign(n, 0.0);
    ttfts_.reserve(n);
    running_.reserve(opts_.max_batch);
    kv_tokens_.assign(n, -1);
    kv_pinned_.assign(n, false);
    prefix_share_.assign(n, -1);
    prefix_pinned_.assign(n, false);
    int max_prefix = -1;
    for (int i = 0; i < n; ++i) {
        const Request& req = requests_[i];
        util::check(req.arrival >= 0 &&
                        (i == 0 ||
                         req.arrival >= requests_[i - 1].arrival),
                    "Server: requests must be sorted and non-negative");
        util::check(req.decode_tokens >= 1 ||
                        (req.decode_tokens == 0 &&
                         req.phase == Phase::kPrefill),
                    "Server: decode_tokens must be >= 1 (0 is legal "
                    "only for prefill-phase requests — the prefill "
                    "half of a cluster tier split)");
        if (req.phase == Phase::kPrefill || kv_on_) {
            util::check(opts_.max_prompt_len >= 1,
                        "Server: prefill-phase requests (and KV "
                        "modeling) need max_prompt_len (the model "
                        "sequence length)");
            util::check(req.prompt_len >= 0 &&
                            req.prompt_len <= opts_.max_prompt_len,
                        "Server: prompt_len must be in "
                        "[0, max_prompt_len]");
        }
        if (req.prefix_id >= 0) {
            util::check(prefix_on_,
                        "Server: prefix-tagged requests need "
                        "ServerOptions::prefix_sharing");
            util::check(req.phase == Phase::kPrefill,
                        "Server: prefix-tagged requests must be "
                        "prefill-phase");
            const int len = req.prompt_len > 0 ? req.prompt_len
                                               : opts_.max_prompt_len;
            util::check(req.prefix_len >= 1 && req.prefix_len < len,
                        "Server: prefix_len must be in "
                        "[1, prompt_len - 1]");
            max_prefix = std::max(max_prefix, req.prefix_id);
        }
        if (req.kv_migrate_tokens != 0 || req.kv_migrate_stall != 0.0) {
            util::check(kv_on_,
                        "Server: KV migration (kv_migrate_tokens) "
                        "needs KV modeling (kv_budget > 0) — the "
                        "migrated segment lives in the modeled pool");
            util::check(req.kv_migrate_tokens >= 1 &&
                            req.kv_migrate_stall >= 0.0,
                        "Server: a migration must carry >= 1 token "
                        "and a non-negative stall");
            if (req.phase == Phase::kPrefill) {
                util::check(req.prefix_id >= 0 &&
                                req.kv_migrate_tokens == req.prefix_len,
                            "Server: a prefill-phase migration "
                            "imports the request's shared prefix "
                            "(kv_migrate_tokens == prefix_len)");
            } else {
                const int len = req.prompt_len > 0
                                    ? req.prompt_len
                                    : opts_.max_prompt_len;
                util::check(req.kv_migrate_tokens <= len,
                            "Server: migrated KV cannot exceed the "
                            "request's context length");
            }
        }
        if (!slo_on_) {
            util::check(req.tenant == 0 && req.deadline_s == 0.0,
                        "Server: tenant/deadline-tagged requests need "
                        "ServerOptions::slo");
        } else {
            util::check(req.tenant >= 0 && req.tenant < opts_.tenants,
                        "Server: request tenant must be in "
                        "[0, ServerOptions::tenants)");
            util::check(req.deadline_s >= 0.0,
                        "Server: deadline_s must be >= 0 "
                        "(0 = no deadline)");
            util::check(req.deadline_s == 0.0 ||
                            req.deadline_s >= req.arrival,
                        "Server: a deadline must not precede the "
                        "request's arrival");
        }
        tokens_left_[i] = req.decode_tokens;
    }
    prefix_tokens_.assign(max_prefix + 1, 0);
    rep_.requests = n;
    rep_.kv_modeled = kv_on_;
    rep_.prefix_sharing = prefix_on_;
    rep_.slo = slo_on_;
    rep_.prefill_chunk = opts_.prefill_chunk;
    rep_.kv_locality = kv_locality_on_;
    if (slo_on_) {
        const int t = opts_.tenants;
        tenant_tokens_.assign(t, 0);
        tenant_requests_.assign(t, 0);
        tenant_deadline_reqs_.assign(t, 0);
        tenant_deadline_miss_.assign(t, 0);
        for (int i = 0; i < n; ++i) {
            ++tenant_requests_[requests_[i].tenant];
            if (requests_[i].deadline_s > 0.0) {
                ++tenant_deadline_reqs_[requests_[i].tenant];
            }
        }
        // Per-window quanta: fairness_tokens split by normalized
        // share. The Server constructor resolved fairness_tokens and
        // validated the share vector (positive, one per tenant).
        std::vector<double> shares = opts_.tenant_shares;
        if (shares.empty()) {
            shares.assign(t, 1.0);
        }
        double wsum = 0.0;
        for (double w : shares) {
            wsum += w;
        }
        quantum_.resize(t);
        for (int i = 0; i < t; ++i) {
            quantum_[i] =
                static_cast<double>(opts_.fairness_tokens) * shares[i] /
                wsum;
        }
        // Every tenant starts with a full window (not counted in
        // fairness_windows_ — no claim was ever blocked for it).
        deficit_ = quantum_;
        preempt_left_.assign(n, opts_.preempt_budget);
        latenesses_.reserve(n);
    }

    while (completed_ < n) {
        admit();
        if (running_.empty() && waiting_total() == 0) {
            // Idle: wait for the next arrival (queue depth is zero).
            double t_next = requests_[next_arrival_].arrival;
            if (t_next > now_) {
                depth_mean_.add(t_next - now_, 0.0);
                if (kv_on_) {
                    kv_mean_.add(t_next - now_,
                                 static_cast<double>(state_.kv_bytes()));
                }
                state_.run_to(t_next);
                now_ = t_next;
            }
            continue;
        }
        if (!pre_hi_.empty() || !pre_lo_.empty()) {
            if (chunk_on_) {
                order_prefill_queues();
                const bool yielded = chunk_yield_;
                chunk_yield_ = false;
                if (yielded && (!running_.empty() || !dec_hi_.empty() ||
                                !dec_lo_.empty())) {
                    // A long prompt sits mid-ingestion: one decode
                    // iteration runs between its chunks — the
                    // head-of-line win chunking exists for.
                    ++rep_.chunk_decode_interleaves;
                    run_decode_iteration(/*interruptible=*/true);
                    continue;
                }
            }
            if (kv_on_ && !prefill_admissible()) {
                // KV backpressure: the next prompt's segment does not
                // fit next to the resident ones. Run decode work
                // instead when there is any (completions free KV);
                // with nothing else to run, force the prompt through
                // (spilling) so the server always makes progress.
                if (!running_.empty() || !dec_hi_.empty() ||
                    !dec_lo_.empty()) {
                    ++rep_.deferred_admissions;
                    run_decode_iteration(/*interruptible=*/true);
                } else {
                    run_prefill_iteration(ClaimMode::kAll,
                                          /*interruptible=*/true,
                                          /*force_admit=*/true);
                }
            } else {
                run_prefill_iteration(ClaimMode::kAll,
                                      /*interruptible=*/true);
            }
        } else {
            run_decode_iteration(/*interruptible=*/true);
        }
    }
    finalize();
    return rep_;
}

}  // namespace

std::vector<double>
ArrivalTrace::closed_loop(int n)
{
    util::check(n >= 0, "ArrivalTrace: negative request count");
    return std::vector<double>(n, 0.0);
}

std::vector<double>
ArrivalTrace::poisson(int n, double rate_per_s, uint64_t seed)
{
    util::check(n >= 0, "ArrivalTrace: negative request count");
    util::check(rate_per_s > 0, "ArrivalTrace: rate must be positive");
    // mt19937_64's raw output is fully specified by the standard;
    // std::exponential_distribution is not. Inverse-CDF by hand keeps
    // the trace bit-identical across standard libraries.
    std::mt19937_64 rng(seed);
    std::vector<double> arrivals;
    arrivals.reserve(n);
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        double u =
            static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
        t += -std::log1p(-u) / rate_per_s;
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<double>
ArrivalTrace::bursty(int n, double rate_per_s, double burst_factor,
                     uint64_t seed)
{
    util::check(n >= 0, "ArrivalTrace: negative request count");
    util::check(rate_per_s > 0, "ArrivalTrace: rate must be positive");
    util::check(burst_factor >= 1.0 && burst_factor < 10.0,
                "ArrivalTrace: burst factor must be in [1, 10)");
    if (burst_factor == 1.0) {
        // Factor 1 collapses both MMPP states to the mean rate; the
        // process IS Poisson, so delegate for an element-by-element
        // equal trace (the state-switch crossings below would split
        // the gap arithmetic and drift the low FP bits otherwise).
        return poisson(n, rate_per_s, seed);
    }
    // Two-state MMPP: a burst state at burst_factor x the mean rate,
    // occupied kBurstFrac of the time, and a calm state scaled down so
    // the long-run rate stays rate_per_s (burst_factor < 1/kBurstFrac
    // keeps the calm rate positive). Each arrival consumes one unit-
    // exponential amount of "work" at the current state's rate;
    // state-holding times draw from their own domain-separated stream
    // so the gap draws never depend on how often the state switches.
    constexpr double kBurstFrac = 0.1;
    const double burst_rate = rate_per_s * burst_factor;
    const double calm_rate = rate_per_s *
                             (1.0 - kBurstFrac * burst_factor) /
                             (1.0 - kBurstFrac);
    // A burst lasts ~10 arrivals at the burst rate; calm holds fill
    // the remaining (1 - kBurstFrac) of the time.
    const double burst_hold = 10.0 / burst_rate;
    const double calm_hold =
        burst_hold * (1.0 - kBurstFrac) / kBurstFrac;
    std::mt19937_64 gap_rng(seed);
    std::mt19937_64 state_rng(seed ^ 0x6275727374737461ull);  // "burststa"
    auto draw = [](std::mt19937_64& rng) {
        return static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
    };
    bool in_burst = false;
    double t = 0.0;
    double t_switch = -std::log1p(-draw(state_rng)) * calm_hold;
    std::vector<double> arrivals;
    arrivals.reserve(n);
    for (int i = 0; i < n; ++i) {
        double work = -std::log1p(-draw(gap_rng));
        for (;;) {
            const double rate = in_burst ? burst_rate : calm_rate;
            const double need = work / rate;
            if (t + need <= t_switch) {
                t += need;
                break;
            }
            work -= (t_switch - t) * rate;
            t = t_switch;
            in_burst = !in_burst;
            t_switch = t + -std::log1p(-draw(state_rng)) *
                               (in_burst ? burst_hold : calm_hold);
        }
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<Request>
decode_requests(const std::vector<double>& arrivals, int decode_tokens)
{
    std::vector<Request> out;
    out.reserve(arrivals.size());
    for (double a : arrivals) {
        Request r;
        r.arrival = a;
        r.phase = Phase::kDecode;
        r.decode_tokens = decode_tokens;
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
prefill_requests(const std::vector<double>& arrivals, int decode_tokens)
{
    std::vector<Request> out;
    out.reserve(arrivals.size());
    for (double a : arrivals) {
        Request r;
        r.arrival = a;
        r.phase = Phase::kPrefill;
        r.decode_tokens = decode_tokens;
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
make_request_trace(const std::vector<double>& arrivals,
                   int decode_tokens, double prefill_frac,
                   double high_frac, uint64_t seed)
{
    util::check(prefill_frac >= 0.0 && prefill_frac <= 1.0,
                "make_request_trace: prefill fraction out of [0,1]");
    util::check(high_frac >= 0.0 && high_frac <= 1.0,
                "make_request_trace: high fraction out of [0,1]");
    std::mt19937_64 rng(seed);
    auto draw = [&rng] {
        return static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
    };
    std::vector<Request> out;
    out.reserve(arrivals.size());
    for (double a : arrivals) {
        Request r;
        r.arrival = a;
        r.decode_tokens = decode_tokens;
        r.phase =
            draw() < prefill_frac ? Phase::kPrefill : Phase::kDecode;
        r.priority =
            draw() < high_frac ? Priority::kHigh : Priority::kNormal;
        out.push_back(r);
    }
    return out;
}

void
tag_prompt_lengths(std::vector<Request>& requests, int max_len,
                   double mean_len, uint64_t seed)
{
    util::check(max_len >= 1,
                "tag_prompt_lengths: max_len must be >= 1");
    util::check(mean_len > 0.0,
                "tag_prompt_lengths: mean_len must be positive");
    // Domain-separate the stream from make_request_trace's: callers
    // naturally pass one trace seed to both, and an unmixed seed
    // would make request k's prompt length a function of the same
    // draw as its phase/priority tag.
    std::mt19937_64 rng(seed ^ 0x70726f6d70747376ull);  // "promptsv"
    for (Request& r : requests) {
        // Inverse-CDF exponential on the raw mt19937_64 output (see
        // ArrivalTrace::poisson): platform-stable, and one draw per
        // request so the sequence is independent of the phase mix.
        double u =
            static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
        // Clamp in double before the int cast: a large mean can push
        // the draw past INT_MAX, where the cast itself is undefined.
        double draw = std::min(-std::log1p(-u) * mean_len,
                               static_cast<double>(max_len - 1));
        r.prompt_len = 1 + static_cast<int>(std::floor(draw));
    }
}

void
tag_tenants(std::vector<Request>& requests, int tenants, uint64_t seed)
{
    util::check(tenants >= 1, "tag_tenants: tenants must be >= 1");
    if (tenants == 1) {
        // Exact no-op: no draws consumed, so the same seed tags the
        // same trace identically whether or not it passed through a
        // degenerate tenant split (mirrors make_request_trace's 0/1
        // fractions).
        return;
    }
    // Domain-separate the stream from the other taggers' (see
    // tag_prompt_lengths): one uniform draw per request on the raw
    // mt19937_64 output keeps the assignment platform-stable.
    std::mt19937_64 rng(seed ^ 0x74656e616e747376ull);  // "tenantsv"
    for (Request& r : requests) {
        double u =
            static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
        r.tenant = std::min(static_cast<int>(u * tenants), tenants - 1);
    }
}

void
tag_deadlines(std::vector<Request>& requests, double slo_s)
{
    util::check(slo_s > 0.0, "tag_deadlines: slo_s must be positive");
    // Pure arithmetic — no randomness, so the tagging is trivially
    // platform-stable and composes with any arrival process.
    for (Request& r : requests) {
        r.deadline_s = r.arrival + slo_s;
    }
}

std::vector<Request>
make_session_trace(const SessionTraceOptions& o, uint64_t seed)
{
    util::check(o.sessions >= 0,
                "make_session_trace: negative session count");
    util::check(o.rate_per_s >= 0.0,
                "make_session_trace: rate must be >= 0");
    util::check(o.mean_turns >= 1.0,
                "make_session_trace: mean_turns must be >= 1");
    util::check(o.think_time_s >= 0.0,
                "make_session_trace: think_time_s must be >= 0");
    util::check(o.decode_tokens >= 1,
                "make_session_trace: decode_tokens must be >= 1");
    util::check(o.max_prompt_len >= 1,
                "make_session_trace: max_prompt_len must be >= 1");
    util::check(o.prompt_mean_len >= 0.0,
                "make_session_trace: prompt_mean_len must be >= 0");
    util::check(o.prefix_population >= 0,
                "make_session_trace: negative prefix population");
    if (o.prefix_population > 0) {
        util::check(o.max_prompt_len >= 2,
                    "make_session_trace: shared prefixes need "
                    "max_prompt_len >= 2 (one residual token must "
                    "always reach prefill)");
        util::check(o.prefix_zipf_s > 0.0,
                    "make_session_trace: prefix_zipf_s must be > 0");
        util::check(o.prefix_mean_len > 0.0,
                    "make_session_trace: prefix_mean_len must be > 0");
    }

    auto draw = [](std::mt19937_64& rng) {
        return static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
    };

    // Session start times: closed loop, Poisson, or bursty MMPP. The
    // arrival seed is domain-separated from every tagging stream
    // below, mirroring tag_prompt_lengths()'s discipline.
    const uint64_t arrival_seed = seed ^ 0x73657373696f6e73ull;  // "sessions"
    std::vector<double> starts;
    if (o.rate_per_s > 0.0) {
        starts = o.burst_factor > 1.0
                     ? ArrivalTrace::bursty(o.sessions, o.rate_per_s,
                                            o.burst_factor,
                                            arrival_seed)
                     : ArrivalTrace::poisson(o.sessions, o.rate_per_s,
                                             arrival_seed);
    } else {
        starts = ArrivalTrace::closed_loop(o.sessions);
    }

    // Canonical prefix lengths, one geometric draw per population id:
    // in [1, max_prompt_len - 1], so a prefix can never swallow a
    // whole prompt. Clamp in double before the int cast (see
    // tag_prompt_lengths).
    std::mt19937_64 plen_rng(seed ^ 0x7072656669786c65ull);  // "prefixle"
    std::vector<int64_t> prefix_len(o.prefix_population, 0);
    for (int p = 0; p < o.prefix_population; ++p) {
        double u = draw(plen_rng);
        double d = std::min(-std::log1p(-u) * o.prefix_mean_len,
                            static_cast<double>(o.max_prompt_len - 2));
        prefix_len[p] = 1 + static_cast<int64_t>(std::floor(d));
    }
    // Zipf popularity over population ranks: cumulative weights once,
    // one inverse-CDF binary search per session.
    std::vector<double> cum(o.prefix_population, 0.0);
    double total = 0.0;
    for (int p = 0; p < o.prefix_population; ++p) {
        total += std::pow(1.0 / static_cast<double>(p + 1),
                          o.prefix_zipf_s);
        cum[p] = total;
    }

    std::mt19937_64 turn_rng(seed ^ 0x7475726e73647261ull);   // "turnsdra"
    std::mt19937_64 think_rng(seed ^ 0x7468696e6b74696dull);  // "thinktim"
    std::mt19937_64 prompt_rng(seed ^ 0x70726d70746c656eull); // "prmptlen"
    std::mt19937_64 zipf_rng(seed ^ 0x7a6970667072656full);   // "zipfpreo"

    std::vector<Request> out;
    out.reserve(static_cast<size_t>(o.sessions));
    for (int s = 0; s < o.sessions; ++s) {
        // Geometric-tailed turn count (mean_turns == 1 is exact: no
        // draw consumed, like make_request_trace's 0/1 fractions).
        int turns = 1;
        if (o.mean_turns > 1.0) {
            double u = draw(turn_rng);
            double d = std::min(
                -std::log1p(-u) * (o.mean_turns - 1.0), 1000.0);
            turns = 1 + static_cast<int>(std::floor(d));
        }
        // Every turn of a session carries the session's prefix — the
        // follow-up turns are what the prefix cache turns into hits.
        int pid = -1;
        if (o.prefix_population > 0) {
            double u = draw(zipf_rng) * total;
            pid = static_cast<int>(
                std::lower_bound(cum.begin(), cum.end(), u) -
                cum.begin());
            pid = std::min(pid, o.prefix_population - 1);
        }
        double t = starts[s];
        for (int k = 0; k < turns; ++k) {
            if (k > 0 && o.think_time_s > 0.0) {
                t += -std::log1p(-draw(think_rng)) * o.think_time_s;
            }
            Request r;
            r.arrival = t;
            r.phase = Phase::kPrefill;
            r.decode_tokens = o.decode_tokens;
            // The private suffix past the shared prefix (the user's
            // own text); 0 mean = full-length prompts.
            int64_t suffix = o.max_prompt_len;
            if (o.prompt_mean_len > 0.0) {
                double u = draw(prompt_rng);
                double d = std::min(
                    -std::log1p(-u) * o.prompt_mean_len,
                    static_cast<double>(o.max_prompt_len - 1));
                suffix = 1 + static_cast<int64_t>(std::floor(d));
            }
            if (pid >= 0) {
                r.prefix_id = pid;
                r.prefix_len = static_cast<int>(prefix_len[pid]);
                r.prompt_len = static_cast<int>(
                    std::min(prefix_len[pid] + suffix,
                             static_cast<int64_t>(o.max_prompt_len)));
            } else {
                r.prompt_len = static_cast<int>(suffix);
            }
            out.push_back(r);
        }
    }
    // Interleave sessions into one arrival-ordered trace; stable, so
    // equal arrivals keep generation order (deterministic).
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival < b.arrival;
                     });
    return out;
}

std::string
ServingReport::summary() const
{
    std::ostringstream out;
    out << "served " << requests << " requests / " << tokens
        << " tokens in " << iterations << " iterations ("
        << prefill_iterations << " prefill + " << decode_iterations
        << " decode), makespan " << ms(makespan) << " ms\n"
        << "  latency ms   : p50 " << ms(p50_latency) << "  p95 "
        << ms(p95_latency) << "  p99 " << ms(p99_latency) << "  max "
        << ms(max_latency) << "\n"
        << "  goodput      : " << tokens_per_s << " tokens/s\n"
        << "  queue depth  : mean " << mean_queue_depth << ", peak "
        << peak_queue_depth << "\n"
        << "  utilization  : hbm " << pct(hbm_util) << ", noc "
        << pct(noc_util) << "\n"
        << "  decode preload ms: first " << ms(first_decode_preload)
        << ", steady " << ms(steady_decode_preload) << " ("
        << resident_bytes / 1024 << " KB/core resident, "
        << preloads_skipped << " preloads skipped)";
    if (prefill_iterations > 0) {
        out << "\n  ttft ms      : mean " << ms(mean_ttft) << "  p50 "
            << ms(p50_ttft) << "  p95 " << ms(p95_ttft) << "  max "
            << ms(max_ttft);
        out << "\n  prefill      : " << prompt_tokens
            << " prompt tokens, " << padded_prompt_tokens
            << " padded; buckets";
        for (const PrefillBucket& b : prefill_bucket_iterations) {
            out << " b" << b.batch << "xL" << b.prompt_len << ":"
                << b.iterations;
        }
    }
    if (high_priority_requests > 0) {
        out << "\n  high priority: " << high_priority_requests
            << " requests, p95 " << ms(p95_high_latency) << " ms, "
            << preemptions << " preemptions";
    }
    if (kv_modeled) {
        out << "\n  kv residency : peak " << kv_bytes_peak / 1024
            << " KB/core, mean " << mean_kv_bytes / 1024.0 << " KB; "
            << kv_evictions << " evictions, " << kv_refetches
            << " refetches (" << ms(kv_stall) << " ms stalled), "
            << deferred_admissions << " deferred admissions";
        if (kv_migrations > 0) {
            out << "\n  kv migration : " << kv_migrations
                << " transfers / " << kv_migrated_tokens
                << " tokens in over the interconnect ("
                << ms(kv_migration_stall) << " ms stalled)";
        }
    }
    if (prefix_sharing) {
        out << "\n  prefix cache : " << prefix_hits << " hits / "
            << prefix_hit_tokens << " tokens; "
            << prefill_tokens_saved << " prefill token slots saved; "
            << "peak shared KV " << shared_kv_bytes / 1024
            << " KB/core";
    }
    if (slo) {
        out << "\n  slo          : "
            << (deadline_requests - deadline_misses) << "/"
            << deadline_requests << " deadlines met ("
            << pct(slo_attainment) << " attainment), p99 lateness "
            << ms(p99_lateness) << " ms, max " << ms(max_lateness)
            << " ms; " << deadline_preemptions
            << " deadline preemptions, " << fairness_windows
            << " fairness windows";
        for (const TenantShare& t : tenant_shares) {
            out << "\n  tenant " << t.tenant << "     : " << t.requests
                << " requests, " << t.tokens << " tokens ("
                << pct(t.token_share) << " share), attainment "
                << pct(t.attainment) << " (" << t.deadline_misses
                << " missed)";
        }
    }
    if (prefill_chunk > 0) {
        out << "\n  chunked prefill: chunk " << prefill_chunk << ", "
            << chunked_prompts << " chunked prompts / "
            << prefill_chunks << " chunks, "
            << chunk_decode_interleaves << " decode interleaves";
    }
    if (kv_locality) {
        out << "\n  kv locality  : " << kv_locality_skips
            << " spilled claims passed over for resident work";
    }
    return out.str();
}

std::string
ServingReport::serialize_bits() const
{
    std::string out;
    out.reserve(224);
    append_bits(out, requests);
    append_bits(out, iterations);
    append_bits(out, tokens);
    append_bits(out, makespan);
    append_bits(out, mean_latency);
    append_bits(out, p50_latency);
    append_bits(out, p95_latency);
    append_bits(out, p99_latency);
    append_bits(out, max_latency);
    append_bits(out, tokens_per_s);
    append_bits(out, mean_queue_depth);
    append_bits(out, peak_queue_depth);
    append_bits(out, hbm_util);
    append_bits(out, noc_util);
    append_bits(out, peak_sram_per_core);
    append_bits(out, static_cast<uint8_t>(memory_exceeded ? 1 : 0));
    append_bits(out, first_decode_preload);
    append_bits(out, steady_decode_preload);
    append_bits(out, resident_bytes);
    append_bits(out, preloads_skipped);
    append_bits(out, prefill_iterations);
    append_bits(out, decode_iterations);
    append_bits(out, preemptions);
    append_bits(out, mean_ttft);
    append_bits(out, p50_ttft);
    append_bits(out, p95_ttft);
    append_bits(out, max_ttft);
    append_bits(out, high_priority_requests);
    append_bits(out, p95_high_latency);
    append_bits(out, prompt_tokens);
    append_bits(out, padded_prompt_tokens);
    append_bits(out,
                static_cast<int>(prefill_bucket_iterations.size()));
    for (const PrefillBucket& b : prefill_bucket_iterations) {
        append_bits(out, b.batch);
        append_bits(out, b.prompt_len);
        append_bits(out, b.iterations);
    }
    append_bits(out, static_cast<uint8_t>(kv_modeled ? 1 : 0));
    append_bits(out, kv_bytes_peak);
    append_bits(out, mean_kv_bytes);
    append_bits(out, kv_evictions);
    append_bits(out, kv_refetches);
    append_bits(out, kv_stall);
    append_bits(out, deferred_admissions);
    append_bits(out, kv_migrations);
    append_bits(out, kv_migrated_tokens);
    append_bits(out, kv_migration_stall);
    // The prefix, SLO, and chunk blocks stay the trailing suffix of
    // the serialization (in this order): the feature-disabled
    // bit-identity anchors in tests/prefix_test.cc, tests/slo_test.cc
    // and tests/chunked_test.cc compare everything before their block
    // by stripping fixed-size tails.
    append_bits(out, static_cast<uint8_t>(prefix_sharing ? 1 : 0));
    append_bits(out, prefix_hits);
    append_bits(out, prefix_hit_tokens);
    append_bits(out, prefill_tokens_saved);
    append_bits(out, shared_kv_bytes);
    append_bits(out, static_cast<uint8_t>(slo ? 1 : 0));
    append_bits(out, tenants);
    append_bits(out, deadline_requests);
    append_bits(out, deadline_misses);
    append_bits(out, slo_attainment);
    append_bits(out, p99_lateness);
    append_bits(out, max_lateness);
    append_bits(out, deadline_preemptions);
    append_bits(out, fairness_windows);
    append_bits(out, static_cast<int>(tenant_shares.size()));
    for (const TenantShare& t : tenant_shares) {
        append_bits(out, t.tenant);
        append_bits(out, t.requests);
        append_bits(out, t.tokens);
        append_bits(out, t.token_share);
        append_bits(out, t.deadline_requests);
        append_bits(out, t.deadline_misses);
        append_bits(out, t.attainment);
    }
    append_bits(out, prefill_chunk);
    append_bits(out, chunked_prompts);
    append_bits(out, prefill_chunks);
    append_bits(out, chunk_decode_interleaves);
    append_bits(out, static_cast<uint8_t>(kv_locality ? 1 : 0));
    append_bits(out, kv_locality_skips);
    return out;
}

Server::Server(const sim::Machine& machine, ServerOptions opts)
    : machine_(machine), opts_(std::move(opts))
{
    util::check(opts_.max_batch >= 1, "Server: max_batch must be >= 1");
    util::check(opts_.tokens_per_request >= 1,
                "Server: tokens_per_request must be >= 1");
    util::check(opts_.max_prefill_batch >= 1,
                "Server: max_prefill_batch must be >= 1");
    finalize_buckets(opts_.batch_buckets, opts_.max_batch, "batch");
    finalize_buckets(opts_.prefill_buckets, opts_.max_prefill_batch,
                     "prefill");
    util::check(opts_.max_prompt_len >= 0,
                "Server: max_prompt_len must be >= 0");
    if (opts_.max_prompt_len >= 1) {
        finalize_buckets(opts_.prompt_buckets, opts_.max_prompt_len,
                         "prompt");
    } else {
        util::check(opts_.prompt_buckets.empty(),
                    "Server: prompt buckets need max_prompt_len");
    }
    if (opts_.kv_budget > 0) {
        util::check(opts_.kv_bytes_per_token > 0,
                    "Server: KV modeling needs kv_bytes_per_token "
                    "(see graph::kv_bytes_per_token)");
        util::check(opts_.max_prompt_len >= 1,
                    "Server: KV modeling needs max_prompt_len to "
                    "size per-request KV segments");
    }
    if (opts_.prefix_sharing) {
        util::check(opts_.kv_budget > 0,
                    "Server: prefix sharing needs KV modeling "
                    "(kv_budget > 0) — shared prefix segments live "
                    "in the modeled KV pool");
    }
    util::check(opts_.prefill_chunk >= 0,
                "Server: prefill_chunk must be >= 0 (0 disables "
                "chunked prefill)");
    if (opts_.prefill_chunk > 0) {
        util::check((opts_.prefill_chunk &
                     (opts_.prefill_chunk - 1)) == 0,
                    "Server: prefill_chunk must be a power of two "
                    "(the chunk grid quantization)");
        util::check(opts_.max_prompt_len >= 1,
                    "Server: chunked prefill needs max_prompt_len "
                    "(the model sequence length)");
        util::check(opts_.prefill_chunk <= opts_.max_prompt_len,
                    "Server: prefill_chunk must not exceed "
                    "max_prompt_len");
        util::check(opts_.prompt_buckets.size() >= 2,
                    "Server: chunked prefill needs a multi-entry "
                    "prompt bucket ladder (varlen buckets) — with a "
                    "single full-length bucket every chunk would pad "
                    "to the full sequence");
    }
    if (opts_.kv_locality) {
        util::check(opts_.kv_budget > 0,
                    "Server: kv_locality needs KV modeling "
                    "(kv_budget > 0) — residency is what it steers "
                    "by");
    }
    util::check(opts_.tenants >= 1, "Server: tenants must be >= 1");
    util::check(opts_.fairness_tokens >= 0,
                "Server: fairness_tokens must be >= 0 (0 auto-sizes)");
    util::check(opts_.preempt_budget >= 0,
                "Server: preempt_budget must be >= 0 (0 disables "
                "deadline preemption)");
    if (!opts_.slo) {
        util::check(opts_.tenants == 1 && opts_.tenant_shares.empty(),
                    "Server: multi-tenant shares need "
                    "ServerOptions::slo");
    } else {
        util::check(opts_.tenant_shares.empty() ||
                        static_cast<int>(opts_.tenant_shares.size()) ==
                            opts_.tenants,
                    "Server: tenant_shares must be empty (equal "
                    "shares) or carry one weight per tenant");
        for (double w : opts_.tenant_shares) {
            util::check(w > 0.0,
                        "Server: tenant share weights must be "
                        "positive");
        }
        if (opts_.fairness_tokens == 0) {
            // Auto-size a window to one full decode batch plus one
            // maximal prompt: enough that a lone tenant never stalls
            // between windows, small enough that shares bite within a
            // few iterations under contention.
            opts_.fairness_tokens =
                opts_.max_batch + opts_.max_prompt_len;
        }
    }
}

// NOTE: this loop intentionally does NOT delegate to DisaggRun. It is
// the PR 2 reference implementation, kept verbatim so the bit-identity
// assertion in tests/preempt_test.cc (DisaggRun on a degenerate trace
// == this loop, across all five modes) anchors the disaggregated
// scheduler to an independent baseline. An accounting change must be
// made in both loops — the test enforcing that is the point.
ServingReport
Server::serve(const std::vector<double>& arrivals,
              const ProgramSource& programs) const
{
    // This loop is the KV-free reference; silently skipping KV
    // modeling here would let a caller believe it was applied.
    util::check(opts_.kv_budget == 0,
                "Server: KV modeling (kv_budget > 0) requires the "
                "Request-based serve() overload");
    const int n = static_cast<int>(arrivals.size());
    for (int i = 0; i < n; ++i) {
        util::check(arrivals[i] >= 0 &&
                        (i == 0 || arrivals[i] >= arrivals[i - 1]),
                    "Server: arrivals must be sorted and non-negative");
    }

    // The first iteration runs cold (no retention) and measures the
    // working-set peak; the residency budget is then the leftover
    // SRAM slack, so retained weights never contend with the working
    // set and survive whole decode cycles.
    sim::EngineState state(machine_, engine_options(opts_));

    struct Active {
        int req = -1;
        int tokens_left = 0;
    };
    std::vector<Active> running;
    running.reserve(opts_.max_batch);
    std::deque<int> waiting;
    int next_arrival = 0;
    int completed = 0;
    std::vector<double> latencies(n, 0.0);

    ServingReport rep;
    rep.requests = n;
    util::WeightedMean depth_mean;
    util::WeightedMean hbm_mean;
    util::WeightedMean noc_mean;
    double steady_preload_sum = 0.0;
    int steady_iterations = 0;
    double now = 0.0;

    while (completed < n) {
        // Arrivals up to the current clock join the queue.
        while (next_arrival < n && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival++);
        }
        if (running.empty() && waiting.empty()) {
            // Idle: wait for the next arrival (queue depth is zero).
            double t_next = arrivals[next_arrival];
            if (t_next > now) {
                depth_mean.add(t_next - now, 0.0);
                state.run_to(t_next);
                now = t_next;
            }
            continue;
        }

        // Iteration-level batching: waiting requests claim free batch
        // slots at the iteration boundary.
        while (!waiting.empty() &&
               static_cast<int>(running.size()) < opts_.max_batch) {
            running.push_back(
                {waiting.front(), opts_.tokens_per_request});
            waiting.pop_front();
        }
        rep.peak_queue_depth = std::max(
            rep.peak_queue_depth, static_cast<int>(waiting.size()));

        int bucket = pick_bucket(opts_.batch_buckets,
                                 static_cast<int>(running.size()));
        std::shared_ptr<const sim::SimProgram> program = programs(bucket);
        util::check(program != nullptr,
                    "Server: ProgramSource returned no program");

        // One decode iteration for the whole running batch.
        double start = now;
        state.begin(*program);
        while (state.step()) {
        }
        sim::SimResult r = state.finish();
        now = state.now();
        double duration = now - start;

        ++rep.iterations;
        if (rep.iterations == 1) {
            rep.first_decode_preload = r.preload_only;
            if (opts_.keep_resident) {
                uint64_t usable =
                    machine_.config().usable_sram_per_core();
                state.set_residency_budget(
                    usable > r.peak_sram_per_core
                        ? usable - r.peak_sram_per_core
                        : 0);
            }
        } else {
            steady_preload_sum += r.preload_only;
            ++steady_iterations;
        }
        hbm_mean.add(duration, r.hbm_util);
        noc_mean.add(duration, r.noc_util);
        depth_mean.add(duration, static_cast<double>(waiting.size()));
        rep.peak_sram_per_core =
            std::max(rep.peak_sram_per_core, r.peak_sram_per_core);
        rep.memory_exceeded |= r.memory_exceeded;
        rep.tokens += static_cast<int64_t>(running.size());

        // Every running request produced one token this iteration.
        for (auto it = running.begin(); it != running.end();) {
            if (--it->tokens_left == 0) {
                latencies[it->req] = now - arrivals[it->req];
                ++completed;
                it = running.erase(it);
            } else {
                ++it;
            }
        }
    }

    rep.makespan = now;
    rep.tokens_per_s = now > 0 ? static_cast<double>(rep.tokens) / now
                               : 0.0;
    rep.mean_queue_depth = depth_mean.value();
    rep.hbm_util = hbm_mean.value();
    rep.noc_util = noc_mean.value();
    rep.steady_decode_preload =
        steady_iterations > 0 ? steady_preload_sum / steady_iterations
                              : rep.first_decode_preload;
    if (n > 0) {
        // Mean first (arrival-order summation), then sort once for
        // every percentile — mirrored from DisaggRun::finalize().
        rep.mean_latency = util::mean(latencies);
        std::sort(latencies.begin(), latencies.end());
        rep.p50_latency = util::percentile_sorted(latencies, 50.0);
        rep.p95_latency = util::percentile_sorted(latencies, 95.0);
        rep.p99_latency = util::percentile_sorted(latencies, 99.0);
        rep.max_latency = latencies.back();
    }
    rep.resident_bytes = state.resident_bytes();
    rep.preloads_skipped = state.resident_hits();
    rep.decode_iterations = rep.iterations;
    return rep;
}

ServingReport
Server::serve(const std::vector<Request>& requests,
              const PrefillProgramSource& prefill_programs,
              const ProgramSource& decode_programs) const
{
    DisaggRun run(machine_, opts_, requests, prefill_programs,
                  decode_programs);
    return run.run();
}

}  // namespace elk::runtime
