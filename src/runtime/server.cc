#include "runtime/server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>
#include <sstream>

#include "runtime/metrics.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/stats.h"

namespace elk::runtime {

using util::append_bits;

namespace {

/// Smallest bucket covering @p need; the largest one when none does.
int
pick_bucket(const std::vector<int>& buckets, int need)
{
    for (int b : buckets) {
        if (b >= need) {
            return b;
        }
    }
    return buckets.back();
}

}  // namespace

std::vector<double>
ArrivalTrace::closed_loop(int n)
{
    util::check(n >= 0, "ArrivalTrace: negative request count");
    return std::vector<double>(n, 0.0);
}

std::vector<double>
ArrivalTrace::poisson(int n, double rate_per_s, uint64_t seed)
{
    util::check(n >= 0, "ArrivalTrace: negative request count");
    util::check(rate_per_s > 0, "ArrivalTrace: rate must be positive");
    // mt19937_64's raw output is fully specified by the standard;
    // std::exponential_distribution is not. Inverse-CDF by hand keeps
    // the trace bit-identical across standard libraries.
    std::mt19937_64 rng(seed);
    std::vector<double> arrivals;
    arrivals.reserve(n);
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        double u =
            static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
        t += -std::log1p(-u) / rate_per_s;
        arrivals.push_back(t);
    }
    return arrivals;
}

std::string
ServingReport::summary() const
{
    std::ostringstream out;
    out << "served " << requests << " requests / " << tokens
        << " tokens in " << iterations << " iterations, makespan "
        << ms(makespan) << " ms\n"
        << "  latency ms   : p50 " << ms(p50_latency) << "  p95 "
        << ms(p95_latency) << "  p99 " << ms(p99_latency) << "  max "
        << ms(max_latency) << "\n"
        << "  goodput      : " << tokens_per_s << " tokens/s\n"
        << "  queue depth  : mean " << mean_queue_depth << ", peak "
        << peak_queue_depth << "\n"
        << "  utilization  : hbm " << pct(hbm_util) << ", noc "
        << pct(noc_util) << "\n"
        << "  decode preload ms: first " << ms(first_decode_preload)
        << ", steady " << ms(steady_decode_preload) << " ("
        << resident_bytes / 1024 << " KB/core resident, "
        << preloads_skipped << " preloads skipped)";
    return out.str();
}

std::string
ServingReport::serialize_bits() const
{
    std::string out;
    out.reserve(160);
    append_bits(out, requests);
    append_bits(out, iterations);
    append_bits(out, tokens);
    append_bits(out, makespan);
    append_bits(out, mean_latency);
    append_bits(out, p50_latency);
    append_bits(out, p95_latency);
    append_bits(out, p99_latency);
    append_bits(out, max_latency);
    append_bits(out, tokens_per_s);
    append_bits(out, mean_queue_depth);
    append_bits(out, peak_queue_depth);
    append_bits(out, hbm_util);
    append_bits(out, noc_util);
    append_bits(out, peak_sram_per_core);
    append_bits(out, static_cast<uint8_t>(memory_exceeded ? 1 : 0));
    append_bits(out, first_decode_preload);
    append_bits(out, steady_decode_preload);
    append_bits(out, resident_bytes);
    append_bits(out, preloads_skipped);
    return out;
}

Server::Server(const sim::Machine& machine, ServerOptions opts)
    : machine_(machine), opts_(std::move(opts))
{
    util::check(opts_.max_batch >= 1, "Server: max_batch must be >= 1");
    util::check(opts_.tokens_per_request >= 1,
                "Server: tokens_per_request must be >= 1");
    if (opts_.batch_buckets.empty()) {
        for (int b = 1; b < opts_.max_batch; b *= 2) {
            opts_.batch_buckets.push_back(b);
        }
        opts_.batch_buckets.push_back(opts_.max_batch);
    }
    std::sort(opts_.batch_buckets.begin(), opts_.batch_buckets.end());
    util::check(opts_.batch_buckets.front() >= 1,
                "Server: batch buckets must be positive");
    util::check(opts_.batch_buckets.back() == opts_.max_batch,
                "Server: largest batch bucket must equal max_batch");
}

ServingReport
Server::serve(const std::vector<double>& arrivals,
              const ProgramSource& programs) const
{
    const int n = static_cast<int>(arrivals.size());
    for (int i = 0; i < n; ++i) {
        util::check(arrivals[i] >= 0 &&
                        (i == 0 || arrivals[i] >= arrivals[i - 1]),
                    "Server: arrivals must be sorted and non-negative");
    }

    // The first iteration runs cold (no retention) and measures the
    // working-set peak; the residency budget is then the leftover
    // SRAM slack, so retained weights never contend with the working
    // set and survive whole decode cycles.
    sim::EngineState state(machine_, sim::EngineState::Options{});

    struct Active {
        int req = -1;
        int tokens_left = 0;
    };
    std::vector<Active> running;
    std::deque<int> waiting;
    int next_arrival = 0;
    int completed = 0;
    std::vector<double> latencies(n, 0.0);

    ServingReport rep;
    rep.requests = n;
    util::WeightedMean depth_mean;
    util::WeightedMean hbm_mean;
    util::WeightedMean noc_mean;
    double steady_preload_sum = 0.0;
    int steady_iterations = 0;
    double now = 0.0;

    while (completed < n) {
        // Arrivals up to the current clock join the queue.
        while (next_arrival < n && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival++);
        }
        if (running.empty() && waiting.empty()) {
            // Idle: wait for the next arrival (queue depth is zero).
            double t_next = arrivals[next_arrival];
            if (t_next > now) {
                depth_mean.add(t_next - now, 0.0);
                state.run_to(t_next);
                now = t_next;
            }
            continue;
        }

        // Iteration-level batching: waiting requests claim free batch
        // slots at the iteration boundary.
        while (!waiting.empty() &&
               static_cast<int>(running.size()) < opts_.max_batch) {
            running.push_back(
                {waiting.front(), opts_.tokens_per_request});
            waiting.pop_front();
        }
        rep.peak_queue_depth = std::max(
            rep.peak_queue_depth, static_cast<int>(waiting.size()));

        int bucket = pick_bucket(opts_.batch_buckets,
                                 static_cast<int>(running.size()));
        std::shared_ptr<const sim::SimProgram> program = programs(bucket);
        util::check(program != nullptr,
                    "Server: ProgramSource returned no program");

        // One decode iteration for the whole running batch.
        double start = now;
        state.begin(*program);
        while (state.step()) {
        }
        sim::SimResult r = state.finish();
        now = state.now();
        double duration = now - start;

        ++rep.iterations;
        if (rep.iterations == 1) {
            rep.first_decode_preload = r.preload_only;
            if (opts_.keep_resident) {
                uint64_t usable =
                    machine_.config().usable_sram_per_core();
                state.set_residency_budget(
                    usable > r.peak_sram_per_core
                        ? usable - r.peak_sram_per_core
                        : 0);
            }
        } else {
            steady_preload_sum += r.preload_only;
            ++steady_iterations;
        }
        hbm_mean.add(duration, r.hbm_util);
        noc_mean.add(duration, r.noc_util);
        depth_mean.add(duration, static_cast<double>(waiting.size()));
        rep.peak_sram_per_core =
            std::max(rep.peak_sram_per_core, r.peak_sram_per_core);
        rep.memory_exceeded |= r.memory_exceeded;
        rep.tokens += static_cast<int64_t>(running.size());

        // Every running request produced one token this iteration.
        for (auto it = running.begin(); it != running.end();) {
            if (--it->tokens_left == 0) {
                latencies[it->req] = now - arrivals[it->req];
                ++completed;
                it = running.erase(it);
            } else {
                ++it;
            }
        }
    }

    rep.makespan = now;
    rep.tokens_per_s = now > 0 ? static_cast<double>(rep.tokens) / now
                               : 0.0;
    rep.mean_queue_depth = depth_mean.value();
    rep.hbm_util = hbm_mean.value();
    rep.noc_util = noc_mean.value();
    rep.steady_decode_preload =
        steady_iterations > 0 ? steady_preload_sum / steady_iterations
                              : rep.first_decode_preload;
    if (n > 0) {
        rep.mean_latency = util::mean(latencies);
        rep.p50_latency = util::percentile(latencies, 50.0);
        rep.p95_latency = util::percentile(latencies, 95.0);
        rep.p99_latency = util::percentile(latencies, 99.0);
        rep.max_latency =
            *std::max_element(latencies.begin(), latencies.end());
    }
    rep.resident_bytes = state.resident_bytes();
    rep.preloads_skipped = state.resident_hits();
    return rep;
}

}  // namespace elk::runtime
