/**
 * @file
 * Reporting helpers shared by benches and examples: design-point
 * bundles, speedups, and the paper's derived metrics.
 */
#ifndef ELK_RUNTIME_METRICS_H
#define ELK_RUNTIME_METRICS_H

#include <string>
#include <vector>

#include "sim/trace.h"

namespace elk::runtime {

/// One (design, measured result) pair, e.g. "Elk-Full" on Llama2-13B.
struct DesignPoint {
    std::string design;
    sim::SimResult result;
};

/// Latency speedup of @p a over @p b (b.total / a.total).
double speedup(const sim::SimResult& a, const sim::SimResult& b);

/// Fraction of ideal performance achieved (ideal.total / x.total).
double fraction_of_ideal(const sim::SimResult& x,
                         const sim::SimResult& ideal);

/// Milliseconds with 3 significant decimals, as a string.
std::string ms(double seconds);

/// Percent with one decimal, as a string.
std::string pct(double fraction);

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_METRICS_H
