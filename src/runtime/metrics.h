/**
 * @file
 * Reporting helpers shared by benches and examples: design-point
 * bundles, the paper's derived ratios (speedup over a baseline,
 * fraction of the ideal design), and the two fixed-point formatters
 * every table column uses. Keeping the formatting here — rather than
 * ad-hoc printf strings per bench — is what lets the CI determinism
 * diffs compare bench stdout byte-for-byte across runs and `--jobs`
 * settings.
 */
#ifndef ELK_RUNTIME_METRICS_H
#define ELK_RUNTIME_METRICS_H

#include <string>
#include <vector>

#include "sim/trace.h"

namespace elk::runtime {

/// One (design, measured result) pair, e.g. "Elk-Full" on Llama2-13B.
/// The figure benches build a vector of these per sweep cell and
/// derive the comparison columns with speedup()/fraction_of_ideal().
struct DesignPoint {
    std::string design;      ///< design-mode label as printed (§6.1).
    sim::SimResult result;   ///< the simulated run it measured.
};

/// Latency speedup of @p a over @p b (b.total / a.total); > 1 means
/// @p a is faster. Returns 0 when @p a measured no time at all (an
/// empty run), never divides by zero.
double speedup(const sim::SimResult& a, const sim::SimResult& b);

/// Fraction of ideal performance achieved (ideal.total / x.total),
/// in (0, 1] when @p ideal really is the floor; 0 for an empty run.
double fraction_of_ideal(const sim::SimResult& x,
                         const sim::SimResult& ideal);

/// Seconds rendered as milliseconds with exactly three decimals
/// ("1.234"), no unit suffix — the latency/lateness formatter of the
/// elkc, example, and bench tables (incl. the SLO lateness columns).
std::string ms(double seconds);

/// Fraction rendered as a percentage with exactly one decimal and a
/// trailing '%' ("59.4%") — the utilization / token-share /
/// SLO-attainment formatter of the same tables.
std::string pct(double fraction);

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_METRICS_H
