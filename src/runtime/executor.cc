#include "runtime/executor.h"

#include <algorithm>

#include "cost/exec_cost.h"
#include "util/logging.h"

namespace elk::runtime {

sim::SimProgram
lower_to_sim(const graph::Graph& graph, const compiler::ExecutionPlan& plan,
             const plan::PlanContext& ctx)
{
    const hw::ChipConfig& cfg = *ctx.cfg;
    util::check(!plan.ops.empty(),
                "lower_to_sim: empty ExecutionPlan (did every "
                "scheduling pass get filtered out?)");
    util::check(static_cast<int>(plan.ops.size()) <= graph.size(),
                "lower_to_sim: plan schedules more operators than the "
                "graph has");
    sim::SimProgram program;
    program.ops.reserve(plan.ops.size());

    for (const auto& sched : plan.ops) {
        const graph::Operator& op = graph.op(sched.op_id);
        const plan::ExecPlan& exec = sched.exec;
        const plan::PreloadPlan& pre = sched.preload;
        const double cores = static_cast<double>(exec.cores_used());

        sim::SimOp sop;
        sop.op_id = op.id;
        sop.name = op.name;
        sop.flops = op.flops;

        // --- preload ---
        // Chunked streamed operands load only their resident fraction
        // at preload time; the rest streams from HBM during execution.
        sop.dram_bytes =
            static_cast<double>(op.hbm_bytes()) * pre.dram_fraction;
        sop.exec_stream_dram = static_cast<double>(op.hbm_bytes()) *
                               (1.0 - pre.dram_fraction);
        if (sop.dram_bytes > 0) {
            // Delivered bytes include broadcast replication; never
            // less than the unique volume actually moved on-chip.
            sop.delivery_bytes =
                std::max(pre.noc_delivery_bytes, sop.dram_bytes);
        }
        sop.preload_space = pre.preload_space;

        // --- distribution phase ---
        sop.distribute_bytes = pre.distribute_bytes * cores;
        sop.distribute_local_time =
            pre.distribute_bytes / cfg.sram_read_bw;

        // --- execution phase ---
        // Local time covers compute, the SRAM stall of serving peer
        // fetches, and the inter-chip reduction; the fetch/reduction
        // volumes themselves travel as a fabric flow so contention
        // with concurrent preload delivery emerges in the simulator.
        double serve_stall = exec.fetch_bytes / cfg.sram_read_bw;
        double inter_chip =
            cfg.num_chips > 1 && graph::uses_matmul_pipeline(op.kind)
                ? static_cast<double>(op.act_out_bytes) / cfg.inter_chip_bw
                : 0.0;
        sop.exec_local_time =
            exec.compute_time + serve_stall + inter_chip;
        sop.fetch_bytes = (exec.fetch_bytes + exec.reduce_bytes) * cores;
        sop.exec_space = exec.exec_space;

        program.ops.push_back(std::move(sop));
    }

    program.preload_order = plan.preload_order;
    program.issue_slot = plan.issue_slot;
    if (program.preload_order.empty()) {
        program.finalize_default_order();
    }
    program.validate();
    return program;
}

sim::SimResult
run_plan(const sim::Machine& machine, const graph::Graph& graph,
         const compiler::ExecutionPlan& plan, const plan::PlanContext& ctx)
{
    sim::Engine engine(machine);
    return engine.run(lower_to_sim(graph, plan, ctx));
}

}  // namespace elk::runtime
