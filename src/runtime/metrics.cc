#include "runtime/metrics.h"

#include <cstdio>

namespace elk::runtime {

double
speedup(const sim::SimResult& a, const sim::SimResult& b)
{
    return a.total_time > 0 ? b.total_time / a.total_time : 0.0;
}

double
fraction_of_ideal(const sim::SimResult& x, const sim::SimResult& ideal)
{
    return x.total_time > 0 ? ideal.total_time / x.total_time : 0.0;
}

std::string
ms(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
    return buf;
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

}  // namespace elk::runtime
