/**
 * @file
 * Lowers a compiled ExecutionPlan to a simulator program and runs it —
 * the equivalent of the paper's code generation + hardware execution
 * step (§4.5, §5), targeting our virtual ICCA device.
 */
#ifndef ELK_RUNTIME_EXECUTOR_H
#define ELK_RUNTIME_EXECUTOR_H

#include "elk/schedule_ir.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::runtime {

/**
 * Translates @p plan into the engine's program form: per-operator
 * preload volumes (DRAM-unique and fabric-delivered), distribution
 * and execution phases, and the preload issue order/slots.
 */
sim::SimProgram lower_to_sim(const graph::Graph& graph,
                             const compiler::ExecutionPlan& plan,
                             const plan::PlanContext& ctx);

/// Lowers and runs @p plan on @p machine.
sim::SimResult run_plan(const sim::Machine& machine,
                        const graph::Graph& graph,
                        const compiler::ExecutionPlan& plan,
                        const plan::PlanContext& ctx);

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_EXECUTOR_H
