/**
 * @file
 * Cluster-scale serving: N identical chip replicas behind a
 * deterministic request router, with cross-chip KV migration priced
 * over a modeled interconnect (hw::Interconnect).
 *
 * A Cluster partitions one arrival-ordered Request trace into N
 * per-replica sub-traces — the routing decision — and then serves each
 * sub-trace with the existing single-chip Server scheduler on its own
 * EngineState (all replicas share one sim::Machine description and the
 * same compiled program sources). Routing is a pure function of the
 * trace and the options, so the whole cluster serve is deterministic
 * and bit-identical at any compiler --jobs setting, and the anchor
 * rule holds by construction: a 1-replica round-robin cluster routes
 * every request to replica 0 unchanged, reproducing today's Server
 * bit-for-bit.
 *
 * Router policies:
 *  - round-robin: arrival order modulo the replica count.
 *  - least-loaded: join-shortest-queue on the router's load model.
 *    With router_token_time_s > 0 the router keeps a virtual
 *    free-at clock per replica (each assignment books its estimated
 *    service time) and picks the replica with the least backlog at
 *    the request's arrival; with the 0 default it picks the replica
 *    with the fewest cumulative assigned tokens. Both are front-end
 *    estimates — a real load balancer cannot see replica internals.
 *  - session-affinity: a request's shared-prefix id hashes to a home
 *    replica, so every carrier of one prefix lands on the chip whose
 *    cache holds it (requires prefix_sharing); untagged requests fall
 *    back to round-robin.
 *
 * KV migration (migrate_kv): when a prefix-tagged request is routed to
 * a replica that does not hold its prefix but another replica already
 * seeded it, the router tags the request with the shared segment's
 * token count and the hw::Interconnect transfer time from the holding
 * chip — the destination Server seeds its cache from the wire (a
 * prefix hit that stalls for the transfer) instead of re-prefilling
 * the prefix locally (today's per-replica miss semantics).
 *
 * Prefill tier (prefill_replicas = P > 0): replicas 0..P-1 become
 * dedicated prefill chips. Every prefill-phase request splits in two —
 * a prefill-only half (decode_tokens = 0) routed within the prefill
 * tier, and a decode-phase half routed within the decode tier whose
 * KV arrives as an interconnect migration from its prefill chip. The
 * headline disaggregated-cluster scenario: prompts ingest on one tier,
 * tokens decode on the other, KV flows over the wire. The split is a
 * fluid approximation: the decode half keeps the original arrival
 * time (its migration stall prices the transfer, but cross-tier
 * completion ordering is not enforced). With SLO serving
 * (ServerOptions::slo, docs/TENANCY.md) both halves bill the
 * request's tenant, but only the decode half keeps the deadline — a
 * request meets its SLO when its last token lands, so counting the
 * prefill half too would double-book one logical deadline.
 */
#ifndef ELK_RUNTIME_CLUSTER_H
#define ELK_RUNTIME_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "hw/interconnect.h"
#include "runtime/server.h"

namespace elk::runtime {

/// How the cluster router assigns requests to replicas.
enum class RouterPolicy {
    kRoundRobin,       ///< arrival order modulo replica count.
    kLeastLoaded,      ///< join-shortest-queue on the router's load model.
    kSessionAffinity,  ///< prefix id hashes to a home replica.
};

/// Human-readable name of a router policy.
std::string router_policy_name(RouterPolicy policy);

/// Cluster-level serving knobs.
struct ClusterOptions {
    /// Chip replica count (>= 1).
    int replicas = 1;
    RouterPolicy router = RouterPolicy::kRoundRobin;
    /// Per-replica Server knobs (every replica is identical).
    ServerOptions server;
    /// Chip-to-chip fabric; link_bw 0 resolves to the machine's
    /// ChipConfig::inter_chip_bw.
    hw::InterconnectConfig interconnect;
    /// Migrate shared prefix KV segments across chips instead of
    /// re-prefilling per replica (requires server.prefix_sharing).
    bool migrate_kv = false;
    /// First prefill_replicas replicas form a dedicated prefill tier
    /// feeding the remaining decode tier (0 = no tiering; requires
    /// server.kv_budget > 0 and replicas >= 2 when set — decode-tier
    /// KV arrives by migration, which lives in the modeled pool).
    int prefill_replicas = 0;
    /// Least-loaded's per-token service-time estimate (seconds). > 0
    /// enables the virtual free-at clock; 0 (default) falls back to
    /// cumulative assigned tokens.
    double router_token_time_s = 0.0;
};

/// Cluster roll-up plus the per-replica reports it aggregates.
struct ClusterReport {
    int replicas = 0;
    /// Requests the original trace contained.
    int requests = 0;
    /// Requests routed across all replicas: equals requests without a
    /// prefill tier; with tiering every prefill-phase request counts
    /// its prefill and decode halves separately.
    int routed = 0;
    /// Decode tokens produced cluster-wide (sum of replica tokens).
    int64_t tokens = 0;
    /// Clock when the last replica finished (replicas run in parallel
    /// wall-clock; each replica's serve is its own timeline).
    double makespan = 0.0;
    /// Cluster goodput: tokens / makespan.
    double tokens_per_s = 0.0;
    /// Mean request latency over all routed requests (count-weighted
    /// across replicas; a tier split's halves each contribute).
    double mean_latency = 0.0;
    double max_latency = 0.0;
    /// Mean TTFT over prefill-phase routed requests (count-weighted).
    double mean_ttft = 0.0;
    /// Per-replica load imbalance: (max - min) / mean of per-replica
    /// decode token counts; 0 for one replica or an idle cluster.
    double util_skew = 0.0;
    /// Payload bytes KV migrations carried over the interconnect.
    int64_t interconnect_bytes = 0;
    /// Cross-chip KV migrations consumed (sum of replica counters).
    int64_t kv_migrations = 0;
    int64_t kv_migrated_tokens = 0;
    double kv_migration_stall = 0.0;
    /// SLO roll-up (present when the replicas run ServerOptions::slo):
    /// deadline carriers and misses summed across replicas, the worst
    /// replica's p99 lateness (an SLO is only as good as the slowest
    /// chip), and the per-tenant shares re-aggregated cluster-wide
    /// (token_share over cluster work, attainment over cluster
    /// carriers). See docs/TENANCY.md.
    bool slo = false;
    int deadline_requests = 0;
    int deadline_misses = 0;
    /// (met deadlines) / (deadline carriers); 1 with no carriers.
    double slo_attainment = 0.0;
    double worst_p99_lateness = 0.0;
    int deadline_preemptions = 0;
    std::vector<ServingReport::TenantShare> tenant_shares;
    /// Requests routed to each replica.
    std::vector<int> routed_per_replica;
    /// The full single-chip report of every replica, in replica order.
    std::vector<ServingReport> replica_reports;

    /// Multi-line human summary: the roll-up, then one line per
    /// replica.
    std::string summary() const;

    /// Byte-exact serialization: the roll-up fields, then every
    /// replica's ServingReport::serialize_bits() in order — equal
    /// strings iff the cluster serves are bit-identical.
    std::string serialize_bits() const;
};

/**
 * The cluster serving loop: route, serve every replica, roll up.
 * Replica serves run sequentially (the simulation is deterministic
 * either way); each gets a fresh EngineState on the shared machine.
 */
class Cluster {
  public:
    /// Validates @p opts (replica count, policy/feature requirements,
    /// interconnect resolution); bad combinations are fatal here.
    /// @p machine must outlive the cluster.
    Cluster(const sim::Machine& machine, ClusterOptions opts);

    /**
     * Serves @p requests (sorted by arrival) to completion across the
     * replicas. @p prefill_programs / @p decode_programs are shared by
     * every replica — compiled programs are immutable, so one
     * ServingCompiler serves the whole cluster.
     */
    ClusterReport serve(
        const std::vector<Request>& requests,
        const Server::PrefillProgramSource& prefill_programs,
        const Server::ProgramSource& decode_programs) const;

    /**
     * The routing decision alone (exposed for tests): the replica
     * each request of @p requests is assigned to — with a prefill
     * tier, the replica of the half that produces the request's
     * tokens (the decode half for split prefill requests).
     */
    std::vector<int> route(const std::vector<Request>& requests) const;

    /// The finalized options (interconnect link_bw resolved).
    const ClusterOptions& options() const { return opts_; }

    /// The resolved chip-to-chip fabric.
    const hw::Interconnect& fabric() const { return fabric_; }

  private:
    /// Routes @p requests into @p sub (one sorted sub-trace per
    /// replica), tagging migrations and splitting tier requests;
    /// returns the primary replica per original request and fills
    /// @p prefill_counts with per-replica prefill-phase request
    /// counts (the mean-TTFT weights).
    std::vector<int> route_into(const std::vector<Request>& requests,
                                std::vector<std::vector<Request>>& sub,
                                std::vector<int>& prefill_counts) const;

    const sim::Machine& machine_;
    ClusterOptions opts_;
    hw::Interconnect fabric_;
};

}  // namespace elk::runtime

#endif  // ELK_RUNTIME_CLUSTER_H
