#include "runtime/cluster.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <sstream>
#include <utility>

#include "runtime/metrics.h"
#include "util/bits.h"
#include "util/logging.h"

namespace elk::runtime {

using util::append_bits;

std::string
router_policy_name(RouterPolicy policy)
{
    switch (policy) {
        case RouterPolicy::kRoundRobin:
            return "round-robin";
        case RouterPolicy::kLeastLoaded:
            return "least-loaded";
        case RouterPolicy::kSessionAffinity:
            return "session-affinity";
    }
    return "unknown";
}

namespace {

/// splitmix64 finalizer: spreads consecutive prefix ids across the
/// replica range platform-stably (a bare modulo would map ids
/// 0..N-1 to replicas 0..N-1 — no mixing at all).
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Validates the cluster knobs and resolves the interconnect link
/// bandwidth against the machine; returns the finalized options.
ClusterOptions
validated(ClusterOptions o, const sim::Machine& machine)
{
    util::check(o.replicas >= 1,
                "Cluster: replica count must be >= 1");
    util::check(o.router_token_time_s >= 0.0,
                "Cluster: router_token_time_s must be >= 0");
    if (o.router == RouterPolicy::kSessionAffinity) {
        util::check(o.server.prefix_sharing,
                    "Cluster: session-affinity routing keys on shared "
                    "prefix ids — it needs "
                    "ServerOptions::prefix_sharing");
    }
    if (o.migrate_kv) {
        util::check(o.server.kv_budget > 0,
                    "Cluster: KV migration needs KV modeling "
                    "(kv_budget > 0) — migrated segments live in the "
                    "modeled pool");
        util::check(o.server.prefix_sharing,
                    "Cluster: KV migration moves shared prefix "
                    "segments — it needs "
                    "ServerOptions::prefix_sharing");
    }
    util::check(o.prefill_replicas >= 0,
                "Cluster: prefill_replicas must be >= 0");
    if (o.prefill_replicas > 0) {
        util::check(o.replicas >= 2 &&
                        o.prefill_replicas < o.replicas,
                    "Cluster: a prefill tier needs at least one "
                    "decode replica left over (prefill_replicas < "
                    "replicas, replicas >= 2)");
        util::check(o.server.kv_budget > 0,
                    "Cluster: a prefill tier ships KV to the decode "
                    "tier over the interconnect — it needs KV "
                    "modeling (kv_budget > 0)");
    }
    if (o.interconnect.link_bw <= 0.0) {
        o.interconnect.link_bw = machine.config().inter_chip_bw;
    }
    // Fail fast on bad per-replica Server knobs, and keep the
    // finalized bucket ladders so every replica (and route_into's
    // prompt-length resolution) sees one canonical ServerOptions.
    Server probe(machine, o.server);
    o.server = probe.options();
    return o;
}

}  // namespace

Cluster::Cluster(const sim::Machine& machine, ClusterOptions opts)
    : machine_(machine),
      opts_(validated(std::move(opts), machine)),
      fabric_(opts_.interconnect, opts_.replicas)
{
}

std::vector<int>
Cluster::route_into(const std::vector<Request>& requests,
                    std::vector<std::vector<Request>>& sub,
                    std::vector<int>& prefill_counts) const
{
    const int n = opts_.replicas;
    const int p = opts_.prefill_replicas;

    // Tier bounds: with a prefill tier, prompts route in [0, p) and
    // decode work in [p, n); without one, both views alias the whole
    // cluster (one round-robin cursor, so plain round-robin stays
    // "arrival order modulo N" across a mixed-phase trace).
    struct Tier {
        int begin = 0;
        int size = 0;
        int rr = 0;  ///< round-robin cursor (also affinity fallback).
    };
    Tier whole{0, n, 0};
    Tier pre_only{0, p, 0};
    Tier dec_only{p, n - p, 0};
    Tier& pre_tier = p > 0 ? pre_only : whole;
    Tier& dec_tier = p > 0 ? dec_only : whole;

    std::vector<double> free_at(n, 0.0);
    std::vector<int64_t> work(n, 0);
    int max_pid = -1;
    for (const Request& r : requests) {
        max_pid = std::max(max_pid, r.prefix_id);
    }
    // Prefix placement the router tracks: the first replica a prefix
    // carrier was routed to is the prefix's home; has[] marks every
    // replica whose cache will hold the prefix (seeded locally or
    // imported by migration).
    std::vector<int> home(max_pid + 1, -1);
    std::vector<char> has(static_cast<size_t>(max_pid + 1) * n, 0);

    // One routing decision: the policy picks a replica of @p tier for
    // a request arriving at @p arrival carrying @p pid (-1 = none)
    // and an estimated @p est_tokens of service, then books the
    // estimate into the router's load model.
    auto pick = [&](Tier& tier, double arrival, int pid,
                    int64_t est_tokens) {
        int idx = tier.begin;
        switch (opts_.router) {
            case RouterPolicy::kRoundRobin:
                idx = tier.begin + tier.rr;
                tier.rr = (tier.rr + 1) % tier.size;
                break;
            case RouterPolicy::kLeastLoaded:
                if (opts_.router_token_time_s > 0.0) {
                    // Virtual free-at clock: backlog still booked at
                    // this arrival instant; ties go to the lowest
                    // replica id.
                    double best = std::numeric_limits<double>::max();
                    for (int i = tier.begin;
                         i < tier.begin + tier.size; ++i) {
                        const double backlog =
                            std::max(free_at[i] - arrival, 0.0);
                        if (backlog < best) {
                            best = backlog;
                            idx = i;
                        }
                    }
                } else {
                    // Fallback load model: fewest cumulative
                    // assigned tokens.
                    int64_t best = std::numeric_limits<int64_t>::max();
                    for (int i = tier.begin;
                         i < tier.begin + tier.size; ++i) {
                        if (work[i] < best) {
                            best = work[i];
                            idx = i;
                        }
                    }
                }
                break;
            case RouterPolicy::kSessionAffinity:
                if (pid >= 0) {
                    idx = tier.begin +
                          static_cast<int>(
                              mix64(static_cast<uint64_t>(pid)) %
                              static_cast<uint64_t>(tier.size));
                } else {
                    idx = tier.begin + tier.rr;
                    tier.rr = (tier.rr + 1) % tier.size;
                }
                break;
        }
        free_at[idx] = std::max(free_at[idx], arrival) +
                       opts_.router_token_time_s *
                           static_cast<double>(est_tokens);
        work[idx] += est_tokens;
        return idx;
    };

    // Prefix bookkeeping for a prefill-phase request landing on
    // replica @p d: the first carrier anywhere homes the prefix;
    // later carriers landing on a replica without it either re-seed
    // locally (today's semantics) or, with migrate_kv, import the
    // segment from the home chip as a priced interconnect transfer.
    auto tag_prefix = [&](Request& q, int d) {
        const int pid = q.prefix_id;
        if (pid < 0) {
            return;
        }
        char& held = has[static_cast<size_t>(d) * (max_pid + 1) + pid];
        if (home[pid] < 0) {
            home[pid] = d;
            held = 1;
            return;
        }
        if (held) {
            return;
        }
        held = 1;
        if (!opts_.migrate_kv) {
            return;
        }
        const uint64_t bytes = static_cast<uint64_t>(q.prefix_len) *
                               opts_.server.kv_bytes_per_token;
        q.kv_migrate_tokens = q.prefix_len;
        q.kv_migrate_stall =
            fabric_.transfer_seconds(home[pid], d, bytes);
    };

    std::vector<int> primary(requests.size(), 0);
    for (size_t k = 0; k < requests.size(); ++k) {
        const Request& r = requests[k];
        const int64_t len =
            r.prompt_len > 0 ? r.prompt_len : opts_.server.max_prompt_len;
        if (p > 0 && r.phase == Phase::kPrefill &&
            r.decode_tokens > 0) {
            // Tier split: the prompt ingests on a prefill chip, the
            // tokens decode on a decode chip, and the KV crosses the
            // wire between them.
            Request pre_half = r;
            pre_half.decode_tokens = 0;
            pre_half.kv_migrate_tokens = 0;
            pre_half.kv_migrate_stall = 0.0;
            // The deadline rides the decode half only: the request
            // meets its SLO when the last token lands, and counting
            // the prefill half too would double-book one logical
            // deadline. Both halves keep the tenant — prefill work is
            // real work against its fairness share.
            pre_half.deadline_s = 0.0;
            const int pi = pick(pre_tier, r.arrival, r.prefix_id, len);
            tag_prefix(pre_half, pi);
            sub[pi].push_back(pre_half);
            ++prefill_counts[pi];

            Request dec_half = r;
            dec_half.phase = Phase::kDecode;
            dec_half.prefix_id = -1;
            dec_half.prefix_len = 0;
            const int di = pick(dec_tier, r.arrival, -1,
                                r.decode_tokens);
            dec_half.kv_migrate_tokens = static_cast<int>(len);
            dec_half.kv_migrate_stall = fabric_.transfer_seconds(
                pi, di,
                static_cast<uint64_t>(len) *
                    opts_.server.kv_bytes_per_token);
            sub[di].push_back(dec_half);
            primary[k] = di;
            continue;
        }
        Request q = r;
        const bool prefill = r.phase == Phase::kPrefill;
        Tier& tier = prefill ? pre_tier : dec_tier;
        const int64_t est =
            (prefill ? len : 0) + r.decode_tokens;
        const int idx = pick(tier, r.arrival, r.prefix_id, est);
        if (prefill) {
            tag_prefix(q, idx);
            ++prefill_counts[idx];
        }
        sub[idx].push_back(q);
        primary[k] = idx;
    }
    return primary;
}

std::vector<int>
Cluster::route(const std::vector<Request>& requests) const
{
    std::vector<std::vector<Request>> sub(opts_.replicas);
    std::vector<int> prefill_counts(opts_.replicas, 0);
    return route_into(requests, sub, prefill_counts);
}

ClusterReport
Cluster::serve(const std::vector<Request>& requests,
               const Server::PrefillProgramSource& prefill_programs,
               const Server::ProgramSource& decode_programs) const
{
    const int n = opts_.replicas;
    std::vector<std::vector<Request>> sub(n);
    std::vector<int> prefill_counts(n, 0);
    route_into(requests, sub, prefill_counts);

    Server server(machine_, opts_.server);
    ClusterReport rep;
    rep.replicas = n;
    rep.requests = static_cast<int>(requests.size());
    rep.routed_per_replica.reserve(n);
    rep.replica_reports.reserve(n);
    for (int i = 0; i < n; ++i) {
        rep.routed_per_replica.push_back(
            static_cast<int>(sub[i].size()));
        rep.routed += static_cast<int>(sub[i].size());
        rep.replica_reports.push_back(
            server.serve(sub[i], prefill_programs, decode_programs));
    }

    double lat_wsum = 0.0;
    double ttft_wsum = 0.0;
    int ttft_n = 0;
    int64_t min_tokens = std::numeric_limits<int64_t>::max();
    int64_t max_tokens = 0;
    for (int i = 0; i < n; ++i) {
        const ServingReport& r = rep.replica_reports[i];
        rep.tokens += r.tokens;
        rep.makespan = std::max(rep.makespan, r.makespan);
        lat_wsum += r.mean_latency * r.requests;
        rep.max_latency = std::max(rep.max_latency, r.max_latency);
        ttft_wsum += r.mean_ttft * prefill_counts[i];
        ttft_n += prefill_counts[i];
        rep.kv_migrations += r.kv_migrations;
        rep.kv_migrated_tokens += r.kv_migrated_tokens;
        rep.kv_migration_stall += r.kv_migration_stall;
        min_tokens = std::min(min_tokens, r.tokens);
        max_tokens = std::max(max_tokens, r.tokens);
    }
    rep.tokens_per_s =
        rep.makespan > 0
            ? static_cast<double>(rep.tokens) / rep.makespan
            : 0.0;
    rep.mean_latency = rep.routed > 0 ? lat_wsum / rep.routed : 0.0;
    rep.mean_ttft = ttft_n > 0 ? ttft_wsum / ttft_n : 0.0;
    const double mean_tokens =
        static_cast<double>(rep.tokens) / static_cast<double>(n);
    rep.util_skew =
        mean_tokens > 0
            ? static_cast<double>(max_tokens - min_tokens) / mean_tokens
            : 0.0;
    rep.interconnect_bytes =
        rep.kv_migrated_tokens *
        static_cast<int64_t>(opts_.server.kv_bytes_per_token);
    if (opts_.server.slo) {
        rep.slo = true;
        rep.tenant_shares.resize(opts_.server.tenants);
        int64_t total_work = 0;
        for (int i = 0; i < n; ++i) {
            const ServingReport& r = rep.replica_reports[i];
            rep.deadline_requests += r.deadline_requests;
            rep.deadline_misses += r.deadline_misses;
            rep.worst_p99_lateness =
                std::max(rep.worst_p99_lateness, r.p99_lateness);
            rep.deadline_preemptions += r.deadline_preemptions;
            for (const ServingReport::TenantShare& s :
                 r.tenant_shares) {
                ServingReport::TenantShare& c =
                    rep.tenant_shares[s.tenant];
                c.tenant = s.tenant;
                c.requests += s.requests;
                c.tokens += s.tokens;
                c.deadline_requests += s.deadline_requests;
                c.deadline_misses += s.deadline_misses;
                total_work += s.tokens;
            }
        }
        for (ServingReport::TenantShare& c : rep.tenant_shares) {
            c.token_share =
                total_work > 0
                    ? static_cast<double>(c.tokens) /
                          static_cast<double>(total_work)
                    : 0.0;
            c.attainment =
                c.deadline_requests > 0
                    ? static_cast<double>(c.deadline_requests -
                                          c.deadline_misses) /
                          static_cast<double>(c.deadline_requests)
                    : 1.0;
        }
        rep.slo_attainment =
            rep.deadline_requests > 0
                ? static_cast<double>(rep.deadline_requests -
                                      rep.deadline_misses) /
                      static_cast<double>(rep.deadline_requests)
                : 1.0;
    }
    return rep;
}

std::string
ClusterReport::summary() const
{
    std::ostringstream out;
    out << "cluster: " << replicas << " replicas served " << requests
        << " requests (" << routed << " routed) / " << tokens
        << " tokens, makespan " << ms(makespan) << " ms\n"
        << "  goodput      : " << tokens_per_s
        << " tokens/s, token skew " << util_skew << "\n"
        << "  latency ms   : mean " << ms(mean_latency) << "  max "
        << ms(max_latency) << "  ttft mean " << ms(mean_ttft);
    if (kv_migrations > 0) {
        out << "\n  interconnect : " << kv_migrations
            << " KV migrations / " << kv_migrated_tokens << " tokens / "
            << interconnect_bytes / 1024 << " KB ("
            << ms(kv_migration_stall) << " ms stalled)";
    }
    if (slo) {
        out << "\n  slo          : "
            << (deadline_requests - deadline_misses) << "/"
            << deadline_requests << " deadlines met ("
            << pct(slo_attainment) << " attainment), worst p99 "
            << "lateness " << ms(worst_p99_lateness) << " ms, "
            << deadline_preemptions << " deadline preemptions";
        for (const ServingReport::TenantShare& t : tenant_shares) {
            out << "\n  tenant " << t.tenant << "     : " << t.requests
                << " requests, " << t.tokens << " tokens ("
                << pct(t.token_share) << " share), attainment "
                << pct(t.attainment) << " (" << t.deadline_misses
                << " missed)";
        }
    }
    for (size_t i = 0; i < replica_reports.size(); ++i) {
        const ServingReport& r = replica_reports[i];
        out << "\n  replica " << i << "    : "
            << routed_per_replica[i] << " requests, " << r.tokens
            << " tokens, makespan " << ms(r.makespan) << " ms, p95 "
            << ms(r.p95_latency) << " ms";
    }
    return out.str();
}

std::string
ClusterReport::serialize_bits() const
{
    std::string out;
    append_bits(out, replicas);
    append_bits(out, requests);
    append_bits(out, routed);
    append_bits(out, tokens);
    append_bits(out, makespan);
    append_bits(out, tokens_per_s);
    append_bits(out, mean_latency);
    append_bits(out, max_latency);
    append_bits(out, mean_ttft);
    append_bits(out, util_skew);
    append_bits(out, interconnect_bytes);
    append_bits(out, kv_migrations);
    append_bits(out, kv_migrated_tokens);
    append_bits(out, kv_migration_stall);
    append_bits(out, static_cast<int>(routed_per_replica.size()));
    for (int c : routed_per_replica) {
        append_bits(out, c);
    }
    for (const ServingReport& r : replica_reports) {
        out += r.serialize_bits();
    }
    // The SLO roll-up trails the replica reports, mirroring the
    // trailing-block convention of ServingReport::serialize_bits().
    append_bits(out, static_cast<uint8_t>(slo ? 1 : 0));
    append_bits(out, deadline_requests);
    append_bits(out, deadline_misses);
    append_bits(out, slo_attainment);
    append_bits(out, worst_p99_lateness);
    append_bits(out, deadline_preemptions);
    append_bits(out, static_cast<int>(tenant_shares.size()));
    for (const ServingReport::TenantShare& t : tenant_shares) {
        append_bits(out, t.tenant);
        append_bits(out, t.requests);
        append_bits(out, t.tokens);
        append_bits(out, t.token_share);
        append_bits(out, t.deadline_requests);
        append_bits(out, t.deadline_misses);
        append_bits(out, t.attainment);
    }
    return out;
}

}  // namespace elk::runtime
