#include "runtime/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace elk::runtime {

std::string
timing_csv(const graph::Graph& graph, const sim::SimResult& result)
{
    std::ostringstream out;
    out << "op_id,name,kind,pre_start,pre_end,exec_start,exec_end\n";
    for (const auto& t : result.timing) {
        const auto& op = graph.op(t.op_id);
        out << t.op_id << "," << op.name << ","
            << graph::op_kind_name(op.kind) << "," << t.pre_start << ","
            << t.pre_end << "," << t.exec_start << "," << t.exec_end
            << "\n";
    }
    return out.str();
}

void
export_timing(const graph::Graph& graph, const sim::SimResult& result,
              const std::string& path)
{
    std::ofstream file(path);
    if (!file) {
        util::fatal("cannot open for write: " + path);
    }
    file << timing_csv(graph, result);
}

std::string
timeline_summary(const graph::Graph& graph, const sim::SimResult& result,
                 int max_rows)
{
    std::ostringstream out;
    const double total = result.total_time;
    if (total <= 0 || result.timing.empty()) {
        return "(empty timeline)\n";
    }
    const int width = 48;
    int step = std::max<int>(
        1, static_cast<int>(result.timing.size()) / max_rows);
    for (size_t i = 0; i < result.timing.size();
         i += static_cast<size_t>(step)) {
        const auto& t = result.timing[i];
        std::string bar(width, '.');
        auto mark = [&](double a, double b, char c) {
            int x0 = static_cast<int>(a / total * (width - 1));
            int x1 = static_cast<int>(b / total * (width - 1));
            for (int x = std::max(0, x0);
                 x <= std::min(width - 1, x1); ++x) {
                bar[x] = bar[x] == '.' || bar[x] == c ? c : '#';
            }
        };
        mark(t.pre_start, t.pre_end, 'p');
        mark(t.exec_start, t.exec_end, 'X');
        char label[64];
        std::snprintf(label, sizeof(label), "%4d %-14.14s |", t.op_id,
                      graph.op(t.op_id).name.c_str());
        out << label << bar << "|\n";
    }
    out << "('p' preload, 'X' execute, '#' overlap of the two)\n";
    return out.str();
}

}  // namespace elk::runtime
