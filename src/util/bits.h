/**
 * @file
 * Bit-exact serialization and hashing primitives shared by the
 * determinism hooks (`ExecutionPlan`/`SimResult`/`ServingReport`
 * `serialize_bits()`) and the structural digests (plan-cache keys,
 * bench report digests). Keeping them single-sourced is what makes
 * "equal strings iff bit-identical" a property of one definition
 * instead of several copies that could drift.
 */
#ifndef ELK_UTIL_BITS_H
#define ELK_UTIL_BITS_H

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace elk::util {

/// Appends @p value's raw object bytes to @p out.
template <typename T>
void
append_bits(std::string& out, const T& value)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "append_bits requires a trivially copyable type");
    char buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof(T));
    out.append(buf, sizeof(T));
}

/// Incremental 64-bit FNV-1a hash.
class Fnv1a {
  public:
    void
    mix(const void* data, size_t len)
    {
        const unsigned char* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ull;
        }
    }

    template <typename T>
    void
    mix_value(const T& value)
    {
        static_assert(std::is_trivially_copyable<T>::value,
                      "mix_value requires a trivially copyable type");
        mix(&value, sizeof(T));
    }

    uint64_t value() const { return hash_; }

    /// 16-hex-digit form of the current hash.
    std::string hex() const;

  private:
    uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace elk::util

#endif  // ELK_UTIL_BITS_H
