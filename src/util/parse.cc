#include "util/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "util/logging.h"

namespace elk::util {

namespace {

[[noreturn]] void
reject(const char* what, const char* text, const std::string& why)
{
    std::ostringstream msg;
    msg << what << ": invalid value '" << (text ? text : "(null)")
        << "' (" << why << ")";
    fatal(msg.str());
}

}  // namespace

int
parse_int_arg(const char* text, const char* what, int min_value,
              int max_value)
{
    if (text == nullptr || *text == '\0') {
        reject(what, text, "empty");
    }
    errno = 0;
    char* end = nullptr;
    long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
        reject(what, text, "not an integer");
    }
    if (errno == ERANGE ||
        value < static_cast<long>(min_value) ||
        value > static_cast<long>(max_value)) {
        std::ostringstream why;
        why << "expected " << min_value << ".." << max_value;
        reject(what, text, why.str());
    }
    return static_cast<int>(value);
}

double
parse_double_arg(const char* text, const char* what, double min_value,
                 double max_value)
{
    if (text == nullptr || *text == '\0') {
        reject(what, text, "empty");
    }
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        reject(what, text, "not a number");
    }
    if (errno == ERANGE || !std::isfinite(value) || value < min_value ||
        value > max_value) {
        std::ostringstream why;
        why << "expected " << min_value << ".." << max_value;
        reject(what, text, why.str());
    }
    return value;
}

}  // namespace elk::util
