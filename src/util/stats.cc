#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace elk::util {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double x : xs) {
        sum += x;
    }
    return sum / static_cast<double>(xs.size());
}

double
stdev(const std::vector<double>& xs)
{
    if (xs.size() < 2) {
        return 0.0;
    }
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) {
        acc += (x - m) * (x - m);
    }
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    return percentile_sorted(xs, p);
}

double
percentile_sorted(const std::vector<double>& xs, double p)
{
    if (xs.empty()) {
        return 0.0;
    }
    double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
mape(const std::vector<double>& measured, const std::vector<double>& predicted)
{
    check(measured.size() == predicted.size(), "mape: size mismatch");
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0) {
            continue;
        }
        acc += std::fabs(predicted[i] - measured[i]) / std::fabs(measured[i]);
        ++n;
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

double
r_squared(const std::vector<double>& measured,
          const std::vector<double>& predicted)
{
    check(measured.size() == predicted.size(), "r_squared: size mismatch");
    if (measured.empty()) {
        return 0.0;
    }
    double m = mean(measured);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < measured.size(); ++i) {
        ss_res += (measured[i] - predicted[i]) * (measured[i] - predicted[i]);
        ss_tot += (measured[i] - m) * (measured[i] - m);
    }
    if (ss_tot == 0.0) {
        return ss_res == 0.0 ? 1.0 : 0.0;
    }
    return 1.0 - ss_res / ss_tot;
}

}  // namespace elk::util
