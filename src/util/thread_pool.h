/**
 * @file
 * A small work-stealing thread pool for the compiler's embarrassingly
 * parallel loops (plan enumeration, candidate-order scoring).
 *
 * Each worker owns a deque: it pops work from its own back and steals
 * from the fronts of its peers when empty. parallel_for() chunks an
 * index range into tasks, distributes them round-robin, and has the
 * calling thread participate until the batch drains, so a pool of J
 * threads plus the caller yields J+1 runners.
 *
 * Determinism contract: parallel_for(n, fn) invokes fn exactly once
 * for every index in [0, n); callers write results into per-index
 * slots, so any reduction over them is performed serially afterwards
 * and parallel execution is bit-identical to serial execution.
 */
#ifndef ELK_UTIL_THREAD_POOL_H
#define ELK_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace elk::util {

class ThreadPool {
  public:
    /// Spawns @p threads workers; 0 or 1 makes every parallel_for run
    /// inline on the caller (no threads are created).
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (0 = inline pool).
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Calls fn(i) exactly once for every i in [0, n), spread across
     * the workers and the calling thread; returns when all calls have
     * finished. The first exception thrown by any fn is rethrown on
     * the caller. Nested calls from inside a task run inline.
     */
    void parallel_for(int n, const std::function<void(int)>& fn);

    /**
     * Nullptr-tolerant dispatch: fn(0..n-1) on @p pool when one is
     * provided, inline on the caller otherwise. The single entry
     * point the compiler's parallel passes use, so serial and pooled
     * execution share one contract.
     */
    static void run(ThreadPool* pool, int n,
                    const std::function<void(int)>& fn);

    /// std::thread::hardware_concurrency with a floor of 1.
    static int hardware_jobs();

    /// Maps a --jobs style knob to a thread count: 0 = all hardware
    /// threads, otherwise the value itself (floored at 1).
    static int resolve_jobs(int jobs);

    /**
     * Strictly parses a --jobs style argument (dying via util::fatal
     * on garbage rather than silently defaulting — 0 means "all
     * hardware threads", so a typo must not fall through to it).
     * @p what names the flag/env var in the error message.
     */
    static int parse_jobs_arg(const char* text, const char* what);

  private:
    struct Batch {
        std::atomic<int> remaining{0};
        std::mutex error_mu;
        std::exception_ptr error;
    };
    /// One index-range chunk of a parallel_for batch.
    struct Task {
        const std::function<void(int)>* fn = nullptr;
        int begin = 0;
        int end = 0;
        Batch* batch = nullptr;
    };
    struct WorkerQueue {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void worker_loop(int id);
    /// Pops from queue @p home's back, else steals from a peer's
    /// front; returns false when every queue is empty.
    bool run_one(int home);
    void run_task(const Task& task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    /// Batch-completion signal. Pool-level (not per-Batch) so task
    /// finishers never touch a caller's stack Batch after its final
    /// counter decrement — the caller may destroy it immediately.
    std::mutex done_mu_;
    std::condition_variable done_cv_;
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
};

}  // namespace elk::util

#endif  // ELK_UTIL_THREAD_POOL_H
