#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace elk::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::add_row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::format_cell(double v)
{
    char buf[64];
    if (v == 0.0) {
        return "0";
    }
    double mag = std::fabs(v);
    if (mag >= 1e6 || mag < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3e", v);
    } else if (mag >= 100) {
        std::snprintf(buf, sizeof(buf), "%.1f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f", v);
    }
    return buf;
}

std::string
Table::format_cell(int v)
{
    return std::to_string(v);
}

std::string
Table::format_cell(long v)
{
    return std::to_string(v);
}

std::string
Table::format_cell(unsigned long v)
{
    return std::to_string(v);
}

std::string
Table::format_cell(unsigned long long v)
{
    return std::to_string(v);
}

std::string
Table::to_text() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c >= width.size()) {
                width.push_back(row[c].size());
            } else {
                width[c] = std::max(width[c], row[c].size());
            }
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < width.size(); ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            out << "  " << cell << std::string(width[c] - cell.size(), ' ');
        }
        out << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : width) {
        total += w + 2;
    }
    out << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
Table::to_csv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c) {
                out << ",";
            }
            out << row[c];
        }
        out << "\n";
    };
    emit_row(headers_);
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

void
Table::print(const std::string& title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), to_text().c_str());
    std::fflush(stdout);
}

void
Table::write_csv(const std::string& name) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories("bench_results", ec);
    if (ec) {
        log_warn() << "cannot create bench_results/: " << ec.message();
        return;
    }
    std::ofstream file("bench_results/" + name + ".csv");
    if (!file) {
        log_warn() << "cannot open bench_results/" << name << ".csv";
        return;
    }
    file << to_csv();
}

}  // namespace elk::util
