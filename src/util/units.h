/**
 * @file
 * Unit helpers for byte sizes, bandwidths and FLOP rates.
 *
 * Throughout the codebase: sizes are in bytes (uint64_t), times in
 * seconds (double), bandwidths in bytes/second (double) and compute
 * rates in FLOP/s (double).
 */
#ifndef ELK_UTIL_UNITS_H
#define ELK_UTIL_UNITS_H

#include <cstdint>

namespace elk::util {

/// Kibibytes to bytes.
constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
/// Mebibytes to bytes.
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
/// Gibibytes to bytes.
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

/// Decimal giga (used for bandwidths and FLOP rates, matching vendor specs).
constexpr double kGiga = 1e9;
/// Decimal tera.
constexpr double kTera = 1e12;

/// Gigabytes/second to bytes/second.
constexpr double gbps(double v) { return v * kGiga; }
/// Terabytes/second to bytes/second.
constexpr double tbps(double v) { return v * kTera; }
/// TFLOP/s to FLOP/s.
constexpr double tflops(double v) { return v * kTera; }

/// Seconds to milliseconds (for reporting).
constexpr double to_ms(double seconds) { return seconds * 1e3; }
/// Seconds to microseconds (for reporting).
constexpr double to_us(double seconds) { return seconds * 1e6; }

}  // namespace elk::util

#endif  // ELK_UTIL_UNITS_H
