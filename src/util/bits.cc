#include "util/bits.h"

#include <cstdio>

namespace elk::util {

std::string
Fnv1a::hex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
}

}  // namespace elk::util
