/**
 * @file
 * Strict command-line number parsing shared by the drivers (elkc, the
 * examples, the benches).
 *
 * std::atoi silently maps garbage to 0, which for knobs like --batch
 * turns a typo into an empty graph. These parsers follow the
 * ThreadPool::parse_jobs_arg contract instead: the whole token must be
 * a number within the stated range, anything else dies via
 * util::fatal with the flag's name in the message.
 */
#ifndef ELK_UTIL_PARSE_H
#define ELK_UTIL_PARSE_H

namespace elk::util {

/**
 * Parses @p text as a decimal integer in [@p min_value, @p max_value].
 * Rejects empty input, trailing junk, and out-of-range values via
 * util::fatal; @p what names the flag/argument in the error message.
 */
int parse_int_arg(const char* text, const char* what, int min_value,
                  int max_value);

/**
 * Parses @p text as a finite floating-point number in
 * [@p min_value, @p max_value]; same strictness as parse_int_arg.
 */
double parse_double_arg(const char* text, const char* what,
                        double min_value, double max_value);

}  // namespace elk::util

#endif  // ELK_UTIL_PARSE_H
