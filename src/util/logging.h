/**
 * @file
 * Minimal logging and fatal-error facilities.
 *
 * Follows the gem5 fatal()/panic() distinction: fatal() is for user
 * errors (bad configuration), panic() for internal invariant violations.
 */
#ifndef ELK_UTIL_LOGGING_H
#define ELK_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace elk::util {

/// Severity levels for log messages.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Returns the global minimum emitted level.
LogLevel log_level();

/// Emits a single log line to stderr if @p level passes the filter.
void log_message(LogLevel level, const std::string& msg);

/**
 * Terminates the process with an error message. Use for user errors
 * (bad configuration, invalid arguments); exits with code 1.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Terminates the process with an internal-error message. Use for
 * conditions that indicate a bug in Elk itself; calls abort().
 */
[[noreturn]] void panic(const std::string& msg);

namespace detail {

/// Stream-building helper so call sites can write `logf() << "x=" << x`.
class LogStream {
  public:
    LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { log_message(level_, stream_.str()); }
    template <typename T>
    LogStream& operator<<(const T& v)
    {
        stream_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

/// Returns a stream that logs at debug level on destruction.
inline detail::LogStream log_debug() { return {LogLevel::kDebug}; }
/// Returns a stream that logs at info level on destruction.
inline detail::LogStream log_info() { return {LogLevel::kInfo}; }
/// Returns a stream that logs at warn level on destruction.
inline detail::LogStream log_warn() { return {LogLevel::kWarn}; }
/// Returns a stream that logs at error level on destruction.
inline detail::LogStream log_error() { return {LogLevel::kError}; }

/// Asserts an Elk-internal invariant; panics with @p msg when violated.
inline void
check(bool cond, const std::string& msg)
{
    if (!cond) {
        panic(msg);
    }
}

}  // namespace elk::util

#endif  // ELK_UTIL_LOGGING_H
