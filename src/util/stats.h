/**
 * @file
 * Small statistics helpers used by the cost-model validation (Fig. 12)
 * and by benchmark reporting.
 */
#ifndef ELK_UTIL_STATS_H
#define ELK_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace elk::util {

/// Arithmetic mean; returns 0 for empty input.
double mean(const std::vector<double>& xs);

/// Population standard deviation; returns 0 for fewer than 2 samples.
double stdev(const std::vector<double>& xs);

/// p-th percentile (0..100) by linear interpolation on sorted copy.
double percentile(std::vector<double> xs, double p);

/**
 * percentile() without the copy-and-sort: @p xs must already be
 * ascending. Callers that read several percentiles off one sample set
 * sort the snapshot once and query this repeatedly — same
 * interpolation, bit-identical results.
 */
double percentile_sorted(const std::vector<double>& xs, double p);

/**
 * Mean absolute percentage error of predictions vs. measurements.
 * Entries with measured == 0 are skipped.
 */
double mape(const std::vector<double>& measured,
            const std::vector<double>& predicted);

/// Coefficient of determination (R^2) of predictions vs. measurements.
double r_squared(const std::vector<double>& measured,
                 const std::vector<double>& predicted);

/**
 * Online accumulator for a time-weighted utilization average, used for
 * HBM/NoC utilization reporting: add (duration, value) slices and read
 * the weighted mean.
 */
class WeightedMean {
  public:
    /// Adds a slice of @p duration seconds at @p value.
    void
    add(double duration, double value)
    {
        total_weight_ += duration;
        total_value_ += duration * value;
    }

    /// Weighted mean; 0 when nothing was added.
    double
    value() const
    {
        return total_weight_ > 0 ? total_value_ / total_weight_ : 0.0;
    }

    /// Total accumulated weight (seconds).
    double weight() const { return total_weight_; }

  private:
    double total_weight_ = 0.0;
    double total_value_ = 0.0;
};

}  // namespace elk::util

#endif  // ELK_UTIL_STATS_H
