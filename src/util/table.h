/**
 * @file
 * Text-table and CSV writers used by the benchmark harness to print the
 * rows/series that each paper table/figure reports.
 */
#ifndef ELK_UTIL_TABLE_H
#define ELK_UTIL_TABLE_H

#include <string>
#include <vector>

namespace elk::util {

/**
 * Accumulates rows of string cells and renders them as an aligned text
 * table (for stdout) and/or a CSV file (for plotting scripts).
 */
class Table {
  public:
    /// Creates a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Appends a row; missing cells render empty, extra cells are kept.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats each value with operator<< semantics.
    template <typename... Ts>
    void
    add(const Ts&... values)
    {
        add_row({format_cell(values)...});
    }

    /// Renders the aligned text table.
    std::string to_text() const;

    /// Renders RFC-4180-ish CSV (no embedded quotes supported).
    std::string to_csv() const;

    /// Prints the text table to stdout with a title line.
    void print(const std::string& title) const;

    /**
     * Writes the CSV form under `bench_results/<name>.csv` relative to
     * the current working directory, creating the directory if needed.
     */
    void write_csv(const std::string& name) const;

    /// Number of data rows.
    size_t num_rows() const { return rows_.size(); }

    /// Formats a double with adaptive precision; passthrough for strings.
    static std::string format_cell(const std::string& v) { return v; }
    static std::string format_cell(const char* v) { return v; }
    static std::string format_cell(double v);
    static std::string format_cell(int v);
    static std::string format_cell(long v);
    static std::string format_cell(unsigned long v);
    static std::string format_cell(unsigned long long v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace elk::util

#endif  // ELK_UTIL_TABLE_H
