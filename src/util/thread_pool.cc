#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.h"
#include "util/parse.h"

namespace elk::util {

namespace {

/// Set while a thread is executing pool tasks; nested parallel_for
/// calls from inside a task then run inline instead of re-entering
/// the queues (which could otherwise deadlock the batch).
thread_local bool t_in_pool_task = false;

}  // namespace

ThreadPool::ThreadPool(int threads)
{
    int n = std::max(0, threads <= 1 ? 0 : threads);
    queues_.reserve(n);
    for (int i = 0; i < n; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(n);
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    // Flip stop_ under the waiters' mutex: a worker between its
    // predicate check and blocking would otherwise miss the notify
    // forever and the join would hang.
    {
        std::lock_guard<std::mutex> lock(wake_mu_);
        stop_.store(true);
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void
ThreadPool::run(ThreadPool* pool, int n, const std::function<void(int)>& fn)
{
    if (pool != nullptr) {
        pool->parallel_for(n, fn);
        return;
    }
    for (int i = 0; i < n; ++i) {
        fn(i);
    }
}

int
ThreadPool::hardware_jobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
ThreadPool::resolve_jobs(int jobs)
{
    if (jobs == 0) {
        return hardware_jobs();
    }
    return std::max(1, jobs);
}

int
ThreadPool::parse_jobs_arg(const char* text, const char* what)
{
    return parse_int_arg(text, what, 0, 4096);
}

void
ThreadPool::run_task(const Task& task)
{
    bool was_in_task = t_in_pool_task;
    t_in_pool_task = true;
    try {
        for (int i = task.begin; i < task.end; ++i) {
            (*task.fn)(i);
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(task.batch->error_mu);
        if (!task.batch->error) {
            task.batch->error = std::current_exception();
        }
    }
    t_in_pool_task = was_in_task;
    int prev = task.batch->remaining.fetch_sub(1, std::memory_order_acq_rel);
    if (prev == 1) {
        // Last task of the batch: wake its waiting caller. Only pool
        // members are touched from here on — the Batch lives on the
        // caller's stack and may be destroyed once remaining hits 0.
        { std::lock_guard<std::mutex> lock(done_mu_); }
        done_cv_.notify_all();
    }
}

bool
ThreadPool::run_one(int home)
{
    const int n = static_cast<int>(queues_.size());
    for (int probe = 0; probe < n; ++probe) {
        int victim = (home + probe) % n;
        Task task;
        {
            std::lock_guard<std::mutex> lock(queues_[victim]->mu);
            auto& q = queues_[victim]->tasks;
            if (q.empty()) {
                continue;
            }
            if (probe == 0) {
                task = q.back();  // own queue: LIFO for locality
                q.pop_back();
            } else {
                task = q.front();  // steal the oldest from a peer
                q.pop_front();
            }
        }
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        run_task(task);
        return true;
    }
    return false;
}

void
ThreadPool::worker_loop(int id)
{
    while (true) {
        if (run_one(id)) {
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait(lock, [this] {
            return stop_.load() || pending_.load() > 0;
        });
        if (stop_.load() && pending_.load() == 0) {
            return;
        }
    }
}

void
ThreadPool::parallel_for(int n, const std::function<void(int)>& fn)
{
    if (n <= 0) {
        return;
    }
    if (workers_.empty() || n == 1 || t_in_pool_task) {
        for (int i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    // Chunk the range so each runner sees a few tasks to steal; small
    // chunks keep uneven per-index costs balanced.
    const int runners = static_cast<int>(workers_.size()) + 1;
    const int chunks = std::min(n, runners * 4);
    Batch batch;
    batch.remaining.store(chunks, std::memory_order_relaxed);
    {
        int next = 0;
        for (int c = 0; c < chunks; ++c) {
            Task task;
            task.fn = &fn;
            task.begin = next;
            task.end = next + (n - next) / (chunks - c);
            next = task.end;
            task.batch = &batch;
            auto& q = *queues_[c % queues_.size()];
            std::lock_guard<std::mutex> lock(q.mu);
            q.tasks.push_back(task);
        }
    }
    // Raise pending_ under the waiters' mutex so no worker can slip
    // between its predicate check and blocking and miss the wakeup.
    {
        std::lock_guard<std::mutex> lock(wake_mu_);
        pending_.fetch_add(chunks, std::memory_order_acq_rel);
    }
    wake_cv_.notify_all();

    // The caller works too: steal until every queue is empty, then
    // block until the in-flight tail finishes on the workers (instead
    // of spinning through the queue mutexes for the whole tail).
    while (batch.remaining.load(std::memory_order_acquire) > 0) {
        if (run_one(0)) {
            continue;
        }
        std::unique_lock<std::mutex> lock(done_mu_);
        done_cv_.wait(lock, [&] {
            return batch.remaining.load(std::memory_order_acquire) == 0;
        });
    }
    if (batch.error) {
        std::rethrow_exception(batch.error);
    }
}

}  // namespace elk::util
