/**
 * @file
 * Interconnect topology of one ICCA chip: node numbering, mesh
 * coordinates, dimension-order routing, and link enumeration.
 *
 * Nodes 0..C-1 are cores; nodes C..C+H-1 are HBM controllers attached
 * to the interconnect (paper §2.1: controllers send data to cores the
 * same way cores send data to each other).
 *
 * Links are directed capacity resources identified by dense ids:
 *  - every node owns one injection link (node -> fabric) and one
 *    ejection link (fabric -> node);
 *  - a 2D mesh additionally owns four directed neighbor links per
 *    grid hop.
 * A route is the ordered list of link ids a transfer occupies.
 */
#ifndef ELK_HW_TOPOLOGY_H
#define ELK_HW_TOPOLOGY_H

#include <utility>
#include <vector>

#include "hw/chip_config.h"

namespace elk::hw {

/// Directed link descriptor (for inspection and debugging).
struct LinkInfo {
    /// Source: node id (injection/ejection block) or row-major grid
    /// slot (mesh block; equals the core id for occupied slots,
    /// router-only for slots beyond the core count); -1 = fabric side.
    int src;
    /// Destination, same conventions; -1 = fabric side / off-grid.
    int dst;
    double bw;    ///< bandwidth in bytes/s.
};

/**
 * Per-chip interconnect topology with routing.
 *
 * All chips in a system are identical, so a single Topology instance
 * describes any chip.
 */
class Topology {
  public:
    /// Builds the topology for one chip of @p cfg.
    explicit Topology(const ChipConfig& cfg);

    /// Number of core nodes.
    int num_cores() const { return num_cores_; }

    /// Number of HBM controller nodes.
    int num_hbm_nodes() const { return num_hbm_; }

    /// Total nodes (cores + HBM controllers).
    int num_nodes() const { return num_cores_ + num_hbm_; }

    /// Node id of HBM controller @p i.
    int hbm_node(int i) const { return num_cores_ + i; }

    /// True if @p node is an HBM controller.
    bool is_hbm_node(int node) const { return node >= num_cores_; }

    /// Number of directed links.
    int num_links() const { return static_cast<int>(links_.size()); }

    /// Descriptor of link @p id.
    const LinkInfo& link(int id) const { return links_[id]; }

    /// Injection link id of @p node.
    int injection_link(int node) const;

    /// Ejection link id of @p node.
    int ejection_link(int node) const;

    /**
     * Grid coordinate of a node. Cores fill the grid row-major; each
     * HBM controller sits just outside the grid next to its attach
     * point. Only meaningful for mesh topologies.
     */
    std::pair<int, int> mesh_coord(int node) const;

    /// Grid node at (x, y); -1 when the slot holds no core.
    int node_at(int x, int y) const;

    /// Grid side (0 = left edge, 1 = right edge) an HBM controller's
    /// edge PHY occupies (mesh only). Controllers inject into the edge
    /// router of the destination row, modelling the edge-distributed
    /// memory PHYs of real mesh-based ICCA chips.
    int hbm_side(int i) const;

    /// Mesh edge node an HBM controller is nominally attached to
    /// (its coordinate anchor; delivery enters at the target row).
    int hbm_attach_node(int i) const;

    /// The controller whose edge PHY is closest to @p core (mesh);
    /// round-robin on all-to-all fabrics.
    int nearest_hbm(int core) const;

    /**
     * Hop count of the route between two nodes: 1 for all-to-all, the
     * Manhattan router distance for a mesh (minimum 1).
     */
    int hops(int src, int dst) const;

    /**
     * Dimension-order (X-then-Y) route from @p src to @p dst as an
     * ordered list of link ids, including the injection and ejection
     * links. All-to-all routes are {inj(src), ej(dst)}.
     */
    std::vector<int> route(int src, int dst) const;

    /// Topology kind this instance models.
    TopologyKind kind() const { return kind_; }

    /// Mesh width (1 for all-to-all).
    int width() const { return width_; }

    /// Mesh height (1 for all-to-all).
    int height() const { return height_; }

  private:
    /// Directed mesh link id from grid node (x1,y1) to adjacent (x2,y2).
    int mesh_link(int x1, int y1, int x2, int y2) const;

    TopologyKind kind_;
    int num_cores_;
    int num_hbm_;
    int width_ = 1;
    int height_ = 1;
    std::vector<LinkInfo> links_;
    /// First id of the per-node injection links block.
    int injection_base_ = 0;
    /// First id of the per-node ejection links block.
    int ejection_base_ = 0;
    /// First id of the mesh neighbor links block (mesh only).
    int mesh_base_ = 0;
    /// Attach node (core id) of each HBM controller.
    std::vector<int> hbm_attach_;
};

}  // namespace elk::hw

#endif  // ELK_HW_TOPOLOGY_H
