#include "hw/interconnect.h"

#include <algorithm>

#include "util/logging.h"

namespace elk::hw {

std::string
interconnect_name(InterconnectKind kind)
{
    switch (kind) {
        case InterconnectKind::kRing:
            return "ring";
        case InterconnectKind::kFullMesh:
            return "fullmesh";
    }
    return "unknown";
}

Interconnect::Interconnect(const InterconnectConfig& cfg, int nodes)
    : cfg_(cfg), nodes_(nodes)
{
    util::check(nodes_ >= 1,
                "Interconnect: cluster needs at least one chip");
    util::check(cfg_.link_bw > 0,
                "Interconnect: link bandwidth must be resolved "
                "(> 0 bytes/s) before construction");
    util::check(cfg_.hop_latency_s >= 0,
                "Interconnect: hop latency must be >= 0");
}

int
Interconnect::hops(int src, int dst) const
{
    util::check(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
                "Interconnect: chip id out of range");
    if (src == dst) {
        return 0;
    }
    switch (cfg_.kind) {
        case InterconnectKind::kFullMesh:
            return 1;
        case InterconnectKind::kRing: {
            const int d = std::abs(src - dst);
            return std::min(d, nodes_ - d);
        }
    }
    return 1;
}

double
Interconnect::transfer_seconds(int src, int dst, uint64_t bytes) const
{
    const int h = hops(src, dst);
    if (h == 0) {
        return 0.0;
    }
    return static_cast<double>(h) * cfg_.hop_latency_s +
           static_cast<double>(bytes) / cfg_.link_bw;
}

uint64_t
Interconnect::link_bytes(int src, int dst, uint64_t bytes) const
{
    return static_cast<uint64_t>(hops(src, dst)) * bytes;
}

}  // namespace elk::hw
