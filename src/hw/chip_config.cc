#include "hw/chip_config.h"

#include "util/logging.h"

namespace elk::hw {

std::string
topology_name(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::kAllToAll: return "all-to-all";
      case TopologyKind::kMesh2D: return "mesh";
    }
    return "?";
}

ChipConfig
ChipConfig::ipu_pod4()
{
    ChipConfig cfg;  // defaults are the POD4 numbers
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::tiny(int cores)
{
    ChipConfig cfg;
    cfg.cores_per_chip = cores;
    cfg.num_chips = 1;
    cfg.sram_per_core = 64ull * 1024;
    cfg.transfer_buffer_per_core = 4ull * 1024;
    cfg.core_matmul_flops = 1e9;
    cfg.core_vector_flops = 1e8;
    cfg.inter_core_link_bw = 1e9;
    cfg.hbm_total_bw = 8e9;
    cfg.hbm_channels_per_chip = 2;
    cfg.mesh_width = 4;
    cfg.mesh_height = (cores + 3) / 4;
    cfg.mesh_link_bw = 4e9;
    cfg.validate();
    return cfg;
}

void
ChipConfig::validate() const
{
    if (cores_per_chip <= 0 || num_chips <= 0) {
        util::fatal("ChipConfig: core/chip counts must be positive");
    }
    if (sram_per_core <= transfer_buffer_per_core) {
        util::fatal("ChipConfig: SRAM smaller than the transfer buffer");
    }
    if (core_matmul_flops <= 0 || core_vector_flops <= 0) {
        util::fatal("ChipConfig: FLOP rates must be positive");
    }
    if (inter_core_link_bw <= 0 || hbm_total_bw <= 0 ||
        inter_chip_bw <= 0) {
        util::fatal("ChipConfig: bandwidths must be positive");
    }
    if (topology == TopologyKind::kMesh2D &&
        static_cast<long>(mesh_width) * mesh_height < cores_per_chip) {
        util::fatal("ChipConfig: mesh grid smaller than core count");
    }
}

}  // namespace elk::hw
