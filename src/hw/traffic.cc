#include "hw/traffic.h"

#include <algorithm>

#include <vector>

#include "util/logging.h"

namespace elk::hw {

namespace {

/**
 * Accumulates per-link loads of a sampled traffic pattern and returns
 * the bottleneck time per unit of pattern volume.
 */
class LoadAccumulator {
  public:
    explicit LoadAccumulator(const Topology& topo)
        : topo_(topo), load_(topo.num_links(), 0.0)
    {
    }

    /// Adds @p bytes routed from @p src to @p dst.
    void
    add(int src, int dst, double bytes)
    {
        for (int link : topo_.route(src, dst)) {
            load_[link] += bytes;
        }
    }

    /// Max over links of load/bandwidth (seconds for the whole pattern).
    double
    bottleneck_time() const
    {
        double worst = 0.0;
        for (int l = 0; l < topo_.num_links(); ++l) {
            double t = load_[l] / topo_.link(l).bw;
            worst = std::max(worst, t);
        }
        return worst;
    }

  private:
    const Topology& topo_;
    std::vector<double> load_;
};

}  // namespace

TrafficModel::TrafficModel(const Topology& topo, const ChipConfig& cfg)
    : num_cores_(topo.num_cores()), latency_(cfg.link_latency_s)
{
    const int cores = topo.num_cores();
    util::check(cores > 0, "TrafficModel: no cores");

    // --- peer-exchange pattern: each core sends 1 byte, uniformly
    // spread over other cores. Deterministic strides keep endpoint
    // loads exact (every stride is a permutation of the cores) while
    // sampling diverse route lengths on meshes.
    {
        LoadAccumulator acc(topo);
        const long max_samples = 200000;
        long strides = std::min<long>(
            cores - 1, std::max<long>(1, max_samples / cores));
        double per_dest = 1.0 / static_cast<double>(strides);
        double total_hops = 0.0;
        long n_samples = 0;
        for (long j = 0; j < strides; ++j) {
            // Spread strides across [1, cores-1].
            long stride = 1 + j * (cores - 1) / strides;
            for (int s = 0; s < cores; ++s) {
                int d = static_cast<int>((s + stride) % cores);
                acc.add(s, d, per_dest);
                total_hops += topo.hops(s, d);
                ++n_samples;
            }
        }
        avg_hops_ = n_samples ? total_hops / n_samples : 1.0;
        double unit_time = acc.bottleneck_time();  // 1 byte per core
        util::check(unit_time > 0, "TrafficModel: zero peer unit time");
        peer_capacity_ = static_cast<double>(cores) / unit_time;
    }

    // --- HBM delivery pattern: each controller streams to its share of
    // the cores (cores assigned round-robin); 1 byte delivered per core.
    {
        LoadAccumulator acc(topo);
        for (int c = 0; c < cores; ++c) {
            acc.add(topo.hbm_node(topo.nearest_hbm(c)), c, 1.0);
        }
        double unit_time = acc.bottleneck_time();
        util::check(unit_time > 0, "TrafficModel: zero hbm unit time");
        hbm_capacity_ = static_cast<double>(cores) / unit_time;
    }
}

}  // namespace elk::hw
