/**
 * @file
 * Analytic traffic-pattern analysis over a Topology.
 *
 * The flow-level simulator and the compiler's cost model both need the
 * *effective* bandwidth a traffic pattern can sustain on a given
 * interconnect: on an all-to-all fabric only the endpoint links matter,
 * while on a mesh the bisection and the links around the HBM attach
 * points become bottlenecks. TrafficModel computes, once per topology,
 * the per-unit bottleneck load of the two canonical patterns Elk
 * generates:
 *
 *  - peer exchange: every core exchanges data with peer cores
 *    (compute-shift rotation, data distribution, reduction);
 *  - HBM delivery: HBM controllers stream preload data to all cores.
 *
 * Loads are computed by routing the pattern over the actual links
 * (dimension-order routing on meshes) and taking the most-loaded link.
 */
#ifndef ELK_HW_TRAFFIC_H
#define ELK_HW_TRAFFIC_H

#include "hw/chip_config.h"
#include "hw/topology.h"

namespace elk::hw {

/**
 * Precomputed bottleneck factors of the canonical traffic patterns on
 * one chip. All capacities are chip-aggregate bytes/s.
 */
class TrafficModel {
  public:
    /// Analyzes @p topo (built from @p cfg). O(pairs * hops) once.
    TrafficModel(const Topology& topo, const ChipConfig& cfg);

    /**
     * Aggregate bytes/s all cores together can sustain when every core
     * exchanges data uniformly with peers.
     */
    double peer_exchange_capacity() const { return peer_capacity_; }

    /**
     * Aggregate bytes/s the HBM controllers can deliver into cores'
     * SRAM (counting replicated broadcast bytes, which each occupy the
     * controller injection links separately, paper §2.1).
     */
    double hbm_delivery_capacity() const { return hbm_capacity_; }

    /// Time for every core to exchange @p bytes_per_core with peers.
    double
    peer_exchange_time(double bytes_per_core) const
    {
        return bytes_per_core * num_cores_ / peer_capacity_ + latency_;
    }

    /// Time to deliver @p total_bytes from HBM controllers to cores.
    double
    hbm_delivery_time(double total_bytes) const
    {
        return total_bytes / hbm_capacity_ + latency_;
    }

    /// Mean route hop count of uniform core-to-core traffic.
    double avg_hops() const { return avg_hops_; }

    /// One-way link latency of the underlying fabric.
    double link_latency() const { return latency_; }

  private:
    int num_cores_;
    double peer_capacity_ = 0.0;
    double hbm_capacity_ = 0.0;
    double avg_hops_ = 1.0;
    double latency_ = 0.0;
};

}  // namespace elk::hw

#endif  // ELK_HW_TRAFFIC_H
