#include "hw/topology.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace elk::hw {

Topology::Topology(const ChipConfig& cfg)
    : kind_(cfg.topology),
      num_cores_(cfg.cores_per_chip),
      num_hbm_(cfg.hbm_channels_per_chip)
{
    if (kind_ == TopologyKind::kMesh2D) {
        width_ = cfg.mesh_width;
        height_ = cfg.mesh_height;
    }

    // Injection + ejection links for every node (cores then HBM).
    injection_base_ = 0;
    ejection_base_ = num_nodes();
    links_.reserve(2 * num_nodes());
    for (int n = 0; n < num_nodes(); ++n) {
        double bw = cfg.inter_core_link_bw;
        if (is_hbm_node(n)) {
            // An HBM controller can inject at its channel's bandwidth.
            bw = cfg.hbm_bw_per_chip() / cfg.hbm_channels_per_chip;
        }
        links_.push_back({n, -1, bw});
    }
    for (int n = 0; n < num_nodes(); ++n) {
        links_.push_back({-1, n, cfg.inter_core_link_bw});
    }

    if (kind_ == TopologyKind::kMesh2D) {
        // Four directed links per grid position, id computed by
        // mesh_link(); out-of-grid edges still get slots for
        // simplicity (they are never routed over). Endpoints are grid
        // slot indices (row-major), which equal core node ids for
        // occupied slots; slots beyond the core count are router-only
        // (a ragged grid's routers exist without cores).
        mesh_base_ = static_cast<int>(links_.size());
        auto slot_at = [&](int x, int y) {
            return x < 0 || x >= width_ || y < 0 || y >= height_
                       ? -1
                       : y * width_ + x;
        };
        for (int y = 0; y < height_; ++y) {
            for (int x = 0; x < width_; ++x) {
                // order: +x, -x, +y, -y
                links_.push_back({slot_at(x, y), slot_at(x + 1, y),
                                  cfg.mesh_link_bw});
                links_.push_back({slot_at(x, y), slot_at(x - 1, y),
                                  cfg.mesh_link_bw});
                links_.push_back({slot_at(x, y), slot_at(x, y + 1),
                                  cfg.mesh_link_bw});
                links_.push_back({slot_at(x, y), slot_at(x, y - 1),
                                  cfg.mesh_link_bw});
            }
        }
        // Attach HBM controllers evenly along the left/right edges,
        // alternating sides (paper §5: controllers on mesh edges).
        hbm_attach_.resize(num_hbm_);
        for (int i = 0; i < num_hbm_; ++i) {
            int side = i % 2;  // 0 = left column, 1 = right column
            int rows = (num_hbm_ + 1) / 2;
            int slot = i / 2;
            int y = height_ * (2 * slot + 1) / (2 * std::max(rows, 1));
            if (y >= height_) {
                y = height_ - 1;
            }
            int x = side == 0 ? 0 : width_ - 1;
            int attach = node_at(x, y);
            // The grid corner may be an empty slot when the grid is
            // larger than the core count; fall back to scanning.
            while (attach < 0 && y > 0) {
                --y;
                attach = node_at(x, y);
            }
            util::check(attach >= 0, "mesh HBM attach not found");
            hbm_attach_[i] = attach;
        }
    }
}

int
Topology::injection_link(int node) const
{
    return injection_base_ + node;
}

int
Topology::ejection_link(int node) const
{
    return ejection_base_ + node;
}

std::pair<int, int>
Topology::mesh_coord(int node) const
{
    if (is_hbm_node(node)) {
        node = hbm_attach_[node - num_cores_];
    }
    return {node % width_, node / width_};
}

int
Topology::node_at(int x, int y) const
{
    if (x < 0 || x >= width_ || y < 0 || y >= height_) {
        return -1;
    }
    int node = y * width_ + x;
    return node < num_cores_ ? node : -1;
}

int
Topology::hbm_attach_node(int i) const
{
    util::check(kind_ == TopologyKind::kMesh2D,
                "hbm_attach_node on non-mesh topology");
    return hbm_attach_[i];
}

int
Topology::hbm_side(int i) const
{
    util::check(kind_ == TopologyKind::kMesh2D,
                "hbm_side on non-mesh topology");
    return i % 2;
}

int
Topology::nearest_hbm(int core) const
{
    if (kind_ == TopologyKind::kAllToAll) {
        return core % num_hbm_;
    }
    auto [x, y] = mesh_coord(core);
    int side = x < width_ / 2 ? 0 : 1;
    // Controllers alternate sides; pick the band of this row among
    // the controllers on our side.
    int per_side = (num_hbm_ + 1 - side) / 2;
    if (per_side == 0) {
        side = 1 - side;
        per_side = (num_hbm_ + 1 - side) / 2;
    }
    int band = std::min(per_side - 1, y * per_side / height_);
    return side + 2 * band;
}

int
Topology::hops(int src, int dst) const
{
    if (kind_ == TopologyKind::kAllToAll) {
        return 1;
    }
    auto [x1, y1] = mesh_coord(src);
    auto [x2, y2] = mesh_coord(dst);
    if (is_hbm_node(src)) {
        x1 = hbm_side(src - num_cores_) == 0 ? 0 : width_ - 1;
        y1 = y2;
    }
    int d = std::abs(x1 - x2) + std::abs(y1 - y2);
    return d > 0 ? d : 1;
}

int
Topology::mesh_link(int x1, int y1, int x2, int y2) const
{
    int dir;
    if (x2 == x1 + 1 && y2 == y1) {
        dir = 0;
    } else if (x2 == x1 - 1 && y2 == y1) {
        dir = 1;
    } else if (x2 == x1 && y2 == y1 + 1) {
        dir = 2;
    } else if (x2 == x1 && y2 == y1 - 1) {
        dir = 3;
    } else {
        util::panic("mesh_link: nodes not adjacent");
    }
    return mesh_base_ + 4 * (y1 * width_ + x1) + dir;
}

std::vector<int>
Topology::route(int src, int dst) const
{
    std::vector<int> path;
    path.push_back(injection_link(src));
    if (kind_ == TopologyKind::kMesh2D) {
        auto [x, y] = mesh_coord(src);
        auto [dx, dy] = mesh_coord(dst);
        if (is_hbm_node(src)) {
            // Edge-distributed PHY: the controller enters the grid at
            // its edge column in the destination's row.
            x = hbm_side(src - num_cores_) == 0 ? 0 : width_ - 1;
            y = dy;
        }
        // Dimension-order routing: walk X first, then Y (paper §5).
        while (x != dx) {
            int nx = x + (dx > x ? 1 : -1);
            path.push_back(mesh_link(x, y, nx, y));
            x = nx;
        }
        while (y != dy) {
            int ny = y + (dy > y ? 1 : -1);
            path.push_back(mesh_link(x, y, x, ny));
            y = ny;
        }
    }
    path.push_back(ejection_link(dst));
    return path;
}

}  // namespace elk::hw
