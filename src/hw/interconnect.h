/**
 * @file
 * Chip-to-chip interconnect cost model for cluster-scale serving.
 *
 * Where hw::Topology models the fabric *inside* one ICCA chip (cores,
 * HBM controllers, per-link capacities), this models the fabric
 * *between* chips of a serving cluster: N replica nodes connected as a
 * ring or a full mesh, with a per-hop latency and a per-link byte
 * bandwidth. The runtime cluster router uses it to price KV-segment
 * migration — a transfer from the chip that holds a request's KV state
 * to the chip the request was routed to stalls the destination chip's
 * clock for transfer_seconds(), the cross-chip analogue of the
 * HBM-refetch stall kv_prepare charges on one chip.
 *
 * The model is deliberately fluid (no per-message queueing): a
 * transfer of B bytes over h hops costs h * hop_latency_s + B /
 * link_bw seconds, the same store-and-forward-free cut-through
 * approximation the paper's NoC model applies on chip. Like every
 * other cost model in the simulator it is deterministic: equal inputs
 * give bit-equal seconds.
 */
#ifndef ELK_HW_INTERCONNECT_H
#define ELK_HW_INTERCONNECT_H

#include <cstdint>
#include <string>

namespace elk::hw {

/// Inter-chip topology kinds the cluster layer can model.
enum class InterconnectKind {
    kRing,      ///< bidirectional ring; hops = min cyclic distance.
    kFullMesh,  ///< every chip reaches every chip in one hop.
};

/// Human-readable name of an interconnect kind.
std::string interconnect_name(InterconnectKind kind);

/// Knobs of the chip-to-chip fabric. Validated by the Interconnect
/// constructor: a negative bandwidth or latency is a worded fatal.
struct InterconnectConfig {
    /// Wiring between the chips (`elkc serve --interconnect`).
    InterconnectKind kind = InterconnectKind::kRing;
    /// Per-link bandwidth in bytes/s. 0 (default) resolves to the
    /// chip's ChipConfig::inter_chip_bw (IPU-POD4 §5: 640 GB/s).
    double link_bw = 0.0;
    /// One-way latency a transfer pays per hop (serdes + switch).
    double hop_latency_s = 1.0e-6;
};

/**
 * The resolved interconnect of an @p nodes-chip cluster. Immutable;
 * link_bw must be resolved (> 0) by the time this is constructed —
 * runtime::Cluster substitutes the machine's inter_chip_bw for the
 * 0 default before building it.
 */
class Interconnect {
  public:
    /// Validates @p cfg and builds the fabric; user error is fatal.
    Interconnect(const InterconnectConfig& cfg, int nodes);

    /// Chip count.
    int nodes() const { return nodes_; }

    /// The validated configuration.
    const InterconnectConfig& config() const { return cfg_; }

    /**
     * Hop count of the route from chip @p src to chip @p dst: 0 for
     * src == dst (a local "transfer" is free), 1 on a full mesh, the
     * minimum cyclic distance on a ring.
     */
    int hops(int src, int dst) const;

    /**
     * Seconds a @p bytes transfer from @p src to @p dst occupies the
     * wire: hops * hop_latency_s + bytes / link_bw. 0 when src == dst.
     */
    double transfer_seconds(int src, int dst, uint64_t bytes) const;

    /**
     * Link-level traffic the transfer induces: @p bytes crosses every
     * hop of the route, so hops * bytes bytes of aggregate link
     * occupancy (the cluster report's interconnect-pressure view).
     */
    uint64_t link_bytes(int src, int dst, uint64_t bytes) const;

  private:
    InterconnectConfig cfg_;
    int nodes_;
};

}  // namespace elk::hw

#endif  // ELK_HW_INTERCONNECT_H
