/**
 * @file
 * Hardware description of an inter-core connected AI (ICCA) chip system:
 * cores with local scratchpad SRAM, an inter-core interconnect
 * (all-to-all or 2D mesh) that also carries HBM-controller-to-core
 * traffic, and off-chip HBM channels (paper Fig. 1).
 */
#ifndef ELK_HW_CHIP_CONFIG_H
#define ELK_HW_CHIP_CONFIG_H

#include <cstdint>
#include <string>

namespace elk::hw {

/// Inter-core interconnect topology kinds supported by Elk (paper §5).
enum class TopologyKind {
    kAllToAll,  ///< IPU-style: every core reaches every core directly.
    kMesh2D,    ///< Tenstorrent/SambaNova-style 2D mesh with DOR routing.
};

/// Human-readable name of a topology kind.
std::string topology_name(TopologyKind kind);

/**
 * Configuration of one ICCA chip plus its off-chip memory system.
 *
 * Defaults follow the Graphcore IPU MK2 / IPU-POD4 numbers the paper
 * uses for both its emulator and its simulator (§2.1, §6.1): 1472 cores
 * per chip, 624 KB SRAM per core, 5.5 GB/s per-core inter-core
 * bandwidth, 4 chips, 16 TB/s aggregate HBM bandwidth (4 HBM3E-class
 * channels per chip).
 */
struct ChipConfig {
    // --- compute ---
    int cores_per_chip = 1472;
    int num_chips = 4;
    /// Peak MatMul FLOP/s per core (AMP pipeline). The paper's 4-chip
    /// emulator offers 1000 TFLOPS for MatMul (§6.3).
    double core_matmul_flops = 1000e12 / (4.0 * 1472.0);
    /// Peak FLOP/s per core for non-MatMul (vector) operations; the
    /// paper's emulator offers 31.2 TFLOPS across 4 chips.
    double core_vector_flops = 31.2e12 / (4.0 * 1472.0);
    /// Fixed per-tile launch overhead (instruction fetch, loop setup).
    double tile_launch_overhead_s = 1.0e-6;

    // --- on-chip memory ---
    uint64_t sram_per_core = 624ull * 1024;
    /// Reserved per-core buffer for inter-core transfer staging (§5).
    uint64_t transfer_buffer_per_core = 8ull * 1024;
    /// Local SRAM read bandwidth feeding the compute pipeline
    /// (128 bit/cycle at 1.33 GHz on IPU, §2.3).
    double sram_read_bw = 16.0 * 1.33e9;

    // --- interconnect ---
    TopologyKind topology = TopologyKind::kAllToAll;
    /// Per-core injection/ejection bandwidth (5.5 GB/s on IPU MK2).
    double inter_core_link_bw = 5.5e9;
    /// One-way link latency.
    double link_latency_s = 150e-9;
    /// Mesh grid dimensions (used when topology == kMesh2D). The
    /// product must be >= cores_per_chip; extra nodes stay idle.
    int mesh_width = 46;
    int mesh_height = 32;
    /// Per-direction mesh link bandwidth. Sized so the edge links can
    /// carry the per-chip HBM bandwidth into the grid (real mesh ICCA
    /// chips use few wide links instead of many narrow ones).
    double mesh_link_bw = 48e9;

    // --- off-chip memory ---
    /// Total HBM bandwidth across all chips (16 TB/s default, §6.1).
    double hbm_total_bw = 16e12;
    int hbm_channels_per_chip = 4;
    /// First-access latency of an HBM read burst.
    double hbm_access_latency_s = 350e-9;

    // --- multi-chip ---
    /// Aggregate inter-chip bandwidth (640 GB/s on IPU-POD4, §5).
    double inter_chip_bw = 640e9;

    /// Returns the canonical IPU-POD4-with-HBM configuration (§6.1).
    static ChipConfig ipu_pod4();

    /// Returns a small configuration convenient for unit tests.
    static ChipConfig tiny(int cores = 16);

    /// Total cores across all chips.
    int total_cores() const { return cores_per_chip * num_chips; }

    /// SRAM usable by the compiler per core (total minus staging buffer).
    uint64_t
    usable_sram_per_core() const
    {
        return sram_per_core - transfer_buffer_per_core;
    }

    /// Usable SRAM summed over all cores of all chips.
    uint64_t
    total_usable_sram() const
    {
        return usable_sram_per_core() *
               static_cast<uint64_t>(total_cores());
    }

    /// Aggregate inter-core bandwidth per chip (all cores injecting).
    double
    noc_aggregate_bw() const
    {
        return inter_core_link_bw * cores_per_chip;
    }

    /// HBM bandwidth available to a single chip.
    double hbm_bw_per_chip() const { return hbm_total_bw / num_chips; }

    /// Peak MatMul FLOP/s summed over every core of every chip.
    double
    peak_matmul_flops() const
    {
        return core_matmul_flops * total_cores();
    }

    /// Peak vector FLOP/s summed over every core of every chip.
    double
    peak_vector_flops() const
    {
        return core_vector_flops * total_cores();
    }

    /// Validates internal consistency; calls util::fatal on user error.
    void validate() const;
};

}  // namespace elk::hw

#endif  // ELK_HW_CHIP_CONFIG_H
