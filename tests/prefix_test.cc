/**
 * @file
 * Prefix-cache KV sharing tests: the engine's refcounted shared
 * prefix segments (share/release lifecycle, eviction priced as a
 * refetch for every sharer, copy-on-extend), the conversational trace
 * generator (bursty arrivals, multi-turn sessions, Zipf prefix
 * populations — seeded and platform-stable), the serving-level
 * prefix cache (hits, saved prefill tokens, TTFT win), the
 * sharing-disabled bit-identity anchor across all five design modes,
 * and death tests for prefix misuse at both layers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// serialize_bits() without the trailing prefix block (u8 flag +
/// 4 x 8-byte counters), the empty SLO block behind it (both reports
/// compared here have slo off, so that tail is fixed-size too), and
/// the chunk/locality block behind that (both have chunking off):
/// what the sharing-disabled anchor compares.
std::string
bits_before_prefix_block(const runtime::ServingReport& rep)
{
    std::string bits = rep.serialize_bits();
    EXPECT_FALSE(rep.slo);
    EXPECT_EQ(rep.prefill_chunk, 0);
    constexpr size_t kChunkBlock = 4 + 3 * 8 + 1 + 8;
    constexpr size_t kSloBlock = 1 + 3 * 4 + 3 * 8 + 4 + 8 + 4;
    constexpr size_t kPrefixBlock = 1 + 4 * 8;
    constexpr size_t kTail = kPrefixBlock + kSloBlock + kChunkBlock;
    EXPECT_GE(bits.size(), kTail);
    return bits.substr(0, bits.size() - kTail);
}

// ---------------------------------------------------------------------------
// Engine-level: the refcounted shared-segment lifecycle

TEST(SharedPrefixTest, ShareReleaseTracksSharedBytes)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);

    ASSERT_TRUE(state.kv_alloc(1, 4096));
    EXPECT_EQ(state.kv_share_count(1), 0);
    EXPECT_EQ(state.kv_shared_bytes(), 0u);

    state.kv_share(1);
    EXPECT_EQ(state.kv_share_count(1), 1);
    EXPECT_EQ(state.kv_shared_bytes(), 4096u);
    state.kv_share(1);
    EXPECT_EQ(state.kv_share_count(1), 2);
    EXPECT_EQ(state.kv_shared_bytes(), 4096u);  // counted once

    state.kv_release(1);
    EXPECT_EQ(state.kv_share_count(1), 1);
    EXPECT_EQ(state.kv_shared_bytes(), 4096u);
    state.kv_release(1);
    EXPECT_EQ(state.kv_share_count(1), 0);
    EXPECT_EQ(state.kv_shared_bytes(), 0u);
    EXPECT_EQ(state.kv_shared_bytes_peak(), 4096u);  // high-water sticks

    state.kv_free(1);  // unshared again: free is legal
    EXPECT_EQ(state.kv_bytes(), 0u);
}

TEST(SharedPrefixTest, SharingForbidsFreeAndGrowButNotEviction)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);

    ASSERT_TRUE(state.kv_alloc(1, 4096));
    state.kv_share(1);
    EXPECT_DEATH(state.kv_free(1), "shared segment");
    EXPECT_DEATH(state.kv_grow(1, 1024), "copy-on-extend");

    // Eviction of an unpinned shared prefix is allowed: the segment
    // stays owned and shared, sharers pay a refetch to stream it
    // back. Its bytes leave the shared-resident accounting while
    // spilled and return on fetch.
    state.kv_evict(1);
    EXPECT_FALSE(state.kv_resident(1));
    EXPECT_EQ(state.kv_share_count(1), 1);
    EXPECT_EQ(state.kv_shared_bytes(), 0u);
    EXPECT_EQ(state.kv_evictions(), 1);

    EXPECT_TRUE(state.kv_fetch(1));
    EXPECT_TRUE(state.kv_resident(1));
    EXPECT_EQ(state.kv_shared_bytes(), 4096u);

    // Pinned shared prefixes are immovable.
    state.kv_pin(1);
    EXPECT_DEATH(state.kv_evict(1), "pinned segment");
    state.kv_unpin(1);
    state.kv_release(1);
    state.kv_free(1);
}

TEST(SharedPrefixTest, BudgetPressureSpillsSharedPrefixUnlessPinned)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState::Options opts;
    opts.kv_budget = 8192;  // two 4 KB segments
    sim::EngineState state(machine, opts);

    ASSERT_TRUE(state.kv_alloc(1, 4096));  // the shared prefix
    state.kv_share(1);
    ASSERT_TRUE(state.kv_alloc(2, 4096));
    // Admitting a third spills the oldest — shares do not protect a
    // segment from the budget, only pins do.
    ASSERT_TRUE(state.kv_alloc(3, 4096));
    EXPECT_FALSE(state.kv_resident(1));
    EXPECT_EQ(state.kv_share_count(1), 1);

    // Pinned, the shared prefix survives the same pressure.
    ASSERT_TRUE(state.kv_fetch(1));  // spills 2 or 3
    state.kv_pin(1);
    ASSERT_TRUE(state.kv_alloc(4, 4096));
    EXPECT_TRUE(state.kv_resident(1));
    state.kv_unpin(1);
    state.kv_release(1);
}

TEST(SharedPrefixTest, FrequencyPolicyPrefersEvictingUnshared)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState::Options opts;
    opts.kv_budget = 8192;
    opts.policy = sim::ResidencyPolicy::kFrequencyAware;
    sim::EngineState state(machine, opts);

    // Same size, same reuse: the sharer count is the tiebreaker, so
    // the unshared segment is the cheaper victim even though the
    // shared one is older.
    ASSERT_TRUE(state.kv_alloc(1, 4096));
    state.kv_share(1);
    ASSERT_TRUE(state.kv_alloc(2, 4096));
    ASSERT_TRUE(state.kv_alloc(3, 4096));
    EXPECT_TRUE(state.kv_resident(1));
    EXPECT_FALSE(state.kv_resident(2));
    state.kv_release(1);
}

TEST(SharedPrefixDeathTest, MisuseDies)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);
    EXPECT_DEATH(state.kv_share(7), "unowned segment");
    EXPECT_DEATH(state.kv_release(7), "unowned segment");
    EXPECT_DEATH(state.kv_evict(7), "unowned segment");

    ASSERT_TRUE(state.kv_alloc(1, 1024));
    EXPECT_DEATH(state.kv_release(1), "unshared segment");
    state.kv_evict(1);
    EXPECT_DEATH(state.kv_evict(1), "non-resident segment");
}

// ---------------------------------------------------------------------------
// Trace generation: bursty arrivals and conversational sessions

TEST(BurstyTraceTest, SeededSortedAndNearNominalRate)
{
    auto a = runtime::ArrivalTrace::bursty(2000, 1000.0, 4.0, 11);
    auto b = runtime::ArrivalTrace::bursty(2000, 1000.0, 4.0, 11);
    ASSERT_EQ(a.size(), 2000u);
    EXPECT_EQ(a, b);  // bit-identical per seed
    for (size_t i = 1; i < a.size(); ++i) {
        EXPECT_LE(a[i - 1], a[i]);
    }
    // The two-state MMPP keeps the long-run mean rate at the nominal
    // rate; 2000 arrivals at 1000/s should span ~2 s.
    EXPECT_NEAR(a.back(), 2.0, 0.5);

    auto c = runtime::ArrivalTrace::bursty(2000, 1000.0, 4.0, 12);
    EXPECT_NE(a, c);  // the seed matters
    // factor 1 degenerates to a plain Poisson process of that rate.
    EXPECT_EQ(runtime::ArrivalTrace::bursty(64, 500.0, 1.0, 5),
              runtime::ArrivalTrace::poisson(64, 500.0, 5));
}

TEST(SessionTraceTest, DeterministicWellFormedAndZipfSkewed)
{
    runtime::SessionTraceOptions opts;
    opts.sessions = 60;
    opts.rate_per_s = 300.0;
    opts.burst_factor = 2.0;
    opts.mean_turns = 3.0;
    opts.think_time_s = 0.01;
    opts.decode_tokens = 2;
    opts.max_prompt_len = 128;
    opts.prompt_mean_len = 16.0;
    opts.prefix_population = 6;
    opts.prefix_zipf_s = 1.0;
    opts.prefix_mean_len = 32.0;

    auto a = runtime::make_session_trace(opts, 21);
    auto b = runtime::make_session_trace(opts, 21);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GE(static_cast<int>(a.size()), opts.sessions);

    std::map<int, int> canonical;  // prefix id -> prefix_len
    std::map<int, int> popularity;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].prefix_id, b[i].prefix_id);
        EXPECT_EQ(a[i].prefix_len, b[i].prefix_len);
        EXPECT_EQ(a[i].phase, runtime::Phase::kPrefill);
        EXPECT_EQ(a[i].decode_tokens, 2);
        if (i > 0) {
            EXPECT_LE(a[i - 1].arrival, a[i].arrival);
        }
        ASSERT_GE(a[i].prefix_id, 0);  // every turn has a session prefix
        EXPECT_LT(a[i].prefix_id, opts.prefix_population);
        EXPECT_GE(a[i].prefix_len, 1);
        EXPECT_LT(a[i].prefix_len, a[i].prompt_len);
        EXPECT_LE(a[i].prompt_len, opts.max_prompt_len);
        // One canonical length per prefix id, every carrier agrees.
        auto it = canonical.find(a[i].prefix_id);
        if (it == canonical.end()) {
            canonical[a[i].prefix_id] = a[i].prefix_len;
        } else {
            EXPECT_EQ(it->second, a[i].prefix_len);
        }
        ++popularity[a[i].prefix_id];
    }
    // Zipf(1.0): the head prefix dominates the tail.
    EXPECT_GT(popularity[0], popularity[opts.prefix_population - 1]);

    auto c = runtime::make_session_trace(opts, 22);
    ASSERT_FALSE(c.empty());
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].arrival != c[i].arrival ||
                  a[i].prompt_len != c[i].prompt_len;
    }
    EXPECT_TRUE(differs);  // the seed matters
}

TEST(SessionTraceTest, DomainSeparatedStreamsAreIndependent)
{
    runtime::SessionTraceOptions opts;
    opts.sessions = 40;
    opts.rate_per_s = 300.0;
    opts.mean_turns = 2.0;
    opts.decode_tokens = 1;
    opts.max_prompt_len = 128;
    opts.prompt_mean_len = 16.0;
    opts.prefix_population = 4;
    opts.prefix_zipf_s = 1.0;
    opts.prefix_mean_len = 32.0;
    auto a = runtime::make_session_trace(opts, 33);

    // Changing only the arrival process (burstiness) must not perturb
    // the prompt/prefix draws: the multiset of (prefix id, prefix
    // len, prompt len) tuples is unchanged, only arrival times move.
    runtime::SessionTraceOptions bursty = opts;
    bursty.burst_factor = 3.0;
    auto b = runtime::make_session_trace(bursty, 33);
    ASSERT_EQ(a.size(), b.size());
    auto shape = [](const std::vector<runtime::Request>& t) {
        std::vector<std::tuple<int, int, int>> s;
        for (const auto& r : t) {
            s.emplace_back(r.prefix_id, r.prefix_len, r.prompt_len);
        }
        std::sort(s.begin(), s.end());
        return s;
    };
    EXPECT_EQ(shape(a), shape(b));
}

// ---------------------------------------------------------------------------
// The serving fixture

class PrefixServingTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// Machine-total KV bytes per token for the tiny test model.
    uint64_t
    token_bytes() const
    {
        return graph::kv_bytes_per_token(testing::tiny_llm());
    }

    /// ServerOptions with KV modeling on and room for a few
    /// full-length segments per core.
    runtime::ServerOptions
    kv_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        sopts.kv_bytes_per_token = token_bytes();
        sopts.kv_budget = 4 * kSeq * token_bytes() / 64;
        return sopts;
    }

    /// A trace of @p n prompts all carrying prefix id 0.
    std::vector<runtime::Request>
    shared_prefix_trace(int n, int prefix_len, int prompt_len,
                        int decode_tokens) const
    {
        std::vector<runtime::Request> trace;
        for (int i = 0; i < n; ++i) {
            runtime::Request r;
            r.arrival = i * 1e-4;
            r.phase = runtime::Phase::kPrefill;
            r.decode_tokens = decode_tokens;
            r.prompt_len = prompt_len;
            r.prefix_id = 0;
            r.prefix_len = prefix_len;
            trace.push_back(r);
        }
        return trace;
    }

    compiler::PlanCache cache_;
};

// The acceptance anchor: prefix sharing disabled (the default) runs
// none of the new code. With sharing forced ON over a trace with no
// prefix tags, every byte of the serialization before the trailing
// prefix block matches the sharing-OFF serve of the same trace, and
// the prefix counters are zero — across all five design modes.
TEST_F(PrefixServingTest, DisabledSharingIsBitIdenticalAcrossModes)
{
    auto mixed = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(10, 2500.0, 7), 3,
        /*prefill_frac=*/0.7, /*high_frac=*/0.0, 7);
    runtime::tag_prompt_lengths(mixed, kSeq, 32.0, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);
        auto serve = [&](bool sharing) {
            runtime::ServerOptions sopts = kv_options();
            sopts.prefix_sharing = sharing;
            runtime::Server s(dc.machine(), sopts);
            return s.serve(
                mixed,
                [&](int b, int len) { return pc.program(b, len); },
                [&](int b) { return dc.program(b); });
        };
        auto off = serve(false);
        auto on = serve(true);
        EXPECT_EQ(bits_before_prefix_block(off),
                  bits_before_prefix_block(on))
            << compiler::mode_name(mode);
        EXPECT_FALSE(off.prefix_sharing);
        EXPECT_TRUE(on.prefix_sharing);
        for (const auto& rep : {off, on}) {
            EXPECT_EQ(rep.prefix_hits, 0);
            EXPECT_EQ(rep.prefix_hit_tokens, 0);
            EXPECT_EQ(rep.prefill_tokens_saved, 0);
            EXPECT_EQ(rep.shared_kv_bytes, 0u);
        }
    }
}

// The cache win: every prompt after the seeding carrier hits, prefill
// runs at the residual length (saved token slots), TTFT improves vs
// the identical trace with the tags stripped, and the shared segment
// shows up in the peak accounting.
TEST_F(PrefixServingTest, HitsSkipCoveredPrefillTokens)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto tagged = shared_prefix_trace(8, /*prefix_len=*/96,
                                      /*prompt_len=*/112,
                                      /*decode_tokens=*/2);
    auto untagged = tagged;
    for (auto& r : untagged) {
        r.prefix_id = -1;
        r.prefix_len = 0;
    }
    auto serve = [&](const std::vector<runtime::Request>& trace,
                     bool sharing) {
        runtime::ServerOptions sopts = kv_options();
        sopts.prefix_sharing = sharing;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto on = serve(tagged, true);
    auto off = serve(untagged, false);

    EXPECT_EQ(on.requests, 8);
    EXPECT_EQ(on.prefix_hits, 7);  // the first carrier seeds
    EXPECT_EQ(on.prefix_hit_tokens, 7 * 96);
    EXPECT_GT(on.prefill_tokens_saved, 0);
    EXPECT_GT(on.shared_kv_bytes, 0u);
    EXPECT_EQ(off.prefix_hits, 0);
    EXPECT_LT(on.mean_ttft, off.mean_ttft);
    EXPECT_LE(on.prompt_tokens, off.prompt_tokens);

    // Deterministic: a second sharing serve is bit-identical.
    EXPECT_EQ(on.serialize_bits(),
              serve(tagged, true).serialize_bits());
}

// Copy-on-extend at the serving level: decode tokens grow each
// request's private tail while the shared prefix segment stays at its
// canonical size, even across eviction/refetch of the prefix under a
// tight budget. The run must complete with the prefix still shared
// correctly (hits for every later carrier).
TEST_F(PrefixServingTest, DecodeGrowsPrivateTailsNotThePrefix)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkDyn);
    auto trace = shared_prefix_trace(6, /*prefix_len=*/64,
                                     /*prompt_len=*/80,
                                     /*decode_tokens=*/8);
    runtime::ServerOptions sopts = kv_options();
    // Tight: the prefix plus a tail or two — growth and refetch churn
    // under pressure.
    sopts.kv_budget = 2 * kSeq * token_bytes() / 64;
    sopts.prefix_sharing = true;
    runtime::Server server(dc.machine(), sopts);
    auto serve_once = [&] {
        return server.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto rep = serve_once();
    EXPECT_EQ(rep.requests, 6);
    EXPECT_EQ(rep.tokens, 6 * 8);
    EXPECT_EQ(rep.prefix_hits, 5);
    EXPECT_GT(rep.shared_kv_bytes, 0u);
    EXPECT_EQ(rep.serialize_bits(), serve_once().serialize_bits());
}

// A full conversational trace end to end: sessions, turns, Zipf
// prefixes, bursty arrivals — served with sharing on, deterministic,
// with hits well above the distinct-prefix floor.
TEST_F(PrefixServingTest, SessionTraceServesDeterministically)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    runtime::SessionTraceOptions topts;
    topts.sessions = 10;
    topts.rate_per_s = 400.0;
    topts.burst_factor = 2.0;
    topts.mean_turns = 3.0;
    topts.think_time_s = 0.005;
    topts.decode_tokens = 2;
    topts.max_prompt_len = kSeq;
    topts.prompt_mean_len = 16.0;
    topts.prefix_population = 3;
    topts.prefix_zipf_s = 1.0;
    topts.prefix_mean_len = 32.0;
    auto trace = runtime::make_session_trace(topts, 29);
    ASSERT_GE(static_cast<int>(trace.size()), topts.sessions);

    runtime::ServerOptions sopts = kv_options();
    sopts.prefix_sharing = true;
    runtime::Server server(dc.machine(), sopts);
    auto serve_once = [&] {
        return server.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto rep = serve_once();
    EXPECT_EQ(rep.requests, static_cast<int>(trace.size()));
    // At most one miss per distinct prefix; everything else hits.
    EXPECT_GE(rep.prefix_hits, static_cast<int64_t>(trace.size()) -
                                   topts.prefix_population);
    EXPECT_GT(rep.prefill_tokens_saved, 0);
    EXPECT_EQ(rep.serialize_bits(), serve_once().serialize_bits());
}

TEST_F(PrefixServingTest, ServerRejectsPrefixMisuse)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kBasic);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kBasic);

    // Sharing without KV modeling: the shared segments would have
    // nowhere to live.
    runtime::ServerOptions no_kv;
    no_kv.max_batch = 4;
    no_kv.max_prompt_len = kSeq;
    no_kv.prefix_sharing = true;
    EXPECT_DEATH(runtime::Server(dc.machine(), no_kv),
                 "needs KV modeling");

    // A prefix-tagged request served without sharing enabled.
    auto tagged = shared_prefix_trace(2, 32, 64, 1);
    runtime::ServerOptions off = kv_options();
    runtime::Server plain(dc.machine(), off);
    EXPECT_DEATH(
        plain.serve(
            tagged, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); }),
        "prefix-tagged requests need");

    // prefix_len out of range: at least one residual token must
    // reach prefill.
    auto bad = shared_prefix_trace(1, /*prefix_len=*/64,
                                   /*prompt_len=*/64, 1);
    runtime::ServerOptions on = kv_options();
    on.prefix_sharing = true;
    runtime::Server sharing(dc.machine(), on);
    EXPECT_DEATH(
        sharing.serve(
            bad, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); }),
        "prefix_len must be in");
}

}  // namespace
}  // namespace elk
