/**
 * @file
 * Unit tests for the EGF graph serialization frontend and the trace
 * export helpers.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "frontend/graph_io.h"
#include "graph/model_builder.h"
#include "runtime/trace_export.h"
#include "test_helpers.h"

namespace elk::frontend {
namespace {

TEST(GraphIoTest, RoundTripPreservesEverything)
{
    graph::Graph original =
        graph::build_decode_graph(testing::tiny_llm_gqa(), 4, 256);
    graph::Graph copy = from_egf(to_egf(original));

    ASSERT_EQ(copy.size(), original.size());
    EXPECT_EQ(copy.name(), original.name());
    EXPECT_EQ(copy.num_layers(), original.num_layers());
    for (int i = 0; i < original.size(); ++i) {
        const auto& a = original.op(i);
        const auto& b = copy.op(i);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.layer, b.layer);
        EXPECT_EQ(a.batch, b.batch);
        EXPECT_EQ(a.m, b.m);
        EXPECT_EQ(a.n, b.n);
        EXPECT_EQ(a.k, b.k);
        EXPECT_EQ(a.w_share_rows, b.w_share_rows);
        EXPECT_EQ(a.param_bytes, b.param_bytes);
        EXPECT_EQ(a.stream_bytes, b.stream_bytes);
        EXPECT_EQ(a.act_in_bytes, b.act_in_bytes);
        EXPECT_EQ(a.act_out_bytes, b.act_out_bytes);
        EXPECT_DOUBLE_EQ(a.flops, b.flops);
    }
}

TEST(GraphIoTest, FileRoundTrip)
{
    graph::Graph original =
        graph::build_decode_graph(testing::tiny_llm(), 2, 128);
    std::string path =
        (std::filesystem::temp_directory_path() / "elk_io_test.egf")
            .string();
    save_graph(original, path);
    graph::Graph copy = load_graph(path);
    EXPECT_EQ(copy.size(), original.size());
    EXPECT_EQ(copy.total_hbm_bytes(), original.total_hbm_bytes());
    std::remove(path.c_str());
}

TEST(GraphIoDeathTest, RejectsBadMagic)
{
    EXPECT_DEATH(from_egf("not-a-graph foo"), "bad magic");
}

TEST(GraphIoDeathTest, RejectsUnknownKind)
{
    EXPECT_DEATH(
        from_egf("elk-graph-v1 m\nop x Conv2D 0 1 1 1 1 2 0 0 0 0 0\n"),
        "unknown kind");
}

TEST(GraphIoDeathTest, RejectsTruncatedOp)
{
    EXPECT_DEATH(from_egf("elk-graph-v1 m\nop x MatMul 0 1\n"),
                 "truncated");
}

TEST(TraceExportTest, TimingCsvHasAllOps)
{
    auto h = testing::CompilerHarness::tiny();
    sim::SimResult result;
    result.total_time = 1.0;
    for (int i = 0; i < 3; ++i) {
        sim::OpTiming t;
        t.op_id = i;
        t.pre_start = i * 0.1;
        t.pre_end = i * 0.1 + 0.05;
        t.exec_start = i * 0.3;
        t.exec_end = i * 0.3 + 0.2;
        result.timing.push_back(t);
    }
    std::string csv = runtime::timing_csv(h.graph, result);
    // Header + 3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_NE(csv.find("attn_norm"), std::string::npos);
}

TEST(TraceExportTest, TimelineSummaryRenders)
{
    auto h = testing::CompilerHarness::tiny();
    sim::SimResult result;
    result.total_time = 1.0;
    sim::OpTiming t;
    t.op_id = 0;
    t.pre_start = 0.0;
    t.pre_end = 0.4;
    t.exec_start = 0.3;
    t.exec_end = 1.0;
    result.timing.push_back(t);
    std::string text = runtime::timeline_summary(h.graph, result);
    EXPECT_NE(text.find('p'), std::string::npos);
    EXPECT_NE(text.find('X'), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);  // overlap region
}

TEST(TraceExportTest, EmptyTimeline)
{
    auto h = testing::CompilerHarness::tiny();
    sim::SimResult result;
    EXPECT_EQ(runtime::timeline_summary(h.graph, result),
              "(empty timeline)\n");
}

}  // namespace
}  // namespace elk::frontend
