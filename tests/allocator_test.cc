/**
 * @file
 * Unit tests for the §4.3 cost-aware memory allocator.
 */
#include <gtest/gtest.h>

#include "elk/memory_allocator.h"
#include "test_helpers.h"

namespace elk::compiler {
namespace {

class AllocatorTest : public ::testing::Test {
  protected:
    AllocatorTest() : h_(testing::CompilerHarness::tiny()) {}

    /// Finds a matmul op id (they have real plan fronts).
    int
    find_matmul() const
    {
        for (const auto& op : h_.graph.ops()) {
            if (op.kind == graph::OpKind::kMatMul) {
                return op.id;
            }
        }
        return 0;
    }

    /// A few matmul op ids for live sets.
    std::vector<int>
    find_matmuls(int count) const
    {
        std::vector<int> ids;
        for (const auto& op : h_.graph.ops()) {
            if (op.kind == graph::OpKind::kMatMul &&
                static_cast<int>(ids.size()) < count) {
                ids.push_back(op.id);
            }
        }
        return ids;
    }

    testing::CompilerHarness h_;
};

TEST_F(AllocatorTest, EmptyLiveSetPicksFastestPlan)
{
    MemoryAllocator alloc(*h_.library);
    int op = find_matmul();
    auto choice =
        alloc.allocate(op, {}, {}, {}, h_.ctx.sram_budget());
    ASSERT_TRUE(choice.feasible);
    EXPECT_EQ(choice.exec_idx, 0);
    EXPECT_DOUBLE_EQ(choice.exec_time,
                     h_.library->exec_plans(op)[0].exec_time);
}

TEST_F(AllocatorTest, ResultAlwaysFitsBudget)
{
    MemoryAllocator alloc(*h_.library);
    auto live = find_matmuls(4);
    int cur = live.back();
    live.pop_back();
    std::vector<int> exec_idx(live.size(), 0);
    std::vector<int> floor(live.size(), 0);
    for (uint64_t budget :
         {h_.ctx.sram_budget(), h_.ctx.sram_budget() / 2,
          h_.ctx.sram_budget() / 4}) {
        auto choice = alloc.allocate(cur, live, exec_idx, floor, budget);
        if (choice.feasible) {
            EXPECT_LE(choice.used_space, budget);
        }
    }
}

TEST_F(AllocatorTest, SmallerBudgetNeverFaster)
{
    MemoryAllocator alloc(*h_.library);
    auto live = find_matmuls(3);
    int cur = live.back();
    live.pop_back();
    std::vector<int> exec_idx(live.size(), 0);
    std::vector<int> floor(live.size(), 0);
    auto big =
        alloc.allocate(cur, live, exec_idx, floor, h_.ctx.sram_budget());
    auto small = alloc.allocate(cur, live, exec_idx, floor,
                                h_.ctx.sram_budget() / 3);
    if (big.feasible && small.feasible) {
        EXPECT_LE(big.exec_time + big.total_distribute_time,
                  small.exec_time + small.total_distribute_time + 1e-12);
    }
}

TEST_F(AllocatorTest, InfeasibleWhenBudgetTiny)
{
    MemoryAllocator alloc(*h_.library);
    int cur = find_matmul();
    auto choice = alloc.allocate(cur, {}, {}, {}, 16);
    EXPECT_FALSE(choice.feasible);
}

TEST_F(AllocatorTest, FloorRespected)
{
    MemoryAllocator alloc(*h_.library);
    auto live = find_matmuls(2);
    int cur = live.back();
    live.pop_back();
    // Force the live op's preload to start at its smallest plan.
    int last = static_cast<int>(
                   h_.library->preload_plans(live[0], 0).size()) -
               1;
    auto choice = alloc.allocate(cur, live, {0}, {last},
                                 h_.ctx.sram_budget());
    ASSERT_TRUE(choice.feasible);
    EXPECT_GE(choice.preload_idx[0], last);
}

TEST_F(AllocatorTest, DowngradesPreloadBeforeCripplingExec)
{
    // With a moderately tight budget the allocator should trade the
    // cheap preload-space of live ops before taking a large execution
    // slowdown: verify the chosen exec plan is not the very slowest
    // when budget still allows better.
    MemoryAllocator alloc(*h_.library);
    auto live = find_matmuls(3);
    int cur = live.back();
    live.pop_back();
    std::vector<int> exec_idx(live.size(), 0);
    std::vector<int> floor(live.size(), 0);
    uint64_t budget = h_.ctx.sram_budget();
    auto choice = alloc.allocate(cur, live, exec_idx, floor, budget);
    ASSERT_TRUE(choice.feasible);
    int slowest =
        static_cast<int>(h_.library->exec_plans(cur).size()) - 1;
    if (slowest > 0) {
        EXPECT_LT(choice.exec_idx, std::max(1, slowest));
    }
}

}  // namespace
}  // namespace elk::compiler
