/**
 * @file
 * Randomized differential scheduler harness: ~200 seeded random
 * configurations (chunk size x KV budget x prefix sharing x SLO shape
 * x residency policy x locality) over random traces, each serve
 * checked against conservation invariants (every request completes
 * exactly once, prompt tokens partition into ingested + prefix-hit,
 * per-tenant roll-ups partition the totals) and against itself:
 * serve-twice bit-identity and --jobs 1 vs --jobs 4 compiler
 * bit-identity. Failures print the offending config seed. Plus
 * backfill units for tag_deadlines(), tag_tenants() and pick_bucket()
 * on residual chunk lengths.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// One drawn scheduler configuration + trace, fully determined by its
/// seed (the failure-reproduction handle).
struct Config {
    uint64_t seed = 0;
    compiler::Mode mode = compiler::Mode::kStatic;
    std::vector<runtime::Request> trace;
    runtime::ServerOptions opts;

    std::string
    describe() const
    {
        std::ostringstream out;
        out << "config seed " << seed << " mode "
            << compiler::mode_name(mode) << " n " << trace.size()
            << " chunk " << opts.prefill_chunk << " kv "
            << opts.kv_budget << " prefix " << opts.prefix_sharing
            << " slo " << opts.slo << " tenants " << opts.tenants
            << " locality " << opts.kv_locality << " policy "
            << (opts.residency_policy ==
                        sim::ResidencyPolicy::kRetireOrder
                    ? "retire"
                    : "freq");
        return out.str();
    }
};

class SchedPropertyTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode,
                  int jobs, compiler::PlanCache* cache)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, cache,
                                         jobs, sopts);
    }

    uint64_t
    token_bytes() const
    {
        return graph::kv_bytes_per_token(testing::tiny_llm());
    }

    /// Draws the configuration for index @p i — every choice comes
    /// off one seeded mt19937_64, so a failing index reproduces from
    /// its printed seed alone.
    Config
    draw_config(int i) const
    {
        Config cfg;
        cfg.seed = 0xe1c5eedull + static_cast<uint64_t>(i);
        std::mt19937_64 rng(cfg.seed);
        cfg.mode = (rng() % 2 == 0) ? compiler::Mode::kStatic
                                    : compiler::Mode::kElkFull;

        runtime::ServerOptions& o = cfg.opts;
        o.max_batch = 4;
        o.max_prefill_batch = 1 + static_cast<int>(rng() % 2);
        o.max_prompt_len = kSeq;
        o.residency_policy = (rng() % 2 == 0)
                                 ? sim::ResidencyPolicy::kRetireOrder
                                 : sim::ResidencyPolicy::kFrequencyAware;

        // KV budget: off, tight (segments spill), or roomy.
        const uint64_t per_seg = kSeq * token_bytes() / 64;
        switch (rng() % 3) {
        case 0: break;  // modeling off
        case 1: o.kv_budget = 2 * per_seg; break;
        case 2: o.kv_budget = 6 * per_seg; break;
        }
        if (o.kv_budget > 0) {
            o.kv_bytes_per_token = token_bytes();
            o.kv_locality = rng() % 2 == 0;
            o.prefix_sharing = rng() % 2 == 0;
        }

        // Chunked prefill: off or one of the power-of-two sizes.
        const int chunks[] = {0, 8, 32, 128};
        o.prefill_chunk = chunks[rng() % 4];

        // SLO shape: off, two plain tenants, or three weighted
        // tenants with a uniform deadline.
        const int slo_shape = static_cast<int>(rng() % 3);
        bool deadlines = false;
        if (slo_shape > 0) {
            o.slo = true;
            o.tenants = 1 + slo_shape;
            if (slo_shape == 2) {
                o.tenant_shares = {3.0, 2.0, 1.0};
                deadlines = true;
            }
        }

        // The trace: conversational (session + prefixes) when prefix
        // sharing drew on, a mixed-phase tagged trace otherwise.
        const int n = 3 + static_cast<int>(rng() % 10);
        const double rate = 1500.0 + 500.0 * (rng() % 8);
        const int decode_tokens = 1 + static_cast<int>(rng() % 4);
        if (o.prefix_sharing) {
            runtime::SessionTraceOptions topts;
            topts.sessions = n;
            topts.rate_per_s = rate;
            topts.mean_turns = 2.0;
            topts.decode_tokens = decode_tokens;
            topts.max_prompt_len = kSeq;
            topts.prompt_mean_len = 24.0;
            topts.prefix_population = 2;
            topts.prefix_mean_len = 16.0;
            cfg.trace = runtime::make_session_trace(topts, cfg.seed);
        } else {
            const double prefill_frac =
                o.kv_budget > 0 ? 1.0 : (rng() % 2 == 0 ? 0.7 : 1.0);
            const double high_frac = rng() % 2 == 0 ? 0.0 : 0.25;
            cfg.trace = runtime::make_request_trace(
                runtime::ArrivalTrace::poisson(n, rate, cfg.seed),
                decode_tokens, prefill_frac, high_frac, cfg.seed);
            runtime::tag_prompt_lengths(cfg.trace, kSeq, 32.0,
                                        cfg.seed);
        }
        if (o.tenants > 1) {
            runtime::tag_tenants(cfg.trace, o.tenants, cfg.seed);
        }
        if (deadlines) {
            runtime::tag_deadlines(cfg.trace, /*slo_s=*/5e-3);
        }
        return cfg;
    }

    compiler::PlanCache cache1_;  ///< --jobs 1 compilers.
    compiler::PlanCache cache4_;  ///< --jobs 4 compilers.
};

// The harness: every drawn config must (a) conserve its trace — each
// request completes exactly once, decode tokens match the trace sum,
// ingested + prefix-covered prompt tokens partition the prompt sum,
// tenant roll-ups partition both totals; (b) reproduce itself —
// serving the same trace twice through the same programs is
// bit-identical; (c) be compiler-parallelism-blind — programs built
// with --jobs 4 serve bit-identically to --jobs 1.
TEST_F(SchedPropertyTest, RandomConfigsConserveAndReproduce)
{
    constexpr int kConfigs = 200;
    for (int i = 0; i < kConfigs; ++i) {
        Config cfg = draw_config(i);
        SCOPED_TRACE(cfg.describe());

        auto dc1 = make_compiler(compiler::GraphKind::kDecode,
                                 cfg.mode, /*jobs=*/1, &cache1_);
        auto pc1 = make_compiler(compiler::GraphKind::kPrefill,
                                 cfg.mode, /*jobs=*/1, &cache1_);
        auto dc4 = make_compiler(compiler::GraphKind::kDecode,
                                 cfg.mode, /*jobs=*/4, &cache4_);
        auto pc4 = make_compiler(compiler::GraphKind::kPrefill,
                                 cfg.mode, /*jobs=*/4, &cache4_);
        auto serve = [&](compiler::ServingCompiler& dc,
                         compiler::ServingCompiler& pc) {
            runtime::Server s(dc.machine(), cfg.opts);
            return s.serve(
                cfg.trace,
                [&](int b, int len) { return pc.program(b, len); },
                [&](int b) { return dc.program(b); });
        };
        auto rep = serve(dc1, pc1);

        // (a) conservation.
        ASSERT_EQ(rep.requests, static_cast<int>(cfg.trace.size()));
        int64_t decode_sum = 0;
        int64_t prompt_sum = 0;
        for (const auto& r : cfg.trace) {
            decode_sum += r.decode_tokens;
            if (r.phase == runtime::Phase::kPrefill) {
                prompt_sum +=
                    r.prompt_len > 0 ? r.prompt_len : kSeq;
            }
        }
        EXPECT_EQ(rep.tokens, decode_sum);
        EXPECT_EQ(rep.prompt_tokens + rep.prefix_hit_tokens,
                  prompt_sum);
        if (cfg.opts.slo) {
            ASSERT_EQ(rep.tenant_shares.size(),
                      static_cast<size_t>(cfg.opts.tenants));
            int tenant_requests = 0;
            int64_t tenant_tokens = 0;
            double share_sum = 0.0;
            for (const auto& t : rep.tenant_shares) {
                tenant_requests += t.requests;
                tenant_tokens += t.tokens;
                share_sum += t.token_share;
            }
            EXPECT_EQ(tenant_requests, rep.requests);
            EXPECT_EQ(tenant_tokens, rep.tokens + rep.prompt_tokens);
            EXPECT_NEAR(share_sum, 1.0, 1e-9);
        } else {
            EXPECT_TRUE(rep.tenant_shares.empty());
        }
        // The KV ledger balances: the engine panics on any unmatched
        // alloc/pin/free, so a completed serve with a sane peak is
        // the balance check.
        if (cfg.opts.kv_budget > 0) {
            EXPECT_LE(rep.mean_kv_bytes,
                      static_cast<double>(rep.kv_bytes_peak) + 1.0);
        } else {
            EXPECT_EQ(rep.kv_bytes_peak, 0u);
            EXPECT_EQ(rep.kv_locality_skips, 0);
        }
        if (cfg.opts.prefill_chunk == 0) {
            EXPECT_EQ(rep.prefill_chunks, 0);
            EXPECT_EQ(rep.chunked_prompts, 0);
            EXPECT_EQ(rep.chunk_decode_interleaves, 0);
        }

        // (b) serve-twice bit-identity.
        auto again = serve(dc1, pc1);
        EXPECT_EQ(rep.serialize_bits(), again.serialize_bits());

        // (c) --jobs 1 vs --jobs 4 bit-identity.
        auto parallel = serve(dc4, pc4);
        EXPECT_EQ(rep.serialize_bits(), parallel.serialize_bits());

        if (::testing::Test::HasFailure()) {
            FAIL() << "stopping at first failing " << cfg.describe();
        }
    }
}

// ---------------------------------------------------------------------------
// Backfill units

// tag_deadlines is pure arithmetic but still rejects a meaningless
// SLO: zero (or negative) deadlines would mark every request late at
// arrival.
TEST_F(SchedPropertyTest, TagDeadlinesRejectsNonPositiveSlo)
{
    std::vector<runtime::Request> trace(2);
    EXPECT_DEATH(runtime::tag_deadlines(trace, 0.0),
                 "slo_s must be positive");
    EXPECT_DEATH(runtime::tag_deadlines(trace, -1.0),
                 "slo_s must be positive");
}

// tag_tenants with tenants == 1 consumes no draws at all, so the
// result cannot depend on the seed: any two seeds leave the trace
// byte-for-byte untouched.
TEST_F(SchedPropertyTest, TagTenantsSingleTenantIsSeedIndependent)
{
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(16, 3000.0, 13), 2,
        /*prefill_frac=*/0.5, /*high_frac=*/0.25, 13);
    auto a = trace;
    auto b = trace;
    runtime::tag_tenants(a, 1, /*seed=*/1);
    runtime::tag_tenants(b, 1, /*seed=*/0xdeadbeef);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(a[i].tenant, 0);
        EXPECT_EQ(b[i].tenant, 0);
        EXPECT_EQ(a[i].tenant, trace[i].tenant);  // untouched
    }
}

// pick_bucket over the residual lengths chunk_plan produces: full
// chunks land exactly on their own bucket, the short residual drops
// to the smallest covering bucket, and an over-long need saturates at
// the largest rung.
TEST_F(SchedPropertyTest, PickBucketCoversResidualChunkLengths)
{
    const std::vector<int> ladder = {16, 32, 64, 128};
    for (int piece : runtime::chunk_plan(100, 32)) {
        // {32, 32, 32, 4}: full chunks exact, residual covered.
        EXPECT_EQ(runtime::pick_bucket(ladder, piece),
                  piece == 4 ? 16 : 32);
    }
    for (int piece : runtime::chunk_plan(129, 128)) {
        // {128, 1}.
        EXPECT_EQ(runtime::pick_bucket(ladder, piece),
                  piece == 1 ? 16 : 128);
    }
    EXPECT_EQ(runtime::pick_bucket(ladder, 200), 128);  // saturates
    EXPECT_EQ(runtime::pick_bucket({16, 32}, 100), 32);
}

}  // namespace
}  // namespace elk
