/**
 * @file
 * Unit tests for the cost models: analytic/detailed tile costs, the
 * linear-tree regressor, transfer and HBM costs, and the profiler fit
 * quality (the Fig. 12 methodology at unit-test scale).
 */
#include <gtest/gtest.h>

#include "cost/exec_cost.h"
#include "cost/hbm_cost.h"
#include "cost/linear_tree.h"
#include "cost/profiler.h"
#include "cost/transfer_cost.h"
#include "util/stats.h"

namespace elk::cost {
namespace {

TEST(TileWorkTest, FlopsAndBytes)
{
    TileWork t;
    t.kind = graph::OpKind::kMatMul;
    t.rows = 4;
    t.n = 8;
    t.k = 16;
    EXPECT_DOUBLE_EQ(t.flops(), 2.0 * 4 * 8 * 16);
    EXPECT_DOUBLE_EQ(t.bytes_touched(), (4 * 16 + 16 * 8 + 4 * 8) * 2.0);
}

TEST(ExecCostTest, AnalyticMonotoneInSize)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    AnalyticExecCost model;
    TileWork small{graph::OpKind::kMatMul, 4, 64, 64, 2};
    TileWork large{graph::OpKind::kMatMul, 8, 128, 128, 2};
    EXPECT_LT(model.tile_time(small, cfg), model.tile_time(large, cfg));
}

TEST(ExecCostTest, MatmulFasterThanVectorPerFlop)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    AnalyticExecCost model;
    TileWork mm{graph::OpKind::kMatMul, 64, 64, 64, 2};
    TileWork ew{graph::OpKind::kElementwise, 64, 64 * 64, 1, 2};
    double mm_per_flop = model.tile_time(mm, cfg) / mm.flops();
    double ew_per_flop = model.tile_time(ew, cfg) / ew.flops();
    EXPECT_LT(mm_per_flop, ew_per_flop);
}

TEST(ExecCostTest, PipelineEfficiencyPenalizesRaggedShapes)
{
    EXPECT_DOUBLE_EQ(matmul_pipeline_efficiency(64, 64), 1.0);
    EXPECT_LT(matmul_pipeline_efficiency(63, 64), 1.0);
    EXPECT_LT(matmul_pipeline_efficiency(64, 17), 1.0);
}

TEST(ExecCostTest, DetailedAtLeastLaunchOverhead)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    TileWork t{graph::OpKind::kElementwise, 1, 1, 1, 2};
    EXPECT_GE(detailed_tile_time(t, cfg), cfg.tile_launch_overhead_s);
}

TEST(TransferCostTest, ZeroBytesIsFree)
{
    EXPECT_DOUBLE_EQ(link_transfer_time(0, 1e9, 1e-7, 8192), 0.0);
}

TEST(TransferCostTest, ComponentsAddUp)
{
    double t = link_transfer_time(16384, 1e9, 1e-7, 8192);
    // latency + bytes/bw + 2 messages of overhead.
    EXPECT_NEAR(t, 1e-7 + 16384 / 1e9 + 2 * kPerMessageOverheadS, 1e-12);
}

TEST(HbmCostTest, Roofline)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    EXPECT_DOUBLE_EQ(hbm_load_time(0, cfg), 0.0);
    EXPECT_NEAR(hbm_load_time(16e12, cfg), 1.0 + cfg.hbm_access_latency_s,
                1e-9);
}

TEST(LinearTreeTest, FitsLinearFunctionExactly)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        double a = i;
        double b = (i * 37) % 101;  // independent of a
        x.push_back({a, b});
        y.push_back(3.0 * a - 2.0 * b + 7.0);
    }
    LinearTreeModel model;
    model.fit(x, y);
    EXPECT_TRUE(model.trained());
    EXPECT_NEAR(model.predict({10, 20}), 3.0 * 10 - 2.0 * 20 + 7.0, 1e-6);
}

TEST(LinearTreeTest, SplitsPiecewiseFunction)
{
    // y = x for x <= 50, y = 10x for x > 50: needs at least one split.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        double v = i;
        x.push_back({v});
        y.push_back(v <= 100 ? v : 10.0 * v);
    }
    LinearTreeModel model;
    model.fit(x, y);
    EXPECT_GT(model.num_nodes(), 1u);
    EXPECT_NEAR(model.predict({50}), 50, 5);
    EXPECT_NEAR(model.predict({150}), 1500, 50);
}

TEST(LinearTreeTest, FitLinearRidge)
{
    std::vector<std::vector<double>> x{{1}, {2}, {3}};
    std::vector<double> y{2, 4, 6};
    auto w = fit_linear(x, y, {0, 1, 2}, 1e-9);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_NEAR(w[0], 2.0, 1e-4);
    EXPECT_NEAR(w[1], 0.0, 1e-3);
}

TEST(ProfilerTest, SamplesFitInSram)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    auto samples = profile_tiles(graph::OpKind::kMatMul, 50, cfg, 1);
    ASSERT_EQ(samples.size(), 50u);
    for (const auto& s : samples) {
        EXPECT_LE(s.tile.bytes_touched(),
                  static_cast<double>(cfg.usable_sram_per_core()));
        EXPECT_GT(s.measured, 0.0);
    }
}

TEST(ProfilerTest, FittedModelAccuracy)
{
    // The heart of Fig. 12: the fitted model should track the detailed
    // model within a small error on held-out tiles.
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    FittedExecCost fitted = FittedExecCost::train(cfg, 300, /*seed=*/3);

    for (auto kind : {graph::OpKind::kMatMul, graph::OpKind::kElementwise,
                      graph::OpKind::kSoftmax}) {
        auto holdout = profile_tiles(kind, 120, cfg, /*seed=*/99,
                                     /*noise_sigma=*/0.0);
        std::vector<double> measured, predicted;
        for (const auto& s : holdout) {
            measured.push_back(s.measured);
            predicted.push_back(fitted.tile_time(s.tile, cfg));
        }
        EXPECT_GT(util::r_squared(measured, predicted), 0.90)
            << graph::op_kind_name(kind);
    }
}

TEST(ProfilerTest, TransferSamplesMonotoneInExpectation)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    auto samples = profile_transfers(100, cfg, 5, 0.0);
    for (const auto& [bytes, t] : samples) {
        EXPECT_NEAR(t, inter_core_transfer_time(bytes, cfg), 1e-12);
    }
}

}  // namespace
}  // namespace elk::cost
