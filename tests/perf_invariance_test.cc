/**
 * @file
 * Perf-refactor invariance tests: the hot-path rebuild (flat
 * residency/KV pools, the active-flow list in FluidNetwork, the
 * server's scratch-pool claiming, the sort-once percentile path, and
 * the shared-lock program lookup) must not move a single bit of any
 * simulated result. Three serving workloads — closed-loop decode, the
 * length-skewed varlen trace, and the KV-budget trace — are served
 * across all five design modes and their serialize_bits compared
 * between compiler jobs = 1 and jobs = 4, between a cold and a warm
 * (memoized) compiler, and between repeated runs on one compiler. A
 * model-based KV pool test churns a seeded op sequence against an
 * independent per-segment byte ledger so the engine's O(1) resident
 * counter is checked against external bookkeeping in Release builds
 * too (the debug assert only covers -DNDEBUG-off).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace elk {
namespace {

constexpr int kSeq = 128;
constexpr int kRequests = 12;
constexpr int kTokens = 3;

hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

const std::vector<compiler::Mode> kModes = {
    compiler::Mode::kBasic, compiler::Mode::kStatic,
    compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
    compiler::Mode::kIdeal};

/// The three workloads the perf harness times, at test scale.
enum class Workload { kClosedDecode, kVarlen, kKv };

/// One serve of @p workload in @p mode with compiler parallelism
/// @p jobs, against @p cache (shared caches memoize across calls —
/// exactly how the harness and the servers reuse a warm grid).
runtime::ServingReport
serve_workload(Workload workload, compiler::Mode mode, int jobs,
               compiler::PlanCache* cache)
{
    graph::ModelConfig model = testing::tiny_llm();
    hw::ChipConfig chip = tiny_chip();
    compiler::CompileOptions copts;
    copts.mode = mode;
    copts.max_orders = 6;
    compiler::ServingCompiler decode(model, kSeq, chip, copts, cache,
                                     jobs);
    compiler::ServingCompiler prefill(
        model, kSeq, chip, copts, cache, jobs,
        compiler::ServingCompiler::Options::prefill());

    runtime::ServerOptions opts;
    opts.max_batch = 4;
    opts.tokens_per_request = kTokens;
    if (workload == Workload::kClosedDecode) {
        runtime::Server server(decode.machine(), opts);
        return server.serve(
            runtime::ArrivalTrace::closed_loop(kRequests),
            [&](int b) { return decode.program(b); });
    }
    opts.max_prefill_batch = 2;
    opts.max_prompt_len = kSeq;
    opts.prompt_buckets = {kSeq / 8, kSeq / 2, kSeq};
    if (workload == Workload::kKv) {
        opts.kv_budget = chip.usable_sram_per_core() / 8;
        opts.kv_bytes_per_token = graph::kv_bytes_per_token(model);
    }
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(kRequests, 400.0, /*seed=*/19),
        kTokens, /*prefill_frac=*/1.0, /*high_frac=*/0.0, /*seed=*/19);
    runtime::tag_prompt_lengths(trace, kSeq, kSeq / 8.0, /*seed=*/19);
    runtime::Server server(decode.machine(), opts);
    return server.serve(
        trace, [&](int b, int len) { return prefill.program(b, len); },
        [&](int b) { return decode.program(b); });
}

// ---------------------------------------------------------------------------
// serialize_bits is invariant across --jobs and across cache warmth

TEST(PerfInvarianceTest, JobsOneAndFourBitIdenticalAllModesAllWorkloads)
{
    for (Workload w :
         {Workload::kClosedDecode, Workload::kVarlen, Workload::kKv}) {
        for (compiler::Mode mode : kModes) {
            compiler::PlanCache cache1;
            compiler::PlanCache cache4;
            std::string serial =
                serve_workload(w, mode, /*jobs=*/1, &cache1)
                    .serialize_bits();
            std::string parallel =
                serve_workload(w, mode, /*jobs=*/4, &cache4)
                    .serialize_bits();
            EXPECT_EQ(serial, parallel)
                << "workload " << static_cast<int>(w) << " mode "
                << compiler::mode_name(mode);
        }
    }
}

TEST(PerfInvarianceTest, WarmCacheAndRepeatRunsBitIdentical)
{
    // A shared PlanCache memoizes plans across the cold and warm
    // serves; the warm run exercises the lookup fast path the
    // refactor moved behind a shared (reader) lock.
    for (Workload w :
         {Workload::kClosedDecode, Workload::kVarlen, Workload::kKv}) {
        compiler::PlanCache cache;
        std::string cold =
            serve_workload(w, compiler::Mode::kElkFull, /*jobs=*/2,
                           &cache)
                .serialize_bits();
        std::string warm =
            serve_workload(w, compiler::Mode::kElkFull, /*jobs=*/2,
                           &cache)
                .serialize_bits();
        EXPECT_EQ(cold, warm)
            << "workload " << static_cast<int>(w);
    }
}

// ---------------------------------------------------------------------------
// The flat KV pool against an independent byte ledger

TEST(PerfInvarianceTest, KvPoolMatchesExternalLedgerUnderSeededChurn)
{
    sim::Machine machine(tiny_chip());
    sim::EngineState::Options opts;
    opts.kv_budget = 96 * 1024;
    sim::EngineState state(machine, opts);

    // Ledger: per live segment, its current per-core bytes. Residency
    // decisions stay the engine's; the ledger only asserts that byte
    // accounting (grow accumulation, the resident-byte counter behind
    // kv_would_fit, and the occupancy total) never drifts.
    std::map<int64_t, uint64_t> ledger;
    std::mt19937_64 rng(0xe1c0ffee5eedULL);
    int64_t next_id = 0;
    for (int op = 0; op < 4000; ++op) {
        const uint64_t r = rng();
        switch (r % 4) {
        case 0: {  // allocate a fresh segment
            const uint64_t bytes = (r / 7 % 24 + 1) * 1024;
            state.kv_alloc(next_id, bytes);
            ledger[next_id] = bytes;
            ++next_id;
            break;
        }
        case 1: {  // grow the youngest live segment
            if (!ledger.empty()) {
                auto it = std::prev(ledger.end());
                const uint64_t delta = (r / 11 % 4 + 1) * 512;
                state.kv_grow(it->first, delta);
                it->second += delta;
            }
            break;
        }
        case 2: {  // fetch + free the oldest live segment
            if (!ledger.empty()) {
                auto it = ledger.begin();
                if (!state.kv_resident(it->first)) {
                    state.kv_fetch(it->first);
                }
                state.kv_free(it->first);
                ledger.erase(it);
            }
            break;
        }
        default: {  // pin/unpin cycle on the youngest (residency ref)
            if (!ledger.empty()) {
                auto it = std::prev(ledger.end());
                if (state.kv_resident(it->first)) {
                    state.kv_pin(it->first);
                    state.kv_unpin(it->first);
                }
            }
            break;
        }
        }
        // Per-segment bytes and the resident-byte counter must agree
        // with the ledger after every op.
        uint64_t resident = 0;
        for (const auto& [id, bytes] : ledger) {
            ASSERT_EQ(state.kv_segment_bytes(id), bytes)
                << "op " << op << " id " << id;
            if (state.kv_resident(id)) {
                resident += bytes;
            }
        }
        ASSERT_EQ(state.kv_bytes(), resident) << "op " << op;
        ASSERT_EQ(state.kv_segments(),
                  static_cast<int>(ledger.size()))
            << "op " << op;
        // The O(1) admission probe equals the ledger-derived answer.
        const uint64_t probe = 8 * 1024;
        ASSERT_EQ(state.kv_would_fit(probe),
                  resident + probe <= opts.kv_budget)
            << "op " << op;
    }
}

}  // namespace
}  // namespace elk
