/**
 * @file
 * Cluster-scale serving tests: the hw::Interconnect cost model (ring /
 * full-mesh hop math, transfer pricing), the deterministic router
 * policies on crafted arrival patterns, cross-chip KV migration with
 * priced interconnect stalls, the disaggregated prefill-tier /
 * decode-tier split, the 1-replica round-robin bit-identity anchor
 * across all five design modes, and death tests for cluster
 * misconfiguration.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "hw/interconnect.h"
#include "runtime/cluster.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

// ---------------------------------------------------------------------------
// hw::Interconnect: the chip-to-chip cost model

TEST(InterconnectTest, RingHopsAreMinCyclicDistance)
{
    hw::InterconnectConfig cfg;
    cfg.kind = hw::InterconnectKind::kRing;
    cfg.link_bw = 100e9;
    hw::Interconnect ring(cfg, 6);
    EXPECT_EQ(ring.hops(0, 0), 0);
    EXPECT_EQ(ring.hops(0, 1), 1);
    EXPECT_EQ(ring.hops(0, 3), 3);  // either way around is 3
    EXPECT_EQ(ring.hops(0, 4), 2);  // the short way wraps
    EXPECT_EQ(ring.hops(5, 0), 1);
    EXPECT_EQ(ring.hops(1, 5), 2);
}

TEST(InterconnectTest, FullMeshIsOneHop)
{
    hw::InterconnectConfig cfg;
    cfg.kind = hw::InterconnectKind::kFullMesh;
    cfg.link_bw = 100e9;
    hw::Interconnect mesh(cfg, 8);
    for (int d = 1; d < 8; ++d) {
        EXPECT_EQ(mesh.hops(0, d), 1);
    }
    EXPECT_EQ(mesh.hops(3, 3), 0);
}

TEST(InterconnectTest, TransferPricesLatencyPlusBandwidth)
{
    hw::InterconnectConfig cfg;
    cfg.kind = hw::InterconnectKind::kRing;
    cfg.link_bw = 1e9;
    cfg.hop_latency_s = 1e-6;
    hw::Interconnect ring(cfg, 4);
    // 2 hops (0 -> 2): 2 us of latency + 1 GB at 1 GB/s.
    EXPECT_DOUBLE_EQ(ring.transfer_seconds(0, 2, 1000000000ull),
                     2e-6 + 1.0);
    // Local transfers are free regardless of size.
    EXPECT_DOUBLE_EQ(ring.transfer_seconds(1, 1, 1u << 30), 0.0);
    // Link traffic multiplies by the hop count.
    EXPECT_EQ(ring.link_bytes(0, 2, 4096u), 8192u);
    EXPECT_EQ(ring.link_bytes(0, 0, 4096u), 0u);
}

TEST(InterconnectDeathTest, RejectsBadConfig)
{
    hw::InterconnectConfig cfg;
    cfg.link_bw = 100e9;
    EXPECT_DEATH(hw::Interconnect(cfg, 0), "at least one chip");
    hw::InterconnectConfig unresolved;
    unresolved.link_bw = 0.0;
    EXPECT_DEATH(hw::Interconnect(unresolved, 2), "resolved");
    hw::InterconnectConfig negative;
    negative.link_bw = 100e9;
    negative.hop_latency_s = -1.0;
    EXPECT_DEATH(hw::Interconnect(negative, 2), "hop latency");
    hw::Interconnect ok(cfg, 2);
    EXPECT_DEATH(ok.hops(0, 2), "out of range");
}

// ---------------------------------------------------------------------------
// The serving fixture

class ClusterServingTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// Machine-total KV bytes per token for the tiny test model.
    uint64_t
    token_bytes() const
    {
        return graph::kv_bytes_per_token(testing::tiny_llm());
    }

    /// ServerOptions with KV modeling + prefix sharing on and room
    /// for a few full-length segments per core.
    runtime::ServerOptions
    prefix_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        sopts.kv_bytes_per_token = token_bytes();
        sopts.kv_budget = 4 * kSeq * token_bytes() / 64;
        sopts.prefix_sharing = true;
        return sopts;
    }

    /// Plain (KV-free) varlen serving options.
    runtime::ServerOptions
    plain_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        return sopts;
    }

    /// A trace of @p n prompts all carrying prefix id @p pid.
    std::vector<runtime::Request>
    shared_prefix_trace(int n, int pid, int prefix_len, int prompt_len,
                        int decode_tokens) const
    {
        std::vector<runtime::Request> trace;
        for (int i = 0; i < n; ++i) {
            runtime::Request r;
            r.arrival = i * 1e-4;
            r.phase = runtime::Phase::kPrefill;
            r.decode_tokens = decode_tokens;
            r.prompt_len = prompt_len;
            r.prefix_id = pid;
            r.prefix_len = prefix_len;
            trace.push_back(r);
        }
        return trace;
    }

    compiler::PlanCache cache_;
};

// The acceptance anchor: a 1-replica round-robin cluster routes the
// trace to replica 0 unchanged, so its replica report reproduces the
// single-chip Server bit-for-bit — across all five design modes, on
// a mixed varlen trace.
TEST_F(ClusterServingTest, OneReplicaRoundRobinIsBitIdenticalAcrossModes)
{
    auto mixed = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(10, 2500.0, 7), 3,
        /*prefill_frac=*/0.7, /*high_frac=*/0.25, 7);
    runtime::tag_prompt_lengths(mixed, kSeq, 32.0, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);
        auto prefill = [&](int b, int len) {
            return pc.program(b, len);
        };
        auto decode = [&](int b) { return dc.program(b); };

        runtime::Server server(dc.machine(), plain_options());
        auto single = server.serve(mixed, prefill, decode);

        runtime::ClusterOptions copts;
        copts.replicas = 1;
        copts.router = runtime::RouterPolicy::kRoundRobin;
        copts.server = plain_options();
        runtime::Cluster cluster(dc.machine(), copts);
        auto clustered = cluster.serve(mixed, prefill, decode);

        ASSERT_EQ(clustered.replica_reports.size(), 1u);
        EXPECT_EQ(single.serialize_bits(),
                  clustered.replica_reports[0].serialize_bits())
            << compiler::mode_name(mode);
        EXPECT_EQ(clustered.tokens, single.tokens);
        EXPECT_EQ(clustered.makespan, single.makespan);
        EXPECT_EQ(clustered.util_skew, 0.0);
        EXPECT_EQ(clustered.kv_migrations, 0);
    }
}

// ---------------------------------------------------------------------------
// Router policies on crafted patterns (route() is a pure function)

TEST_F(ClusterServingTest, RoundRobinCyclesArrivalOrder)
{
    sim::Machine machine(tiny_chip());
    runtime::ClusterOptions copts;
    copts.replicas = 3;
    copts.server = plain_options();
    runtime::Cluster cluster(machine, copts);
    auto trace = runtime::prefill_requests(
        runtime::ArrivalTrace::closed_loop(7), 2);
    EXPECT_EQ(cluster.route(trace),
              (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
}

TEST_F(ClusterServingTest, LeastLoadedBalancesAssignedWork)
{
    sim::Machine machine(tiny_chip());
    runtime::ClusterOptions copts;
    copts.replicas = 2;
    copts.router = runtime::RouterPolicy::kLeastLoaded;
    copts.server = plain_options();
    runtime::Cluster cluster(machine, copts);

    // One huge request then a run of small ones: round-robin would
    // alternate, but least-loaded parks the small ones on replica 1
    // until its cumulative tokens pass the giant on replica 0.
    std::vector<runtime::Request> trace;
    for (int i = 0; i < 5; ++i) {
        runtime::Request r;
        r.arrival = i * 1e-4;
        r.phase = runtime::Phase::kDecode;
        r.decode_tokens = i == 0 ? 100 : 40;
        trace.push_back(r);
    }
    // Replica 1 absorbs smalls until its cumulative 120 passes the
    // giant's 100 — the last request swings back to replica 0.
    EXPECT_EQ(cluster.route(trace),
              (std::vector<int>{0, 1, 1, 1, 0}));
}

TEST_F(ClusterServingTest, LeastLoadedVirtualClockDrainsBacklog)
{
    sim::Machine machine(tiny_chip());
    runtime::ClusterOptions copts;
    copts.replicas = 2;
    copts.router = runtime::RouterPolicy::kLeastLoaded;
    copts.server = plain_options();
    copts.router_token_time_s = 1.0;  // 1 s per token, easy arithmetic
    runtime::Cluster cluster(machine, copts);

    // Two bursts far apart. Within a burst the backlog forces a
    // spread; by the second burst every virtual clock has drained, so
    // the tie breaks to replica 0 again — cumulative-work routing
    // would remember the first burst forever.
    std::vector<runtime::Request> trace;
    const double arrivals[] = {0.0, 0.0, 1000.0, 1000.0};
    for (double a : arrivals) {
        runtime::Request r;
        r.arrival = a;
        r.phase = runtime::Phase::kDecode;
        r.decode_tokens = 5;
        trace.push_back(r);
    }
    EXPECT_EQ(cluster.route(trace), (std::vector<int>{0, 1, 0, 1}));
}

TEST_F(ClusterServingTest, SessionAffinityPinsPrefixesToHomes)
{
    sim::Machine machine(tiny_chip());
    runtime::ClusterOptions copts;
    copts.replicas = 4;
    copts.router = runtime::RouterPolicy::kSessionAffinity;
    copts.server = prefix_options();
    runtime::Cluster cluster(machine, copts);

    // Interleaved carriers of three prefixes plus untagged prompts.
    std::vector<runtime::Request> trace;
    const int pids[] = {0, 1, 2, 0, 1, 2, -1, -1, 0, 2};
    for (size_t i = 0; i < sizeof(pids) / sizeof(pids[0]); ++i) {
        runtime::Request r;
        r.arrival = static_cast<double>(i) * 1e-4;
        r.phase = runtime::Phase::kPrefill;
        r.prompt_len = 64;
        if (pids[i] >= 0) {
            r.prefix_id = pids[i];
            r.prefix_len = 32;
        }
        trace.push_back(r);
    }
    auto routed = cluster.route(trace);
    // Every carrier of one prefix lands on one replica.
    std::vector<int> prefix_home(3, -1);
    int untagged = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].prefix_id >= 0) {
            int& h = prefix_home[trace[i].prefix_id];
            if (h < 0) {
                h = routed[i];
            }
            EXPECT_EQ(routed[i], h) << "carrier " << i;
        } else {
            // Untagged prompts round-robin: first fallback to 0,
            // second to 1.
            EXPECT_EQ(routed[i], untagged++);
        }
    }
}

// ---------------------------------------------------------------------------
// KV migration over the interconnect

// With carriers of one prefix scattered round-robin over two chips,
// migrate_kv imports the segment once onto the second chip — priced
// at exactly the fabric's transfer time — and both chips serve every
// later carrier as a cache hit. Without migration the second chip
// re-prefills (a local miss): one fewer hit, no interconnect traffic.
TEST_F(ClusterServingTest, MigrationImportsPrefixAtPricedStall)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };
    auto trace = shared_prefix_trace(8, /*pid=*/0, /*prefix_len=*/96,
                                     /*prompt_len=*/112,
                                     /*decode_tokens=*/2);

    auto serve = [&](bool migrate) {
        runtime::ClusterOptions copts;
        copts.replicas = 2;
        copts.router = runtime::RouterPolicy::kRoundRobin;
        copts.server = prefix_options();
        copts.migrate_kv = migrate;
        copts.interconnect.kind = hw::InterconnectKind::kRing;
        runtime::Cluster cluster(dc.machine(), copts);
        return cluster.serve(trace, prefill, decode);
    };

    auto migrated = serve(true);
    auto local = serve(false);

    // Exactly one import: the round-robin scatter lands carrier 1 on
    // replica 1, which lacks the prefix replica 0 homed.
    EXPECT_EQ(migrated.kv_migrations, 1);
    EXPECT_EQ(migrated.kv_migrated_tokens, 96);
    const uint64_t bytes = 96ull * token_bytes();
    runtime::ClusterOptions copts;
    copts.replicas = 2;
    copts.server = prefix_options();
    runtime::Cluster pricing(dc.machine(), copts);
    EXPECT_DOUBLE_EQ(
        migrated.kv_migration_stall,
        pricing.fabric().transfer_seconds(0, 1, bytes));
    EXPECT_EQ(migrated.interconnect_bytes,
              static_cast<int64_t>(bytes));

    // The import turns replica 1's would-be misses into hits: 7 of 8
    // carriers hit with migration (all but the seeding first), 6
    // without (each chip pays its own seeding miss).
    auto hits = [](const runtime::ClusterReport& r) {
        int64_t h = 0;
        for (const auto& rep : r.replica_reports) {
            h += rep.prefix_hits;
        }
        return h;
    };
    EXPECT_EQ(hits(migrated), 7);
    EXPECT_EQ(hits(local), 6);
    EXPECT_EQ(local.kv_migrations, 0);
    EXPECT_EQ(local.interconnect_bytes, 0);
    EXPECT_EQ(local.kv_migration_stall, 0.0);
}

// The headline scenario: a dedicated prefill chip feeds a decode chip,
// KV flowing over the wire. The prefill replica ingests every prompt
// and produces zero tokens; the decode replica produces every token
// and pays one migration per request.
TEST_F(ClusterServingTest, PrefillTierFeedsDecodeTierOverTheWire)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto trace = shared_prefix_trace(6, /*pid=*/0, /*prefix_len=*/32,
                                     /*prompt_len=*/64,
                                     /*decode_tokens=*/3);

    runtime::ClusterOptions copts;
    copts.replicas = 2;
    copts.prefill_replicas = 1;
    copts.server = prefix_options();
    runtime::Cluster cluster(dc.machine(), copts);
    auto rep = cluster.serve(
        trace, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });

    ASSERT_EQ(rep.replica_reports.size(), 2u);
    const auto& pre = rep.replica_reports[0];
    const auto& dec = rep.replica_reports[1];
    // Every original request routed twice: once per tier.
    EXPECT_EQ(rep.requests, 6);
    EXPECT_EQ(rep.routed, 12);
    // The prefill chip ingests prompts, decodes nothing, frees its KV.
    EXPECT_EQ(pre.tokens, 0);
    EXPECT_GT(pre.prefill_iterations, 0);
    EXPECT_EQ(pre.decode_iterations, 0);
    // The decode chip produces all tokens, each request's KV arriving
    // as one interconnect migration of the full prompt.
    EXPECT_EQ(dec.tokens, 6 * 3);
    EXPECT_EQ(dec.prefill_iterations, 0);
    EXPECT_EQ(dec.kv_migrations, 6);
    EXPECT_EQ(dec.kv_migrated_tokens, 6 * 64);
    EXPECT_GT(dec.kv_migration_stall, 0.0);
    EXPECT_EQ(rep.tokens, 18);
    EXPECT_EQ(rep.interconnect_bytes,
              static_cast<int64_t>(6 * 64 * token_bytes()));
}

// A prefill-only request (decode_tokens == 0) completes at prompt
// ingestion on the plain single-chip Server too: it never joins the
// decode class and its KV frees immediately.
TEST_F(ClusterServingTest, PrefillOnlyRequestsCompleteAtIngestion)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    std::vector<runtime::Request> trace;
    for (int i = 0; i < 4; ++i) {
        runtime::Request r;
        r.arrival = i * 1e-4;
        r.phase = runtime::Phase::kPrefill;
        r.decode_tokens = 0;
        r.prompt_len = 64;
        trace.push_back(r);
    }
    runtime::Server server(dc.machine(), prefix_options());
    auto rep = server.serve(
        trace, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });
    EXPECT_EQ(rep.requests, 4);
    EXPECT_EQ(rep.tokens, 0);
    EXPECT_EQ(rep.decode_iterations, 0);
    EXPECT_GT(rep.prefill_iterations, 0);
    EXPECT_GT(rep.mean_ttft, 0.0);
    // A prefill-only request's latency IS its TTFT: completion at
    // prompt ingestion.
    EXPECT_DOUBLE_EQ(rep.mean_latency, rep.mean_ttft);
}

// Cluster roll-up consistency on a real serve: tokens and migration
// counters sum across replicas, the serialization is stable, and the
// summary renders.
TEST_F(ClusterServingTest, RollUpSumsReplicaReports)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto mixed = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(12, 2000.0, 11), 2,
        /*prefill_frac=*/0.6, /*high_frac=*/0.0, 11);
    runtime::tag_prompt_lengths(mixed, kSeq, 24.0, 11);

    runtime::ClusterOptions copts;
    copts.replicas = 3;
    copts.router = runtime::RouterPolicy::kLeastLoaded;
    copts.server = plain_options();
    runtime::Cluster cluster(dc.machine(), copts);
    auto rep = cluster.serve(
        mixed, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });

    int64_t tokens = 0;
    double makespan = 0.0;
    int routed = 0;
    for (const auto& r : rep.replica_reports) {
        tokens += r.tokens;
        makespan = std::max(makespan, r.makespan);
        routed += r.requests;
    }
    EXPECT_EQ(rep.tokens, tokens);
    EXPECT_EQ(rep.makespan, makespan);
    EXPECT_EQ(rep.routed, routed);
    EXPECT_EQ(rep.requests, 12);
    EXPECT_EQ(std::accumulate(rep.routed_per_replica.begin(),
                              rep.routed_per_replica.end(), 0),
              rep.routed);
    // Serving the same trace again is bit-identical (pure routing +
    // deterministic simulation).
    auto again = cluster.serve(
        mixed, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });
    EXPECT_EQ(rep.serialize_bits(), again.serialize_bits());
    EXPECT_FALSE(rep.summary().empty());
}

// ---------------------------------------------------------------------------
// Misconfiguration death tests

TEST_F(ClusterServingTest, DeathOnMisconfiguration)
{
    sim::Machine machine(tiny_chip());
    {
        runtime::ClusterOptions copts;
        copts.replicas = 0;
        copts.server = plain_options();
        EXPECT_DEATH(runtime::Cluster(machine, copts),
                     "replica count");
    }
    {
        // Session affinity keys on prefix ids: prefix_sharing off is
        // fatal.
        runtime::ClusterOptions copts;
        copts.replicas = 2;
        copts.router = runtime::RouterPolicy::kSessionAffinity;
        copts.server = plain_options();
        EXPECT_DEATH(runtime::Cluster(machine, copts),
                     "prefix_sharing");
    }
    {
        // Migration without KV modeling is fatal.
        runtime::ClusterOptions copts;
        copts.replicas = 2;
        copts.migrate_kv = true;
        copts.server = plain_options();
        EXPECT_DEATH(runtime::Cluster(machine, copts), "kv_budget");
    }
    {
        // A prefill tier needs KV modeling (the decode tier's KV
        // arrives by migration).
        runtime::ClusterOptions copts;
        copts.replicas = 2;
        copts.prefill_replicas = 1;
        copts.server = plain_options();
        EXPECT_DEATH(runtime::Cluster(machine, copts), "kv_budget");
    }
    {
        // ... and at least one decode replica left over.
        runtime::ClusterOptions copts;
        copts.replicas = 2;
        copts.prefill_replicas = 2;
        copts.server = prefix_options();
        EXPECT_DEATH(runtime::Cluster(machine, copts),
                     "decode replica");
    }
    {
        // Server-level: a migration tag without KV modeling is fatal
        // even when handed to the Server directly.
        runtime::Server server(machine, plain_options());
        std::vector<runtime::Request> trace(1);
        trace[0].phase = runtime::Phase::kDecode;
        trace[0].prompt_len = 16;
        trace[0].kv_migrate_tokens = 16;
        EXPECT_DEATH(
            server.serve(trace, nullptr, [](int) {
                return std::shared_ptr<const sim::SimProgram>();
            }),
            "needs KV modeling");
    }
    {
        // Decode-phase requests still require decode_tokens >= 1.
        runtime::Server server(machine, plain_options());
        std::vector<runtime::Request> trace(1);
        trace[0].phase = runtime::Phase::kDecode;
        trace[0].decode_tokens = 0;
        EXPECT_DEATH(
            server.serve(trace, nullptr, [](int) {
                return std::shared_ptr<const sim::SimProgram>();
            }),
            "decode_tokens");
    }
}

}  // namespace
}  // namespace elk
