/**
 * @file
 * KV-cache residency tests: the engine's KV segment lifecycle
 * (alloc/grow/fetch/pin/free with byte accounting), spill ordering at
 * the KV budget boundary, weights-vs-KV competition under SRAM
 * pressure in both residency policies, segment growth across a
 * park/resume cycle, the serving-level backpressure and accounting,
 * the zero-budget bit-identity anchor (kv_budget = 0, the default,
 * reproduces the KV-free scheduler bit-for-bit across all five design
 * modes), and death tests for segment misuse.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// A synthetic op with an HBM preload and a fixed execute time.
sim::SimOp
make_op(int id, double dram, double exec_time, uint64_t preload_space,
        uint64_t exec_space)
{
    sim::SimOp op;
    op.op_id = id;
    op.dram_bytes = dram;
    op.delivery_bytes = dram;
    op.exec_local_time = exec_time;
    op.preload_space = preload_space;
    op.exec_space = exec_space;
    op.flops = 1e6;
    return op;
}

// ---------------------------------------------------------------------------
// Graph metadata: the builders stamp the KV geometry next to seq

TEST(KvMetadataTest, BuildersStampKvBytesPerToken)
{
    graph::ModelConfig cfg = testing::tiny_llm_gqa();
    const uint64_t expect = 2ull * cfg.layers * cfg.kv_heads *
                            cfg.head_dim * cfg.dtype_bytes;
    EXPECT_EQ(graph::kv_bytes_per_token(cfg), expect);
    EXPECT_EQ(
        graph::build_decode_graph(cfg, 2, 64).kv_bytes_per_token(),
        expect);
    EXPECT_EQ(
        graph::build_forward_graph(cfg, 2, 64).kv_bytes_per_token(),
        expect);
    // DiT keeps no KV state between steps.
    EXPECT_EQ(graph::build_dit_graph(graph::dit_xl(), 1, 64)
                  .kv_bytes_per_token(),
              0u);
}

// ---------------------------------------------------------------------------
// Engine-level: segment lifecycle and byte accounting

TEST(KvSegmentTest, AllocGrowFreeTracksBytesAndPeak)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);  // kv uncapped

    EXPECT_TRUE(state.kv_would_fit(1 << 30));  // uncapped
    EXPECT_TRUE(state.kv_alloc(1, 4096));
    EXPECT_TRUE(state.kv_alloc(2, 2048));
    EXPECT_EQ(state.kv_bytes(), 6144u);
    EXPECT_EQ(state.kv_segments(), 2);
    EXPECT_TRUE(state.kv_resident(1));

    state.kv_grow(1, 1024);
    EXPECT_EQ(state.kv_segment_bytes(1), 5120u);
    EXPECT_EQ(state.kv_bytes(), 7168u);
    EXPECT_EQ(state.kv_bytes_peak(), 7168u);

    state.kv_free(2);
    EXPECT_EQ(state.kv_bytes(), 5120u);
    EXPECT_EQ(state.kv_segments(), 1);
    EXPECT_EQ(state.kv_bytes_peak(), 7168u);  // high-water sticks
    EXPECT_EQ(state.kv_evictions(), 0);
    state.kv_free(1);
    EXPECT_EQ(state.kv_bytes(), 0u);
}

TEST(KvSegmentTest, BudgetSpillsOldestFirstAndFetchReadmits)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState::Options opts;
    opts.kv_budget = 8192;  // fits two 4 KB segments
    sim::EngineState state(machine, opts);

    EXPECT_TRUE(state.kv_alloc(1, 4096));
    EXPECT_TRUE(state.kv_alloc(2, 4096));
    EXPECT_FALSE(state.kv_would_fit(4096));
    // Admitting a third spills the oldest (retire-order policy).
    EXPECT_TRUE(state.kv_alloc(3, 4096));
    EXPECT_FALSE(state.kv_resident(1));
    EXPECT_TRUE(state.kv_resident(2));
    EXPECT_TRUE(state.kv_resident(3));
    EXPECT_EQ(state.kv_evictions(), 1);
    EXPECT_EQ(state.kv_bytes(), 8192u);

    // Fetching the spilled segment back spills the new oldest.
    EXPECT_TRUE(state.kv_fetch(1));
    EXPECT_TRUE(state.kv_resident(1));
    EXPECT_FALSE(state.kv_resident(2));
    EXPECT_EQ(state.kv_evictions(), 2);

    // A pinned segment never spills: pin 1 and 3, then growth of 3
    // past the budget can only spill the grower itself — but it is
    // pinned too, so the overshoot stands.
    state.kv_pin(1);
    state.kv_pin(3);
    state.kv_grow(3, 4096);
    EXPECT_TRUE(state.kv_resident(3));
    EXPECT_EQ(state.kv_bytes(), 12288u);
    state.kv_unpin(3);
    // Unpinned now: the next over-budget growth spills it whole.
    state.kv_grow(3, 1024);
    EXPECT_FALSE(state.kv_resident(3));
    EXPECT_EQ(state.kv_segment_bytes(3), 9216u);
    EXPECT_TRUE(state.kv_resident(1));  // pinned survivor
    state.kv_unpin(1);

    // An oversized segment can never be admitted.
    EXPECT_FALSE(state.kv_fetch(3));
    state.kv_free(1);
    state.kv_free(2);
    state.kv_free(3);
}

// The satellite check: eviction ordering when weights and KV compete
// at the budget boundary. Retire-order takes the globally oldest
// entry regardless of class; frequency-aware takes the lowest worth —
// here the KV segment (core_count per resident byte) loses to a
// weight entry whose HBM savings per byte are far larger.
TEST(KvSegmentTest, WeightsAndKvCompeteUnderPressure)
{
    hw::ChipConfig cfg = hw::ChipConfig::tiny(16);
    sim::Machine machine(cfg);
    const double bw = cfg.hbm_total_bw;
    const uint64_t usable = cfg.usable_sram_per_core();
    const uint64_t space = 8 * 1024;

    sim::SimProgram weights;
    weights.ops.push_back(make_op(0, bw * 1e-3, 1e-4, space, space));
    weights.finalize_default_order();
    // The fat program squeezes occupancy just past usable SRAM, so
    // exactly one of {weight entry, KV segment} must go.
    sim::SimProgram fat;
    fat.ops.push_back(make_op(900, bw * 1e-4, 1e-4, space / 2,
                              usable - 2 * space + space / 2));
    fat.finalize_default_order();

    for (bool frequency : {false, true}) {
        sim::EngineState::Options opts;
        opts.residency_budget = usable;
        opts.policy = frequency
                          ? sim::ResidencyPolicy::kFrequencyAware
                          : sim::ResidencyPolicy::kRetireOrder;
        sim::EngineState state(machine, opts);
        state.begin(weights);
        while (state.step()) {
        }
        state.finish();
        ASSERT_EQ(state.resident_ops(), 1);  // weight entry, older
        ASSERT_TRUE(state.kv_alloc(7, space));  // KV segment, newer

        state.begin(fat);
        while (state.step()) {
        }
        state.finish();
        // (The fat op's own weights are admitted at its retire, so
        // op 900 appears in the resident set either way.)
        std::vector<int> ids = state.resident_op_ids();
        bool op0_resident =
            std::find(ids.begin(), ids.end(), 0) != ids.end();
        if (frequency) {
            // Worth: weight saves dram_bytes/space per byte (huge),
            // KV saves core_count per byte — the KV segment spills.
            EXPECT_TRUE(op0_resident) << "frequency";
            EXPECT_FALSE(state.kv_resident(7)) << "frequency";
            EXPECT_EQ(state.kv_evictions(), 1) << "frequency";
        } else {
            // Retire order: the weight entry is older and goes first.
            EXPECT_FALSE(op0_resident) << "retire-order";
            EXPECT_TRUE(state.kv_resident(7)) << "retire-order";
            EXPECT_EQ(state.resident_evictions(), 1) << "retire-order";
            EXPECT_EQ(state.kv_evictions(), 0) << "retire-order";
        }
        state.kv_free(7);
    }
}

// The satellite check: segment growth across a park/resume cycle. A
// pinned segment survives an interleaved program (whose own segment
// cannot displace it), the parked victim's result is bit-identical to
// an uninterrupted run, and growth after the pin drops spills per the
// budget.
TEST(KvSegmentTest, GrowthAcrossParkResumeCycle)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram victim;
    for (int i = 0; i < 5; ++i) {
        victim.ops.push_back(make_op(i, dram, 2e-4, 2048, 4096));
    }
    victim.finalize_default_order();
    sim::SimProgram interloper;
    interloper.ops.push_back(make_op(1000, dram / 2, 1e-4, 1024, 2048));
    interloper.finalize_default_order();

    sim::EngineState::Options opts;
    opts.kv_budget = 4096;

    // Reference: same KV setup, victim runs uninterrupted.
    sim::EngineState ref(machine, opts);
    ASSERT_TRUE(ref.kv_alloc(1, 4096));
    ref.kv_pin(1);
    ref.begin(victim);
    while (ref.step()) {
    }
    sim::SimResult uninterrupted = ref.finish();

    sim::EngineState state(machine, opts);
    ASSERT_TRUE(state.kv_alloc(1, 4096));
    state.kv_pin(1);  // the owning iteration is in flight
    state.begin(victim);
    for (int s = 0; s < 7; ++s) {
        ASSERT_TRUE(state.step());
    }
    sim::EngineState::Parked parked = state.park();

    // The interloper's segment finds the budget full of pinned KV:
    // born spilled, no eviction of the victim's state.
    EXPECT_FALSE(state.kv_alloc(2, 4096));
    state.begin(interloper);
    while (state.step()) {
    }
    state.finish();
    EXPECT_TRUE(state.kv_resident(1));
    EXPECT_EQ(state.kv_evictions(), 0);

    state.resume(std::move(parked));
    while (state.step()) {
    }
    sim::SimResult resumed = state.finish();
    EXPECT_EQ(uninterrupted.serialize_bits(), resumed.serialize_bits());

    // Iteration over: the pin drops and the segment grows by one
    // token past the budget — with nothing else to spill, it spills
    // itself (the thrash a tight budget produces).
    state.kv_unpin(1);
    state.kv_grow(1, 512);
    EXPECT_FALSE(state.kv_resident(1));
    EXPECT_EQ(state.kv_segment_bytes(1), 4608u);
    EXPECT_EQ(state.kv_evictions(), 1);
    state.kv_free(1);
    state.kv_free(2);
}

// ---------------------------------------------------------------------------
// Death tests: segment misuse panics

TEST(KvSegmentDeathTest, FreeingAnUnownedSegmentDies)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);
    EXPECT_DEATH(state.kv_free(42), "unowned segment");
}

TEST(KvSegmentDeathTest, DoubleAllocAndPinnedFreeDie)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::EngineState state(machine);
    ASSERT_TRUE(state.kv_alloc(1, 1024));
    EXPECT_DEATH(state.kv_alloc(1, 1024), "existing segment");
    state.kv_pin(1);
    EXPECT_DEATH(state.kv_free(1), "pinned segment");
}

// ---------------------------------------------------------------------------
// Serving-level

class KvServingTest : public ::testing::Test {
  protected:
    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), 128,
                                         tiny_chip(), copts, &cache_,
                                         1, sopts);
    }

    /// Machine-total KV bytes per token for the tiny test model.
    uint64_t
    token_bytes() const
    {
        return graph::kv_bytes_per_token(testing::tiny_llm());
    }

    compiler::PlanCache cache_;
};

// The acceptance anchor: kv_budget = 0 (unlimited KV, the default)
// serves bit-identically to the pre-KV scheduler across all five
// design modes — on the decode-only degenerate trace the plain
// serve() reference loop is the pre-PR baseline, and on a mixed
// prefill/decode trace setting kv_bytes_per_token without a budget
// must not perturb a single bit.
TEST_F(KvServingTest, ZeroBudgetIsBitIdenticalAcrossModes)
{
    auto arrivals = runtime::ArrivalTrace::poisson(10, 2500.0, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);

        // Decode-only: the plain serve() loop is the reference.
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.tokens_per_request = 3;
        runtime::Server server(dc.machine(), sopts);
        auto legacy = server.serve(
            arrivals, [&](int b) { return dc.program(b); });
        auto disagg = server.serve(
            runtime::decode_requests(arrivals, 3), nullptr,
            [&](int b) { return dc.program(b); });
        EXPECT_EQ(legacy.serialize_bits(), disagg.serialize_bits())
            << compiler::mode_name(mode);
        EXPECT_FALSE(disagg.kv_modeled);
        EXPECT_EQ(disagg.kv_bytes_peak, 0u);
        EXPECT_EQ(disagg.deferred_admissions, 0);

        // Mixed trace: kv_bytes_per_token without a budget is inert.
        auto mixed = runtime::make_request_trace(arrivals, 3,
                                                 /*prefill_frac=*/0.7,
                                                 /*high_frac=*/0.0, 7);
        runtime::ServerOptions base;
        base.max_batch = 4;
        base.max_prefill_batch = 2;
        base.max_prompt_len = 128;
        runtime::ServerOptions inert = base;
        inert.kv_bytes_per_token = token_bytes();
        auto serve_mixed = [&](const runtime::ServerOptions& o) {
            runtime::Server s(dc.machine(), o);
            return s.serve(
                mixed,
                [&](int b, int len) { return pc.program(b, len); },
                [&](int b) { return dc.program(b); });
        };
        EXPECT_EQ(serve_mixed(base).serialize_bits(),
                  serve_mixed(inert).serialize_bits())
            << compiler::mode_name(mode);
    }
}

// A tight budget produces admission backpressure: prompts wait until
// completions free KV, the deferral counter reports it, and the run
// still completes deterministically.
TEST_F(KvServingTest, TightBudgetDefersAdmissionsDeterministically)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto requests = runtime::prefill_requests(
        runtime::ArrivalTrace::poisson(6, 2000.0, 5), 3);

    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 2;
    sopts.max_prompt_len = 128;
    sopts.kv_bytes_per_token = token_bytes();
    // One full-length segment per core is 128 tokens x token_bytes /
    // 64 cores; budget 1.5 segments => the second prompt defers.
    uint64_t seg = 128 * token_bytes() / 64;
    sopts.kv_budget = seg + seg / 2;

    runtime::Server server(dc.machine(), sopts);
    auto serve_once = [&] {
        return server.serve(
            requests, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto rep = serve_once();
    EXPECT_TRUE(rep.kv_modeled);
    EXPECT_EQ(rep.requests, 6);
    EXPECT_GT(rep.deferred_admissions, 0);
    EXPECT_GT(rep.kv_bytes_peak, 0u);
    EXPECT_LE(rep.kv_bytes_peak, sopts.kv_budget);
    EXPECT_GT(rep.mean_kv_bytes, 0.0);
    // Deterministic: a second serve is bit-identical.
    EXPECT_EQ(rep.serialize_bits(), serve_once().serialize_bits());
}

// A budget smaller than a single segment: every segment is born
// spilled and streams back before each of its decode iterations —
// the permanent-thrash regime, visible as refetches and stall time.
TEST_F(KvServingTest, OversizedSegmentsThrashButComplete)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkDyn);
    auto requests = runtime::prefill_requests(
        runtime::ArrivalTrace::closed_loop(4), 3);

    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 2;
    sopts.max_prompt_len = 128;
    sopts.kv_bytes_per_token = token_bytes();
    sopts.kv_budget = 1024;  // well under one 128-token segment

    runtime::Server server(dc.machine(), sopts);
    auto rep = server.serve(
        requests, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });
    EXPECT_EQ(rep.requests, 4);
    EXPECT_GT(rep.kv_refetches, 0);
    EXPECT_GT(rep.kv_stall, 0.0);
    EXPECT_EQ(rep.kv_bytes_peak, 0u);  // nothing ever fit
    EXPECT_EQ(rep.tokens, 12);
}

// KV modeling composes with preemption: the victim's pinned segments
// survive the nested iteration, the VIP's prompt is force-admitted
// past backpressure, and the serve stays deterministic.
TEST_F(KvServingTest, PreemptionWithKvPinsVictimSegments)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);

    std::vector<runtime::Request> requests;
    for (int i = 0; i < 4; ++i) {
        runtime::Request r;
        r.arrival = 0.0;
        r.phase = runtime::Phase::kPrefill;
        r.decode_tokens = 16;
        requests.push_back(r);
    }
    runtime::Request vip;
    vip.arrival = 1e-3;  // lands mid-iteration
    vip.phase = runtime::Phase::kPrefill;
    vip.priority = runtime::Priority::kHigh;
    vip.decode_tokens = 2;
    requests.push_back(vip);

    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 2;
    sopts.max_prompt_len = 128;
    sopts.kv_bytes_per_token = token_bytes();
    uint64_t seg = 128 * token_bytes() / 64;
    sopts.kv_budget = 3 * seg;  // the VIP's segment needs a spill

    runtime::Server server(dc.machine(), sopts);
    auto serve_once = [&] {
        return server.serve(
            requests, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto rep = serve_once();
    EXPECT_EQ(rep.requests, 5);
    EXPECT_GE(rep.preemptions, 1);
    EXPECT_TRUE(rep.kv_modeled);
    EXPECT_EQ(rep.serialize_bits(), serve_once().serialize_bits());
}

}  // namespace
}  // namespace elk
