/**
 * @file
 * Multi-tenant SLO serving tests: the slo-off / slo-on single-tenant
 * bit-identity anchor across all five design modes, EDF claim order
 * and its deterministic request-id tie-break, fairness-share token
 * conservation, the bounded per-request deadline-preemption budget,
 * and death tests for tenant / deadline / share misconfiguration.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// Trailing serialize_bits() block sizes (see ServingReport::
/// serialize_bits — the prefix, SLO and chunk blocks are the fixed
/// suffix, chunk last). The anchor strips the SLO block and the
/// chunk/locality block behind it (chunking is off on both sides) to
/// compare everything in front.
constexpr size_t kSloBlockEmpty = 1 + 3 * 4 + 3 * 8 + 4 + 8 + 4;
constexpr size_t kTenantEntry = 4 + 4 + 8 + 8 + 4 + 4 + 8;
constexpr size_t kChunkBlock = 4 + 3 * 8 + 1 + 8;

/// @p bits minus the trailing SLO block carrying @p tenants entries
/// (and the chunk/locality block behind it).
std::string
strip_slo_block(const std::string& bits, int tenants)
{
    const size_t tail =
        kSloBlockEmpty + tenants * kTenantEntry + kChunkBlock;
    EXPECT_GE(bits.size(), tail);
    return bits.substr(0, bits.size() - tail);
}

class SloServingTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// Plain (KV-free) varlen serving options.
    runtime::ServerOptions
    plain_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        return sopts;
    }

    /// @p n identical prefill-only requests (decode_tokens = 0, so a
    /// request completes when its serial prefill iteration does) all
    /// arriving at t = 0 — the EDF-order probe trace.
    std::vector<runtime::Request>
    serial_prefill_trace(int n) const
    {
        std::vector<runtime::Request> trace;
        for (int i = 0; i < n; ++i) {
            runtime::Request r;
            r.arrival = 0.0;
            r.phase = runtime::Phase::kPrefill;
            r.decode_tokens = 0;
            r.prompt_len = kSeq;
            trace.push_back(r);
        }
        return trace;
    }

    compiler::PlanCache cache_;
};

// ---------------------------------------------------------------------------
// The acceptance anchor: slo on over a single-tenant, no-deadline
// trace reproduces the slo-off scheduler bit-for-bit — across all
// five design modes, on an all-prefill mixed-priority varlen trace.
// (All-prefill keeps every wait queue id-sorted, where EDF with every
// deadline at +inf degenerates to exactly the FIFO claim order.)

TEST_F(SloServingTest, SloSingleTenantIsBitIdenticalAcrossModes)
{
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(10, 2500.0, 7), 3,
        /*prefill_frac=*/1.0, /*high_frac=*/0.25, 7);
    runtime::tag_prompt_lengths(trace, kSeq, 32.0, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);
        auto prefill = [&](int b, int len) {
            return pc.program(b, len);
        };
        auto decode = [&](int b) { return dc.program(b); };

        runtime::Server off(dc.machine(), plain_options());
        auto off_rep = off.serve(trace, prefill, decode);

        runtime::ServerOptions slopts = plain_options();
        slopts.slo = true;  // tenants = 1, no shares, no deadlines
        runtime::Server on(dc.machine(), slopts);
        auto on_rep = on.serve(trace, prefill, decode);

        EXPECT_FALSE(off_rep.slo);
        ASSERT_TRUE(on_rep.slo);
        ASSERT_EQ(on_rep.tenants, 1);
        EXPECT_EQ(strip_slo_block(off_rep.serialize_bits(), 0),
                  strip_slo_block(on_rep.serialize_bits(), 1))
            << compiler::mode_name(mode);
        EXPECT_EQ(on_rep.tokens, off_rep.tokens);
        EXPECT_EQ(on_rep.makespan, off_rep.makespan);
        EXPECT_EQ(on_rep.iterations, off_rep.iterations);
        EXPECT_EQ(on_rep.preemptions, off_rep.preemptions);
        EXPECT_EQ(on_rep.mean_latency, off_rep.mean_latency);
        EXPECT_EQ(on_rep.deadline_requests, 0);
        EXPECT_EQ(on_rep.deadline_misses, 0);
        EXPECT_EQ(on_rep.deadline_preemptions, 0);
        ASSERT_EQ(on_rep.tenant_shares.size(), 1u);
        EXPECT_EQ(on_rep.tenant_shares[0].requests, off_rep.requests);
        EXPECT_DOUBLE_EQ(on_rep.tenant_shares[0].token_share, 1.0);
    }
}

// ---------------------------------------------------------------------------
// EDF claim order on serialized identical requests

// Two identical prefill-only requests arrive together and serve one
// at a time: the trace's completion *times* are fixed, only which
// request gets the earlier one depends on the claim order. A
// calibration pass (no deadlines — FIFO by id) measures the two
// completion times; then giving the *second* request a deadline equal
// to the earlier completion is only meetable if EDF reorders it to
// the front of the queue.
TEST_F(SloServingTest, EdfClaimsTightestDeadlineFirst)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    runtime::ServerOptions slopts = plain_options();
    slopts.max_prefill_batch = 1;
    slopts.slo = true;

    auto trace = serial_prefill_trace(2);
    runtime::Server calib(dc.machine(), slopts);
    auto base = calib.serve(trace, prefill, decode);
    // Reconstructing c_first from the mean rounds by an ulp, so the
    // deadlines below carry a nanosecond of slack — far below the
    // iteration-scale gap to c_second.
    const double c_first =
        2.0 * base.mean_latency - base.max_latency + 1e-9;
    const double c_second = base.max_latency;
    ASSERT_LT(c_first + 1e-6, c_second);

    // FIFO serves id 0 first, so id 1 would finish at c_second and
    // miss; EDF claims the deadline carrier first and it finishes at
    // exactly c_first (the identical requests swap places on the
    // same timeline).
    trace[1].deadline_s = c_first;
    runtime::Server edf(dc.machine(), slopts);
    auto rep = edf.serve(trace, prefill, decode);
    EXPECT_EQ(rep.deadline_requests, 1);
    EXPECT_EQ(rep.deadline_misses, 0);
    EXPECT_DOUBLE_EQ(rep.slo_attainment, 1.0);
    EXPECT_DOUBLE_EQ(rep.max_lateness, 0.0);
    EXPECT_EQ(rep.makespan, base.makespan);
}

// Equal deadlines tie-break on request id: with both requests tagged
// at the earlier completion time, only the lower id can meet it. The
// per-tenant roll-up (one tenant per request) pins down which.
TEST_F(SloServingTest, EdfTiesBreakOnRequestId)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    runtime::ServerOptions slopts = plain_options();
    slopts.max_prefill_batch = 1;
    slopts.slo = true;
    slopts.tenants = 2;

    auto trace = serial_prefill_trace(2);
    trace[0].tenant = 0;
    trace[1].tenant = 1;
    runtime::Server calib(dc.machine(), slopts);
    auto base = calib.serve(trace, prefill, decode);
    const double c_first =
        2.0 * base.mean_latency - base.max_latency + 1e-9;

    trace[0].deadline_s = c_first;
    trace[1].deadline_s = c_first;
    runtime::Server tied(dc.machine(), slopts);
    auto rep = tied.serve(trace, prefill, decode);
    EXPECT_EQ(rep.deadline_requests, 2);
    EXPECT_EQ(rep.deadline_misses, 1);
    ASSERT_EQ(rep.tenant_shares.size(), 2u);
    EXPECT_EQ(rep.tenant_shares[0].deadline_misses, 0);  // id 0 first
    EXPECT_EQ(rep.tenant_shares[1].deadline_misses, 1);
}

// ---------------------------------------------------------------------------
// Fairness shares

// The per-tenant roll-up conserves the serve's work exactly: charged
// tokens (prompt ingestion + decode) partition across tenants, the
// token shares partition the total, and every request lands in
// exactly one tenant row.
TEST_F(SloServingTest, FairnessSharesConserveWorkTokens)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kStatic);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kStatic);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(24, 4000.0, 11), 3,
        /*prefill_frac=*/0.7, /*high_frac=*/0.1, 11);
    runtime::tag_prompt_lengths(trace, kSeq, 32.0, 11);
    runtime::tag_tenants(trace, /*tenants=*/3, /*seed=*/11);

    runtime::ServerOptions slopts = plain_options();
    slopts.slo = true;
    slopts.tenants = 3;
    slopts.tenant_shares = {4.0, 2.0, 1.0};
    runtime::Server server(dc.machine(), slopts);
    auto rep = server.serve(trace, prefill, decode);

    ASSERT_EQ(rep.tenant_shares.size(), 3u);
    int64_t tokens = 0;
    int requests = 0;
    double share_sum = 0.0;
    for (const auto& t : rep.tenant_shares) {
        EXPECT_GT(t.requests, 0);  // the seeded tagging hits all 3
        tokens += t.tokens;
        requests += t.requests;
        share_sum += t.token_share;
    }
    EXPECT_EQ(tokens, rep.tokens + rep.prompt_tokens);
    EXPECT_EQ(requests, rep.requests);
    EXPECT_NEAR(share_sum, 1.0, 1e-12);
    // Contention across three tenants must have opened windows.
    EXPECT_GT(rep.fairness_windows, 0);
}

// tag_tenants with tenants == 1 is an exact no-op (no draws, tenant
// stays 0); with N > 1 every id lands in [0, N).
TEST_F(SloServingTest, TagTenantsIsSeededAndRangeBounded)
{
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(32, 4000.0, 3), 2,
        /*prefill_frac=*/0.5, /*high_frac=*/0.0, 3);
    auto copy = trace;
    runtime::tag_tenants(copy, 1, /*seed=*/3);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(copy[i].tenant, 0);
    }
    runtime::tag_tenants(trace, 4, /*seed=*/3);
    auto again = copy;
    runtime::tag_tenants(again, 4, /*seed=*/3);
    bool multi = false;
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_GE(trace[i].tenant, 0);
        EXPECT_LT(trace[i].tenant, 4);
        EXPECT_EQ(trace[i].tenant, again[i].tenant);  // seed-stable
        multi |= trace[i].tenant != trace[0].tenant;
    }
    EXPECT_TRUE(multi);
}

// ---------------------------------------------------------------------------
// Deadline preemption budget

// A tight uniform SLO over a bursty all-prefill trace triggers
// deadline preemptions; preempt_budget = 0 disables them entirely,
// and a budget of B bounds them by B per request. The preemption
// machinery reuses the park/resume frames, so the deadline count is
// always a subset of the total.
TEST_F(SloServingTest, PreemptBudgetBoundsDeadlinePreemptions)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    const int n = 16;
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(n, 3000.0, 5), 2,
        /*prefill_frac=*/1.0, /*high_frac=*/0.0, 5);
    runtime::tag_prompt_lengths(trace, kSeq, 48.0, 5);
    runtime::tag_tenants(trace, 2, /*seed=*/5);
    runtime::tag_deadlines(trace, /*slo_s=*/1e-4);

    auto serve_with_budget = [&](int budget) {
        runtime::ServerOptions slopts = plain_options();
        slopts.max_prefill_batch = 1;
        slopts.slo = true;
        slopts.tenants = 2;
        slopts.preempt_budget = budget;
        runtime::Server server(dc.machine(), slopts);
        return server.serve(trace, prefill, decode);
    };

    auto off = serve_with_budget(0);
    EXPECT_EQ(off.deadline_preemptions, 0);

    auto on = serve_with_budget(2);
    EXPECT_GT(on.deadline_preemptions, 0);
    EXPECT_LE(on.deadline_preemptions, 2 * n);
    EXPECT_LE(on.deadline_preemptions, on.preemptions);
    // Every request still completes despite the parked iterations.
    EXPECT_EQ(on.requests, n);
    EXPECT_EQ(on.tokens, off.tokens);
}

// ---------------------------------------------------------------------------
// Misconfiguration death tests

using SloDeathTest = SloServingTest;

TEST_F(SloDeathTest, RejectsTaggedRequestsWithoutSlo)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kBasic);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kBasic);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    auto tenant_tagged = serial_prefill_trace(1);
    tenant_tagged[0].tenant = 1;
    runtime::Server s1(dc.machine(), plain_options());
    EXPECT_DEATH(s1.serve(tenant_tagged, prefill, decode),
                 "need ServerOptions::slo");

    auto deadline_tagged = serial_prefill_trace(1);
    deadline_tagged[0].deadline_s = 1.0;
    runtime::Server s2(dc.machine(), plain_options());
    EXPECT_DEATH(s2.serve(deadline_tagged, prefill, decode),
                 "need ServerOptions::slo");
}

TEST_F(SloDeathTest, RejectsBadTenantAndDeadlineTags)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kBasic);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kBasic);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    runtime::ServerOptions slopts = plain_options();
    slopts.slo = true;
    slopts.tenants = 2;

    auto out_of_range = serial_prefill_trace(1);
    out_of_range[0].tenant = 2;
    runtime::Server s1(dc.machine(), slopts);
    EXPECT_DEATH(s1.serve(out_of_range, prefill, decode),
                 "request tenant must be in");

    auto before_arrival = serial_prefill_trace(1);
    before_arrival[0].arrival = 2.0;
    before_arrival[0].deadline_s = 1.0;
    runtime::Server s2(dc.machine(), slopts);
    EXPECT_DEATH(s2.serve(before_arrival, prefill, decode),
                 "must not precede");
}

TEST_F(SloDeathTest, RejectsBadOptionCombinations)
{
    sim::Machine machine(tiny_chip());

    runtime::ServerOptions no_slo = plain_options();
    no_slo.tenants = 2;
    EXPECT_DEATH(runtime::Server(machine, no_slo),
                 "multi-tenant shares need");

    runtime::ServerOptions mismatched = plain_options();
    mismatched.slo = true;
    mismatched.tenants = 2;
    mismatched.tenant_shares = {1.0, 2.0, 3.0};
    EXPECT_DEATH(runtime::Server(machine, mismatched),
                 "one weight per tenant");

    runtime::ServerOptions negative_share = plain_options();
    negative_share.slo = true;
    negative_share.tenants = 2;
    negative_share.tenant_shares = {1.0, -1.0};
    EXPECT_DEATH(runtime::Server(machine, negative_share),
                 "share weights must be");

    runtime::ServerOptions negative_budget = plain_options();
    negative_budget.slo = true;
    negative_budget.preempt_budget = -1;
    EXPECT_DEATH(runtime::Server(machine, negative_budget),
                 "preempt_budget must be");

    std::vector<runtime::Request> empty;
    EXPECT_DEATH(runtime::tag_tenants(empty, 0, 7), "tenants must be");
}

}  // namespace
}  // namespace elk
