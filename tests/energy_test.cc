/**
 * @file
 * Tests for the §7-extension energy model.
 */
#include <gtest/gtest.h>

#include "cost/energy_model.h"
#include "elk/compiler.h"
#include "runtime/executor.h"
#include "test_helpers.h"

namespace elk::cost {
namespace {

class EnergyTest : public ::testing::Test {
  protected:
    EnergyTest()
        : h_(testing::CompilerHarness::tiny()),
          compiler_(h_.graph, h_.cfg),
          machine_(h_.cfg)
    {
    }

    std::pair<sim::SimProgram, sim::SimResult>
    run(compiler::Mode mode)
    {
        compiler::CompileOptions opts;
        opts.mode = mode;
        auto compiled = compiler_.compile(opts);
        auto program = runtime::lower_to_sim(h_.graph, compiled.plan,
                                             compiler_.context());
        sim::Engine engine(machine_);
        return {program, engine.run(program)};
    }

    testing::CompilerHarness h_;
    compiler::Compiler compiler_;
    sim::Machine machine_;
};

TEST_F(EnergyTest, ComponentsPositiveAndSum)
{
    auto [program, result] = run(compiler::Mode::kElkDyn);
    auto report = estimate_energy(program, result, h_.cfg,
                                  machine_.traffic().avg_hops());
    EXPECT_GT(report.compute, 0.0);
    EXPECT_GT(report.sram, 0.0);
    EXPECT_GT(report.noc, 0.0);
    EXPECT_GT(report.hbm, 0.0);
    EXPECT_GT(report.static_energy, 0.0);
    EXPECT_NEAR(report.total(),
                report.compute + report.sram + report.noc + report.hbm +
                    report.static_energy,
                1e-15);
    EXPECT_GT(report.average_power(result.total_time), 0.0);
}

TEST_F(EnergyTest, FasterScheduleBurnsLessStaticEnergy)
{
    auto [bp, br] = run(compiler::Mode::kBasic);
    auto [fp, fr] = run(compiler::Mode::kElkFull);
    double hops = machine_.traffic().avg_hops();
    auto basic = estimate_energy(bp, br, h_.cfg, hops);
    auto full = estimate_energy(fp, fr, h_.cfg, hops);
    // Same model => same DRAM/compute energy (within chunking noise);
    // the faster schedule pays less leakage.
    EXPECT_LT(full.static_energy, basic.static_energy * 1.001);
    EXPECT_NEAR(full.compute, basic.compute, basic.compute * 1e-9);
}

TEST_F(EnergyTest, HbmEnergyTracksUniqueBytes)
{
    auto [program, result] = run(compiler::Mode::kElkDyn);
    EnergyParams params;
    auto report = estimate_energy(program, result, h_.cfg,
                                  machine_.traffic().avg_hops(), params);
    double expected = static_cast<double>(h_.graph.total_hbm_bytes()) *
                      params.pj_per_hbm_byte * 1e-12;
    EXPECT_NEAR(report.hbm, expected, expected * 1e-6);
}

TEST_F(EnergyTest, ParamsScaleLinearly)
{
    auto [program, result] = run(compiler::Mode::kElkDyn);
    double hops = machine_.traffic().avg_hops();
    EnergyParams base;
    EnergyParams doubled = base;
    doubled.pj_per_hbm_byte *= 2;
    auto a = estimate_energy(program, result, h_.cfg, hops, base);
    auto b = estimate_energy(program, result, h_.cfg, hops, doubled);
    EXPECT_NEAR(b.hbm, 2.0 * a.hbm, a.hbm * 1e-9);
    EXPECT_NEAR(b.compute, a.compute, 1e-15);
}

}  // namespace
}  // namespace elk::cost
