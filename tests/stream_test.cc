/**
 * @file
 * Tests for chunked streamed-operand support: operators whose KV
 * stream exceeds on-chip capacity are processed in HBM-fed chunks
 * (flash-attention style), splitting their DRAM traffic between the
 * preload phase and the execution phase.
 */
#include <gtest/gtest.h>

#include "elk/compiler.h"
#include "plan/plan_enumerator.h"
#include "runtime/executor.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// A pure-stream attention op whose KV exceeds total on-chip SRAM.
graph::Operator
huge_kv_op(const hw::ChipConfig& cfg)
{
    graph::Operator op;
    op.kind = graph::OpKind::kBatchMatMul;
    op.name = "huge_attn_score";
    op.batch = 64 * 56;
    op.m = 1;
    op.k = 128;
    op.n = 4096;
    op.w_share_rows = 1;
    op.stream_bytes =
        static_cast<uint64_t>(op.batch) * op.k * op.n * 2;
    op.act_in_bytes = static_cast<uint64_t>(op.batch) * op.k * 2;
    graph::finalize_flops(op);
    // Precondition for the test: it really is bigger than the chip.
    EXPECT_GT(op.stream_bytes, cfg.total_usable_sram());
    return op;
}

class StreamTest : public ::testing::Test {
  protected:
    StreamTest()
    {
        cfg_ = hw::ChipConfig::ipu_pod4();
        topo_ = std::make_unique<hw::Topology>(cfg_);
        traffic_ = std::make_unique<hw::TrafficModel>(*topo_, cfg_);
        ctx_.cfg = &cfg_;
        ctx_.traffic = traffic_.get();
        ctx_.exec_cost = &cost_;
    }

    hw::ChipConfig cfg_;
    std::unique_ptr<hw::Topology> topo_;
    std::unique_ptr<hw::TrafficModel> traffic_;
    cost::AnalyticExecCost cost_;
    plan::PlanContext ctx_;
};

TEST_F(StreamTest, OversizedKvStillHasPlans)
{
    auto op = huge_kv_op(cfg_);
    auto front = plan::enumerate_exec_plans(op, ctx_);
    ASSERT_FALSE(front.empty());
    // Some plan must stream chunks (repl_w > 1 with no sharing group).
    bool chunked = false;
    for (const auto& p : front) {
        EXPECT_LE(p.exec_space, ctx_.sram_budget());
        if (p.repl_w > 1 && p.group_w == 1) {
            chunked = true;
            EXPECT_GT(p.hbm_stream_bytes, 0.0);
        }
    }
    EXPECT_TRUE(chunked);
}

TEST_F(StreamTest, StreamTimeBoundsExecution)
{
    auto op = huge_kv_op(cfg_);
    auto front = plan::enumerate_exec_plans(op, ctx_);
    for (const auto& p : front) {
        if (p.hbm_stream_bytes > 0) {
            double stream_floor =
                p.hbm_stream_bytes *
                static_cast<double>(p.cores_used()) / cfg_.hbm_total_bw;
            EXPECT_GE(p.exec_time, stream_floor - 1e-12)
                << p.to_string();
        }
    }
}

TEST_F(StreamTest, ChunkedPreloadDefersDram)
{
    auto op = huge_kv_op(cfg_);
    auto front = plan::enumerate_exec_plans(op, ctx_);
    for (const auto& exec : front) {
        auto preloads = plan::enumerate_preload_plans(op, exec, ctx_);
        ASSERT_EQ(preloads.size(), 1u) << "streams have no gamma choice";
        const auto& pre = preloads[0];
        if (exec.repl_w > 1 && exec.group_w == 1) {
            EXPECT_NEAR(pre.dram_fraction, 1.0 / exec.repl_w, 1e-12);
        } else {
            EXPECT_DOUBLE_EQ(pre.dram_fraction, 1.0);
        }
        EXPECT_DOUBLE_EQ(pre.distribute_bytes, 0.0);
    }
}

TEST_F(StreamTest, SharedWeightsNeverStream)
{
    // Weight chunk-streaming exists only where the partition leaves W
    // unshared (group_w == 1, e.g. single-row-part plans); plans with
    // a real sharing group always materialize their residency.
    graph::Operator op;
    op.kind = graph::OpKind::kMatMul;
    op.name = "weights";
    op.m = 32;
    op.k = 5120;
    op.n = 13824;
    op.param_bytes = static_cast<uint64_t>(op.k) * op.n * 2;
    op.act_in_bytes = static_cast<uint64_t>(op.m) * op.k * 2;
    graph::finalize_flops(op);
    for (const auto& p : plan::enumerate_exec_plans(op, ctx_)) {
        if (p.group_w > 1) {
            EXPECT_DOUBLE_EQ(p.hbm_stream_bytes, 0.0) << p.to_string();
        } else if (p.hbm_stream_bytes > 0) {
            EXPECT_GT(p.repl_w, 1) << p.to_string();
        }
    }
}

TEST_F(StreamTest, OversizedModelCompilesAndRuns)
{
    // OPT-30B at batch 64, seq 4096: single attention operators hold
    // more KV than the whole chip. The compiler must chunk them and
    // the simulated run must respect memory.
    auto graph = graph::build_decode_graph(graph::opt_30b(), 64, 4096);
    compiler::Compiler comp(graph, cfg_);
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkDyn;
    auto result = comp.compile(opts);
    sim::Machine machine(cfg_);
    auto run =
        runtime::run_plan(machine, graph, result.plan, comp.context());
    EXPECT_GT(run.total_time, 0.0);
    EXPECT_FALSE(run.memory_exceeded);
    // HBM floor: all unique bytes still cross the DRAM interface.
    double floor = static_cast<double>(graph.total_hbm_bytes()) /
                   cfg_.hbm_total_bw;
    EXPECT_GE(run.total_time, floor * 0.999);
}

TEST_F(StreamTest, EngineChargesExecStream)
{
    // A single op with all DRAM deferred to execution must still take
    // at least the DRAM time.
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const auto& cfg = machine.config();
    sim::SimProgram prog;
    sim::SimOp op;
    op.op_id = 0;
    op.exec_local_time = 1e-5;
    op.exec_stream_dram = cfg.hbm_total_bw * 2e-3;  // 2 ms of DRAM
    op.preload_space = 0;
    op.exec_space = 1024;
    op.flops = 1e6;
    prog.ops.push_back(op);
    prog.finalize_default_order();
    sim::Engine engine(machine);
    auto run = engine.run(prog);
    EXPECT_GE(run.total_time, 2e-3 - 1e-9);
}

}  // namespace
}  // namespace elk
