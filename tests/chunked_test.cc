/**
 * @file
 * Chunked prefill tests: the chunk-off / single-chunk bit-identity
 * anchor across all five design modes (plain and KV-modeled), the
 * chunk_plan() split math, TTFT firing on the final chunk, per-chunk
 * KV growth (ramped mean, unchanged peak) surviving a park/resume
 * cycle, decode interleaving between the chunks of a long prompt,
 * KV-locality skip accounting, and death tests for invalid chunk
 * sizes and locality without KV modeling.
 */
#include <gtest/gtest.h>

#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// The trailing chunk/locality block of ServingReport::serialize_bits
/// (prefill_chunk + three int64 counters + kv_locality byte +
/// kv_locality_skips) — the only block that may differ between a
/// chunk-off and a single-chunk serve of the same trace.
constexpr size_t kChunkBlock = 4 + 3 * 8 + 1 + 8;

/// @p bits minus the trailing chunk/locality block.
std::string
strip_chunk_block(const std::string& bits)
{
    EXPECT_GE(bits.size(), kChunkBlock);
    return bits.substr(0, bits.size() - kChunkBlock);
}

class ChunkedServingTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// Plain (KV-free) varlen serving options.
    runtime::ServerOptions
    plain_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        return sopts;
    }

    /// Machine-total KV bytes per token for the tiny test model.
    uint64_t
    token_bytes() const
    {
        return graph::kv_bytes_per_token(testing::tiny_llm());
    }

    /// ServerOptions with KV modeling on and room for a few
    /// full-length segments per core.
    runtime::ServerOptions
    kv_options() const
    {
        runtime::ServerOptions sopts = plain_options();
        sopts.kv_bytes_per_token = token_bytes();
        sopts.kv_budget = 4 * kSeq * token_bytes() / 64;
        return sopts;
    }

    /// One full-length prefill-only prompt (decode_tokens = 0, so the
    /// request completes — and TTFT fires — when its last prompt
    /// token is ingested).
    std::vector<runtime::Request>
    long_prompt_trace() const
    {
        runtime::Request r;
        r.arrival = 0.0;
        r.phase = runtime::Phase::kPrefill;
        r.decode_tokens = 0;
        r.prompt_len = kSeq;
        return {r};
    }

    compiler::PlanCache cache_;
};

// ---------------------------------------------------------------------------
// chunk_plan() split math

TEST_F(ChunkedServingTest, ChunkPlanSplitsFullChunksPlusResidual)
{
    EXPECT_EQ(runtime::chunk_plan(100, 32),
              (std::vector<int>{32, 32, 32, 4}));
    EXPECT_EQ(runtime::chunk_plan(128, 32),
              (std::vector<int>{32, 32, 32, 32}));
    EXPECT_EQ(runtime::chunk_plan(129, 128),
              (std::vector<int>{128, 1}));
    // A prompt no longer than the chunk is a single chunk — the
    // degenerate case the bit-identity anchor rides on.
    EXPECT_EQ(runtime::chunk_plan(17, 32), (std::vector<int>{17}));
    EXPECT_EQ(runtime::chunk_plan(32, 32), (std::vector<int>{32}));
    EXPECT_EQ(runtime::chunk_plan(1, 1), (std::vector<int>{1}));
    // The pieces always partition the prompt and only the last may be
    // short.
    for (int len : {1, 7, 64, 100, 127, 128}) {
        auto plan = runtime::chunk_plan(len, 16);
        int sum = 0;
        for (size_t i = 0; i < plan.size(); ++i) {
            sum += plan[i];
            if (i + 1 < plan.size()) {
                EXPECT_EQ(plan[i], 16);
            }
            EXPECT_GE(plan[i], 1);
            EXPECT_LE(plan[i], 16);
        }
        EXPECT_EQ(sum, len);
    }
}

// ---------------------------------------------------------------------------
// The acceptance anchor: prefill_chunk large enough that every prompt
// fits one chunk reproduces the unchunked scheduler bit-for-bit —
// across all five design modes, on a mixed-priority mixed-phase trace
// of full-length prompts. (Equal lengths keep the length-aware
// prefill order identical to FIFO: remaining length ties on every
// request, deadlines are +inf, so the (deadline, remaining, id) sort
// degenerates to exactly the id order the unchunked queues hold.)

TEST_F(ChunkedServingTest, SingleChunkIsBitIdenticalAcrossModes)
{
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(10, 2500.0, 7), 3,
        /*prefill_frac=*/0.7, /*high_frac=*/0.25, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);
        auto serve = [&](int chunk) {
            runtime::ServerOptions sopts = plain_options();
            sopts.prefill_chunk = chunk;
            runtime::Server s(dc.machine(), sopts);
            return s.serve(
                trace,
                [&](int b, int len) { return pc.program(b, len); },
                [&](int b) { return dc.program(b); });
        };
        auto off = serve(0);
        auto on = serve(kSeq);
        EXPECT_EQ(strip_chunk_block(off.serialize_bits()),
                  strip_chunk_block(on.serialize_bits()))
            << compiler::mode_name(mode);
        EXPECT_EQ(off.prefill_chunk, 0);
        EXPECT_EQ(on.prefill_chunk, kSeq);
        // Single-chunk prompts: one chunk claim per prefill prompt,
        // nothing ever mid-prompt, so no interleaves either.
        EXPECT_EQ(on.chunked_prompts, 0);
        EXPECT_EQ(on.chunk_decode_interleaves, 0);
        EXPECT_GT(on.prefill_chunks, 0);
        EXPECT_EQ(off.prefill_chunks, 0);
    }
}

// The same anchor with KV modeling on: single-chunk admission gates
// on the full prompt's KV need and allocates the same segments in the
// same order, so the KV counters match byte-for-byte too.
TEST_F(ChunkedServingTest, SingleChunkWithKvIsBitIdentical)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto trace = runtime::make_request_trace(
        runtime::ArrivalTrace::poisson(12, 2500.0, 9), 3,
        /*prefill_frac=*/1.0, /*high_frac=*/0.0, 9);
    auto serve = [&](int chunk) {
        runtime::ServerOptions sopts = kv_options();
        sopts.prefill_chunk = chunk;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto off = serve(0);
    auto on = serve(kSeq);
    ASSERT_TRUE(on.kv_modeled);
    EXPECT_EQ(strip_chunk_block(off.serialize_bits()),
              strip_chunk_block(on.serialize_bits()));
    EXPECT_EQ(on.kv_bytes_peak, off.kv_bytes_peak);
    EXPECT_EQ(on.deferred_admissions, off.deferred_admissions);
}

// ---------------------------------------------------------------------------
// TTFT fires when the final chunk retires

TEST_F(ChunkedServingTest, TtftFiresWhenFinalChunkRetires)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto serve = [&](int chunk) {
        runtime::ServerOptions sopts = plain_options();
        sopts.prefill_chunk = chunk;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            long_prompt_trace(),
            [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto off = serve(0);
    EXPECT_EQ(off.prefill_iterations, 1);

    auto rep = serve(32);  // chunk_plan(128, 32) = {32, 32, 32, 32}
    EXPECT_EQ(rep.requests, 1);
    EXPECT_EQ(rep.prefill_iterations, 4);
    EXPECT_EQ(rep.prefill_chunks, 4);
    EXPECT_EQ(rep.chunked_prompts, 1);
    // Nothing decodes, so no interleaving either.
    EXPECT_EQ(rep.chunk_decode_interleaves, 0);
    // Every chunk runs from the (batch 1, len 32) bucket.
    ASSERT_EQ(rep.prefill_bucket_iterations.size(), 1u);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].batch, 1);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].prompt_len, 32);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].iterations, 4);
    // All 128 prompt tokens were ingested exactly once, across the
    // chunks.
    EXPECT_EQ(rep.prompt_tokens, kSeq);
    EXPECT_EQ(rep.prompt_tokens, off.prompt_tokens);
    // TTFT is the *final* chunk's retirement — the whole serve, since
    // this request is all the serve does.
    EXPECT_GT(rep.max_ttft, 0.0);
    EXPECT_DOUBLE_EQ(rep.max_ttft, rep.makespan);
    EXPECT_DOUBLE_EQ(rep.mean_ttft, rep.max_ttft);
}

// ---------------------------------------------------------------------------
// Per-chunk KV growth

// Chunking does not change how much KV the prompt ends up owning
// (decode needs the full context), only *when* it appears: the peak
// matches the unchunked serve while the time-weighted mean ramps up
// chunk by chunk instead of sitting at the full size from the first
// iteration.
TEST_F(ChunkedServingTest, KvGrowsPerChunkRampingTheMean)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto serve = [&](int chunk) {
        runtime::ServerOptions sopts = kv_options();
        sopts.prefill_chunk = chunk;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            long_prompt_trace(),
            [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto off = serve(0);
    auto on = serve(16);
    ASSERT_TRUE(on.kv_modeled);
    EXPECT_GT(on.kv_bytes_peak, 0u);
    EXPECT_EQ(on.kv_bytes_peak, off.kv_bytes_peak);
    EXPECT_LT(on.mean_kv_bytes, off.mean_kv_bytes);
    EXPECT_EQ(on.kv_evictions, 0);
    EXPECT_EQ(on.deferred_admissions, 0);
}

// The per-chunk growth choreography survives a preemption mid-
// sequence: a high-priority prompt parks the long prompt's chunk
// iteration, runs its own (chunked) prefill in the nested frame, and
// both segments keep growing to completion — the engine's pin/grow
// checks would panic on any mis-sequenced KV call.
TEST_F(ChunkedServingTest, KvGrowthSurvivesParkAndResume)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto trace = long_prompt_trace();
    runtime::Request high;
    high.arrival = 1e-4;  // lands mid-chunk-sequence
    high.phase = runtime::Phase::kPrefill;
    high.priority = runtime::Priority::kHigh;
    high.decode_tokens = 0;
    high.prompt_len = 64;
    trace.push_back(high);

    runtime::ServerOptions sopts = kv_options();
    sopts.prefill_chunk = 32;
    runtime::Server s(dc.machine(), sopts);
    auto rep = s.serve(
        trace, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });
    EXPECT_EQ(rep.requests, 2);
    EXPECT_GE(rep.preemptions, 1);
    // chunk_plan(128, 32) + chunk_plan(64, 32) chunks, each claimed
    // exactly once despite the parked frame.
    EXPECT_EQ(rep.prefill_chunks, 4 + 2);
    EXPECT_EQ(rep.chunked_prompts, 2);
    EXPECT_EQ(rep.prompt_tokens, 128 + 64);
    EXPECT_GT(rep.kv_bytes_peak, 0u);
}

// ---------------------------------------------------------------------------
// Decode interleaving between chunks

// With decode work waiting, the scheduler yields one decode iteration
// between the chunks of a long prompt — so decode latency stops
// queueing behind the whole prompt and its p50 strictly improves over
// the unchunked serve of the same trace.
TEST_F(ChunkedServingTest, ChunksInterleaveWaitingDecode)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto trace = long_prompt_trace();
    for (int i = 0; i < 4; ++i) {
        runtime::Request r;
        r.arrival = 0.0;
        r.phase = runtime::Phase::kDecode;
        r.decode_tokens = 2;
        trace.push_back(r);
    }
    auto serve = [&](int chunk) {
        runtime::ServerOptions sopts = plain_options();
        sopts.prefill_chunk = chunk;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto off = serve(0);
    auto on = serve(16);
    EXPECT_EQ(off.chunk_decode_interleaves, 0);
    EXPECT_GT(on.chunk_decode_interleaves, 0);
    // Same work either way...
    EXPECT_EQ(on.requests, off.requests);
    EXPECT_EQ(on.tokens, off.tokens);
    EXPECT_EQ(on.prompt_tokens, off.prompt_tokens);
    // ...but the decode-phase requests (the latency median over this
    // trace) stop waiting for the whole 128-token prefill.
    EXPECT_LT(on.p50_latency, off.p50_latency);
}

// ---------------------------------------------------------------------------
// KV-locality skip accounting

TEST_F(ChunkedServingTest, LocalitySkipsCountSpilledPassOvers)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    // Decode-phase arrivals start with their KV spilled in HBM (the
    // migrated-request model), so a locality-aware claim passes each
    // one over once before the work-conserving fallback admits it.
    std::vector<runtime::Request> trace;
    for (int i = 0; i < 4; ++i) {
        runtime::Request r;
        r.arrival = 0.0;
        r.phase = runtime::Phase::kDecode;
        r.decode_tokens = 6;
        trace.push_back(r);
    }
    auto serve = [&](bool locality) {
        runtime::ServerOptions sopts = kv_options();
        sopts.kv_locality = locality;
        runtime::Server s(dc.machine(), sopts);
        return s.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto off = serve(false);
    auto on = serve(true);
    EXPECT_FALSE(off.kv_locality);
    EXPECT_EQ(off.kv_locality_skips, 0);
    EXPECT_TRUE(on.kv_locality);
    EXPECT_GT(on.kv_locality_skips, 0);
    // Work-conserving: every request still completes with the same
    // token count.
    EXPECT_EQ(on.requests, off.requests);
    EXPECT_EQ(on.tokens, off.tokens);
}

// ---------------------------------------------------------------------------
// Misconfiguration death tests

using ChunkedDeathTest = ChunkedServingTest;

TEST_F(ChunkedDeathTest, ChunkPlanRejectsBadArgs)
{
    EXPECT_DEATH(runtime::chunk_plan(100, 3),
                 "positive power of two");
    EXPECT_DEATH(runtime::chunk_plan(100, 0),
                 "positive power of two");
    EXPECT_DEATH(runtime::chunk_plan(0, 32),
                 "prompt_len must be >= 1");
}

TEST_F(ChunkedDeathTest, RejectsBadChunkOptions)
{
    sim::Machine machine(tiny_chip());

    runtime::ServerOptions negative = plain_options();
    negative.prefill_chunk = -1;
    EXPECT_DEATH(runtime::Server(machine, negative),
                 "prefill_chunk must be >= 0");

    runtime::ServerOptions odd = plain_options();
    odd.prefill_chunk = 48;
    EXPECT_DEATH(runtime::Server(machine, odd),
                 "must be a power of two");

    runtime::ServerOptions oversize = plain_options();
    oversize.prefill_chunk = 2 * kSeq;
    EXPECT_DEATH(runtime::Server(machine, oversize),
                 "must not exceed");

    // A single full-length prompt bucket would pad every chunk back
    // to the full sequence — chunking needs the varlen ladder.
    runtime::ServerOptions fixed_shape = plain_options();
    fixed_shape.prompt_buckets = {kSeq};
    fixed_shape.prefill_chunk = 32;
    EXPECT_DEATH(runtime::Server(machine, fixed_shape),
                 "multi-entry prompt bucket ladder");
}

TEST_F(ChunkedDeathTest, RejectsLocalityWithoutKvModeling)
{
    sim::Machine machine(tiny_chip());
    runtime::ServerOptions sopts = plain_options();
    sopts.kv_locality = true;
    EXPECT_DEATH(runtime::Server(machine, sopts),
                 "kv_locality needs KV modeling");
}

}  // namespace
}  // namespace elk
