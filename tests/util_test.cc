/**
 * @file
 * Unit tests for util: statistics, tables, logging helpers.
 */
#include <gtest/gtest.h>

#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace elk::util {
namespace {

using ::testing::Test;

TEST(UnitsTest, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(UnitsTest, Bandwidths)
{
    EXPECT_DOUBLE_EQ(gbps(5.5), 5.5e9);
    EXPECT_DOUBLE_EQ(tbps(16), 16e12);
    EXPECT_DOUBLE_EQ(tflops(1), 1e12);
}

TEST(UnitsTest, TimeConversions)
{
    EXPECT_DOUBLE_EQ(to_ms(0.5), 500.0);
    EXPECT_DOUBLE_EQ(to_us(1e-6), 1.0);
}

TEST(StatsTest, MeanAndStdev)
{
    std::vector<double> xs{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stdev(xs), 1.118, 1e-3);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stdev({5.0}), 0.0);
}

TEST(StatsTest, Percentile)
{
    std::vector<double> xs{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
}

TEST(StatsTest, PercentileSortedEdgeCases)
{
    // Empty input is defined as 0 (serving reports print 0 for an
    // empty latency set rather than dying).
    EXPECT_DOUBLE_EQ(percentile_sorted({}, 0), 0.0);
    EXPECT_DOUBLE_EQ(percentile_sorted({}, 50), 0.0);
    EXPECT_DOUBLE_EQ(percentile_sorted({}, 100), 0.0);

    // A single element is every percentile.
    std::vector<double> one{7.5};
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 0), 7.5);
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 50), 7.5);
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 99), 7.5);
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 100), 7.5);

    // Exact-boundary ranks (p/100 * (n-1) integral) return the
    // element itself, no interpolation: n = 5 puts p25/p50/p75 on
    // indices 1/2/3 exactly.
    std::vector<double> xs{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 25), 20.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 50), 30.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 75), 40.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 100), 50.0);
    // And an off-boundary rank interpolates linearly between its
    // neighbors: p90 of 5 elements sits at rank 3.6.
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, 90), 46.0);
}

TEST(StatsTest, MapeSkipsZeroMeasurements)
{
    std::vector<double> measured{0.0, 100.0};
    std::vector<double> predicted{5.0, 110.0};
    EXPECT_NEAR(mape(measured, predicted), 0.10, 1e-12);
}

TEST(StatsTest, PerfectPredictionRSquared)
{
    std::vector<double> m{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(r_squared(m, m), 1.0);
}

TEST(StatsTest, RSquaredPenalizesBias)
{
    std::vector<double> m{1, 2, 3, 4};
    std::vector<double> p{2, 3, 4, 5};
    EXPECT_LT(r_squared(m, p), 1.0);
}

TEST(StatsTest, WeightedMean)
{
    WeightedMean wm;
    wm.add(1.0, 0.0);
    wm.add(3.0, 1.0);
    EXPECT_DOUBLE_EQ(wm.value(), 0.75);
    EXPECT_DOUBLE_EQ(wm.weight(), 4.0);
}

TEST(TableTest, TextRendering)
{
    Table t({"a", "bb"});
    t.add("x", 1.0);
    t.add("longer", 2.5);
    std::string text = t.to_text();
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("2.500"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvRendering)
{
    Table t({"h1", "h2"});
    t.add(1, 2);
    EXPECT_EQ(t.to_csv(), "h1,h2\n1,2\n");
}

TEST(TableTest, DoubleFormatting)
{
    EXPECT_EQ(Table::format_cell(0.0), "0");
    EXPECT_EQ(Table::format_cell(123.456), "123.5");
    EXPECT_EQ(Table::format_cell(1.5), "1.500");
    // Very large and very small use scientific notation.
    EXPECT_NE(Table::format_cell(1e9).find("e"), std::string::npos);
    EXPECT_NE(Table::format_cell(1e-6).find("e"), std::string::npos);
}

}  // namespace
}  // namespace elk::util
