/**
 * @file
 * Variable-length prefill tests: bucket selection (smallest covering
 * bucket, exact fit, overflow to the largest), the seeded prompt
 * length distribution, padding-waste accounting, the full-length
 * bit-identity anchor (a trace where every prompt is the model
 * sequence length reproduces the fixed-shape PR 3 scheduler
 * bit-for-bit across all five design modes), the TTFT/padding win of
 * bucketed prefill on short prompts, and the plan-cache partition
 * keys of the (batch, prompt-length) grid.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

constexpr int kSeq = 128;  ///< model sequence length of the fixture.

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

// ---------------------------------------------------------------------------
// Bucket selection and the prompt-length distribution

TEST(PickBucketTest, SmallestCoveringExactFitAndOverflow)
{
    const std::vector<int> buckets = {16, 64, 128};
    EXPECT_EQ(runtime::pick_bucket(buckets, 1), 16);
    EXPECT_EQ(runtime::pick_bucket(buckets, 16), 16);   // exact fit
    EXPECT_EQ(runtime::pick_bucket(buckets, 17), 64);   // next cover
    EXPECT_EQ(runtime::pick_bucket(buckets, 128), 128);
    EXPECT_EQ(runtime::pick_bucket(buckets, 400), 128);  // overflow
    // Overflow clamps to the largest bucket no matter how far past
    // it the need lands, including the single-bucket degenerate grid.
    EXPECT_EQ(runtime::pick_bucket(buckets, 129), 128);
    EXPECT_EQ(runtime::pick_bucket({64}, 1), 64);
    EXPECT_EQ(runtime::pick_bucket({64}, 1 << 20), 64);
}

TEST(TagPromptLengthsTest, SeededBoundedAndPhaseIndependent)
{
    auto arrivals = runtime::ArrivalTrace::poisson(200, 1000.0, 3);
    auto a = runtime::make_request_trace(arrivals, 2, 1.0, 0.0, 3);
    auto b = a;
    runtime::tag_prompt_lengths(a, 512, 64.0, 9);
    runtime::tag_prompt_lengths(b, 512, 64.0, 9);
    int longest = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_GE(a[i].prompt_len, 1);
        EXPECT_LE(a[i].prompt_len, 512);
        longest = std::max(longest, a[i].prompt_len);
    }
    // A geometric tail of mean 64 spreads well past its mean.
    EXPECT_GT(longest, 64);

    // Different seed, different lengths; the tagging draws one value
    // per request regardless of phase, so a decode-heavy trace gets
    // the same length sequence as an all-prefill one.
    auto c = b;
    runtime::tag_prompt_lengths(c, 512, 64.0, 10);
    EXPECT_NE(a[0].prompt_len * 1000 + a[1].prompt_len,
              c[0].prompt_len * 1000 + c[1].prompt_len);
    auto mixed = runtime::make_request_trace(arrivals, 2, 0.3, 0.0, 3);
    runtime::tag_prompt_lengths(mixed, 512, 64.0, 9);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(mixed[i].prompt_len, a[i].prompt_len);
    }
}

// ---------------------------------------------------------------------------
// The serving fixture

class VarlenTest : public ::testing::Test {
  protected:
    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// @p prompt_lens become prefill requests all arriving at t = 0.
    static std::vector<runtime::Request>
    prompts(const std::vector<int>& prompt_lens, int decode_tokens = 1)
    {
        std::vector<runtime::Request> out;
        for (int len : prompt_lens) {
            runtime::Request r;
            r.phase = runtime::Phase::kPrefill;
            r.decode_tokens = decode_tokens;
            r.prompt_len = len;
            out.push_back(r);
        }
        return out;
    }

    runtime::ServingReport
    serve(compiler::ServingCompiler& pc, compiler::ServingCompiler& dc,
          const std::vector<runtime::Request>& requests,
          runtime::ServerOptions sopts)
    {
        sopts.max_prompt_len = kSeq;
        runtime::Server server(dc.machine(), sopts);
        return server.serve(
            requests,
            [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    }

    compiler::PlanCache cache_;
};

TEST_F(VarlenTest, PaddingWasteAccountsActualVsBucketTokens)
{
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkDyn);
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 4;
    sopts.prompt_buckets = {16, 64, kSeq};

    // One prefill iteration: 3 prompts pad the batch bucket to 4 and
    // the longest prompt (60) picks the 64-token length bucket.
    auto rep = serve(pc, dc, prompts({5, 9, 60}), sopts);
    EXPECT_EQ(rep.prefill_iterations, 1);
    EXPECT_EQ(rep.prompt_tokens, 5 + 9 + 60);
    EXPECT_EQ(rep.padded_prompt_tokens, 4 * 64 - (5 + 9 + 60));
    ASSERT_EQ(rep.prefill_bucket_iterations.size(), 1u);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].batch, 4);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].prompt_len, 64);
    EXPECT_EQ(rep.prefill_bucket_iterations[0].iterations, 1);
    EXPECT_GT(rep.mean_ttft, 0.0);
}

TEST_F(VarlenTest, ExactFitPromptsPadNothing)
{
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkDyn);
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 2;
    sopts.prompt_buckets = {16, kSeq};

    auto rep = serve(pc, dc, prompts({16, 16}), sopts);
    EXPECT_EQ(rep.prefill_iterations, 1);
    EXPECT_EQ(rep.prompt_tokens, 32);
    EXPECT_EQ(rep.padded_prompt_tokens, 0);
}

// The tentpole acceptance anchor: a trace where every prompt is the
// model sequence length (prompt_len = 0, the default) served through
// the bucket grid is bit-identical to the same trace forced through
// full-length prefill — the fixed-shape PR 3 scheduler — in all five
// design modes. The grid only changes behavior when a prompt is
// actually short.
TEST_F(VarlenTest, FullLengthTraceMatchesForcedFullPrefillAllModes)
{
    auto requests = runtime::prefill_requests(
        runtime::ArrivalTrace::poisson(8, 2000.0, 5), 2);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto pc = make_compiler(compiler::GraphKind::kPrefill, mode);
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        runtime::ServerOptions bucketed;
        bucketed.max_batch = 4;
        bucketed.max_prefill_batch = 2;
        runtime::ServerOptions full = bucketed;
        full.prompt_buckets = {kSeq};

        auto rep_grid = serve(pc, dc, requests, bucketed);
        auto rep_full = serve(pc, dc, requests, full);
        EXPECT_EQ(rep_grid.serialize_bits(), rep_full.serialize_bits())
            << compiler::mode_name(mode);

        // Explicit prompt_len == seq is the same request as the
        // prompt_len == 0 default.
        auto explicit_len = requests;
        for (auto& r : explicit_len) {
            r.prompt_len = kSeq;
        }
        auto rep_explicit = serve(pc, dc, explicit_len, bucketed);
        EXPECT_EQ(rep_grid.serialize_bits(),
                  rep_explicit.serialize_bits())
            << compiler::mode_name(mode);
    }
}

// The serving win the bucketing exists for: short prompts through the
// grid beat the same trace forced through full-length prefill on both
// TTFT and padded tokens, completing the same work.
TEST_F(VarlenTest, ShortPromptsLowerTtftAndPaddingVsFullLength)
{
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto requests = prompts({5, 12, 9, 16, 7, 3}, /*decode_tokens=*/2);

    runtime::ServerOptions bucketed;
    bucketed.max_batch = 4;
    bucketed.max_prefill_batch = 2;
    runtime::ServerOptions full = bucketed;
    full.prompt_buckets = {kSeq};

    auto rep_grid = serve(pc, dc, requests, bucketed);
    auto rep_full = serve(pc, dc, requests, full);
    EXPECT_EQ(rep_grid.requests, rep_full.requests);
    EXPECT_EQ(rep_grid.tokens, rep_full.tokens);
    EXPECT_EQ(rep_grid.prompt_tokens, rep_full.prompt_tokens);
    EXPECT_LT(rep_grid.mean_ttft, rep_full.mean_ttft);
    EXPECT_LT(rep_grid.padded_prompt_tokens,
              rep_full.padded_prompt_tokens);
    // The grid compiled short buckets; forced full-length only kSeq.
    for (const auto& b : rep_grid.prefill_bucket_iterations) {
        EXPECT_LT(b.prompt_len, kSeq);
    }
    for (const auto& b : rep_full.prefill_bucket_iterations) {
        EXPECT_EQ(b.prompt_len, kSeq);
    }
}

// ---------------------------------------------------------------------------
// The compile side of the grid

TEST_F(VarlenTest, PlanCacheKeysPartitionPrefillLengthBuckets)
{
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkDyn);
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    auto p16 = pc.program(1, 16);
    auto p128 = pc.program(1, kSeq);
    auto d4 = dc.program(4);
    ASSERT_NE(p16, nullptr);
    ASSERT_NE(p128, nullptr);
    ASSERT_NE(d4, nullptr);

    auto keys = cache_.keys();
    ASSERT_EQ(keys.size(), 3u);
    auto contains = [&](const std::string& needle) {
        for (const auto& key : keys) {
            if (key.find(needle) != std::string::npos) {
                return true;
            }
        }
        return false;
    };
    // Prefill length buckets carry their sequence length in the key;
    // the decode partition sits at the model sequence length under
    // the decode graph name (no "-fwd").
    EXPECT_TRUE(contains("-fwd") && contains("|s16|"));
    EXPECT_TRUE(contains("|s128|"));

    // Length buckets live in disjoint op-id namespaces (per
    // power-of-two band), and both clear the decode namespace.
    auto id_range = [](const sim::SimProgram& p) {
        int lo = p.ops.front().op_id, hi = p.ops.front().op_id;
        for (const auto& op : p.ops) {
            lo = std::min(lo, op.op_id);
            hi = std::max(hi, op.op_id);
        }
        return std::make_pair(lo, hi);
    };
    auto [lo16, hi16] = id_range(*p16);
    auto [lo128, hi128] = id_range(*p128);
    auto [lo_d, hi_d] = id_range(*d4);
    EXPECT_LT(hi_d, compiler::ServingCompiler::kPrefillIdOffset);
    EXPECT_GT(lo16, hi_d);
    EXPECT_TRUE(hi16 < lo128 || hi128 < lo16);
}

TEST_F(VarlenTest, MakePlanKeySeparatesSequenceLengths)
{
    auto g16 = graph::build_forward_graph(testing::tiny_llm(), 2, 16);
    auto g64 = graph::build_forward_graph(testing::tiny_llm(), 2, 64);
    compiler::CompileOptions opts;
    auto k16 = compiler::make_plan_key(g16, tiny_chip(), opts);
    auto k64 = compiler::make_plan_key(g64, tiny_chip(), opts);
    EXPECT_EQ(k16.seq, 16);
    EXPECT_EQ(k64.seq, 64);
    EXPECT_TRUE(k16 < k64 || k64 < k16);
}

TEST_F(VarlenTest, DecodeFamilyRejectsShortLengths)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kBasic);
    EXPECT_DEATH(dc.program(1, 16), "model sequence length");
}

}  // namespace
}  // namespace elk
