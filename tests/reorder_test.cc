/**
 * @file
 * Unit tests for §4.4 preload order permutation.
 */
#include <gtest/gtest.h>

#include <set>

#include "elk/preload_reorder.h"
#include "test_helpers.h"

namespace elk::compiler {
namespace {

class ReorderTest : public ::testing::Test {
  protected:
    ReorderTest() : h_(testing::CompilerHarness::tiny()) {}
    testing::CompilerHarness h_;
};

TEST_F(ReorderTest, IdentityAlwaysFirstCandidate)
{
    ReorderStats stats;
    auto orders = generate_candidate_orders(*h_.library, 32, &stats);
    ASSERT_GE(orders.size(), 1u);
    for (int i = 0; i < h_.graph.size(); ++i) {
        EXPECT_EQ(orders[0][i], i);
    }
}

TEST_F(ReorderTest, AllCandidatesArePermutations)
{
    auto orders = generate_candidate_orders(*h_.library, 64, nullptr);
    for (const auto& order : orders) {
        ASSERT_EQ(static_cast<int>(order.size()), h_.graph.size());
        std::set<int> uniq(order.begin(), order.end());
        EXPECT_EQ(static_cast<int>(uniq.size()), h_.graph.size());
    }
}

TEST_F(ReorderTest, OnlyHeavyOpsMove)
{
    ReorderStats stats;
    auto orders = generate_candidate_orders(*h_.library, 64, &stats);
    uint64_t avg = h_.graph.avg_hbm_bytes();
    for (const auto& order : orders) {
        for (size_t r = 0; r < order.size(); ++r) {
            if (order[r] != static_cast<int>(r)) {
                // A moved position must hold a heavy op, and the slot
                // it sits in must originally belong to a heavy op.
                EXPECT_TRUE(h_.graph.op(order[r]).hbm_heavy(avg));
                EXPECT_TRUE(
                    h_.graph.op(static_cast<int>(r)).hbm_heavy(avg));
            }
        }
    }
}

TEST_F(ReorderTest, SameLayerPermutationAppliedToAllLayers)
{
    ReorderStats stats;
    auto orders = generate_candidate_orders(*h_.library, 64, &stats);
    if (orders.size() < 2) {
        GTEST_SKIP() << "chip too small to allow any reorder";
    }
    const auto& order = orders[1];
    uint64_t avg = h_.graph.avg_hbm_bytes();
    // Collect per-layer permutation signatures of heavy slots.
    std::vector<std::vector<int>> sigs;
    for (int layer = 0; layer < h_.graph.num_layers(); ++layer) {
        std::vector<int> slots;
        for (int id : h_.graph.ops_in_layer(layer)) {
            if (h_.graph.op(id).hbm_heavy(avg)) {
                slots.push_back(id);
            }
        }
        std::vector<int> sig;
        for (size_t i = 0; i < slots.size(); ++i) {
            for (size_t j = 0; j < slots.size(); ++j) {
                if (order[slots[i]] == slots[j]) {
                    sig.push_back(static_cast<int>(j));
                }
            }
        }
        if (sig.size() == slots.size() && !sig.empty()) {
            sigs.push_back(sig);
        }
    }
    ASSERT_GE(sigs.size(), 2u);
    for (size_t l = 1; l < sigs.size(); ++l) {
        if (sigs[l].size() == sigs[0].size()) {
            EXPECT_EQ(sigs[l], sigs[0]) << "layer " << l;
        }
    }
}

TEST_F(ReorderTest, StatsPopulated)
{
    ReorderStats stats;
    generate_candidate_orders(*h_.library, 64, &stats);
    EXPECT_GT(stats.heavy_per_layer, 0);
    EXPECT_GE(stats.candidates, 1);
}

TEST_F(ReorderTest, HeavyFitCountPositive)
{
    int c = heavy_ops_fit_on_chip(*h_.library);
    EXPECT_GE(c, 1);
    EXPECT_LE(c, h_.graph.hbm_heavy_per_layer() + 1);
}

TEST_F(ReorderTest, MaxOrdersRespected)
{
    auto orders = generate_candidate_orders(*h_.library, 3, nullptr);
    EXPECT_LE(orders.size(), 3u);
}

}  // namespace
}  // namespace elk::compiler
