/**
 * @file
 * Unit tests for the hardware model: chip config, topology/routing,
 * and the traffic bottleneck analysis.
 */
#include <gtest/gtest.h>

#include "hw/chip_config.h"
#include "hw/topology.h"
#include "hw/traffic.h"

namespace elk::hw {
namespace {

TEST(ChipConfigTest, Pod4Defaults)
{
    ChipConfig cfg = ChipConfig::ipu_pod4();
    EXPECT_EQ(cfg.total_cores(), 4 * 1472);
    EXPECT_DOUBLE_EQ(cfg.hbm_total_bw, 16e12);
    // ~3.5 GB usable on-chip memory (paper §4.2 example).
    EXPECT_NEAR(static_cast<double>(cfg.total_usable_sram()),
                3.5 * 1024.0 * 1024 * 1024, 0.3e9);
    // ~8 TB/s aggregate inter-core bandwidth per chip (paper §2.1).
    EXPECT_NEAR(cfg.noc_aggregate_bw(), 8.0e12, 0.2e12);
}

TEST(ChipConfigTest, UsableSramExcludesTransferBuffer)
{
    ChipConfig cfg = ChipConfig::ipu_pod4();
    EXPECT_EQ(cfg.usable_sram_per_core(),
              cfg.sram_per_core - cfg.transfer_buffer_per_core);
}

TEST(ChipConfigTest, TinyIsValid)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    EXPECT_EQ(cfg.total_cores(), 16);
    cfg.validate();  // must not terminate
}

TEST(TopologyTest, AllToAllRoutesAreTwoLinks)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    auto path = topo.route(0, 7);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], topo.injection_link(0));
    EXPECT_EQ(path[1], topo.ejection_link(7));
    EXPECT_EQ(topo.hops(0, 7), 1);
}

TEST(TopologyTest, HbmNodesExist)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    EXPECT_EQ(topo.num_hbm_nodes(), cfg.hbm_channels_per_chip);
    EXPECT_TRUE(topo.is_hbm_node(topo.hbm_node(0)));
    EXPECT_FALSE(topo.is_hbm_node(0));
}

TEST(TopologyTest, HbmInjectionBandwidthIsChannelBandwidth)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    int link = topo.injection_link(topo.hbm_node(0));
    EXPECT_DOUBLE_EQ(topo.link(link).bw,
                     cfg.hbm_bw_per_chip() / cfg.hbm_channels_per_chip);
}

class MeshTopologyTest : public ::testing::Test {
  protected:
    MeshTopologyTest()
    {
        cfg_ = ChipConfig::tiny(16);
        cfg_.topology = TopologyKind::kMesh2D;
        cfg_.mesh_width = 4;
        cfg_.mesh_height = 4;
        topo_ = std::make_unique<Topology>(cfg_);
    }
    ChipConfig cfg_;
    std::unique_ptr<Topology> topo_;
};

TEST_F(MeshTopologyTest, CoordinatesRowMajor)
{
    EXPECT_EQ(topo_->mesh_coord(0), std::make_pair(0, 0));
    EXPECT_EQ(topo_->mesh_coord(5), std::make_pair(1, 1));
    EXPECT_EQ(topo_->node_at(3, 3), 15);
    EXPECT_EQ(topo_->node_at(4, 0), -1);
}

TEST_F(MeshTopologyTest, ManhattanHops)
{
    EXPECT_EQ(topo_->hops(0, 15), 6);  // (0,0) -> (3,3)
    EXPECT_EQ(topo_->hops(0, 1), 1);
    EXPECT_EQ(topo_->hops(5, 5), 1);  // min 1 hop
}

TEST_F(MeshTopologyTest, DorRouteXThenY)
{
    // Route (0,0) -> (2,1): inj, +x, +x, +y, ej = 5 links.
    auto path = topo_->route(0, 6);
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path.front(), topo_->injection_link(0));
    EXPECT_EQ(path.back(), topo_->ejection_link(6));
    // Middle links are mesh links: src of first mesh link is node 0.
    EXPECT_EQ(topo_->link(path[1]).src, 0);
    EXPECT_EQ(topo_->link(path[1]).dst, 1);
    EXPECT_EQ(topo_->link(path[2]).src, 1);
    EXPECT_EQ(topo_->link(path[2]).dst, 2);
    EXPECT_EQ(topo_->link(path[3]).src, 2);
    EXPECT_EQ(topo_->link(path[3]).dst, 6);
}

TEST_F(MeshTopologyTest, HbmControllersAttachToEdges)
{
    for (int i = 0; i < topo_->num_hbm_nodes(); ++i) {
        int attach = topo_->hbm_attach_node(i);
        auto [x, y] = topo_->mesh_coord(attach);
        EXPECT_TRUE(x == 0 || x == cfg_.mesh_width - 1)
            << "controller " << i << " at (" << x << "," << y << ")";
    }
}

TEST(TrafficModelTest, AllToAllPeerCapacityIsEndpointBound)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    TrafficModel tm(topo, cfg);
    // Uniform exchange is endpoint limited: aggregate = cores * link bw.
    EXPECT_NEAR(tm.peer_exchange_capacity(),
                cfg.inter_core_link_bw * cfg.cores_per_chip,
                0.05 * tm.peer_exchange_capacity());
    EXPECT_DOUBLE_EQ(tm.avg_hops(), 1.0);
}

TEST(TrafficModelTest, AllToAllHbmCapacityIsControllerBound)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    TrafficModel tm(topo, cfg);
    // Each controller serves cores/num_hbm cores at its channel bw;
    // the per-channel injection link is the bottleneck.
    double expected = cfg.hbm_bw_per_chip();
    EXPECT_LE(tm.hbm_delivery_capacity(), expected * 1.05);
    EXPECT_GT(tm.hbm_delivery_capacity(), 0.0);
}

TEST(TrafficModelTest, MeshPeerCapacityBelowAllToAll)
{
    ChipConfig all = ChipConfig::tiny(64);
    all.mesh_width = 8;
    all.mesh_height = 8;
    Topology topo_all(all);
    TrafficModel tm_all(topo_all, all);

    ChipConfig mesh = all;
    mesh.topology = TopologyKind::kMesh2D;
    mesh.mesh_link_bw = all.inter_core_link_bw;  // same per-link speed
    Topology topo_mesh(mesh);
    TrafficModel tm_mesh(topo_mesh, mesh);

    // With equal per-link bandwidth, multi-hop mesh routing must reduce
    // the deliverable aggregate below the all-to-all endpoint bound.
    EXPECT_LT(tm_mesh.peer_exchange_capacity(),
              tm_all.peer_exchange_capacity());
    EXPECT_GT(tm_mesh.avg_hops(), 1.0);
}

TEST(TrafficModelTest, DeliveryTimeScalesWithBytes)
{
    ChipConfig cfg = ChipConfig::tiny(16);
    Topology topo(cfg);
    TrafficModel tm(topo, cfg);
    double t1 = tm.hbm_delivery_time(1e6);
    double t2 = tm.hbm_delivery_time(2e6);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 - tm.link_latency(), 2 * (t1 - tm.link_latency()),
                1e-12);
}

}  // namespace
}  // namespace elk::hw
