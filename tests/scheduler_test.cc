/**
 * @file
 * Unit tests for the §4.2 two-level inductive scheduler.
 */
#include <gtest/gtest.h>

#include "elk/inductive_scheduler.h"
#include "test_helpers.h"

namespace elk::compiler {
namespace {

class SchedulerTest : public ::testing::Test {
  protected:
    SchedulerTest() : h_(testing::CompilerHarness::tiny()) {}
    testing::CompilerHarness h_;
};

TEST_F(SchedulerTest, IdentityOrderSchedules)
{
    InductiveScheduler sched(*h_.library);
    auto plan = sched.schedule_in_order();
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(static_cast<int>(plan->ops.size()), h_.graph.size());
    EXPECT_GT(plan->est_total_time, 0.0);
}

TEST_F(SchedulerTest, PreloadPrecedesExecution)
{
    InductiveScheduler sched(*h_.library);
    auto plan = sched.schedule_in_order();
    ASSERT_TRUE(plan.has_value());
    // Every op appears exactly once in the preload order, at a slot
    // no later than its own execution.
    std::vector<int> seen(h_.graph.size(), 0);
    for (size_t r = 0; r < plan->preload_order.size(); ++r) {
        int op = plan->preload_order[r];
        ++seen[op];
        EXPECT_LE(plan->issue_slot[r], op);
    }
    for (int s : seen) {
        EXPECT_EQ(s, 1);
    }
}

TEST_F(SchedulerTest, SlotsMonotone)
{
    InductiveScheduler sched(*h_.library);
    auto plan = sched.schedule_in_order();
    ASSERT_TRUE(plan.has_value());
    for (size_t r = 1; r < plan->issue_slot.size(); ++r) {
        EXPECT_GE(plan->issue_slot[r], plan->issue_slot[r - 1]);
    }
}

TEST_F(SchedulerTest, SchedulesOverlapAtAll)
{
    // The whole point of the pass: at least some preloads must be
    // issued ahead of their own execute slot.
    InductiveScheduler sched(*h_.library);
    auto plan = sched.schedule_in_order();
    ASSERT_TRUE(plan.has_value());
    int ahead = 0;
    for (size_t r = 0; r < plan->preload_order.size(); ++r) {
        if (plan->issue_slot[r] < plan->preload_order[r]) {
            ++ahead;
        }
    }
    EXPECT_GT(ahead, h_.graph.size() / 4);
}

TEST_F(SchedulerTest, WindowCapRespected)
{
    InductiveScheduler sched(*h_.library);
    ScheduleOptions opts;
    opts.max_window = 2;
    auto plan = sched.schedule_in_order(opts);
    ASSERT_TRUE(plan.has_value());
    // With a tiny window, at any execute slot at most max_window + 1
    // preloads may be pending (issued, not executed).
    for (int i = 0; i < h_.graph.size(); ++i) {
        int live = 0;
        for (size_t r = 0; r < plan->preload_order.size(); ++r) {
            int op = plan->preload_order[r];
            if (plan->issue_slot[r] <= i && op > i) {
                ++live;
            }
        }
        EXPECT_LE(live, opts.max_window + 1) << "at execute " << i;
    }
}

TEST_F(SchedulerTest, TruncatedScheduleCoversPrefix)
{
    InductiveScheduler sched(*h_.library);
    ScheduleOptions opts;
    opts.limit_ops = 10;
    auto plan = sched.schedule_in_order(opts);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->ops.size(), 10u);
}

TEST_F(SchedulerTest, LargerWindowNotWorse)
{
    InductiveScheduler sched(*h_.library);
    ScheduleOptions narrow;
    narrow.max_window = 1;
    ScheduleOptions wide;
    wide.max_window = 16;
    auto p_narrow = sched.schedule_in_order(narrow);
    auto p_wide = sched.schedule_in_order(wide);
    ASSERT_TRUE(p_narrow.has_value());
    ASSERT_TRUE(p_wide.has_value());
    EXPECT_LE(p_wide->est_total_time,
              p_narrow->est_total_time * 1.02);
}

TEST_F(SchedulerTest, InvalidOrderRejected)
{
    // An order that preloads the last operator first cannot fit: all
    // other preload spaces would have to coexist with it.
    InductiveScheduler sched(*h_.library);
    std::vector<int> order(h_.graph.size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
    }
    // Move op 0's preload to the very end: executing op 0 then
    // requires every preceding preload issued first.
    std::rotate(order.begin(), order.begin() + 1, order.end());
    ScheduleOptions opts;
    opts.max_window = 4;
    auto plan = sched.schedule(order, opts);
    // Either infeasible or dramatically worse than identity.
    auto identity = sched.schedule_in_order(opts);
    ASSERT_TRUE(identity.has_value());
    if (plan.has_value()) {
        EXPECT_GT(plan->est_total_time, identity->est_total_time);
    }
}

TEST_F(SchedulerTest, PreloadDurationRoofline)
{
    InductiveScheduler sched(*h_.library);
    int heavy = -1;
    for (const auto& op : h_.graph.ops()) {
        if (op.hbm_bytes() > 0 &&
            op.kind == graph::OpKind::kMatMul) {
            heavy = op.id;
            break;
        }
    }
    ASSERT_GE(heavy, 0);
    const auto& pre = h_.library->preload_plans(heavy, 0);
    double d = sched.preload_duration(heavy, pre.front());
    // Chunk-streamed plans defer part of the DRAM traffic to
    // execution; the preload floor covers the loaded fraction.
    double dram_floor =
        static_cast<double>(h_.graph.op(heavy).hbm_bytes()) *
        pre.front().dram_fraction / h_.cfg.hbm_total_bw;
    EXPECT_GE(d, dram_floor);
}

}  // namespace
}  // namespace elk::compiler
