/**
 * @file
 * Disaggregated serving and preemption tests: EngineState park/resume
 * (a parked-and-resumed program is bit-identical to an uninterrupted
 * one), the zero-preemption baselines (the disaggregated scheduler on
 * a degenerate decode-only trace reproduces the plain serve() path
 * bit-for-bit across all five design modes; preemption-on with no
 * high-priority traffic equals preemption-off), preemption actually
 * firing and cutting high-priority latency, and the residency
 * policies (frequency-aware vs retire-order eviction decisions on a
 * crafted workload).
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/server.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// A synthetic op with an HBM preload and a fixed execute time.
sim::SimOp
make_op(int id, double dram, double exec_time, uint64_t preload_space,
        uint64_t exec_space)
{
    sim::SimOp op;
    op.op_id = id;
    op.dram_bytes = dram;
    op.delivery_bytes = dram;
    op.exec_local_time = exec_time;
    op.preload_space = preload_space;
    op.exec_space = exec_space;
    op.flops = 1e6;
    return op;
}

// ---------------------------------------------------------------------------
// EngineState park/resume

TEST(EngineParkTest, ParkAndImmediateResumeIsBitIdentical)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 5; ++i) {
        prog.ops.push_back(make_op(i, dram, 2e-4, 2048, 4096));
    }
    prog.finalize_default_order();

    sim::Engine engine(machine);
    sim::SimResult one_shot = engine.run(prog);

    sim::EngineState state(machine);
    state.begin(prog);
    int steps = 0;
    while (state.step()) {
        if (++steps == 7) {
            // Park at a step boundary and put the frame right back.
            sim::EngineState::Parked parked = state.park();
            EXPECT_TRUE(state.done());
            state.resume(std::move(parked));
            EXPECT_FALSE(state.done());
        }
    }
    sim::SimResult resumed = state.finish();
    EXPECT_EQ(one_shot.serialize_bits(), resumed.serialize_bits());
}

// The satellite acceptance check: a program preempted at a step
// boundary — with a full other program executed on the same state in
// between — resumes to a bit-identical SimResult, because its frame
// (flows, timers, local clock) was frozen whole.
TEST(EngineParkTest, InterleavedProgramLeavesVictimBitIdentical)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram victim;
    for (int i = 0; i < 5; ++i) {
        victim.ops.push_back(make_op(i, dram, 2e-4, 2048, 4096));
    }
    victim.finalize_default_order();
    sim::SimProgram interloper;
    for (int i = 0; i < 3; ++i) {
        // Disjoint op-id namespace, like a prefill program.
        interloper.ops.push_back(
            make_op(1000 + i, dram / 2, 1e-4, 1024, 2048));
    }
    interloper.finalize_default_order();

    sim::Engine engine(machine);
    sim::SimResult victim_alone = engine.run(victim);
    sim::SimResult interloper_alone = engine.run(interloper);

    sim::EngineState state(machine);
    state.begin(victim);
    for (int s = 0; s < 9; ++s) {
        ASSERT_TRUE(state.step());
    }
    double park_clock = state.now();
    sim::EngineState::Parked parked = state.park();
    EXPECT_DOUBLE_EQ(state.now(), park_clock);

    state.begin(interloper);
    while (state.step()) {
    }
    sim::SimResult mid = state.finish();
    // The interloper's own timing is unaffected, but its SRAM peak
    // correctly includes the parked victim's in-flight footprint.
    EXPECT_EQ(interloper_alone.total_time, mid.total_time);
    EXPECT_EQ(interloper_alone.preload_only, mid.preload_only);
    EXPECT_EQ(interloper_alone.overlapped, mid.overlapped);
    EXPECT_GT(mid.peak_sram_per_core,
              interloper_alone.peak_sram_per_core);
    double resume_clock = state.now();
    EXPECT_GT(resume_clock, park_clock);

    state.resume(std::move(parked));
    EXPECT_DOUBLE_EQ(state.now(), resume_clock);  // clock monotone
    while (state.step()) {
    }
    sim::SimResult after = state.finish();
    EXPECT_EQ(victim_alone.serialize_bits(), after.serialize_bits());
}

TEST(EngineParkTest, PinnedResidentEntriesSurviveTheInterloper)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 3; ++i) {
        prog.ops.push_back(make_op(i, dram, 1e-4, 4096, 8192));
    }
    prog.finalize_default_order();
    sim::SimProgram other;
    other.ops.push_back(make_op(500, dram, 1e-4, 4096, 8192));
    other.finalize_default_order();

    sim::EngineState::Options opts;
    opts.residency_budget = machine.config().usable_sram_per_core();
    sim::EngineState state(machine, opts);
    state.begin(prog);
    while (state.step()) {
    }
    state.finish();
    ASSERT_EQ(state.resident_ops(), 3);

    // Second run of prog hits residency; park it mid-flight (entries
    // pinned by its instant preloads), run another program, resume.
    state.begin(prog);
    for (int s = 0; s < 2; ++s) {
        ASSERT_TRUE(state.step());
    }
    sim::EngineState::Parked parked = state.park();
    state.begin(other);
    while (state.step()) {
    }
    state.finish();
    // The interloper's begin() must not evict the victim's pinned
    // entries even though their op ids are absent from its program.
    EXPECT_GE(state.resident_ops(), 3);
    state.resume(std::move(parked));
    while (state.step()) {
    }
    sim::SimResult warm = state.finish();
    EXPECT_DOUBLE_EQ(warm.preload_only, 0.0);
    EXPECT_EQ(state.resident_hits(), 3);
}

// Regression: while a program that real-preloaded op X is parked, an
// interleaved run of the same program retires X and admits a resident
// entry for it. The victim's retire must not credit the entry's bytes
// a second time — the occupancy leak would permanently inflate every
// later iteration's SRAM peak.
TEST(EngineParkTest, InterleavedAdmissionDoesNotLeakOccupancy)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 3; ++i) {
        prog.ops.push_back(make_op(i, dram, 1e-4, 4096, 8192));
    }
    prog.finalize_default_order();

    sim::EngineState::Options opts;
    opts.residency_budget = machine.config().usable_sram_per_core();

    auto warm_run = [&](sim::EngineState& state) {
        state.begin(prog);
        while (state.step()) {
        }
        return state.finish();
    };

    // Clean reference: cold run retains all entries, then a warm run.
    sim::EngineState clean(machine, opts);
    warm_run(clean);
    sim::SimResult warm_clean = warm_run(clean);

    // Leak candidate: park the cold run before op 0 retires, run the
    // same program to completion (admitting entries), resume.
    sim::EngineState state(machine, opts);
    state.begin(prog);
    ASSERT_TRUE(state.step());
    ASSERT_TRUE(state.step());  // op 0 preloading/executing, unretired
    sim::EngineState::Parked parked = state.park();
    warm_run(state);  // interleaved full run admits all entries
    state.resume(std::move(parked));
    while (state.step()) {
    }
    state.finish();

    sim::SimResult warm_after = warm_run(state);
    EXPECT_EQ(warm_clean.serialize_bits(), warm_after.serialize_bits());
}

// ---------------------------------------------------------------------------
// Residency policies

TEST(ResidencyPolicyTest, FrequencyAwareDisplacesLowWorthEntries)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double bw = machine.config().hbm_total_bw;
    // Budget fits exactly two 8 KB entries. Ops 0 and 1 retire first
    // with low worth (little HBM saved per resident byte); op 2
    // retires last with 4x their worth.
    const uint64_t space = 8 * 1024;
    sim::SimProgram prog;
    prog.ops.push_back(make_op(0, bw * 1e-4, 1e-4, space, space));
    prog.ops.push_back(make_op(1, bw * 1e-4, 1e-4, space, space));
    prog.ops.push_back(make_op(2, bw * 4e-4, 1e-4, space, space));
    prog.finalize_default_order();

    // Retire-order: first-come-first-kept — op 2 finds the budget
    // full and is not admitted.
    sim::EngineState::Options retire;
    retire.residency_budget = 2 * space;
    retire.policy = sim::ResidencyPolicy::kRetireOrder;
    sim::EngineState a(machine, retire);
    a.begin(prog);
    while (a.step()) {
    }
    a.finish();
    EXPECT_EQ(a.resident_op_ids(), (std::vector<int>{0, 1}));
    EXPECT_EQ(a.resident_evictions(), 0);

    // Frequency-aware: op 2's worth (dram/space) beats op 0's, so the
    // oldest low-worth entry is displaced at admission.
    sim::EngineState::Options freq = retire;
    freq.policy = sim::ResidencyPolicy::kFrequencyAware;
    sim::EngineState b(machine, freq);
    b.begin(prog);
    while (b.step()) {
    }
    b.finish();
    EXPECT_EQ(b.resident_op_ids(), (std::vector<int>{1, 2}));
    EXPECT_EQ(b.resident_evictions(), 1);
}

TEST(ResidencyPolicyTest, InfeasibleDisplacementEvictsNothing)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double bw = machine.config().hbm_total_bw;
    const uint64_t space = 8 * 1024;
    // Budget fits two small entries. The big candidate (2x space,
    // mid worth) could only fit by also displacing the higher-worth
    // entry — infeasible, so nothing may be evicted for it.
    sim::SimProgram prog;
    prog.ops.push_back(make_op(0, bw * 1e-4, 1e-4, space, space));
    prog.ops.push_back(make_op(1, bw * 8e-4, 1e-4, space, space));
    prog.ops.push_back(
        make_op(2, bw * 8e-4, 1e-4, 2 * space, 2 * space));
    prog.finalize_default_order();

    sim::EngineState::Options freq;
    freq.residency_budget = 2 * space;
    freq.policy = sim::ResidencyPolicy::kFrequencyAware;
    sim::EngineState state(machine, freq);
    state.begin(prog);
    while (state.step()) {
    }
    state.finish();
    EXPECT_EQ(state.resident_op_ids(), (std::vector<int>{0, 1}));
    EXPECT_EQ(state.resident_evictions(), 0);
}

TEST(ResidencyPolicyTest, ReuseCountProtectsHotEntriesUnderPressure)
{
    hw::ChipConfig cfg = hw::ChipConfig::tiny(16);
    sim::Machine machine(cfg);
    const double bw = cfg.hbm_total_bw;
    const uint64_t usable = cfg.usable_sram_per_core();
    const uint64_t space = usable / 4;

    // Two equal-worth ops; a warm second run bumps both reuse counts,
    // then a fat program squeezes SRAM so one must go.
    sim::SimProgram warm2;
    warm2.ops.push_back(make_op(0, bw * 1e-4, 1e-4, space, space));
    warm2.ops.push_back(make_op(1, bw * 2e-4, 1e-4, space, space));
    warm2.finalize_default_order();
    sim::SimProgram fat;
    fat.ops.push_back(
        make_op(900, bw * 1e-4, 1e-4, space, usable - space - 1024));
    fat.finalize_default_order();

    sim::EngineState::Options freq;
    freq.residency_budget = 2 * space;
    freq.policy = sim::ResidencyPolicy::kFrequencyAware;
    sim::EngineState state(machine, freq);
    for (int iter = 0; iter < 2; ++iter) {
        state.begin(warm2);
        while (state.step()) {
        }
        state.finish();
    }
    ASSERT_EQ(state.resident_ops(), 2);
    ASSERT_EQ(state.resident_hits(), 2);

    state.begin(fat);
    while (state.step()) {
    }
    state.finish();
    // Pressure eviction took the lowest-worth entry: op 0 (half the
    // dram_bytes of op 1 at equal space and reuse).
    std::vector<int> ids = state.resident_op_ids();
    EXPECT_TRUE(std::find(ids.begin(), ids.end(), 1) != ids.end());
    EXPECT_TRUE(std::find(ids.begin(), ids.end(), 0) == ids.end());
}

// ---------------------------------------------------------------------------
// Disaggregated serving

class DisaggTest : public ::testing::Test {
  protected:
    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind, compiler::Mode mode,
                  int jobs = 1)
    {
        compiler::CompileOptions copts;
        copts.mode = mode;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), 128,
                                         tiny_chip(), copts, &cache_,
                                         jobs, sopts);
    }

    compiler::PlanCache cache_;
};

// Zero-preemption baseline 1: the disaggregated scheduler on a
// degenerate trace (decode-only, all normal priority) reproduces the
// PR 2 serve() path bit-for-bit, across all five design modes.
TEST_F(DisaggTest, DegenerateTraceMatchesPlainServeAllModes)
{
    auto arrivals = runtime::ArrivalTrace::poisson(12, 3000.0, 7);
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        auto dc = make_compiler(compiler::GraphKind::kDecode, mode);
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.tokens_per_request = 3;
        runtime::Server server(dc.machine(), sopts);

        auto legacy = server.serve(
            arrivals, [&](int b) { return dc.program(b); });
        auto disagg = server.serve(
            runtime::decode_requests(arrivals, 3), nullptr,
            [&](int b) { return dc.program(b); });
        EXPECT_EQ(legacy.serialize_bits(), disagg.serialize_bits())
            << compiler::mode_name(mode);
        EXPECT_EQ(disagg.prefill_iterations, 0);
        EXPECT_EQ(disagg.preemptions, 0);
    }
}

// Zero-preemption baseline 2: with no high-priority traffic, running
// with preemption enabled is bit-identical to preemption disabled on
// a mixed prefill/decode trace.
TEST_F(DisaggTest, PreemptionOnWithoutHighTrafficIsBitIdentical)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);
    auto requests = runtime::prefill_requests(
        runtime::ArrivalTrace::poisson(10, 2000.0, 3), 3);

    runtime::ServerOptions on;
    on.max_batch = 4;
    on.max_prefill_batch = 2;
    on.max_prompt_len = 128;
    on.preempt = true;
    runtime::ServerOptions off = on;
    off.preempt = false;

    auto serve = [&](const runtime::ServerOptions& o) {
        runtime::Server server(dc.machine(), o);
        return server.serve(
            requests, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };
    auto rep_on = serve(on);
    auto rep_off = serve(off);
    EXPECT_EQ(rep_on.serialize_bits(), rep_off.serialize_bits());
    EXPECT_EQ(rep_on.preemptions, 0);
    EXPECT_GT(rep_on.prefill_iterations, 0);
    EXPECT_GT(rep_on.decode_iterations, 0);
    EXPECT_GT(rep_on.p50_ttft, 0.0);
}

// A long normal decode phase is in flight when a high-priority
// prefill request lands: with preemption it is served mid-iteration
// (parked victim, nested prefill), without it waits for boundaries.
TEST_F(DisaggTest, HighPriorityArrivalPreemptsAndCutsItsLatency)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);

    std::vector<runtime::Request> requests;
    for (int i = 0; i < 4; ++i) {
        runtime::Request r;
        r.arrival = 0.0;
        r.phase = runtime::Phase::kDecode;
        r.decode_tokens = 24;
        requests.push_back(r);
    }
    runtime::Request vip;
    vip.arrival = 1e-4;  // lands mid decode-iteration
    vip.phase = runtime::Phase::kPrefill;
    vip.priority = runtime::Priority::kHigh;
    vip.decode_tokens = 2;
    requests.push_back(vip);

    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 2;
    sopts.max_prompt_len = 128;
    auto serve = [&](bool preempt) {
        runtime::ServerOptions o = sopts;
        o.preempt = preempt;
        runtime::Server server(dc.machine(), o);
        return server.serve(
            requests, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return dc.program(b); });
    };

    auto with = serve(true);
    auto without = serve(false);
    EXPECT_GE(with.preemptions, 1);
    EXPECT_EQ(without.preemptions, 0);
    EXPECT_EQ(with.high_priority_requests, 1);
    // Preemption serves the VIP's prefill mid-iteration: its first
    // token comes strictly earlier.
    EXPECT_LT(with.p95_ttft, without.p95_ttft);
    EXPECT_LE(with.p95_high_latency, without.p95_high_latency);
    // All requests complete under both policies.
    EXPECT_EQ(with.requests, 5);
    EXPECT_EQ(with.tokens, without.tokens);
    // The nested (preemption) iteration must not size the residency
    // budget: steady decode still runs warm afterwards.
    EXPECT_GT(with.preloads_skipped, 0);
    EXPECT_FALSE(with.memory_exceeded);
}

// Disaggregation shares one residency pool: decode weights stay
// resident across interleaved prefill iterations (disjoint op-id
// namespaces), so steady decode preloads still hit.
TEST_F(DisaggTest, DecodeResidencySurvivesPrefillInterleaving)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkFull);
    auto pc = make_compiler(compiler::GraphKind::kPrefill,
                            compiler::Mode::kElkFull);

    // Staggered prefill arrivals force prefill iterations between
    // decode iterations of the earlier requests.
    std::vector<runtime::Request> requests;
    for (int i = 0; i < 6; ++i) {
        runtime::Request r;
        r.arrival = i * 2e-3;
        r.phase = runtime::Phase::kPrefill;
        r.decode_tokens = 6;
        requests.push_back(r);
    }
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.max_prefill_batch = 1;
    sopts.max_prompt_len = 128;
    runtime::Server server(dc.machine(), sopts);
    auto rep = server.serve(
        requests, [&](int b, int len) { return pc.program(b, len); },
        [&](int b) { return dc.program(b); });
    EXPECT_EQ(rep.prefill_iterations, 6);
    EXPECT_GT(rep.decode_iterations, 6);
    EXPECT_GT(rep.preloads_skipped, 0);
    EXPECT_LT(rep.steady_decode_preload, rep.first_decode_preload);
    EXPECT_FALSE(rep.memory_exceeded);
}

// The frequency-aware policy is selectable end-to-end and keeps the
// report deterministic (two identical runs serialize identically).
TEST_F(DisaggTest, FrequencyPolicyServesDeterministically)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode,
                            compiler::Mode::kElkDyn);
    auto requests = runtime::decode_requests(
        runtime::ArrivalTrace::poisson(10, 2500.0, 11), 4);
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.residency_policy = sim::ResidencyPolicy::kFrequencyAware;
    runtime::Server server(dc.machine(), sopts);
    auto serve_once = [&] {
        return server.serve(requests, nullptr,
                            [&](int b) { return dc.program(b); });
    };
    auto a = serve_once();
    auto b = serve_once();
    EXPECT_EQ(a.serialize_bits(), b.serialize_bits());
    EXPECT_EQ(a.requests, 10);
    EXPECT_GT(a.preloads_skipped, 0);
}

}  // namespace
}  // namespace elk
