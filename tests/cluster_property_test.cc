/**
 * @file
 * Property tests for cluster routing and the trace generators.
 *
 * Conservation: over seeded Poisson / bursty / session traces crossed
 * with every router policy, each request is routed to exactly one
 * replica, every routed request completes, and the per-replica token
 * counts sum to the cluster roll-up — no request is lost, duplicated,
 * or double-counted by any policy.
 *
 * Trace-generator backfill (PR 7): ArrivalTrace::bursty() with burst
 * factor 1 is Poisson element-by-element, and make_session_trace()
 * stays sorted and platform-stable at its degenerate edges.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "runtime/cluster.h"
#include "runtime/server.h"
#include "test_helpers.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

class ClusterPropertyTest : public ::testing::Test {
  protected:
    static constexpr int kSeq = 128;

    compiler::ServingCompiler
    make_compiler(compiler::GraphKind kind)
    {
        compiler::CompileOptions copts;
        copts.mode = compiler::Mode::kElkFull;
        copts.max_orders = 6;
        compiler::ServingCompiler::Options sopts;
        sopts.kind = kind;
        sopts.op_id_offset =
            kind == compiler::GraphKind::kPrefill
                ? compiler::ServingCompiler::kPrefillIdOffset
                : 0;
        return compiler::ServingCompiler(testing::tiny_llm(), kSeq,
                                         tiny_chip(), copts, &cache_,
                                         /*jobs=*/1, sopts);
    }

    /// KV + prefix serving options (session traces carry prefixes,
    /// and affinity routing requires prefix_sharing).
    runtime::ServerOptions
    server_options() const
    {
        runtime::ServerOptions sopts;
        sopts.max_batch = 4;
        sopts.max_prefill_batch = 2;
        sopts.max_prompt_len = kSeq;
        sopts.kv_bytes_per_token =
            graph::kv_bytes_per_token(testing::tiny_llm());
        sopts.kv_budget =
            4 * kSeq * sopts.kv_bytes_per_token / 64;
        sopts.prefix_sharing = true;
        return sopts;
    }

    /// The three seeded trace families the properties quantify over.
    std::vector<std::vector<runtime::Request>>
    traces(uint64_t seed) const
    {
        std::vector<std::vector<runtime::Request>> all;
        auto poisson = runtime::make_request_trace(
            runtime::ArrivalTrace::poisson(14, 2500.0, seed), 2,
            /*prefill_frac=*/0.7, /*high_frac=*/0.2, seed);
        runtime::tag_prompt_lengths(poisson, kSeq, 24.0, seed);
        all.push_back(std::move(poisson));

        auto bursty = runtime::make_request_trace(
            runtime::ArrivalTrace::bursty(14, 2500.0, 3.0, seed), 2,
            /*prefill_frac=*/0.8, /*high_frac=*/0.0, seed);
        runtime::tag_prompt_lengths(bursty, kSeq, 24.0, seed);
        all.push_back(std::move(bursty));

        runtime::SessionTraceOptions so;
        so.sessions = 6;
        so.rate_per_s = 1500.0;
        so.mean_turns = 2.5;
        so.think_time_s = 1e-3;
        so.decode_tokens = 2;
        so.max_prompt_len = kSeq;
        so.prompt_mean_len = 24.0;
        so.prefix_population = 3;
        so.prefix_mean_len = 32.0;
        all.push_back(runtime::make_session_trace(so, seed));
        return all;
    }

    compiler::PlanCache cache_;
};

// Every request routes to exactly one in-range replica, and the
// routed counts partition the trace — for every policy, every trace
// family, several seeds and replica counts.
TEST_F(ClusterPropertyTest, RoutingPartitionsEveryTrace)
{
    sim::Machine machine(tiny_chip());
    for (uint64_t seed : {3u, 17u, 91u}) {
        for (auto& trace : traces(seed)) {
            for (auto policy :
                 {runtime::RouterPolicy::kRoundRobin,
                  runtime::RouterPolicy::kLeastLoaded,
                  runtime::RouterPolicy::kSessionAffinity}) {
                for (int n : {1, 2, 4}) {
                    runtime::ClusterOptions copts;
                    copts.replicas = n;
                    copts.router = policy;
                    copts.server = server_options();
                    runtime::Cluster cluster(machine, copts);
                    auto routed = cluster.route(trace);
                    ASSERT_EQ(routed.size(), trace.size());
                    for (int d : routed) {
                        ASSERT_GE(d, 0);
                        ASSERT_LT(d, n);
                    }
                    // Pure function: routing twice is identical.
                    ASSERT_EQ(routed, cluster.route(trace))
                        << runtime::router_policy_name(policy);
                }
            }
        }
    }
}

// Conservation through a real serve: completions == arrivals on every
// replica, the routed counts sum to the trace size, and the roll-up
// token count equals both the replica sum and the trace's own decode
// token demand.
TEST_F(ClusterPropertyTest, ServeConservesRequestsAndTokens)
{
    auto dc = make_compiler(compiler::GraphKind::kDecode);
    auto pc = make_compiler(compiler::GraphKind::kPrefill);
    auto prefill = [&](int b, int len) { return pc.program(b, len); };
    auto decode = [&](int b) { return dc.program(b); };

    for (auto& trace : traces(29)) {
        int64_t demand = 0;
        for (const auto& r : trace) {
            demand += r.decode_tokens;
        }
        for (auto policy :
             {runtime::RouterPolicy::kRoundRobin,
              runtime::RouterPolicy::kLeastLoaded,
              runtime::RouterPolicy::kSessionAffinity}) {
            runtime::ClusterOptions copts;
            copts.replicas = 3;
            copts.router = policy;
            copts.server = server_options();
            copts.migrate_kv = true;
            runtime::Cluster cluster(dc.machine(), copts);
            auto rep = cluster.serve(trace, prefill, decode);

            EXPECT_EQ(rep.requests, static_cast<int>(trace.size()));
            EXPECT_EQ(rep.routed, rep.requests);  // no tier split
            EXPECT_EQ(std::accumulate(rep.routed_per_replica.begin(),
                                      rep.routed_per_replica.end(), 0),
                      rep.routed);
            int64_t tokens = 0;
            int completed = 0;
            for (size_t i = 0; i < rep.replica_reports.size(); ++i) {
                const auto& r = rep.replica_reports[i];
                // Every routed request completed on its replica.
                EXPECT_EQ(r.requests, rep.routed_per_replica[i]);
                tokens += r.tokens;
                completed += r.requests;
            }
            EXPECT_EQ(completed, rep.requests);
            EXPECT_EQ(rep.tokens, tokens);
            EXPECT_EQ(rep.tokens, demand)
                << runtime::router_policy_name(policy);
        }
    }
}

// With a prefill tier the split is exact: routed == requests +
// (prefill requests that decode), and conservation still holds.
TEST_F(ClusterPropertyTest, TierSplitConservesRequests)
{
    sim::Machine machine(tiny_chip());
    for (auto& trace : traces(41)) {
        int splits = 0;
        for (const auto& r : trace) {
            if (r.phase == runtime::Phase::kPrefill &&
                r.decode_tokens > 0) {
                ++splits;
            }
        }
        runtime::ClusterOptions copts;
        copts.replicas = 4;
        copts.prefill_replicas = 2;
        copts.server = server_options();
        runtime::Cluster cluster(machine, copts);
        auto routed = cluster.route(trace);
        ASSERT_EQ(routed.size(), trace.size());
        // route() reports the token-producing half: a split request's
        // decode half always lands in the decode tier.
        for (size_t i = 0; i < trace.size(); ++i) {
            if (trace[i].phase == runtime::Phase::kPrefill &&
                trace[i].decode_tokens > 0) {
                EXPECT_GE(routed[i], copts.prefill_replicas);
            }
        }
        (void)splits;
    }
}

// ---------------------------------------------------------------------------
// Trace-generator backfill (PR 7)

// Burst factor 1 is not merely distributed like Poisson — it IS
// poisson(n, rate, seed), element-by-element, bit-for-bit.
TEST(ArrivalTraceTest, BurstyFactorOneIsPoissonExactly)
{
    for (uint64_t seed : {1u, 7u, 123u}) {
        for (double rate : {100.0, 2500.0}) {
            auto p = runtime::ArrivalTrace::poisson(50, rate, seed);
            auto b = runtime::ArrivalTrace::bursty(50, rate, 1.0, seed);
            ASSERT_EQ(p.size(), b.size());
            for (size_t i = 0; i < p.size(); ++i) {
                EXPECT_EQ(p[i], b[i]) << "element " << i;
            }
        }
    }
}

TEST(SessionTraceTest, DegenerateEdgesAreSortedAndStable)
{
    // One session, one turn, zero think-time: a single full-length
    // prefill request at its arrival instant.
    runtime::SessionTraceOptions one;
    one.sessions = 1;
    one.rate_per_s = 100.0;
    one.mean_turns = 1.0;
    one.max_prompt_len = 64;
    auto single = runtime::make_session_trace(one, 5);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].phase, runtime::Phase::kPrefill);
    EXPECT_EQ(single[0].prefix_id, -1);
    EXPECT_GE(single[0].arrival, 0.0);

    // Zero sessions: an empty trace, not a crash.
    runtime::SessionTraceOptions none;
    none.max_prompt_len = 64;
    EXPECT_TRUE(runtime::make_session_trace(none, 5).empty());

    // Zero think-time, many turns: every trace is sorted by arrival
    // (same-instant turns must not break the Server's sorted-arrivals
    // contract) and identical across calls (platform-stable draws).
    runtime::SessionTraceOptions tight;
    tight.sessions = 8;
    tight.rate_per_s = 500.0;
    tight.mean_turns = 4.0;
    tight.think_time_s = 0.0;
    tight.max_prompt_len = 64;
    tight.prompt_mean_len = 12.0;
    tight.prefix_population = 2;
    tight.prefix_mean_len = 16.0;
    for (uint64_t seed : {2u, 19u}) {
        auto trace = runtime::make_session_trace(tight, seed);
        EXPECT_FALSE(trace.empty());
        EXPECT_TRUE(std::is_sorted(
            trace.begin(), trace.end(),
            [](const runtime::Request& a, const runtime::Request& b) {
                return a.arrival < b.arrival;
            }));
        for (const auto& r : trace) {
            EXPECT_EQ(r.phase, runtime::Phase::kPrefill);
            EXPECT_GE(r.prompt_len, 1);
            EXPECT_LE(r.prompt_len, 64);
            if (r.prefix_id >= 0) {
                EXPECT_GE(r.prefix_len, 1);
                EXPECT_LT(r.prefix_len, r.prompt_len);
            }
        }
        auto again = runtime::make_session_trace(tight, seed);
        ASSERT_EQ(trace.size(), again.size());
        for (size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(trace[i].arrival, again[i].arrival);
            EXPECT_EQ(trace[i].prompt_len, again[i].prompt_len);
            EXPECT_EQ(trace[i].prefix_id, again[i].prefix_id);
            EXPECT_EQ(trace[i].prefix_len, again[i].prefix_len);
        }
    }
}

}  // namespace
}  // namespace elk
