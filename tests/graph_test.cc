/**
 * @file
 * Unit tests for the graph IR and the model builders.
 */
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/model_builder.h"
#include "graph/model_config.h"

namespace elk::graph {
namespace {

TEST(OpTest, MatmulFlops)
{
    Operator op;
    op.kind = OpKind::kMatMul;
    op.m = 4;
    op.n = 8;
    op.k = 16;
    finalize_flops(op);
    EXPECT_DOUBLE_EQ(op.flops, 2.0 * 4 * 8 * 16);
}

TEST(OpTest, BatchMatmulFlops)
{
    Operator op;
    op.kind = OpKind::kBatchMatMul;
    op.batch = 3;
    op.m = 2;
    op.n = 5;
    op.k = 7;
    finalize_flops(op);
    EXPECT_DOUBLE_EQ(op.flops, 2.0 * 3 * 2 * 5 * 7);
}

TEST(OpTest, HbmHeavyThreshold)
{
    Operator op;
    op.param_bytes = 1000;
    EXPECT_TRUE(op.hbm_heavy(500));
    EXPECT_FALSE(op.hbm_heavy(1000));
}

TEST(GraphTest, AddAssignsIdsAndLayers)
{
    Graph g("test");
    Operator op;
    op.layer = 0;
    int id0 = g.add(op);
    op.layer = 1;
    int id1 = g.add(op);
    EXPECT_EQ(id0, 0);
    EXPECT_EQ(id1, 1);
    EXPECT_EQ(g.num_layers(), 2);
    EXPECT_EQ(g.ops_in_layer(1), std::vector<int>{1});
}

TEST(ModelConfigTest, ParamCountsMatchModelNames)
{
    // Parameter counts should land near the nominal model sizes.
    EXPECT_NEAR(llama2_13b().param_count(), 13e9, 1.5e9);
    EXPECT_NEAR(gemma2_27b().param_count(), 27e9, 4e9);
    EXPECT_NEAR(opt_30b().param_count(), 30e9, 3e9);
    EXPECT_NEAR(llama2_70b().param_count(), 70e9, 5e9);
    EXPECT_LT(dit_xl().param_count(), 1.5e9);
}

TEST(ModelConfigTest, LookupByName)
{
    EXPECT_EQ(model_by_name("Llama2-13B").hidden, 5120);
    EXPECT_EQ(model_by_name("Llama2-70B").kv_heads, 8);
}

TEST(DecodeGraphTest, StructureAndSizes)
{
    ModelConfig cfg = llama2_13b();
    Graph g = build_decode_graph(cfg, /*batch=*/32, /*seq=*/2048);
    EXPECT_EQ(g.num_layers(), cfg.layers);
    EXPECT_GT(g.size(), cfg.layers * 10);
    // Per-token HBM traffic ~ weights + KV cache.
    double weights = cfg.param_bytes();
    double kv = 2.0 * cfg.layers * 32.0 * cfg.kv_heads * 2048.0 *
                cfg.head_dim * cfg.dtype_bytes;
    EXPECT_NEAR(static_cast<double>(g.total_hbm_bytes()), weights + kv,
                0.1 * (weights + kv));
}

TEST(DecodeGraphTest, HbmHeavyOpsPerLayerMatchesPaper)
{
    // Paper Table 2: H = 6 for Llama2-13B (QKV, K-cache, V-cache,
    // out-proj, FFN matrices dominate).
    Graph g = build_decode_graph(llama2_13b(), 32, 2048);
    EXPECT_GE(g.hbm_heavy_per_layer(), 4);
    EXPECT_LE(g.hbm_heavy_per_layer(), 7);
}

TEST(DecodeGraphTest, GqaReducesKvBytes)
{
    ModelConfig mha = llama2_13b();
    ModelConfig gqa = mha;
    gqa.kv_heads = mha.heads / 4;
    Graph g_mha = build_decode_graph(mha, 32, 2048);
    Graph g_gqa = build_decode_graph(gqa, 32, 2048);

    auto kv_stream = [](const Graph& g) {
        uint64_t total = 0;
        for (const auto& op : g.ops()) {
            total += op.stream_bytes;
        }
        return total;
    };
    EXPECT_LT(kv_stream(g_gqa), kv_stream(g_mha));
}

TEST(DecodeGraphTest, AttentionSharingAnnotation)
{
    Graph g = build_decode_graph(llama2_70b(), 16, 2048);
    bool found = false;
    for (const auto& op : g.ops()) {
        if (op.name == "attn_score") {
            // 64 query heads / 8 kv heads, q_len 1.
            EXPECT_EQ(op.w_share_rows, 8);
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ForwardGraphTest, ComputeIntensiveShape)
{
    ModelConfig cfg = llama2_13b();
    Graph decode = build_decode_graph(cfg, 32, 2048);
    Graph forward = build_forward_graph(cfg, 4, 2048);
    // Forward pass processes many tokens: far more FLOPs per HBM byte.
    double decode_intensity =
        decode.total_flops() / static_cast<double>(decode.total_hbm_bytes());
    double forward_intensity = forward.total_flops() /
                               static_cast<double>(forward.total_hbm_bytes());
    EXPECT_GT(forward_intensity, 50 * decode_intensity);
    // No KV streaming in the forward graph.
    for (const auto& op : forward.ops()) {
        EXPECT_EQ(op.stream_bytes, 0u) << op.name;
    }
}

TEST(DitGraphTest, BuildsAndIsComputeHeavy)
{
    Graph g = build_dit_graph(dit_xl(), /*batch=*/8, /*tokens=*/256);
    EXPECT_EQ(g.num_layers(), dit_xl().layers);
    double intensity =
        g.total_flops() / static_cast<double>(g.total_hbm_bytes());
    // DiT-XL is compute-intensive (paper §6.4 finding 3).
    EXPECT_GT(intensity, 100.0);
}

TEST(GraphTest, HeavyOpsAreParameterOrStreamOps)
{
    Graph g = build_decode_graph(opt_30b(), 32, 2048);
    uint64_t avg = g.avg_hbm_bytes();
    for (int id : g.hbm_heavy_ops()) {
        EXPECT_GT(g.op(id).hbm_bytes(), avg);
    }
}

}  // namespace
}  // namespace elk::graph
