/**
 * @file
 * Unit tests for the compiler facade: all five designs produce valid
 * plans and the device-program lowering is well-formed.
 */
#include <gtest/gtest.h>

#include "elk/compiler.h"
#include "elk/device_program.h"
#include "test_helpers.h"

namespace elk::compiler {
namespace {

class CompilerTest : public ::testing::Test {
  protected:
    CompilerTest()
        : graph_(graph::build_decode_graph(testing::tiny_llm(), 8, 512))
    {
        cfg_ = testing::CompilerHarness::tiny().cfg;
        compiler_ = std::make_unique<Compiler>(graph_, cfg_);
    }

    graph::Graph graph_;
    hw::ChipConfig cfg_;
    std::unique_ptr<Compiler> compiler_;
};

TEST_F(CompilerTest, AllModesCompile)
{
    for (Mode mode : {Mode::kBasic, Mode::kStatic, Mode::kElkDyn,
                      Mode::kElkFull, Mode::kIdeal}) {
        CompileOptions opts;
        opts.mode = mode;
        opts.max_orders = 8;
        CompileResult result = compiler_->compile(opts);
        EXPECT_EQ(static_cast<int>(result.plan.ops.size()),
                  graph_.size())
            << mode_name(mode);
        EXPECT_GT(result.plan.est_total_time, 0.0) << mode_name(mode);
        EXPECT_EQ(result.stats.n_ops, graph_.size());
        EXPECT_GT(result.stats.max_plans, 0);
        EXPECT_GT(result.stats.max_fit_window, 0);
    }
}

TEST_F(CompilerTest, DeviceProgramWellFormed)
{
    CompileOptions opts;
    opts.mode = Mode::kElkDyn;
    auto result = compiler_->compile(opts);
    DeviceProgram program = build_device_program(result.plan);
    // 2 instructions per op: one preload_async, one execute.
    EXPECT_EQ(program.size(), 2u * graph_.size());
    // Every execute appears in order; preload(i) precedes execute(i).
    std::vector<int> pre_pos(graph_.size(), -1);
    std::vector<int> exe_pos(graph_.size(), -1);
    for (size_t p = 0; p < program.size(); ++p) {
        if (program[p].kind == DeviceInstr::Kind::kPreloadAsync) {
            pre_pos[program[p].op_id] = static_cast<int>(p);
        } else {
            exe_pos[program[p].op_id] = static_cast<int>(p);
        }
    }
    int prev = -1;
    for (int i = 0; i < graph_.size(); ++i) {
        EXPECT_GE(pre_pos[i], 0);
        EXPECT_LT(pre_pos[i], exe_pos[i]);
        EXPECT_GT(exe_pos[i], prev);
        prev = exe_pos[i];
    }
}

TEST_F(CompilerTest, DeviceProgramPrints)
{
    CompileOptions opts;
    opts.mode = Mode::kBasic;
    auto result = compiler_->compile(opts);
    std::string text =
        to_string(build_device_program(result.plan), graph_);
    EXPECT_NE(text.find("preload_async(op=0)"), std::string::npos);
    EXPECT_NE(text.find("execute(op=0)"), std::string::npos);
}

TEST_F(CompilerTest, ElkEstimatesBeatBasic)
{
    CompileOptions basic;
    basic.mode = Mode::kBasic;
    CompileOptions dyn;
    dyn.mode = Mode::kElkDyn;
    auto b = compiler_->compile(basic);
    auto d = compiler_->compile(dyn);
    EXPECT_LT(d.plan.est_total_time, b.plan.est_total_time);
}

TEST_F(CompilerTest, IdealIsLowerBoundEstimate)
{
    CompileOptions ideal;
    ideal.mode = Mode::kIdeal;
    CompileOptions full;
    full.mode = Mode::kElkFull;
    full.max_orders = 8;
    auto i = compiler_->compile(ideal);
    auto f = compiler_->compile(full);
    // Chunk-streamed schedules can beat the classical roofline's
    // serial-preload assumption; keep a generous sanity band.
    EXPECT_LE(i.plan.est_total_time, f.plan.est_total_time * 1.3);
}

TEST_F(CompilerTest, StatsMatchTable2Shape)
{
    CompileOptions opts;
    opts.mode = Mode::kElkFull;
    opts.max_orders = 8;
    auto result = compiler_->compile(opts);
    // Paper Table 2 shape: H small (<= ~6), K >= H, N in the hundreds.
    EXPECT_GE(result.stats.heavy_per_layer, 1);
    EXPECT_LE(result.stats.heavy_per_layer, 8);
    EXPECT_GE(result.stats.n_ops, 40);
    EXPECT_GE(result.stats.max_fit_window, 1);
}

TEST_F(CompilerTest, CompileTimeRecorded)
{
    CompileOptions opts;
    opts.mode = Mode::kElkDyn;
    auto result = compiler_->compile(opts);
    EXPECT_GT(result.compile_seconds, 0.0);
}

TEST(ModeNameTest, AllNamesDistinct)
{
    std::set<std::string> names;
    for (Mode m : {Mode::kBasic, Mode::kStatic, Mode::kElkDyn,
                   Mode::kElkFull, Mode::kIdeal}) {
        names.insert(mode_name(m));
    }
    EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace elk::compiler
