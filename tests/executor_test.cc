/**
 * @file
 * Unit tests for the plan -> simulator lowering (runtime/executor) and
 * the Ideal roofline plan.
 */
#include <gtest/gtest.h>

#include "elk/compiler.h"
#include "elk/ideal.h"
#include "runtime/executor.h"
#include "test_helpers.h"

namespace elk::runtime {
namespace {

class ExecutorTest : public ::testing::Test {
  protected:
    ExecutorTest()
        : h_(testing::CompilerHarness::tiny()),
          compiler_(h_.graph, h_.cfg)
    {
    }

    compiler::ExecutionPlan
    plan(compiler::Mode mode)
    {
        compiler::CompileOptions opts;
        opts.mode = mode;
        opts.max_orders = 4;
        return compiler_.compile(opts).plan;
    }

    testing::CompilerHarness h_;
    compiler::Compiler compiler_;
};

TEST_F(ExecutorTest, LoweringCoversEveryOp)
{
    auto p = plan(compiler::Mode::kElkDyn);
    auto prog = lower_to_sim(h_.graph, p, compiler_.context());
    ASSERT_EQ(static_cast<int>(prog.ops.size()), h_.graph.size());
    for (int i = 0; i < h_.graph.size(); ++i) {
        EXPECT_EQ(prog.ops[i].op_id, i);
        EXPECT_DOUBLE_EQ(prog.ops[i].flops, h_.graph.op(i).flops);
        EXPECT_GT(prog.ops[i].exec_local_time, 0.0);
    }
}

TEST_F(ExecutorTest, DramBytesMatchGraph)
{
    auto p = plan(compiler::Mode::kElkDyn);
    auto prog = lower_to_sim(h_.graph, p, compiler_.context());
    // Preload-time DRAM plus execution-time streamed DRAM covers the
    // model's unique HBM bytes exactly.
    double total_dram = 0.0;
    for (const auto& op : prog.ops) {
        total_dram += op.dram_bytes + op.exec_stream_dram;
    }
    EXPECT_NEAR(total_dram,
                static_cast<double>(h_.graph.total_hbm_bytes()),
                1.0);
}

TEST_F(ExecutorTest, DeliveryNeverBelowDram)
{
    for (auto mode : {compiler::Mode::kBasic, compiler::Mode::kStatic,
                      compiler::Mode::kElkFull, compiler::Mode::kIdeal}) {
        auto prog =
            lower_to_sim(h_.graph, plan(mode), compiler_.context());
        for (const auto& op : prog.ops) {
            if (op.dram_bytes > 0) {
                EXPECT_GE(op.delivery_bytes, op.dram_bytes)
                    << compiler::mode_name(mode) << " op " << op.op_id;
            } else {
                EXPECT_DOUBLE_EQ(op.delivery_bytes, 0.0);
            }
        }
    }
}

TEST_F(ExecutorTest, DistributionConsistentWithPreloadPlan)
{
    auto p = plan(compiler::Mode::kElkDyn);
    auto prog = lower_to_sim(h_.graph, p, compiler_.context());
    for (int i = 0; i < h_.graph.size(); ++i) {
        double per_core = p.ops[i].preload.distribute_bytes;
        double cores =
            static_cast<double>(p.ops[i].exec.cores_used());
        EXPECT_NEAR(prog.ops[i].distribute_bytes, per_core * cores,
                    1e-6 + per_core * cores * 1e-12);
    }
}

TEST_F(ExecutorTest, IdealPlanProperties)
{
    auto ideal = compiler::build_ideal_plan(compiler_.library());
    EXPECT_EQ(ideal.mode, "Ideal");
    for (const auto& sched : ideal.ops) {
        // Fastest plan, zero-cost distribution, no replication.
        EXPECT_DOUBLE_EQ(sched.preload.distribute_time, 0.0);
        EXPECT_DOUBLE_EQ(sched.preload.noc_delivery_bytes, 0.0);
        EXPECT_DOUBLE_EQ(
            sched.exec.exec_time,
            compiler_.library().exec_plans(sched.op_id)[0].exec_time);
    }
    // All preloads stream from program start.
    for (int slot : ideal.issue_slot) {
        EXPECT_EQ(slot, 0);
    }
}

TEST_F(ExecutorTest, IdealIsFastestUnderSimulation)
{
    sim::Machine machine(h_.cfg);
    sim::Machine ideal_machine(h_.cfg, /*ideal=*/true);
    auto ideal = run_plan(ideal_machine, h_.graph,
                          compiler::build_ideal_plan(compiler_.library()),
                          compiler_.context());
    for (auto mode : {compiler::Mode::kBasic, compiler::Mode::kStatic,
                      compiler::Mode::kElkDyn, compiler::Mode::kElkFull}) {
        auto run =
            run_plan(machine, h_.graph, plan(mode), compiler_.context());
        // The Ideal roofline is an analytic reference (paper §6.1),
        // not a strict dominator of every simulated schedule; allow a
        // small margin.
        EXPECT_LE(ideal.total_time, run.total_time * 1.03)
            << compiler::mode_name(mode);
    }
}

TEST_F(ExecutorTest, EstimateTracksSimulation)
{
    // The scheduler's own estimate should be within ~35% of the
    // simulator for the Elk designs (it ignores fine-grained
    // contention but models the same structure).
    sim::Machine machine(h_.cfg);
    auto p = plan(compiler::Mode::kElkDyn);
    auto run = run_plan(machine, h_.graph, p, compiler_.context());
    EXPECT_GT(p.est_total_time, run.total_time * 0.5);
    EXPECT_LT(p.est_total_time, run.total_time * 1.5);
}

}  // namespace
}  // namespace elk::runtime
