/**
 * @file
 * Property tests over mesh routing: for random mesh shapes and random
 * endpoint pairs, every DOR route must be connected, X-then-Y ordered,
 * and exactly as long as the Manhattan distance; HBM delivery routes
 * must enter at the controller's edge column in the destination row.
 */
#include <gtest/gtest.h>

#include <random>

#include "hw/topology.h"

namespace elk::hw {
namespace {

struct MeshCase {
    int width;
    int height;
    int cores;
};

class MeshRouteProperty : public ::testing::TestWithParam<MeshCase> {
  protected:
    MeshRouteProperty()
    {
        cfg_ = ChipConfig::tiny(GetParam().cores);
        cfg_.topology = TopologyKind::kMesh2D;
        cfg_.mesh_width = GetParam().width;
        cfg_.mesh_height = GetParam().height;
        topo_ = std::make_unique<Topology>(cfg_);
    }

    ChipConfig cfg_;
    std::unique_ptr<Topology> topo_;
};

TEST_P(MeshRouteProperty, RoutesConnectedAndMinimal)
{
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<int> pick(0, topo_->num_cores() - 1);
    for (int trial = 0; trial < 200; ++trial) {
        int src = pick(rng);
        int dst = pick(rng);
        auto path = topo_->route(src, dst);
        ASSERT_GE(path.size(), 2u);
        EXPECT_EQ(path.front(), topo_->injection_link(src));
        EXPECT_EQ(path.back(), topo_->ejection_link(dst));

        // Mesh segment: connected, X moves before Y moves. Link
        // endpoints are grid slots (row-major), valid even when the
        // slot holds no core (ragged grids).
        auto coord = [&](int slot) {
            return std::make_pair(slot % cfg_.mesh_width,
                                  slot / cfg_.mesh_width);
        };
        auto [x, y] = topo_->mesh_coord(src);
        bool seen_y = false;
        for (size_t i = 1; i + 1 < path.size(); ++i) {
            const LinkInfo& link = topo_->link(path[i]);
            ASSERT_GE(link.src, 0);
            ASSERT_GE(link.dst, 0);
            auto [lx, ly] = coord(link.src);
            EXPECT_EQ(lx, x) << "route disconnected at hop " << i;
            EXPECT_EQ(ly, y) << "route disconnected at hop " << i;
            auto [nx, ny] = coord(link.dst);
            if (ny != y) {
                seen_y = true;
            } else {
                EXPECT_FALSE(seen_y) << "X move after Y move (not DOR)";
            }
            x = nx;
            y = ny;
        }
        auto [dx, dy] = topo_->mesh_coord(dst);
        EXPECT_EQ(x, dx);
        EXPECT_EQ(y, dy);

        // Minimality: mesh hops == Manhattan distance.
        auto [sx, sy] = topo_->mesh_coord(src);
        size_t manhattan = static_cast<size_t>(std::abs(sx - dx)) +
                           static_cast<size_t>(std::abs(sy - dy));
        EXPECT_EQ(path.size() - 2, manhattan);
    }
}

TEST_P(MeshRouteProperty, HbmRoutesEnterAtDestinationRow)
{
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<int> pick(0, topo_->num_cores() - 1);
    for (int h = 0; h < topo_->num_hbm_nodes(); ++h) {
        int side = topo_->hbm_side(h);
        int edge_x = side == 0 ? 0 : cfg_.mesh_width - 1;
        for (int trial = 0; trial < 50; ++trial) {
            int dst = pick(rng);
            auto [dx, dy] = topo_->mesh_coord(dst);
            auto path = topo_->route(topo_->hbm_node(h), dst);
            if (path.size() > 2) {
                // First mesh hop starts at (edge_x, dy): the edge PHY
                // injects straight into the destination's row.
                const LinkInfo& first = topo_->link(path[1]);
                int fx = first.src % cfg_.mesh_width;
                int fy = first.src / cfg_.mesh_width;
                EXPECT_EQ(fx, edge_x);
                EXPECT_EQ(fy, dy);
            } else {
                // Direct ejection: destination sits at the edge column.
                EXPECT_EQ(dx, edge_x);
            }
        }
    }
}

TEST_P(MeshRouteProperty, NearestHbmIsValid)
{
    for (int c = 0; c < topo_->num_cores(); ++c) {
        int h = topo_->nearest_hbm(c);
        EXPECT_GE(h, 0);
        EXPECT_LT(h, topo_->num_hbm_nodes());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MeshRouteProperty,
    ::testing::Values(MeshCase{4, 4, 16}, MeshCase{8, 8, 64},
                      MeshCase{8, 8, 60},   // ragged: empty slots
                      MeshCase{16, 4, 64}, MeshCase{5, 13, 65}));

}  // namespace
}  // namespace elk::hw
