/**
 * @file
 * Tests for the pass-pipeline compiler core: pass ordering and
 * mode-gating, the work-stealing thread pool, and the bit-identity of
 * parallel and serial compilation (the determinism contract of
 * pass.h) on both the tiny fixture and the quickstart model.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "elk/compiler.h"
#include "elk/pass.h"
#include "graph/model_builder.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace elk::compiler {
namespace {

std::vector<std::string>
enabled_for(Mode mode)
{
    CompilerPipeline pipeline = CompilerPipeline::standard();
    CompileState probe;
    probe.opts.mode = mode;
    return pipeline.enabled_passes(probe);
}

TEST(PipelineTest, StandardPassOrder)
{
    auto names = CompilerPipeline::standard().pass_names();
    std::vector<std::string> expected = {
        "hardware-analysis", "plan-library",         "schedule-basic",
        "schedule-static",   "schedule-elk",         "preload-order-search",
        "schedule-ideal",    "finalize",
    };
    EXPECT_EQ(names, expected);
}

TEST(PipelineTest, ModeGatingSelectsOneSchedulingPass)
{
    EXPECT_EQ(enabled_for(Mode::kBasic),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-basic", "finalize"}));
    EXPECT_EQ(enabled_for(Mode::kStatic),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-static", "finalize"}));
    EXPECT_EQ(enabled_for(Mode::kElkDyn),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-elk", "finalize"}));
    EXPECT_EQ(enabled_for(Mode::kElkFull),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-elk",
                                        "preload-order-search", "finalize"}));
    EXPECT_EQ(enabled_for(Mode::kIdeal),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-ideal", "finalize"}));
}

TEST(PipelineTest, PassFilterNarrowsSelection)
{
    CompilerPipeline pipeline = CompilerPipeline::standard();
    CompileState probe;
    probe.opts.mode = Mode::kElkFull;
    probe.opts.pass_filter = {"hardware-analysis", "plan-library",
                              "schedule-elk", "finalize"};
    EXPECT_EQ(pipeline.enabled_passes(probe),
              (std::vector<std::string>{"hardware-analysis", "plan-library",
                                        "schedule-elk", "finalize"}));
    // The filter cannot enable a pass the mode gates out.
    probe.opts.mode = Mode::kBasic;
    probe.opts.pass_filter = {"schedule-ideal", "finalize"};
    EXPECT_EQ(pipeline.enabled_passes(probe),
              (std::vector<std::string>{"finalize"}));
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    const int n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPoolTest, InlineWhenSingleThreaded)
{
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 0);  // no workers: parallel_for runs inline
    int sum = 0;
    pool.parallel_for(100, [&](int i) { sum += i; });  // safe: inline
    EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, PropagatesExceptions)
{
    util::ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](int i) {
                                       if (i == 17) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ResolveJobs)
{
    EXPECT_GE(util::ThreadPool::hardware_jobs(), 1);
    EXPECT_EQ(util::ThreadPool::resolve_jobs(0),
              util::ThreadPool::hardware_jobs());
    EXPECT_EQ(util::ThreadPool::resolve_jobs(1), 1);
    EXPECT_EQ(util::ThreadPool::resolve_jobs(6), 6);
}

TEST(ScheduleIrTest, ReorderEditDistanceEmptyPlanIsZero)
{
    ExecutionPlan empty;
    EXPECT_EQ(empty.reorder_edit_distance(), 0.0);
    // Identity order: nothing moved.
    ExecutionPlan identity;
    identity.ops.resize(3);
    identity.preload_order = {0, 1, 2};
    EXPECT_EQ(identity.reorder_edit_distance(), 0.0);
}

class PipelineCompileTest : public ::testing::Test {
  protected:
    PipelineCompileTest()
        : graph_(graph::build_decode_graph(testing::tiny_llm(), 8, 512)),
          cfg_(testing::CompilerHarness::tiny().cfg)
    {
    }

    std::string
    compile_bits(Mode mode, int ctor_jobs, int opt_jobs)
    {
        Compiler comp(graph_, cfg_, nullptr, ctor_jobs);
        CompileOptions opts;
        opts.mode = mode;
        opts.max_orders = 8;
        opts.jobs = opt_jobs;
        return comp.compile(opts).plan.serialize_bits();
    }

    graph::Graph graph_;
    hw::ChipConfig cfg_;
};

TEST_F(PipelineCompileTest, ParallelMatchesSerialAllModes)
{
    for (Mode mode : {Mode::kBasic, Mode::kStatic, Mode::kElkDyn,
                      Mode::kElkFull, Mode::kIdeal}) {
        std::string serial = compile_bits(mode, 1, 0);
        std::string parallel = compile_bits(mode, 4, 0);
        EXPECT_EQ(serial, parallel) << mode_name(mode);
        EXPECT_FALSE(serial.empty());
    }
}

TEST_F(PipelineCompileTest, PerCompileJobsOverrideMatchesToo)
{
    // Serial construction, parallel compile() — the opts.jobs knob.
    std::string serial = compile_bits(Mode::kElkFull, 1, 1);
    std::string parallel = compile_bits(Mode::kElkFull, 1, 4);
    EXPECT_EQ(serial, parallel);
}

TEST_F(PipelineCompileTest, RepeatedCompilesAreIdentical)
{
    Compiler comp(graph_, cfg_);
    CompileOptions opts;
    opts.mode = Mode::kElkFull;
    opts.max_orders = 8;
    // The second compile reuses the cached tuning machine; the plan
    // must not drift.
    EXPECT_EQ(comp.compile(opts).plan.serialize_bits(),
              comp.compile(opts).plan.serialize_bits());
}

TEST_F(PipelineCompileTest, SerializeBitsDistinguishesPlans)
{
    std::string basic = compile_bits(Mode::kBasic, 1, 0);
    std::string dyn = compile_bits(Mode::kElkDyn, 1, 0);
    EXPECT_NE(basic, dyn);
}

TEST_F(PipelineCompileTest, StatsSurviveThePipelineSplit)
{
    Compiler comp(graph_, cfg_);
    CompileOptions opts;
    opts.mode = Mode::kElkFull;
    opts.max_orders = 8;
    auto result = comp.compile(opts);
    EXPECT_EQ(result.stats.n_ops, graph_.size());
    EXPECT_GT(result.stats.max_plans, 0);
    EXPECT_GT(result.stats.max_fit_window, 0);
    EXPECT_GE(result.stats.orders_tested, 1);
}

// The acceptance check of the parallel pipeline: the quickstart model
// (Llama2-13B decode, batch 32, seq 2048, IPU-POD4) compiled with
// --jobs 8 and --jobs 1 must emit byte-identical ExecutionPlans.
TEST(PipelineQuickstartTest, ParallelAndSerialPlansAreByteIdentical)
{
    auto graph = graph::build_decode_graph(graph::llama2_13b(), 32, 2048);
    auto cfg = hw::ChipConfig::ipu_pod4();
    CompileOptions opts;
    opts.mode = Mode::kElkFull;

    Compiler serial(graph, cfg, nullptr, 1);
    opts.jobs = 1;
    auto serial_plan = serial.compile(opts).plan;

    Compiler parallel(graph, cfg, nullptr, 8);
    opts.jobs = 8;
    auto parallel_plan = parallel.compile(opts).plan;

    EXPECT_EQ(serial_plan.serialize_bits(),
              parallel_plan.serialize_bits());
    EXPECT_EQ(serial_plan.mode, "Elk-Full");
}

}  // namespace
}  // namespace elk::compiler
