/**
 * @file
 * Shared fixtures for compiler-level tests: a small LLM-like graph and
 * the plan context / library plumbing around it.
 */
#ifndef ELK_TESTS_TEST_HELPERS_H
#define ELK_TESTS_TEST_HELPERS_H

#include <memory>

#include "cost/exec_cost.h"
#include "elk/schedule_ir.h"
#include "graph/model_builder.h"
#include "graph/model_config.h"
#include "hw/topology.h"
#include "hw/traffic.h"

namespace elk::testing {

/// A small but non-trivial LLM config that compiles in milliseconds.
inline graph::ModelConfig
tiny_llm()
{
    graph::ModelConfig cfg;
    cfg.name = "Tiny-LLM";
    cfg.hidden = 512;
    cfg.layers = 4;
    cfg.heads = 8;
    cfg.kv_heads = 8;
    cfg.head_dim = 64;
    cfg.ffn = 1536;
    cfg.vocab = 4096;
    cfg.gated_ffn = true;
    return cfg;
}

/// GQA variant of tiny_llm.
inline graph::ModelConfig
tiny_llm_gqa()
{
    graph::ModelConfig cfg = tiny_llm();
    cfg.name = "Tiny-LLM-GQA";
    cfg.kv_heads = 2;
    return cfg;
}

/// Owns a graph plus the full plan context / library around it.
struct CompilerHarness {
    CompilerHarness(graph::Graph g, hw::ChipConfig chip)
        : graph(std::move(g)), cfg(chip)
    {
        topo = std::make_unique<hw::Topology>(cfg);
        traffic = std::make_unique<hw::TrafficModel>(*topo, cfg);
        ctx.cfg = &cfg;
        ctx.traffic = traffic.get();
        ctx.exec_cost = &cost;
        library = std::make_unique<compiler::PlanLibrary>(graph, ctx);
    }

    /// Default: tiny LLM decode on a scaled-down chip.
    static CompilerHarness
    tiny()
    {
        hw::ChipConfig chip;
        chip.cores_per_chip = 64;
        chip.num_chips = 1;
        chip.sram_per_core = 256ull * 1024;
        chip.transfer_buffer_per_core = 8ull * 1024;
        chip.core_matmul_flops = 50e9;
        chip.core_vector_flops = 5e9;
        chip.inter_core_link_bw = 4e9;
        chip.hbm_total_bw = 200e9;
        chip.hbm_channels_per_chip = 2;
        chip.mesh_width = 8;
        chip.mesh_height = 8;
        return CompilerHarness(
            graph::build_decode_graph(tiny_llm(), /*batch=*/8,
                                      /*seq=*/512),
            chip);
    }

    graph::Graph graph;
    hw::ChipConfig cfg;
    std::unique_ptr<hw::Topology> topo;
    std::unique_ptr<hw::TrafficModel> traffic;
    cost::AnalyticExecCost cost;
    plan::PlanContext ctx;
    std::unique_ptr<compiler::PlanLibrary> library;
};

}  // namespace elk::testing

#endif  // ELK_TESTS_TEST_HELPERS_H
