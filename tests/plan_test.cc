/**
 * @file
 * Unit tests for partition-plan enumeration: Pareto fronts, metric
 * computation, preload-state plans (the §4.3 trade-off structure).
 */
#include <gtest/gtest.h>

#include <memory>

#include "cost/exec_cost.h"
#include "graph/model_builder.h"
#include "hw/topology.h"
#include "hw/traffic.h"
#include "plan/pareto.h"
#include "plan/plan_enumerator.h"

namespace elk::plan {
namespace {

struct Point {
    uint64_t mem;
    double time;
};

TEST(ParetoTest, KeepsOnlyNonDominated)
{
    std::vector<Point> pts{{100, 1.0}, {50, 2.0}, {80, 1.5},
                           {100, 2.0},  // dominated by {100,1}
                           {40, 3.0}, {60, 1.4}};
    auto front = pareto_front(
        pts, [](const Point& p) { return p.mem; },
        [](const Point& p) { return p.time; });
    // Descending memory, ascending time.
    ASSERT_GE(front.size(), 2u);
    for (size_t i = 1; i < front.size(); ++i) {
        EXPECT_LT(front[i].mem, front[i - 1].mem);
        EXPECT_GT(front[i].time, front[i - 1].time);
    }
    // {80, 1.5} is dominated by {60, 1.4}.
    for (const auto& p : front) {
        EXPECT_FALSE(p.mem == 80 && p.time == 1.5);
    }
}

TEST(ParetoTest, SingletonAndEmpty)
{
    std::vector<Point> empty;
    EXPECT_TRUE(pareto_front(
                    empty, [](const Point& p) { return p.mem; },
                    [](const Point& p) { return p.time; })
                    .empty());
    std::vector<Point> one{{10, 1.0}};
    EXPECT_EQ(pareto_front(
                  one, [](const Point& p) { return p.mem; },
                  [](const Point& p) { return p.time; })
                  .size(),
              1u);
}

class PlanEnumeratorTest : public ::testing::Test {
  protected:
    PlanEnumeratorTest()
    {
        cfg_ = hw::ChipConfig::ipu_pod4();
        topo_ = std::make_unique<hw::Topology>(cfg_);
        traffic_ = std::make_unique<hw::TrafficModel>(*topo_, cfg_);
        ctx_.cfg = &cfg_;
        ctx_.traffic = traffic_.get();
        ctx_.exec_cost = &cost_;
    }

    graph::Operator
    make_matmul(long m, long k, long n)
    {
        graph::Operator op;
        op.kind = graph::OpKind::kMatMul;
        op.name = "mm";
        op.m = m;
        op.k = k;
        op.n = n;
        op.param_bytes = static_cast<uint64_t>(k) * n * 2;
        op.act_in_bytes = static_cast<uint64_t>(m) * k * 2;
        op.act_out_bytes = static_cast<uint64_t>(m) * n * 2;
        graph::finalize_flops(op);
        return op;
    }

    hw::ChipConfig cfg_;
    std::unique_ptr<hw::Topology> topo_;
    std::unique_ptr<hw::TrafficModel> traffic_;
    cost::AnalyticExecCost cost_;
    PlanContext ctx_;
};

TEST_F(PlanEnumeratorTest, FrontIsProperPareto)
{
    auto op = make_matmul(32, 5120, 13824);
    auto front = enumerate_exec_plans(op, ctx_);
    ASSERT_GE(front.size(), 2u) << "expect a nontrivial trade-off";
    for (size_t i = 1; i < front.size(); ++i) {
        EXPECT_LT(front[i].exec_space, front[i - 1].exec_space);
        EXPECT_GT(front[i].time_cost(), front[i - 1].time_cost());
    }
}

TEST_F(PlanEnumeratorTest, PlansFitBudgetAndChip)
{
    auto op = make_matmul(64, 8192, 28672);
    for (const auto& plan : enumerate_exec_plans(op, ctx_)) {
        EXPECT_LE(plan.exec_space, ctx_.sram_budget());
        EXPECT_LE(plan.cores_used(), cfg_.total_cores());
        EXPECT_GE(plan.tile_rows, 1);
        EXPECT_GE(plan.tile_cols, 1);
    }
}

TEST_F(PlanEnumeratorTest, MoreMemoryLessFetchTraffic)
{
    // Paper §3.1/§3.3: larger execution space => fewer inter-core
    // accesses. The largest-memory plan must not fetch more than the
    // smallest-memory plan.
    auto op = make_matmul(32, 5120, 13824);
    auto front = enumerate_exec_plans(op, ctx_);
    ASSERT_GE(front.size(), 2u);
    EXPECT_LE(front.front().fetch_bytes / front.front().exec_space,
              front.back().fetch_bytes / front.back().exec_space +
                  front.back().fetch_bytes);
}

TEST_F(PlanEnumeratorTest, MetricsConsistency)
{
    auto op = make_matmul(32, 5120, 5120);
    ExecPlan plan;
    plan.parts_rows = 8;
    plan.parts_cols = 32;
    plan.parts_k = 8;
    plan.repl_a = 1;
    plan.repl_w = 1;
    ASSERT_TRUE(compute_plan_metrics(op, ctx_, plan));
    EXPECT_EQ(plan.tile_rows, 4);
    EXPECT_EQ(plan.tile_cols, 160);
    EXPECT_EQ(plan.tile_k, 640);
    // Full residency: no on-demand fetch.
    EXPECT_DOUBLE_EQ(plan.fetch_bytes, 0.0);
    // k split => reduction traffic present.
    EXPECT_GT(plan.reduce_bytes, 0.0);
    EXPECT_EQ(plan.group_w, 8);  // all row partitions share the weights
    EXPECT_EQ(plan.group_a, 32);
}

TEST_F(PlanEnumeratorTest, ReplicationReducesSpaceIncreasesFetch)
{
    auto op = make_matmul(32, 5120, 5120);
    ExecPlan full;
    full.parts_rows = 8;
    full.parts_cols = 32;
    full.parts_k = 8;
    full.repl_w = 1;
    ASSERT_TRUE(compute_plan_metrics(op, ctx_, full));
    ExecPlan half = full;
    half.repl_w = 2;
    ASSERT_TRUE(compute_plan_metrics(op, ctx_, half));
    EXPECT_LT(half.exec_space, full.exec_space);
    EXPECT_GT(half.fetch_bytes, full.fetch_bytes);
    EXPECT_GE(half.exec_time, full.exec_time);
}

TEST_F(PlanEnumeratorTest, InfeasiblePlansRejected)
{
    auto op = make_matmul(32, 5120, 5120);
    ExecPlan plan;
    plan.parts_rows = 64;  // > rows
    EXPECT_FALSE(compute_plan_metrics(op, ctx_, plan));

    ExecPlan huge;
    huge.parts_rows = 1;
    huge.parts_cols = 1;
    huge.parts_k = 1;
    // One core cannot hold the whole weight matrix.
    EXPECT_FALSE(compute_plan_metrics(op, ctx_, huge));
}

TEST_F(PlanEnumeratorTest, PreloadPlansSpanMaxToMin)
{
    auto op = make_matmul(32, 5120, 13824);
    auto front = enumerate_exec_plans(op, ctx_);
    const auto& exec = front[0];
    auto preloads = enumerate_preload_plans(op, exec, ctx_);
    ASSERT_GE(preloads.size(), 1u);
    // The largest plan on the front never exceeds the execute-state
    // residency (gamma <= 1/repl_w); broadcast-replication overhead
    // may dominate the literal MaxPreload plan off the front.
    EXPECT_LE(preloads.front().gamma, 1.0 / exec.repl_w + 1e-12);
    // Later plans use less space at higher distribution time (the
    // front is pruned on distribution; the combined time_cost is used
    // by the allocator and need not be monotone).
    for (size_t i = 1; i < preloads.size(); ++i) {
        EXPECT_LT(preloads[i].preload_space,
                  preloads[i - 1].preload_space);
        EXPECT_GT(preloads[i].distribute_time,
                  preloads[i - 1].distribute_time);
    }
    // MinPreload bottoms out at the scatter floor 1/group_w.
    EXPECT_GE(preloads.back().gamma, 1.0 / exec.group_w - 1e-12);
}

TEST_F(PlanEnumeratorTest, NoHbmDataMeansTrivialPreload)
{
    graph::Operator op;
    op.kind = graph::OpKind::kElementwise;
    op.m = 32;
    op.n = 5120;
    op.act_in_bytes = 32 * 5120 * 2;
    op.act_out_bytes = 32 * 5120 * 2;
    graph::finalize_flops(op);
    auto front = enumerate_exec_plans(op, ctx_);
    auto preloads = enumerate_preload_plans(op, front[0], ctx_);
    ASSERT_EQ(preloads.size(), 1u);
    EXPECT_EQ(preloads[0].preload_space, 0u);
    EXPECT_DOUBLE_EQ(preloads[0].distribute_time, 0.0);
}

TEST_F(PlanEnumeratorTest, BatchMatmulKvHasNoBroadcastChoice)
{
    // Decode attention with MHA: every core's KV slice is distinct
    // (w_share_rows = 1), so group_w = 1 and gamma is forced.
    graph::Operator op;
    op.kind = graph::OpKind::kBatchMatMul;
    op.batch = 32 * 40;
    op.m = 1;
    op.k = 128;
    op.n = 2048;
    op.w_share_rows = 1;
    op.stream_bytes = static_cast<uint64_t>(32) * 40 * 128 * 2048 * 2;
    op.act_in_bytes = 32ull * 40 * 128 * 2;
    graph::finalize_flops(op);
    auto front = enumerate_exec_plans(op, ctx_);
    for (const auto& exec : front) {
        EXPECT_EQ(exec.group_w, 1);
        auto preloads = enumerate_preload_plans(op, exec, ctx_);
        EXPECT_EQ(preloads.size(), 1u);
    }
}

TEST_F(PlanEnumeratorTest, GqaSharingEnablesBroadcast)
{
    // GQA: 8 query heads share one KV head -> group_w up to 8.
    graph::Operator op;
    op.kind = graph::OpKind::kBatchMatMul;
    op.batch = 16 * 64;
    op.m = 1;
    op.k = 128;
    op.n = 2048;
    op.w_share_rows = 8;
    op.stream_bytes = static_cast<uint64_t>(16) * 8 * 128 * 2048 * 2;
    op.act_in_bytes = 16ull * 64 * 128 * 2;
    graph::finalize_flops(op);
    // Partitioning finer than the GQA group exposes sharing: with one
    // row per core, 8 cores consume the same KV block.
    ExecPlan fine;
    fine.parts_rows = 1024;
    fine.parts_cols = 4;
    ASSERT_TRUE(compute_plan_metrics(op, ctx_, fine));
    EXPECT_EQ(fine.group_w, 8);
    auto preloads = enumerate_preload_plans(op, fine, ctx_);
    EXPECT_GT(preloads.size(), 1u) << "broadcast choice should exist";

    // The Pareto front itself prefers aligning tiles to the sharing
    // group (tile_rows == w_share), which also exploits GQA: check the
    // fastest plan's per-core KV bytes shrink vs. an MHA-equivalent.
    auto front = enumerate_exec_plans(op, ctx_);
    graph::Operator mha = op;
    mha.w_share_rows = 1;
    mha.stream_bytes = static_cast<uint64_t>(16) * 64 * 128 * 2048 * 2;
    auto mha_front = enumerate_exec_plans(mha, ctx_);
    EXPECT_LT(front.front().w_need, mha_front.front().w_need * 2);
}

}  // namespace
}  // namespace elk::plan
