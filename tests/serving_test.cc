/**
 * @file
 * Serving-runtime tests: engine resumability (step-driven == one-shot,
 * bit-identical, across all five design modes on the quickstart
 * model), cross-program weight residency with pressure eviction, the
 * Server's iteration-level batching and report determinism, the
 * compiled-plan cache, and the arrival-trace generators.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/server.h"
#include "sim/engine.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace elk {
namespace {

/// The CompilerHarness::tiny() chip, for fast serving-stack tests.
hw::ChipConfig
tiny_chip()
{
    hw::ChipConfig chip;
    chip.cores_per_chip = 64;
    chip.num_chips = 1;
    chip.sram_per_core = 256ull * 1024;
    chip.transfer_buffer_per_core = 8ull * 1024;
    chip.core_matmul_flops = 50e9;
    chip.core_vector_flops = 5e9;
    chip.inter_core_link_bw = 4e9;
    chip.hbm_total_bw = 200e9;
    chip.hbm_channels_per_chip = 2;
    chip.mesh_width = 8;
    chip.mesh_height = 8;
    return chip;
}

/// A synthetic op with an HBM preload and a fixed execute time.
sim::SimOp
make_op(int id, double dram, double exec_time, uint64_t preload_space,
        uint64_t exec_space)
{
    sim::SimOp op;
    op.op_id = id;
    op.dram_bytes = dram;
    op.delivery_bytes = dram;
    op.exec_local_time = exec_time;
    op.preload_space = preload_space;
    op.exec_space = exec_space;
    op.flops = 1e6;
    return op;
}

// ---------------------------------------------------------------------------
// Engine resumability

// The satellite acceptance check: a step()-driven run must produce a
// bit-identical SimResult (total_time, breakdown buckets, timings,
// utilization) to the one-shot run() on the quickstart model
// (Llama2-13B decode, batch 32, seq 2048, IPU-POD4) for every design.
TEST(EngineResumeQuickstartTest, StepDrivenMatchesOneShotAllModes)
{
    auto graph = graph::build_decode_graph(graph::llama2_13b(), 32, 2048);
    auto cfg = hw::ChipConfig::ipu_pod4();
    compiler::Compiler comp(graph, cfg);
    for (auto mode : {compiler::Mode::kBasic, compiler::Mode::kStatic,
                      compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
                      compiler::Mode::kIdeal}) {
        compiler::CompileOptions opts;
        opts.mode = mode;
        opts.max_orders = 8;
        auto compiled = comp.compile(opts);
        sim::Machine machine(cfg, mode == compiler::Mode::kIdeal);
        sim::SimProgram program = runtime::lower_to_sim(
            graph, compiled.plan, comp.context());

        sim::Engine engine(machine);
        sim::SimResult one_shot = engine.run(program);

        sim::EngineState state(machine);
        state.begin(program);
        int steps = 0;
        while (state.step()) {
            ++steps;
        }
        sim::SimResult stepped = state.finish();

        EXPECT_GT(steps, static_cast<int>(program.ops.size()))
            << compiler::mode_name(mode);
        EXPECT_EQ(one_shot.serialize_bits(), stepped.serialize_bits())
            << compiler::mode_name(mode);
    }
}

TEST(EngineResumeTest, RunToChunksMatchOneShot)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 6; ++i) {
        prog.ops.push_back(make_op(i, dram, 3e-4, 1024, 2048));
    }
    prog.finalize_default_order();

    sim::Engine engine(machine);
    sim::SimResult one_shot = engine.run(prog);

    // Drive the same program in fixed wall-clock slices. Clipping an
    // event interval at a horizon re-rounds the flow arithmetic, so
    // chunked driving is numerically equivalent (tight tolerance)
    // rather than bit-identical — only uninterrupted step() runs
    // carry the bit-exactness guarantee.
    sim::EngineState state(machine);
    state.begin(prog);
    double horizon = 0.0;
    while (!state.done()) {
        horizon += 2.5e-4;
        state.run_to(horizon);
    }
    sim::SimResult chunked = state.finish();
    EXPECT_NEAR(chunked.total_time, one_shot.total_time, 1e-12);
    EXPECT_NEAR(chunked.preload_only, one_shot.preload_only, 1e-12);
    EXPECT_NEAR(chunked.execute_only, one_shot.execute_only, 1e-12);
    EXPECT_NEAR(chunked.overlapped, one_shot.overlapped, 1e-12);
    ASSERT_EQ(chunked.timing.size(), one_shot.timing.size());
    for (size_t i = 0; i < chunked.timing.size(); ++i) {
        EXPECT_NEAR(chunked.timing[i].exec_end,
                    one_shot.timing[i].exec_end, 1e-12);
    }
}

TEST(EngineResumeTest, RunToStopsAtHorizonAndIdlesWhenDone)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    sim::SimProgram prog;
    prog.ops.push_back(make_op(0, 0, 1e-3, 1024, 2048));
    prog.finalize_default_order();

    sim::EngineState state(machine);
    state.begin(prog);
    state.run_to(4e-4);
    EXPECT_DOUBLE_EQ(state.now(), 4e-4);
    EXPECT_FALSE(state.done());
    state.run_to(10.0);  // way past completion: clock stops there
    EXPECT_TRUE(state.done());
    EXPECT_DOUBLE_EQ(state.now(), 10.0);
    sim::SimResult r = state.finish();
    EXPECT_NEAR(r.total_time, 1e-3, 1e-9);

    // A later program starts at the idled clock; its own result is
    // still measured from its begin().
    state.begin(prog);
    while (state.step()) {
    }
    sim::SimResult r2 = state.finish();
    EXPECT_GE(state.now(), 10.0);
    EXPECT_NEAR(r2.total_time, 1e-3, 1e-9);
}

// ---------------------------------------------------------------------------
// Weight residency

TEST(EngineResidencyTest, SecondRunSkipsPreloadsEntirely)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 4; ++i) {
        prog.ops.push_back(make_op(i, dram, 1e-4, 10 * 1024, 20 * 1024));
    }
    prog.finalize_default_order();

    sim::EngineState::Options opts;
    opts.residency_budget = machine.config().usable_sram_per_core();
    sim::EngineState state(machine, opts);

    state.begin(prog);
    while (state.step()) {
    }
    sim::SimResult cold = state.finish();
    EXPECT_EQ(state.resident_ops(), 4);
    EXPECT_EQ(state.resident_bytes(), 4u * 10 * 1024);

    state.begin(prog);
    while (state.step()) {
    }
    sim::SimResult warm = state.finish();
    EXPECT_EQ(state.resident_hits(), 4);
    EXPECT_DOUBLE_EQ(warm.preload_only, 0.0);
    EXPECT_LT(warm.total_time, cold.total_time / 2);
    // Resident weights count toward the warm run's footprint.
    EXPECT_GE(warm.peak_sram_per_core, 4u * 10 * 1024);
}

TEST(EngineResidencyTest, ZeroBudgetReproducesOneShotRuns)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram prog;
    for (int i = 0; i < 3; ++i) {
        prog.ops.push_back(make_op(i, dram, 1e-4, 4096, 8192));
    }
    prog.finalize_default_order();

    sim::EngineState state(machine);  // no residency
    state.begin(prog);
    while (state.step()) {
    }
    sim::SimResult first = state.finish();
    state.begin(prog);
    while (state.step()) {
    }
    sim::SimResult second = state.finish();
    EXPECT_EQ(state.resident_ops(), 0);
    EXPECT_EQ(first.serialize_bits(), second.serialize_bits());
}

TEST(EngineResidencyTest, PressureEvictsOldestInsteadOfOverflowing)
{
    hw::ChipConfig cfg = hw::ChipConfig::tiny(16);
    sim::Machine machine(cfg);
    const double dram = cfg.hbm_total_bw * 1e-4;
    const uint64_t usable = cfg.usable_sram_per_core();
    // Each op retains a third of SRAM: all six cannot stay resident.
    sim::SimProgram prog;
    for (int i = 0; i < 6; ++i) {
        prog.ops.push_back(
            make_op(i, dram, 1e-4, usable / 3, usable / 3 + 1024));
    }
    prog.finalize_default_order();

    sim::EngineState::Options opts;
    opts.residency_budget = usable;
    sim::EngineState state(machine, opts);
    for (int iter = 0; iter < 2; ++iter) {
        state.begin(prog);
        while (state.step()) {
        }
        sim::SimResult r = state.finish();
        EXPECT_FALSE(r.memory_exceeded);
    }
    EXPECT_GT(state.resident_evictions(), 0);
    EXPECT_LE(state.resident_bytes(), usable);
}

TEST(EngineResidencyTest, MismatchedProgramEvictsStaleEntries)
{
    sim::Machine machine(hw::ChipConfig::tiny(16));
    const double dram = machine.config().hbm_total_bw * 1e-3;
    sim::SimProgram a;
    a.ops.push_back(make_op(7, dram, 1e-4, 8192, 8192));
    a.finalize_default_order();
    // Same op id, different preload footprint: must not be reused.
    sim::SimProgram b;
    b.ops.push_back(make_op(7, dram, 1e-4, 4096, 8192));
    b.finalize_default_order();

    sim::EngineState::Options opts;
    opts.residency_budget = machine.config().usable_sram_per_core();
    sim::EngineState state(machine, opts);
    state.begin(a);
    while (state.step()) {
    }
    state.finish();
    EXPECT_EQ(state.resident_ops(), 1);

    state.begin(b);
    EXPECT_EQ(state.resident_bytes(), 0u);  // stale entry evicted
    while (state.step()) {
    }
    sim::SimResult r = state.finish();
    EXPECT_EQ(state.resident_hits(), 0);
    EXPECT_GT(r.preload_only, 0.0);
}

// ---------------------------------------------------------------------------
// Server

class ServerTest : public ::testing::Test {
  protected:
    ServerTest()
        : cache_(),
          sc_(make_serving_compiler(1))
    {
    }

    compiler::ServingCompiler
    make_serving_compiler(int jobs)
    {
        compiler::CompileOptions copts;
        copts.mode = compiler::Mode::kElkFull;
        copts.max_orders = 6;
        return compiler::ServingCompiler(testing::tiny_llm(), 512,
                                         tiny_chip(), copts, &cache_,
                                         jobs);
    }

    runtime::ServingReport
    serve(compiler::ServingCompiler& sc, runtime::ServerOptions sopts,
          const std::vector<double>& arrivals)
    {
        runtime::Server server(sc.machine(), sopts);
        return server.serve(arrivals,
                            [&](int b) { return sc.program(b); });
    }

    compiler::PlanCache cache_;
    compiler::ServingCompiler sc_;
};

TEST_F(ServerTest, ClosedLoopCompletesEveryRequest)
{
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.tokens_per_request = 2;
    auto rep = serve(sc_, sopts, runtime::ArrivalTrace::closed_loop(12));
    EXPECT_EQ(rep.requests, 12);
    EXPECT_EQ(rep.tokens, 24);
    // 3 waves of 4 requests, 2 iterations each.
    EXPECT_EQ(rep.iterations, 6);
    EXPECT_EQ(rep.peak_queue_depth, 8);
    EXPECT_GT(rep.tokens_per_s, 0.0);
    EXPECT_LE(rep.p50_latency, rep.p95_latency);
    EXPECT_LE(rep.p95_latency, rep.p99_latency);
    EXPECT_LE(rep.p99_latency, rep.max_latency);
    EXPECT_NEAR(rep.max_latency, rep.makespan, 1e-12);
}

TEST_F(ServerTest, SteadyStateReusesResidentWeights)
{
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.tokens_per_request = 8;
    auto rep = serve(sc_, sopts, runtime::ArrivalTrace::closed_loop(4));
    EXPECT_EQ(rep.iterations, 8);
    EXPECT_GT(rep.preloads_skipped, 0);
    EXPECT_LT(rep.steady_decode_preload, rep.first_decode_preload);
    EXPECT_GT(rep.resident_bytes, 0u);
    EXPECT_FALSE(rep.memory_exceeded);
}

TEST_F(ServerTest, ResidencyOffMatchesColdEveryIteration)
{
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.tokens_per_request = 4;
    sopts.keep_resident = false;
    auto rep = serve(sc_, sopts, runtime::ArrivalTrace::closed_loop(4));
    EXPECT_EQ(rep.preloads_skipped, 0);
    EXPECT_DOUBLE_EQ(rep.steady_decode_preload,
                     rep.first_decode_preload);
    EXPECT_EQ(rep.resident_bytes, 0u);
}

TEST_F(ServerTest, PoissonReportBitIdenticalAcrossCompilerJobs)
{
    runtime::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.tokens_per_request = 2;
    auto arrivals = runtime::ArrivalTrace::poisson(16, 2000.0, 7);

    auto serial = serve(sc_, sopts, arrivals);
    compiler::PlanCache fresh_cache;
    compiler::CompileOptions copts;
    copts.mode = compiler::Mode::kElkFull;
    copts.max_orders = 6;
    compiler::ServingCompiler parallel_sc(testing::tiny_llm(), 512,
                                          tiny_chip(), copts,
                                          &fresh_cache, 4);
    auto parallel = serve(parallel_sc, sopts, arrivals);
    EXPECT_EQ(serial.serialize_bits(), parallel.serialize_bits());
    EXPECT_EQ(serial.requests, 16);
}

TEST_F(ServerTest, OpenLoopLeavesIdleGapsBetweenArrivals)
{
    runtime::ServerOptions sopts;
    sopts.max_batch = 2;
    // Arrivals far apart: the server idles in between, so makespan
    // is dominated by the last arrival, and nothing ever queues.
    std::vector<double> arrivals = {0.0, 1.0, 2.0};
    auto rep = serve(sc_, sopts, arrivals);
    EXPECT_GE(rep.makespan, 2.0);
    EXPECT_EQ(rep.peak_queue_depth, 0);
    EXPECT_EQ(rep.iterations, 3);
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCacheTest, SecondCompileHitsAndMatchesBitExactly)
{
    auto harness_graph = graph::build_decode_graph(testing::tiny_llm(),
                                                   8, 512);
    hw::ChipConfig cfg = tiny_chip();
    compiler::PlanCache cache;
    compiler::Compiler comp(harness_graph, cfg);
    comp.set_plan_cache(&cache);

    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkFull;
    opts.max_orders = 6;
    auto first = comp.compile(opts);
    auto second = comp.compile(opts);
    EXPECT_FALSE(first.from_cache);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(first.plan.serialize_bits(), second.plan.serialize_bits());
    EXPECT_EQ(first.stats.orders_tested, second.stats.orders_tested);
    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.entries, 1);

    // A different mode is a different key.
    opts.mode = compiler::Mode::kBasic;
    auto basic = comp.compile(opts);
    EXPECT_FALSE(basic.from_cache);
    EXPECT_EQ(cache.stats().entries, 2);
}

TEST(PlanCacheTest, CachedPlanHookDisablesSchedulingPasses)
{
    auto pipeline = compiler::CompilerPipeline::standard();
    compiler::CompileState probe;
    probe.opts.mode = compiler::Mode::kElkFull;
    auto without = pipeline.enabled_passes(probe);
    EXPECT_NE(std::find(without.begin(), without.end(), "schedule-elk"),
              without.end());

    probe.cached_plan =
        std::make_shared<const compiler::ExecutionPlan>();
    auto with = pipeline.enabled_passes(probe);
    EXPECT_EQ(std::find(with.begin(), with.end(), "schedule-elk"),
              with.end());
    EXPECT_EQ(std::find(with.begin(), with.end(),
                        "preload-order-search"),
              with.end());
    // Analysis and finalize still run.
    EXPECT_NE(std::find(with.begin(), with.end(), "plan-library"),
              with.end());
    EXPECT_NE(std::find(with.begin(), with.end(), "finalize"),
              with.end());
}

TEST(PlanCacheTest, KeyDistinguishesModelChipModeAndKnobs)
{
    auto g1 = graph::build_decode_graph(testing::tiny_llm(), 8, 512);
    auto g2 = graph::build_decode_graph(testing::tiny_llm(), 16, 512);
    hw::ChipConfig c1 = tiny_chip();
    hw::ChipConfig c2 = tiny_chip();
    c2.hbm_total_bw *= 2;
    compiler::CompileOptions opts;

    auto base = compiler::make_plan_key(g1, c1, opts);
    EXPECT_FALSE(base < base);
    auto batch = compiler::make_plan_key(g2, c1, opts);
    EXPECT_TRUE(base < batch || batch < base);
    // The diagnostic batch field tracks operator batch dims, which
    // scale with the request batch.
    EXPECT_GT(batch.batch, base.batch);
    auto chip = compiler::make_plan_key(g1, c2, opts);
    EXPECT_TRUE(base < chip || chip < base);
    opts.max_orders += 1;
    auto knobs = compiler::make_plan_key(g1, c1, opts);
    EXPECT_TRUE(base < knobs || knobs < base);
}

TEST(ServingCompilerTest, SharedCacheAmortizesAcrossInstances)
{
    compiler::PlanCache cache;
    compiler::CompileOptions copts;
    copts.mode = compiler::Mode::kElkDyn;
    compiler::ServingCompiler a(testing::tiny_llm(), 512, tiny_chip(),
                                copts, &cache);
    compiler::ServingCompiler b(testing::tiny_llm(), 512, tiny_chip(),
                                copts, &cache);
    auto pa = a.program(4);
    EXPECT_EQ(cache.stats().hits, 0);
    auto pb = b.program(4);
    EXPECT_EQ(cache.stats().hits, 1);
    ASSERT_EQ(pa->ops.size(), pb->ops.size());
    // Memoization returns the identical object within an instance.
    EXPECT_EQ(pa.get(), a.program(4).get());
}

// Many threads race program() on one ServingCompiler: the first
// caller of each (batch, prompt_len) grid point compiles under the
// unique lock, later callers hit the shared-lock warm path, and every
// caller of a point gets the identical memoized object. This is the
// std::shared_mutex warm-grid path the TSan CI leg watches.
TEST(ServingCompilerTest, ConcurrentProgramCallsShareTheWarmGrid)
{
    compiler::PlanCache cache;
    compiler::CompileOptions copts;
    copts.mode = compiler::Mode::kElkDyn;
    copts.max_orders = 6;
    compiler::ServingCompiler pc(
        testing::tiny_llm(), 128, tiny_chip(), copts, &cache,
        /*jobs=*/1, compiler::ServingCompiler::Options::prefill());
    util::ThreadPool pool(4);
    constexpr int kTasks = 36;
    std::vector<const sim::SimProgram*> seen(kTasks);
    util::ThreadPool::run(&pool, kTasks, [&](int i) {
        const int batches[] = {1, 2, 4};
        const int lens[] = {16, 64, 128};
        seen[i] =
            pc.program(batches[i % 3], lens[(i / 3) % 3]).get();
    });
    // i and i % 9 name the same (batch, len) grid point.
    for (int i = 9; i < kTasks; ++i) {
        EXPECT_EQ(seen[i], seen[i % 9]);
    }
}

// ---------------------------------------------------------------------------
// Arrival traces

TEST(ArrivalTraceTest, ClosedLoopIsAllZeros)
{
    auto t = runtime::ArrivalTrace::closed_loop(5);
    ASSERT_EQ(t.size(), 5u);
    for (double x : t) {
        EXPECT_DOUBLE_EQ(x, 0.0);
    }
}

TEST(ArrivalTraceTest, PoissonIsSortedSeededAndRateScaled)
{
    auto a = runtime::ArrivalTrace::poisson(200, 100.0, 11);
    auto b = runtime::ArrivalTrace::poisson(200, 100.0, 11);
    auto c = runtime::ArrivalTrace::poisson(200, 100.0, 12);
    ASSERT_EQ(a.size(), 200u);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    for (size_t i = 1; i < a.size(); ++i) {
        EXPECT_GE(a[i], a[i - 1]);
    }
    // Mean gap ~= 1/rate (law of large numbers, loose bound).
    double mean_gap = a.back() / 200.0;
    EXPECT_GT(mean_gap, 0.5 / 100.0);
    EXPECT_LT(mean_gap, 2.0 / 100.0);
}

}  // namespace
}  // namespace elk
