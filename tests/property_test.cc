/**
 * @file
 * Property-style tests (parameterized sweeps) over the core
 * invariants: Pareto fronts, network conservation, scheduler
 * feasibility across models/chips, and plan-metric monotonicities.
 */
#include <gtest/gtest.h>

#include <random>

#include "elk/compiler.h"
#include "plan/pareto.h"
#include "runtime/executor.h"
#include "sim/network.h"
#include "test_helpers.h"

namespace elk {
namespace {

// ---------------------------------------------------------------
// Pareto front properties over random point sets.
// ---------------------------------------------------------------

class ParetoProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoProperty, FrontIsMinimalAndComplete)
{
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<uint64_t> mem(1, 1000);
    std::uniform_real_distribution<double> time(0.1, 10.0);
    struct P {
        uint64_t m;
        double t;
    };
    std::vector<P> pts;
    for (int i = 0; i < 200; ++i) {
        pts.push_back({mem(rng), time(rng)});
    }
    auto front = plan::pareto_front(
        pts, [](const P& p) { return p.m; },
        [](const P& p) { return p.t; });

    // 1) Front members are mutually non-dominated.
    for (size_t i = 1; i < front.size(); ++i) {
        EXPECT_LT(front[i].m, front[i - 1].m);
        EXPECT_GT(front[i].t, front[i - 1].t);
    }
    // 2) Every input point is dominated by (or equal to) some member.
    for (const auto& p : pts) {
        bool covered = false;
        for (const auto& f : front) {
            if (f.m <= p.m && f.t <= p.t) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------
// Fluid network: work conservation and capacity limits under random
// flow populations.
// ---------------------------------------------------------------

class NetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(NetworkProperty, CapacityNeverExceededAndWorkConserved)
{
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> bytes(1.0, 100.0);
    std::uniform_int_distribution<int> tag(0, 2);
    sim::FluidNetwork net({100.0, 50.0});

    double total_bytes = 0.0;
    for (int i = 0; i < 12; ++i) {
        std::map<int, double> w;
        w[0] = 1.0;
        if (tag(rng) == 0) {
            w[1] = 0.5;
        }
        double b = bytes(rng);
        total_bytes += b;
        net.add_flow(b, std::move(w),
                     static_cast<sim::FlowTag>(tag(rng)));
        EXPECT_LE(net.resource_usage(0), 100.0 * (1 + 1e-9));
        EXPECT_LE(net.resource_usage(1), 50.0 * (1 + 1e-9));
    }

    // Drain and measure delivered bytes on resource 0 (weight 1.0).
    double delivered = 0.0;
    int guard = 0;
    while (net.num_active() > 0 && guard++ < 1000) {
        double dt = net.time_to_next_completion();
        ASSERT_TRUE(std::isfinite(dt));
        delivered += net.resource_usage(0) * dt;
        net.advance(dt);
    }
    EXPECT_EQ(net.num_active(), 0);
    EXPECT_NEAR(delivered, total_bytes, total_bytes * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------
// Plan enumeration invariants across operator shapes.
// ---------------------------------------------------------------

struct ShapeCase {
    long m, k, n;
};

class PlanProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PlanProperty, FrontInvariants)
{
    auto h = testing::CompilerHarness::tiny();
    graph::Operator op;
    op.kind = graph::OpKind::kMatMul;
    op.name = "sweep";
    op.m = GetParam().m;
    op.k = GetParam().k;
    op.n = GetParam().n;
    op.param_bytes = static_cast<uint64_t>(op.k) * op.n * 2;
    op.act_in_bytes = static_cast<uint64_t>(op.m) * op.k * 2;
    op.act_out_bytes = static_cast<uint64_t>(op.m) * op.n * 2;
    graph::finalize_flops(op);

    auto front = plan::enumerate_exec_plans(op, h.ctx);
    ASSERT_FALSE(front.empty());
    for (size_t i = 0; i < front.size(); ++i) {
        const auto& p = front[i];
        EXPECT_LE(p.exec_space, h.ctx.sram_budget());
        EXPECT_LE(p.cores_used(), h.cfg.total_cores());
        EXPECT_GE(p.exec_time, p.compute_time);
        EXPECT_GE(p.fetch_bytes, 0.0);
        if (i > 0) {
            EXPECT_LT(p.exec_space, front[i - 1].exec_space);
            EXPECT_GT(p.time_cost(), front[i - 1].time_cost());
        }
        auto preloads = plan::enumerate_preload_plans(op, p, h.ctx);
        ASSERT_FALSE(preloads.empty());
        // Preload space never exceeds the execute-state residency;
        // the scatter floor applies when W is shared across cores
        // (chunk-streamed plans buffer only 1/repl_w).
        for (const auto& q : preloads) {
            EXPECT_LE(q.preload_space, p.w_resident() + 1);
            if (p.group_w > 1) {
                EXPECT_GE(q.gamma, 1.0 / p.group_w - 1e-12);
            } else {
                EXPECT_GE(q.gamma, 1.0 / p.repl_w - 1e-12);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanProperty,
    ::testing::Values(ShapeCase{8, 512, 1536}, ShapeCase{8, 512, 512},
                      ShapeCase{64, 256, 256}, ShapeCase{1, 512, 4096},
                      ShapeCase{8, 1536, 512}, ShapeCase{16, 64, 64}));

// ---------------------------------------------------------------
// End-to-end invariants across batch sizes and windows.
// ---------------------------------------------------------------

struct E2ECase {
    int batch;
    int seq;
    int window;
};

class EndToEndProperty : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEndProperty, CompiledPlansRunAndFit)
{
    auto base = testing::CompilerHarness::tiny();
    graph::Graph graph = graph::build_decode_graph(
        testing::tiny_llm_gqa(), GetParam().batch, GetParam().seq);
    compiler::Compiler comp(graph, base.cfg);
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkFull;
    opts.max_window = GetParam().window;
    opts.max_orders = 6;
    auto result = comp.compile(opts);

    sim::Machine machine(base.cfg);
    auto run =
        runtime::run_plan(machine, graph, result.plan, comp.context());
    EXPECT_GT(run.total_time, 0.0);
    EXPECT_FALSE(run.memory_exceeded)
        << "peak " << run.peak_sram_per_core << " budget "
        << base.cfg.usable_sram_per_core();
    EXPECT_NEAR(run.preload_only + run.execute_only + run.overlapped,
                run.total_time, run.total_time * 1e-6 + 1e-9);
    EXPECT_LE(run.hbm_util, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EndToEndProperty,
    ::testing::Values(E2ECase{4, 256, 8}, E2ECase{8, 512, 8},
                      E2ECase{16, 512, 16}, E2ECase{8, 1024, 4},
                      E2ECase{2, 128, 2}));

}  // namespace
}  // namespace elk
